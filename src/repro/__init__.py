"""repro: fault-tolerant distributed embedded system design optimization.

Reproduction of Izosimov, Pop, Eles & Peng, *Design Optimization of Time-
and Cost-Constrained Fault-Tolerant Distributed Embedded Systems*,
DATE 2005 (DOI 10.1109/DATE.2005.116).
"""

from repro.errors import (
    ConfigurationError,
    FaultToleranceViolation,
    ModelError,
    ReproError,
    SchedulingError,
    SimulationError,
)
from repro.model.application import Application, Message, Process, ProcessGraph
from repro.model.architecture import Architecture, Node, homogeneous_architecture
from repro.model.fault import NO_FAULTS, FaultModel
from repro.model.mapping import ReplicaMapping
from repro.model.merge import merge_application
from repro.model.policy import Policy, PolicyAssignment
from repro.opt.strategy import OptimizationConfig, OptimizationResult, optimize
from repro.schedule.list_scheduler import list_schedule
from repro.schedule.table import SystemSchedule
from repro.sim.validate import validate_schedule
from repro.ttp.bus import BusConfig

__version__ = "1.0.0"

__all__ = [
    "Application",
    "Architecture",
    "BusConfig",
    "ConfigurationError",
    "FaultModel",
    "FaultToleranceViolation",
    "Message",
    "ModelError",
    "NO_FAULTS",
    "Node",
    "OptimizationConfig",
    "OptimizationResult",
    "Policy",
    "PolicyAssignment",
    "Process",
    "ProcessGraph",
    "ReplicaMapping",
    "ReproError",
    "SchedulingError",
    "SimulationError",
    "SystemSchedule",
    "homogeneous_architecture",
    "list_schedule",
    "merge_application",
    "optimize",
    "validate_schedule",
]
