"""Static TDMA bus configuration (paper §2.1, Fig. 1b).

Each node owns exactly one slot per TDMA round; a round is the slot sequence
for all nodes, and rounds repeat periodically to form the bus cycle.  Within
its slot a node broadcasts one frame in which several messages may be packed.

Timing model: a slot of node ``N`` has a fixed length in ms; a frame can
carry ``floor(slot_length / ms_per_byte)`` payload bytes.  A message packed
into a frame is considered *delivered to every node* at the end of the slot
(conservative by at most one slot length).  The frame content must be in the
communication controller's buffer at the slot start, hence a message may only
be packed into slots starting at or after the sender's data-ready time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class BusConfig:
    """Immutable TDMA configuration: slot order, slot lengths, byte time."""

    slot_order: tuple[str, ...]
    slot_lengths: Mapping[str, float]
    ms_per_byte: float = 1.0
    _starts: dict[str, float] = field(init=False, repr=False, compare=False)
    _round_length: float = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.slot_order:
            raise ConfigurationError("bus needs at least one slot")
        if len(set(self.slot_order)) != len(self.slot_order):
            raise ConfigurationError("a node can own only one slot per round")
        if self.ms_per_byte <= 0:
            raise ConfigurationError("ms_per_byte must be positive")
        lengths = dict(self.slot_lengths)
        for node in self.slot_order:
            if node not in lengths:
                raise ConfigurationError(f"slot length missing for node {node!r}")
            if lengths[node] <= 0:
                raise ConfigurationError(f"slot of {node!r} has non-positive length")
        object.__setattr__(self, "slot_lengths", lengths)
        starts: dict[str, float] = {}
        offset = 0.0
        for node in self.slot_order:
            starts[node] = offset
            offset += lengths[node]
        object.__setattr__(self, "_starts", starts)
        object.__setattr__(self, "_round_length", offset)

    # -- derived timing ----------------------------------------------------

    @property
    def round_length(self) -> float:
        """Length of one TDMA round in ms."""
        return self._round_length

    def slot_index(self, node: str) -> int:
        try:
            return self.slot_order.index(node)
        except ValueError:
            raise ConfigurationError(f"node {node!r} owns no slot") from None

    def slot_start(self, node: str, round_index: int) -> float:
        """Absolute start time of ``node``'s slot in round ``round_index``."""
        if round_index < 0:
            raise ConfigurationError("round index must be >= 0")
        if node not in self._starts:
            raise ConfigurationError(f"node {node!r} owns no slot")
        return round_index * self.round_length + self._starts[node]

    def slot_end(self, node: str, round_index: int) -> float:
        return self.slot_start(node, round_index) + self.slot_lengths[node]

    def capacity_bytes(self, node: str) -> int:
        """Payload bytes a single frame of ``node`` can carry."""
        return int(self.slot_lengths[node] / self.ms_per_byte + 1e-9)

    def first_round_at_or_after(self, node: str, time: float) -> int:
        """Smallest round index whose slot of ``node`` starts at/after ``time``."""
        offset = self._starts[node]
        if time <= offset:
            return 0
        candidate = int((time - offset) / self._round_length)
        # Guard against float error: candidate may still start too early.
        while candidate * self._round_length + offset + 1e-9 < time:
            candidate += 1
        return candidate

    def validate_for(self, node_names: Iterable[str]) -> None:
        """Check the bus serves exactly the given architecture nodes."""
        expected = set(node_names)
        actual = set(self.slot_order)
        if expected != actual:
            raise ConfigurationError(
                f"bus slots {sorted(actual)} do not match architecture nodes "
                f"{sorted(expected)}"
            )

    # -- constructors --------------------------------------------------------

    @classmethod
    def minimal(
        cls,
        node_order: Iterable[str],
        largest_message_size: int,
        ms_per_byte: float = 1.0,
    ) -> "BusConfig":
        """The paper's initial bus access ``B0`` (§5 step 1).

        Slot *i* is assigned to node *i* and every slot gets the minimal
        allowed length: the transmission time of the largest message in the
        application.
        """
        if largest_message_size <= 0:
            raise ConfigurationError("largest message size must be positive")
        order = tuple(node_order)
        length = largest_message_size * ms_per_byte
        return cls(
            slot_order=order,
            slot_lengths={n: length for n in order},
            ms_per_byte=ms_per_byte,
        )

    def with_slot_order(self, new_order: Iterable[str]) -> "BusConfig":
        """A copy with permuted slots (used by bus access optimization)."""
        return BusConfig(
            slot_order=tuple(new_order),
            slot_lengths=dict(self.slot_lengths),
            ms_per_byte=self.ms_per_byte,
        )

    def with_slot_length(self, node: str, length: float) -> "BusConfig":
        """A copy with one slot length changed."""
        lengths = dict(self.slot_lengths)
        lengths[node] = length
        return BusConfig(
            slot_order=self.slot_order,
            slot_lengths=lengths,
            ms_per_byte=self.ms_per_byte,
        )

    def signature(self) -> tuple:
        """Hashable identity used for evaluation caching."""
        return (
            self.slot_order,
            tuple(sorted(self.slot_lengths.items())),
            self.ms_per_byte,
        )
