"""Message Descriptor List (MEDL) — the TTP controller's schedule table.

"The TDMA access scheme is imposed by a message descriptor list (MEDL) that
is located in every TTP controller" (paper §2.1).  Our MEDL maps every bus
message to the slot/round in which it is broadcast and exposes per-node views
used by the simulated controllers in :mod:`repro.sim.controller`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from repro.errors import ConfigurationError

#: Packed descriptor row: ``(bus_message_id, node_index, round_index,
#: slot_start, slot_end, offset_bytes, size_bytes)`` with the sender node
#: interned to an index.  This is the shape MEDL entries take inside a
#: :class:`repro.schedule.record.ScheduleRecord`.  Deliberately a *plain*
#: tuple, not a NamedTuple: CPython's GC only untracks exact tuples, and
#: the record's GC-invisibility argument (DESIGN.md) depends on that.
#: Consumers index rows via the ``PACKED_*`` constants below.
PackedDescriptor = tuple[str, int, int, float, float, int, int]

#: Field positions within a :data:`PackedDescriptor` row.
PACKED_ID = 0
PACKED_NODE = 1
PACKED_ROUND = 2
PACKED_SLOT_START = 3
PACKED_SLOT_END = 4
PACKED_OFFSET = 5
PACKED_SIZE = 6


@dataclass(frozen=True, slots=True)
class MessageDescriptor:
    """Where and when one bus message is broadcast."""

    bus_message_id: str
    sender_node: str
    round_index: int
    slot_start: float
    slot_end: float
    offset_bytes: int
    size_bytes: int

    @property
    def arrival(self) -> float:
        """Delivery time at every receiver: end of the slot."""
        return self.slot_end

    def pack(self, node_index: int) -> PackedDescriptor:
        """Flatten into the record row format (sender interned)."""
        return (
            self.bus_message_id,
            node_index,
            self.round_index,
            self.slot_start,
            self.slot_end,
            self.offset_bytes,
            self.size_bytes,
        )


def unpack_descriptor(
    row: PackedDescriptor, nodes: Sequence[str]
) -> MessageDescriptor:
    """Rehydrate one packed row against the record's node intern table."""
    return MessageDescriptor(
        bus_message_id=row[0],
        sender_node=nodes[row[1]],
        round_index=row[2],
        slot_start=row[3],
        slot_end=row[4],
        offset_bytes=row[5],
        size_bytes=row[6],
    )


class MEDL:
    """All message descriptors of one synthesized system schedule."""

    def __init__(self) -> None:
        self._by_id: dict[str, MessageDescriptor] = {}

    def add(self, descriptor: MessageDescriptor) -> MessageDescriptor:
        if descriptor.bus_message_id in self._by_id:
            raise ConfigurationError(
                f"duplicate MEDL entry for {descriptor.bus_message_id!r}"
            )
        self._by_id[descriptor.bus_message_id] = descriptor
        return descriptor

    def __getitem__(self, bus_message_id: str) -> MessageDescriptor:
        try:
            return self._by_id[bus_message_id]
        except KeyError:
            raise ConfigurationError(
                f"no MEDL entry for bus message {bus_message_id!r}"
            ) from None

    def __contains__(self, bus_message_id: str) -> bool:
        return bus_message_id in self._by_id

    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self) -> Iterator[MessageDescriptor]:
        return iter(self._by_id.values())

    def by_id(self) -> dict[str, MessageDescriptor]:
        """The id -> descriptor mapping (read-only hot-path view)."""
        return self._by_id

    def adopt(self, descriptor: MessageDescriptor) -> None:
        """Insert a descriptor known to be valid, skipping the dup check.

        Hot path of the delta kernel: re-admits a base schedule's descriptor
        whose pack decision was proven identical (same sender fill state,
        same ready time), so re-running first-fit would be pure waste.
        """
        self._by_id[descriptor.bus_message_id] = descriptor

    def restore(self, by_id: dict[str, MessageDescriptor]) -> None:
        """Replace the contents with a previously captured id map.

        Snapshot support for incremental re-scheduling: the caller owns the
        dict (hands over a copy); descriptors are immutable and shared
        between the base schedule and its deltas.
        """
        self._by_id = by_id

    def packed(self, node_index_of: Mapping[str, int]) -> tuple[PackedDescriptor, ...]:
        """All descriptors as packed rows, in scheduling (insertion) order."""
        return tuple(
            descriptor.pack(node_index_of[descriptor.sender_node])
            for descriptor in self._by_id.values()
        )

    @classmethod
    def from_packed(
        cls, rows: Iterable[PackedDescriptor], nodes: Sequence[str]
    ) -> "MEDL":
        """Render a MEDL from a record's packed rows (lazy view path)."""
        medl = cls()
        for row in rows:
            medl.add(unpack_descriptor(row, nodes))
        return medl

    def arrival(self, bus_message_id: str) -> float:
        return self[bus_message_id].arrival

    def for_node(self, node: str) -> list[MessageDescriptor]:
        """Descriptors transmitted by ``node``, in slot order."""
        mine = [d for d in self._by_id.values() if d.sender_node == node]
        return sorted(mine, key=lambda d: (d.round_index, d.offset_bytes))

    def last_slot_end(self) -> float:
        """End of the latest used slot (0 when the bus is unused)."""
        return max((d.slot_end for d in self._by_id.values()), default=0.0)
