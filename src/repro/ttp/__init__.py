"""Time-triggered protocol (TTP/TDMA) communication substrate (paper §2.1)."""

from repro.ttp.bus import BusConfig
from repro.ttp.frame import Frame, FrameAllocation
from repro.ttp.medl import MEDL, MessageDescriptor
from repro.ttp.schedule import BusScheduler

__all__ = [
    "BusConfig",
    "BusScheduler",
    "Frame",
    "FrameAllocation",
    "MEDL",
    "MessageDescriptor",
]
