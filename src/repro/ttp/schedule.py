"""Bus scheduling: allocate bus messages to TDMA slots (paper §5.1).

The :class:`BusScheduler` implements the ``ScheduleMessage`` function used by
the list scheduler: a message from node ``N`` ready at time ``t`` is packed
into the earliest frame of ``N`` whose slot starts at or after ``t`` and
which still has payload capacity.  Delivery is at slot end (see
:mod:`repro.ttp.bus`).

The scheduler's only mutable state is the per-slot payload counter
``(node, round) -> used bytes`` plus the MEDL it appends to.  Both are flat
and cheaply copyable, which is what lets the incremental evaluation kernel
(:mod:`repro.schedule.state`) snapshot and restore bus progress at arbitrary
placement ranks.  :class:`repro.ttp.frame.Frame` views are *rendered* from
MEDL descriptors on demand — they are not part of the scheduling state.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.ttp.bus import BusConfig
from repro.ttp.frame import Frame, frames_from_descriptors
from repro.ttp.medl import MEDL, MessageDescriptor


class BusScheduler:
    """Stateful first-fit allocator of messages into TDMA frames."""

    def __init__(self, bus: BusConfig) -> None:
        self.bus = bus
        self.medl = MEDL()
        # Payload bytes already packed per (node, round) slot.  First-fit
        # packing needs nothing else: a message's offset within its frame is
        # the fill level at pack time, and frame views re-render from the
        # MEDL descriptors.
        self._used: dict[tuple[str, int], int] = {}
        # Per-node timing constants hoisted out of the per-message loop: one
        # bus scheduler prices every message of one candidate schedule, so
        # the slot arithmetic must not re-derive them on every call.
        self._round_length = bus.round_length
        self._offsets = {n: bus.slot_start(n, 0) for n in bus.slot_order}
        self._lengths = {n: bus.slot_lengths[n] for n in bus.slot_order}
        self._capacities = {n: bus.capacity_bytes(n) for n in bus.slot_order}

    def schedule_message(
        self,
        bus_message_id: str,
        sender_node: str,
        size_bytes: int,
        ready_time: float,
    ) -> MessageDescriptor:
        """Pack one message into the earliest feasible frame of its sender.

        ``ready_time`` is the latest time the payload can be produced in any
        fault scenario (the sender's worst-case finish), so the resulting
        slot time is valid in *every* scenario — this is what makes recovery
        transparent to other nodes.
        """
        capacity = self._capacities[sender_node]
        if size_bytes <= 0:
            raise ConfigurationError("message size must be positive")
        if size_bytes > capacity:
            raise ConfigurationError(
                f"message {bus_message_id!r} ({size_bytes} B) exceeds the "
                f"frame capacity of node {sender_node!r} ({capacity} B)"
            )
        round_index = self.bus.first_round_at_or_after(sender_node, ready_time)
        used = self._used
        while True:
            key = (sender_node, round_index)
            fill = used.get(key, 0)
            if fill + size_bytes <= capacity:
                used[key] = fill + size_bytes
                slot_start = round_index * self._round_length + self._offsets[
                    sender_node
                ]
                descriptor = MessageDescriptor(
                    bus_message_id=bus_message_id,
                    sender_node=sender_node,
                    round_index=round_index,
                    slot_start=slot_start,
                    slot_end=slot_start + self._lengths[sender_node],
                    offset_bytes=fill,
                    size_bytes=size_bytes,
                )
                return self.medl.add(descriptor)
            round_index += 1

    # -- snapshot support (incremental evaluation kernel) -------------------

    def bus_state(self) -> tuple[dict[tuple[str, int], int], dict]:
        """Copies of the mutable scheduling state (fill levels, MEDL map)."""
        return dict(self._used), dict(self.medl.by_id())

    def restore_bus_state(
        self,
        used: dict[tuple[str, int], int],
        by_id: dict,
    ) -> None:
        """Reset the scheduler to a state captured by :meth:`bus_state`.

        The caller hands over fresh copies; descriptors themselves are
        immutable and shared.
        """
        self._used = used
        self.medl.restore(by_id)

    def copy_descriptor(self, descriptor: MessageDescriptor) -> None:
        """Adopt a descriptor from a base schedule without re-packing.

        Only valid when the caller has proven the first-fit decision would
        come out identical: the sender's fill levels equal the base run's at
        this point and the message is ready at the same time.  The fill
        accounting is replayed so later (possibly diverging) packs on the
        same node still see correct occupancy.
        """
        key = (descriptor.sender_node, descriptor.round_index)
        used = self._used
        fill = used.get(key, 0)
        used[key] = fill + descriptor.size_bytes
        self.medl.adopt(descriptor)

    def frames(self) -> list[Frame]:
        """All non-empty frames, ordered by time.

        Rendered from the MEDL descriptors rather than the internal
        allocation state: the descriptors are the canonical artifact (they
        are what a :class:`repro.schedule.record.ScheduleRecord` retains),
        so every frame view must be derivable from them alone.
        """
        return frames_from_descriptors(self.medl, self.bus.capacity_bytes)
