"""Bus scheduling: allocate bus messages to TDMA slots (paper §5.1).

The :class:`BusScheduler` implements the ``ScheduleMessage`` function used by
the list scheduler: a message from node ``N`` ready at time ``t`` is packed
into the earliest frame of ``N`` whose slot starts at or after ``t`` and
which still has payload capacity.  Delivery is at slot end (see
:mod:`repro.ttp.bus`).
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.ttp.bus import BusConfig
from repro.ttp.frame import Frame, frames_from_descriptors
from repro.ttp.medl import MEDL, MessageDescriptor


class BusScheduler:
    """Stateful first-fit allocator of messages into TDMA frames."""

    def __init__(self, bus: BusConfig) -> None:
        self.bus = bus
        self.medl = MEDL()
        self._frames: dict[tuple[str, int], Frame] = {}
        # Per-node timing constants hoisted out of the per-message loop: one
        # bus scheduler prices every message of one candidate schedule, so
        # the slot arithmetic must not re-derive them on every call.
        self._round_length = bus.round_length
        self._offsets = {n: bus.slot_start(n, 0) for n in bus.slot_order}
        self._lengths = {n: bus.slot_lengths[n] for n in bus.slot_order}
        self._capacities = {n: bus.capacity_bytes(n) for n in bus.slot_order}

    def schedule_message(
        self,
        bus_message_id: str,
        sender_node: str,
        size_bytes: int,
        ready_time: float,
    ) -> MessageDescriptor:
        """Pack one message into the earliest feasible frame of its sender.

        ``ready_time`` is the latest time the payload can be produced in any
        fault scenario (the sender's worst-case finish), so the resulting
        slot time is valid in *every* scenario — this is what makes recovery
        transparent to other nodes.
        """
        capacity = self._capacities[sender_node]
        if size_bytes > capacity:
            raise ConfigurationError(
                f"message {bus_message_id!r} ({size_bytes} B) exceeds the "
                f"frame capacity of node {sender_node!r} ({capacity} B)"
            )
        offset = self._offsets[sender_node]
        round_length = self._round_length
        round_index = self.bus.first_round_at_or_after(sender_node, ready_time)
        frames = self._frames
        while True:
            key = (sender_node, round_index)
            frame = frames.get(key)
            if frame is None:
                frame = Frame(
                    node=sender_node,
                    round_index=round_index,
                    capacity_bytes=capacity,
                )
                frames[key] = frame
            if frame.used_bytes + size_bytes <= capacity:
                allocation = frame.pack(bus_message_id, size_bytes)
                slot_start = round_index * round_length + offset
                descriptor = MessageDescriptor(
                    bus_message_id=bus_message_id,
                    sender_node=sender_node,
                    round_index=round_index,
                    slot_start=slot_start,
                    slot_end=slot_start + self._lengths[sender_node],
                    offset_bytes=allocation.offset_bytes,
                    size_bytes=size_bytes,
                )
                return self.medl.add(descriptor)
            round_index += 1

    def frames(self) -> list[Frame]:
        """All non-empty frames, ordered by time.

        Rendered from the MEDL descriptors rather than the internal
        allocation state: the descriptors are the canonical artifact (they
        are what a :class:`repro.schedule.record.ScheduleRecord` retains),
        so every frame view must be derivable from them alone.
        """
        return frames_from_descriptors(self.medl, self.bus.capacity_bytes)
