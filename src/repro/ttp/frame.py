"""Frames: per-slot payload containers with byte-level packing (paper §2.1).

"In such a slot, a node can send several messages packed in a frame."  A
:class:`Frame` represents the payload of one node's slot in one round; the
:class:`repro.ttp.schedule.BusScheduler` fills frames first-fit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable

from repro.errors import ConfigurationError

if TYPE_CHECKING:
    from repro.ttp.medl import MessageDescriptor


@dataclass(frozen=True, slots=True)
class FrameAllocation:
    """One message placed inside a frame."""

    bus_message_id: str
    offset_bytes: int
    size_bytes: int

    @property
    def end_bytes(self) -> int:
        return self.offset_bytes + self.size_bytes


@dataclass
class Frame:
    """The payload of node ``node``'s slot in round ``round_index``."""

    node: str
    round_index: int
    capacity_bytes: int
    allocations: list[FrameAllocation] = field(default_factory=list)
    # Running payload counter: frames are probed (fits/pack) once per bus
    # message on the scheduler hot path, so the fill level must not be
    # recomputed from the allocation list on every lookup.
    _used_bytes: int = field(default=0, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        self._used_bytes = sum(a.size_bytes for a in self.allocations)

    @property
    def used_bytes(self) -> int:
        return self._used_bytes

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def fits(self, size_bytes: int) -> bool:
        return size_bytes <= self.free_bytes

    def pack(self, bus_message_id: str, size_bytes: int) -> FrameAllocation:
        """Append a message to the frame; raises if it does not fit."""
        if size_bytes <= 0:
            raise ConfigurationError("message size must be positive")
        if not self.fits(size_bytes):
            raise ConfigurationError(
                f"frame {self.node}/{self.round_index} has {self.free_bytes} "
                f"free bytes; cannot pack {size_bytes}"
            )
        allocation = FrameAllocation(
            bus_message_id=bus_message_id,
            offset_bytes=self.used_bytes,
            size_bytes=size_bytes,
        )
        self.allocations.append(allocation)
        self._used_bytes += size_bytes
        return allocation


def frames_from_descriptors(
    descriptors: Iterable["MessageDescriptor"],
    capacity_of: Callable[[str], int],
) -> list[Frame]:
    """Re-render the frame packing from MEDL descriptors.

    The MEDL fully determines the packing — every descriptor carries its
    slot (sender node + round) and byte offset — so frames never need to be
    stored next to a synthesized schedule: any view that wants the "N
    messages in this slot" perspective rebuilds it from the descriptor
    rows.  Frames are returned in slot-time order, allocations in byte
    order, exactly as the stateful :class:`repro.ttp.schedule.BusScheduler`
    packed them.
    """
    by_slot: dict[tuple[str, int], list["MessageDescriptor"]] = {}
    slot_start: dict[tuple[str, int], float] = {}
    for descriptor in descriptors:
        key = (descriptor.sender_node, descriptor.round_index)
        by_slot.setdefault(key, []).append(descriptor)
        slot_start[key] = descriptor.slot_start
    frames: list[Frame] = []
    for key in sorted(by_slot, key=lambda k: (slot_start[k], k)):
        node, round_index = key
        frame = Frame(
            node=node,
            round_index=round_index,
            capacity_bytes=capacity_of(node),
            allocations=[
                FrameAllocation(
                    bus_message_id=d.bus_message_id,
                    offset_bytes=d.offset_bytes,
                    size_bytes=d.size_bytes,
                )
                for d in sorted(by_slot[key], key=lambda d: d.offset_bytes)
            ],
        )
        frames.append(frame)
    return frames
