"""Command-line interface: regenerate the paper's tables and figures.

Examples
--------
Scaled-down laptop runs (defaults)::

    ftds table1a --seeds 3
    ftds figure10 --seeds 2
    ftds cc
    ftds validate --processes 20 --nodes 2 --k 3

Paper-scale runs (hours)::

    ftds table1a --seeds 15 --time-scale 20

Distributed runs over a shared broker file (see EXPERIMENTS.md)::

    ftds table1a --seeds 15 --time-scale 20 --broker /shared/q.db --jobs 4
    ftds worker --broker /shared/q.db          # attach from other machines
    ftds table1a --seeds 15 --time-scale 20 --broker /shared/q.db --resume
"""

from __future__ import annotations

import argparse
import sys

from repro import obs
from repro.errors import ConfigurationError, TraceError
from repro.experiments.cruise import run_cruise_experiment
from repro.experiments.figure10 import figure10
from repro.experiments.reporting import (
    format_cruise,
    format_figure10,
    format_table1,
)
from repro.experiments.runner import budget_for, run_variants
from repro.experiments.table1 import table1a, table1b, table1c
from repro.gen.suite import generate_case


def _progress(line: str) -> None:
    print(f"  .. {line}", file=sys.stderr)


def _positive_int(value: str) -> int:
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {number}")
    return number


def _positive_float(value: str) -> float:
    number = float(value)
    if number <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {number}")
    return number


def _non_negative_int(value: str) -> int:
    number = int(value)
    if number < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {number}")
    return number


def _jobs_arg(value: str) -> int:
    """Parse ``--jobs``: a worker count >= 1, or -1 for all CPUs.

    Validation lives in :func:`repro.experiments.parallel.resolve_jobs`;
    its :class:`ConfigurationError` backs the argparse usage error, so the
    CLI and programmatic callers reject the same inputs with the same
    message.
    """
    from repro.experiments.parallel import resolve_jobs

    try:
        number = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {value!r}") from None
    try:
        return resolve_jobs(number)
    except ConfigurationError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def _add_trace(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help=(
            "write a structured JSONL run trace to FILE (spans, events, "
            "metrics snapshots); locally spawned workers write sibling "
            "shard files FILE.<worker>, stitched back together by "
            "'ftds trace summarize FILE'"
        ),
    )


def _add_common(parser: argparse.ArgumentParser) -> None:
    _add_trace(parser)
    parser.add_argument("--seeds", type=int, default=3, help="random apps per row")
    parser.add_argument(
        "--time-scale",
        type=float,
        default=1.0,
        help="multiply per-size search budgets (>=10 approaches paper scale)",
    )
    parser.add_argument(
        "--jobs",
        type=_jobs_arg,
        default=1,
        help=(
            "worker processes for the experiment sweep (1 = serial, -1 = "
            "all CPUs; results are aggregated in deterministic job order "
            "either way)"
        ),
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-case progress lines"
    )
    parser.add_argument(
        "--broker",
        default=None,
        metavar="PATH",
        help=(
            "drive the sweep through a durable SQLite work queue at PATH "
            "instead of a process pool; --jobs N local workers are "
            "attached, and more can join from other machines via "
            "'ftds worker --broker PATH' on a shared filesystem"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "with --broker: continue a partial sweep, decoding results of "
            "already-completed jobs from the broker instead of re-running "
            "them"
        ),
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ftds",
        description=(
            "Fault-tolerant distributed embedded system design optimization "
            "(reproduction of Izosimov et al., DATE 2005)"
        ),
        epilog=(
            "The table1a/b/c and figure10 sweeps accept --jobs N to fan the "
            "independent (case, variant, seed) optimizations out over N "
            "worker processes; --jobs 1 (the default) runs serially.  Both "
            "paths aggregate results in the same deterministic job order, "
            "so the printed tables are identical (time-limited searches are "
            "identical as long as the wall-clock budget is not the binding "
            "constraint; see EXPERIMENTS.md)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    for name, help_text in (
        ("table1a", "overhead vs application size (Table 1a)"),
        ("table1b", "overhead vs number of faults (Table 1b)"),
        ("table1c", "overhead vs fault duration (Table 1c)"),
        ("figure10", "MX/MR/SFX deviation from MXR (Figure 10)"),
    ):
        sub = subparsers.add_parser(name, help=help_text)
        _add_common(sub)

    cc = subparsers.add_parser(
        "cc", help="cruise controller experiment (paper §6)"
    )
    _add_trace(cc)

    worker = subparsers.add_parser(
        "worker",
        help="run a work-queue consumer daemon against a broker file",
    )
    worker.add_argument(
        "--broker", required=True, metavar="PATH", help="SQLite broker file"
    )
    _add_trace(worker)
    worker.add_argument(
        "--trace-run",
        default=None,
        metavar="RUN_ID",
        help=(
            "with --trace: join an existing trace run id (printed by the "
            "driver) so this worker's shard stitches into the driver's "
            "trace; defaults to the FTDS_TRACE_RUN environment variable "
            "or a fresh id"
        ),
    )
    worker.add_argument(
        "--lease",
        type=_positive_float,
        default=None,
        help="lease seconds per job (default: queue default)",
    )
    worker.add_argument(
        "--max-jobs",
        type=_positive_int,
        default=None,
        help="exit after acking this many jobs",
    )
    worker.add_argument(
        "--drain",
        action="store_true",
        help="exit when the queue is fully processed instead of polling",
    )
    worker.add_argument(
        "--validate-samples",
        type=_non_negative_int,
        default=None,
        help=(
            "fault-injection samples per schedule before acking "
            "(0 disables validation; default: queue default)"
        ),
    )
    worker.add_argument(
        "--quiet", action="store_true", help="suppress per-job ack lines"
    )

    inject = subparsers.add_parser(
        "inject",
        help=(
            "sharded fault-injection sweep over the <=k scenario space of "
            "one optimized schedule (exhaustive / stratified / importance "
            "tiers, streaming coverage bounds)"
        ),
    )
    inject.add_argument("--processes", type=int, default=12)
    inject.add_argument("--nodes", type=int, default=2)
    inject.add_argument("--k", type=int, default=2)
    inject.add_argument("--mu", type=float, default=5.0)
    inject.add_argument("--seed", type=int, default=0)
    inject.add_argument(
        "--initial",
        action="store_true",
        help=(
            "inject the initial MPA schedule instead of optimizing first "
            "(fast; used by CI smoke and benchmarks)"
        ),
    )
    inject.add_argument(
        "--budget",
        type=_positive_int,
        default=100_000,
        help="total scenario budget across all tiers (default 100000)",
    )
    inject.add_argument(
        "--shard-size",
        type=_positive_int,
        default=2000,
        help="scenarios per shard (default 2000)",
    )
    inject.add_argument(
        "--tier",
        choices=("auto", "exhaustive", "stratified", "importance"),
        default="auto",
        help=(
            "coverage tier: auto enumerates when the space fits the budget "
            "and falls back to stratified sampling otherwise"
        ),
    )
    inject.add_argument(
        "--batch-size",
        type=_non_negative_int,
        default=None,
        help=(
            "scenarios replayed per columnar batch in the inline sweep "
            "(0 forces the scalar reference path; default 1024)"
        ),
    )
    inject.add_argument(
        "--sweep-seed",
        type=_non_negative_int,
        default=0,
        help="master seed of the stratified draws (default 0)",
    )
    inject.add_argument(
        "--alpha",
        type=_positive_float,
        default=0.05,
        help="Clopper-Pearson significance (bound confidence = 1 - alpha)",
    )
    inject.add_argument(
        "--jobs",
        type=_jobs_arg,
        default=1,
        help="local worker processes when driving through --broker",
    )
    inject.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the aggregate summary as JSON to PATH",
    )
    inject.add_argument(
        "--broker",
        default=None,
        metavar="PATH",
        help=(
            "drive shards through a durable SQLite work queue at PATH; "
            "'ftds worker --broker PATH' daemons on other machines lease "
            "and execute them next to optimizer jobs"
        ),
    )
    inject.add_argument(
        "--resume",
        action="store_true",
        help=(
            "with --broker: continue a partial sweep, folding results of "
            "already-completed shards from the broker instead of "
            "re-simulating them"
        ),
    )
    inject.add_argument(
        "--quiet", action="store_true", help="suppress per-shard progress lines"
    )
    _add_trace(inject)

    trace = subparsers.add_parser(
        "trace",
        help=(
            "analyze JSONL run traces written with --trace: stitch "
            "multi-worker shards by run id and profile the span tree"
        ),
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    for name, help_text in (
        ("summarize", "span tree, self-time profile, queue overhead, "
                      "cache/tier effectiveness"),
        ("top", "top span names by self time"),
        ("export", "merged metrics as Prometheus text or the full summary "
                   "as JSON"),
    ):
        sub = trace_sub.add_parser(name, help=help_text)
        sub.add_argument(
            "files",
            nargs="+",
            metavar="FILE",
            help=(
                "trace file(s); worker shard files FILE.<worker> next to "
                "a listed file are discovered automatically"
            ),
        )
        sub.add_argument(
            "--run",
            default=None,
            metavar="RUN_ID",
            help="select one run when the files contain several",
        )
    trace_sub.choices["summarize"].add_argument(
        "--depth",
        type=_positive_int,
        default=4,
        help="span tree depth to print (default 4)",
    )
    trace_sub.choices["summarize"].add_argument(
        "--json",
        action="store_true",
        help="emit the summary as JSON instead of text",
    )
    trace_sub.choices["top"].add_argument(
        "--limit",
        type=_positive_int,
        default=10,
        help="span names to list (default 10)",
    )
    trace_sub.choices["export"].add_argument(
        "--format",
        choices=("prometheus", "json"),
        default="prometheus",
        help="export format (default prometheus)",
    )

    validate = subparsers.add_parser(
        "validate", help="optimize one random case and fault-inject the schedule"
    )
    validate.add_argument("--processes", type=int, default=20)
    validate.add_argument("--nodes", type=int, default=2)
    validate.add_argument("--k", type=int, default=3)
    validate.add_argument("--mu", type=float, default=5.0)
    validate.add_argument("--seed", type=int, default=0)
    validate.add_argument("--samples", type=int, default=200)
    _add_trace(validate)

    gantt = subparsers.add_parser(
        "gantt", help="optimize one random case and render the schedule"
    )
    gantt.add_argument("--processes", type=int, default=12)
    gantt.add_argument("--nodes", type=int, default=2)
    gantt.add_argument("--k", type=int, default=2)
    gantt.add_argument("--mu", type=float, default=5.0)
    gantt.add_argument("--seed", type=int, default=0)
    gantt.add_argument("--width", type=int, default=80)
    _add_trace(gantt)

    export = subparsers.add_parser(
        "export", help="optimize one random case and write problem+solution JSON"
    )
    export.add_argument("output", help="path of the JSON file to write")
    export.add_argument("--processes", type=int, default=12)
    export.add_argument("--nodes", type=int, default=2)
    export.add_argument("--k", type=int, default=2)
    export.add_argument("--mu", type=float, default=5.0)
    export.add_argument("--seed", type=int, default=0)
    _add_trace(export)

    args = parser.parse_args(argv)
    progress = None if getattr(args, "quiet", True) else _progress

    if args.command == "trace":
        return _run_trace(args, parser)
    if args.command == "worker":
        return _run_worker(args)

    trace_path = getattr(args, "trace", None)
    if trace_path:
        tracer = obs.enable_tracing(
            trace_path, label=args.command, export_env=True
        )
        print(f"tracing to {trace_path} (run {tracer.run_id})",
              file=sys.stderr)
    try:
        with obs.span(f"cli.{args.command}"):
            return _dispatch(args, parser, progress)
    finally:
        if trace_path:
            obs.snapshot_metrics()
            obs.disable_tracing()


def _dispatch(args: argparse.Namespace, parser, progress) -> int:
    """Execute one non-trace subcommand (span-wrapped by :func:`main`)."""
    sweeps = {"table1a": table1a, "table1b": table1b, "table1c": table1c,
              "figure10": figure10}
    if args.command in sweeps:
        if args.resume and args.broker is None:
            parser.error("--resume requires --broker")
        broker = None
        if args.broker is not None:
            from repro.queue.sqlite import SqliteBroker

            broker = SqliteBroker(args.broker)
        seeds = tuple(range(args.seeds))
        try:
            rows = sweeps[args.command](
                seeds=seeds, time_scale=args.time_scale, progress=progress,
                jobs=args.jobs, broker=broker, resume=args.resume,
            )
        finally:
            if broker is not None:
                broker.close()
        if args.command == "figure10":
            print(format_figure10(rows))
        else:
            titles = {
                "table1a": "Table 1a: MXR overhead vs application size",
                "table1b": "Table 1b: MXR overhead vs number of faults",
                "table1c": "Table 1c: MXR overhead vs fault duration",
            }
            print(format_table1(rows, titles[args.command]))
    elif args.command == "cc":
        print(format_cruise(run_cruise_experiment()))
    elif args.command == "inject":
        return _run_inject(args, parser, progress)
    elif args.command == "validate":
        _run_validate(args)
    elif args.command == "gantt":
        _run_gantt(args)
    elif args.command == "export":
        _run_export(args)
    return 0


def _run_worker(args: argparse.Namespace) -> int:
    import os

    from repro.queue.sqlite import SqliteBroker
    from repro.queue.worker import (
        DEFAULT_LEASE_S,
        DEFAULT_VALIDATE_SAMPLES,
        Worker,
        default_worker_id,
    )

    validate_samples: int | None = DEFAULT_VALIDATE_SAMPLES
    if args.validate_samples is not None:
        validate_samples = args.validate_samples or None  # 0 disables
    worker_id = default_worker_id()
    tracer = None
    if args.trace:
        # A remote worker stitches into the driver's trace by sharing its
        # run id (--trace-run, printed by a tracing driver); the shard file
        # is local to this machine and is merged at analysis time.
        run_id = args.trace_run or os.environ.get(obs.TRACE_RUN_ENV) or None
        tracer = obs.enable_tracing(args.trace, run_id=run_id, worker=worker_id)
    else:
        tracer = obs.adopt_env_tracing(worker_id)
    broker = SqliteBroker(args.broker)
    try:
        worker = Worker(
            broker,
            worker_id=worker_id,
            lease_s=args.lease if args.lease is not None else DEFAULT_LEASE_S,
            validate_samples=validate_samples,
            progress=None if args.quiet else _progress,
        )
        acked = worker.run(drain=args.drain, max_jobs=args.max_jobs)
    finally:
        broker.close()
        if tracer is not None:
            tracer.snapshot_metrics()
            obs.disable_tracing()
    print(f"worker {worker.worker_id}: acked {acked} job(s), "
          f"{worker.failed} failure(s)")
    return 0


def _run_trace(args: argparse.Namespace, parser) -> int:
    import json as json_module

    from repro.obs.analyze import (
        format_summary,
        format_top,
        load_run,
        summarize,
    )

    try:
        run = load_run(args.files, run_id=args.run)
        if args.trace_command == "summarize":
            if args.json:
                print(json_module.dumps(
                    summarize(run), indent=2, sort_keys=True
                ))
            else:
                print(format_summary(run, depth=args.depth))
        elif args.trace_command == "top":
            print(format_top(run, limit=args.limit))
        else:  # export
            if args.format == "prometheus":
                print(obs.render_prometheus(run.metrics), end="")
            else:
                print(json_module.dumps(
                    summarize(run), indent=2, sort_keys=True
                ))
    except TraceError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream pager/head closed the pipe: normal CLI etiquette.
        sys.stderr.close()
        return 0
    return 0


def _run_inject(args: argparse.Namespace, parser, progress) -> int:
    import json as json_module

    from repro.experiments.reporting import format_inject
    from repro.inject.driver import run_inject_sweep
    from repro.inject.runner import DEFAULT_BATCH_SIZE
    from repro.inject.importance import importance_scenarios
    from repro.inject.plan import plan_sweep
    from repro.inject.space import ScenarioSpace
    from repro.inject.target import InjectTarget, target_from_optimization

    if args.resume and args.broker is None:
        parser.error("--resume requires --broker")

    with obs.span("target"):
        case = generate_case(
            args.processes, args.nodes, args.k, mu=args.mu, seed=args.seed
        )
        if args.initial:
            from repro.model.merge import merge_application
            from repro.opt.initial import initial_bus_access, initial_mpa
            from repro.schedule.list_scheduler import list_schedule

            merged = merge_application(case.application)
            bus = initial_bus_access(case.application, case.architecture)
            implementation = initial_mpa(
                merged, case.architecture, case.faults, bus
            )
            schedule = list_schedule(
                merged, case.faults, implementation.policies,
                implementation.mapping, bus,
            )
            target = InjectTarget(
                application=case.application,
                faults=case.faults,
                implementation=implementation,
                record=schedule.record,
                label=f"initial-{args.processes}p{args.nodes}n-k{args.k}",
            )
        else:
            from repro.opt.strategy import optimize

            config = budget_for(args.processes)
            result = optimize(
                case.application, case.architecture, case.faults, "MXR",
                config,
            )
            target = target_from_optimization(result, case.application)

    with obs.span("plan") as sp:
        context = target.build_context()
        space = ScenarioSpace.of(context.ft, case.faults.k)
        ranked = importance_scenarios(target.record, context.ft, case.faults.k)
        plan = plan_sweep(
            space,
            len(ranked),
            budget=args.budget,
            shard_size=args.shard_size,
            seed=args.sweep_seed,
            tier=args.tier,
        )
        sp.set(shards=len(plan.shards))
    print(f"target {target.label}: {plan.describe()}")

    broker = None
    if args.broker is not None:
        from repro.queue.sqlite import SqliteBroker

        broker = SqliteBroker(args.broker)
    try:
        with obs.span("sweep", broker=args.broker or "inline"):
            aggregate, stats = run_inject_sweep(
                target,
                plan,
                broker=broker,
                resume=args.resume,
                local_workers=args.jobs if broker is not None else 0,
                alpha=args.alpha,
                progress=progress,
                batch_size=(
                    DEFAULT_BATCH_SIZE if args.batch_size is None
                    else args.batch_size
                ),
            )
    finally:
        if broker is not None:
            broker.close()

    with obs.span("report"):
        summary = aggregate.to_dict()
        if args.json is not None:
            registry = obs.get_registry()
            # Observability sidecar: registry-backed counts next to (never
            # inside) the canonical aggregate — the wire/parity surface of
            # InjectAggregate.to_dict() stays byte-identical.
            payload = dict(summary)
            payload["obs"] = {
                "shards_folded": registry.value("inject.shards_folded"),
                "queue_dead_letters": registry.value("queue.depth.dead"),
                "evaluator_cache_hits": registry.value(
                    "evaluator.cache_hits"
                ),
                "evaluator_evaluations": (
                    registry.value("evaluator.exact_evaluations")
                    + registry.value("evaluator.ranked_evaluations")
                ),
            }
            with open(args.json, "w") as handle:
                json_module.dump(payload, handle, indent=2, sort_keys=True)
            print(f"wrote {args.json}")
        print(stats.summary())
        print(format_inject(summary))
    return 0 if summary["ok"] else 1


def _optimize_random_case(args):
    from repro.opt.strategy import optimize

    case = generate_case(
        args.processes, args.nodes, args.k, mu=args.mu, seed=args.seed
    )
    config = budget_for(args.processes)
    result = optimize(
        case.application, case.architecture, case.faults, "MXR", config
    )
    return case, result


def _run_gantt(args) -> None:
    from repro.schedule.gantt import GanttOptions, render_gantt

    _, result = _optimize_random_case(args)
    print(render_gantt(result.schedule, GanttOptions(width=args.width)))


def _run_export(args) -> None:
    from repro.io.json_codec import save_case

    case, result = _optimize_random_case(args)
    save_case(
        args.output,
        case.application,
        case.architecture,
        case.faults,
        result.implementation,
    )
    print(
        f"wrote {args.output}: {args.processes} processes on {args.nodes} "
        f"nodes, schedule length {result.makespan:.1f} ms"
    )


def _run_validate(args: argparse.Namespace) -> None:
    from repro.opt.strategy import optimize
    from repro.sim.validate import validate_schedule

    case = generate_case(
        args.processes, args.nodes, args.k, mu=args.mu, seed=args.seed
    )
    config = budget_for(args.processes)
    result = optimize(
        case.application, case.architecture, case.faults, "MXR", config
    )
    print(
        f"optimized {args.processes}p/{args.nodes}n k={args.k}: "
        f"schedule length {result.makespan:.1f} ms"
    )
    report = validate_schedule(result.schedule, samples=args.samples)
    print(f"fault injection: {report.summary()}")
    for violation in report.violations[:10]:
        print(f"  !! {violation}")


if __name__ == "__main__":
    sys.exit(main())
