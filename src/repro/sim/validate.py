"""Validation of synthesized schedules by fault injection.

For every injected scenario with at most *k* faults the validator checks:

1. **liveness** — every process produces output from at least one replica
   and no instance starves for input;
2. **analysis soundness** — every surviving instance finishes no later than
   its analytical worst-case finish, and every process no later than its
   guaranteed completion;
3. **deadlines** — processes with (absolute) deadlines meet them.

This closes the loop on the conservative approximations documented in
``DESIGN.md``: the analytical bound is checked *from below* by execution.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.errors import FaultToleranceViolation
from repro.model.application import ProcessGraph
from repro.model.fault import FaultModel
from repro.model.ftgraph import FTGraph
from repro.schedule.record import ScheduleRecord
from repro.schedule.table import SystemSchedule
from repro.sim.engine import SystemSimulator
from repro.ttp.bus import BusConfig
from repro.sim.faults import (
    FaultScenario,
    adversarial_scenarios,
    enumerate_scenarios,
    sample_scenarios,
)

_EPS = 1e-6

#: Below this instance count, all <=k scenarios are enumerated exhaustively.
_EXHAUSTIVE_LIMIT = 400


@dataclass(frozen=True)
class Violation:
    """One structured check failure of one scenario.

    ``kind`` is a stable machine-readable class (``starved``,
    ``dead_process``, ``wcf_exceeded``, ``completion_exceeded``,
    ``deadline_missed``) consumed by the fault-injection aggregator;
    ``subject`` names the failing instance or process; ``detail`` is the
    human-readable message (without the scenario tag prefix).
    """

    kind: str
    subject: str
    detail: str


@dataclass
class ValidationReport:
    """Aggregated outcome of a validation run."""

    scenarios_checked: int = 0
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, message: str) -> None:
        self.violations.append(message)

    def summary(self) -> str:
        status = "PASS" if self.ok else f"FAIL ({len(self.violations)} violations)"
        return f"{status} over {self.scenarios_checked} fault scenarios"


def default_scenarios(
    schedule: SystemSchedule,
    samples: int = 200,
    rng: random.Random | None = None,
) -> list[FaultScenario]:
    """Exhaustive for small systems, adversarial + random sampling otherwise."""
    ft = schedule.ft
    k = schedule.faults.k
    approx = (len(ft) + 1) ** min(k, 4)
    if approx <= _EXHAUSTIVE_LIMIT:
        return list(enumerate_scenarios(ft, k))
    rng = rng or random.Random(0xFA17)
    scenarios = adversarial_scenarios(ft, k)
    scenarios += sample_scenarios(ft, k, rng, count=samples)
    scenarios += sample_scenarios(
        ft, k, rng, count=max(10, samples // 10), always_max_faults=True
    )
    return scenarios


def validate_schedule(
    schedule: SystemSchedule,
    scenarios: Iterable[FaultScenario] | None = None,
    samples: int = 200,
    rng: random.Random | None = None,
) -> ValidationReport:
    """Simulate ``schedule`` under fault scenarios and collect violations."""
    simulator = SystemSimulator(schedule)
    report = ValidationReport()
    if scenarios is None:
        scenarios = default_scenarios(schedule, samples=samples, rng=rng)
    for scenario in scenarios:
        report.scenarios_checked += 1
        _check_one(simulator, scenario, report)
    return report


def validate_record(
    record: ScheduleRecord,
    graph: ProcessGraph,
    ft: FTGraph,
    faults: FaultModel,
    bus: BusConfig,
    scenarios: Iterable[FaultScenario] | None = None,
    samples: int = 200,
    rng: random.Random | None = None,
) -> ValidationReport:
    """Fault-inject a bare schedule IR rebound to its model context.

    This is the replay path for records that crossed a process boundary
    (experiment workers return :class:`ScheduleRecord` values, not view
    objects): the record is wrapped in a lazy view against a locally
    expanded FT graph and validated exactly like a freshly synthesized
    schedule.
    """
    schedule = SystemSchedule.from_record(record, graph, ft, faults, bus)
    return validate_schedule(schedule, scenarios=scenarios, samples=samples, rng=rng)


def check_scenario(
    simulator: SystemSimulator,
    scenario: FaultScenario,
) -> list[Violation]:
    """Simulate one scenario and classify every check failure.

    This is the single classification point shared by
    :func:`validate_schedule` and the fault-injection runner
    (:mod:`repro.inject.runner`): both see identical violation kinds and
    messages for the same scenario.
    """
    schedule = simulator.schedule
    k = schedule.faults.k
    if scenario.total_faults > k:
        raise FaultToleranceViolation(
            f"scenario {scenario.describe()} exceeds the fault model (k={k})"
        )
    result = simulator.run(scenario)
    violations: list[Violation] = []

    for iid in result.starved:
        violations.append(
            Violation("starved", iid, f"instance {iid} starved for input")
        )
    for process in result.dead_processes:
        violations.append(
            Violation(
                "dead_process", process,
                f"process {process} produced no output",
            )
        )

    for iid, record in result.executions.items():
        if not record.produced:
            continue
        bound = schedule.placements[iid].wcf
        if record.finish > bound + _EPS:
            violations.append(
                Violation(
                    "wcf_exceeded", iid,
                    f"instance {iid} finished at {record.finish:.3f} "
                    f"after its analytical WCF {bound:.3f}",
                )
            )

    for process, completion in result.completions.items():
        guaranteed = schedule.completions[process]
        if completion > guaranteed + _EPS:
            violations.append(
                Violation(
                    "completion_exceeded", process,
                    f"process {process} completed at {completion:.3f} "
                    f"after its guaranteed completion {guaranteed:.3f}",
                )
            )
        deadline = schedule.graph.process(process).deadline
        if deadline is not None and completion > deadline + _EPS:
            violations.append(
                Violation(
                    "deadline_missed", process,
                    f"process {process} missed its deadline "
                    f"{deadline:.3f} (finished {completion:.3f})",
                )
            )
    return violations


@dataclass
class BatchReport:
    """Per-kind ``(B,)`` violation masks of one batched replay.

    ``masks[kind][j]`` is True iff scalar :func:`check_scenario` on
    column ``j``'s scenario would report at least one violation of
    ``kind`` — the contract that lets the injection runner classify
    whole blocks with array comparisons and re-materialize *only* the
    violating columns as :class:`FaultScenario` objects for exemplar
    detail.
    """

    masks: dict[str, np.ndarray]
    violating: np.ndarray  # OR over the kinds

    @property
    def columns(self) -> int:
        return int(self.violating.shape[0])

    def violating_columns(self) -> np.ndarray:
        """Indices of columns with at least one violation, ascending."""
        return np.flatnonzero(self.violating)


class BatchChecker:
    """Compiled array form of :func:`check_scenario`'s bound checks.

    The analytical thresholds (per-instance WCF, per-process guaranteed
    completion and deadline) are precomputed *with the epsilon already
    added* — one float addition per bound, the same single operation the
    scalar comparison performs — so the array comparisons agree with the
    scalar path bit for bit.
    """

    def __init__(self, schedule: SystemSchedule, batch) -> None:
        self.schedule = schedule
        self.k = schedule.faults.k
        placements = schedule.placements
        self._wcf_thr = np.asarray(
            [placements[iid].wcf + _EPS for iid in batch.instance_ids],
            dtype=np.float64,
        )[:, None]
        completions = schedule.completions
        graph = schedule.graph
        guaranteed = []
        deadlines = []
        for process in batch.processes:
            guaranteed.append(completions[process] + _EPS)
            deadline = graph.process(process).deadline
            deadlines.append(np.inf if deadline is None else deadline + _EPS)
        self._guaranteed_thr = np.asarray(guaranteed, dtype=np.float64)[:, None]
        self._deadline_thr = np.asarray(deadlines, dtype=np.float64)[:, None]

    def check(self, result) -> BatchReport:
        """Classify every column of a :class:`~repro.sim.batch.BatchResult`.

        Raises :class:`FaultToleranceViolation` — with the scalar
        message, naming the first offending column's scenario — when any
        column spends more than ``k`` faults, mirroring the guard at the
        top of :func:`check_scenario`.
        """
        totals = result.failures.sum(axis=0)
        if totals.size and int(totals.max()) > self.k:
            column = int(np.argmax(totals > self.k))
            scenario = FaultScenario(failures={
                iid: int(count)
                for iid, count in zip(
                    result.sim.instance_ids, result.failures[:, column]
                )
                if count
            })
            raise FaultToleranceViolation(
                f"scenario {scenario.describe()} exceeds the fault model "
                f"(k={self.k})"
            )
        alive = result.process_alive
        masks = {
            "starved": result.starved.any(axis=0),
            "dead_process": (~alive).any(axis=0),
            "wcf_exceeded": (
                result.produced & (result.finish > self._wcf_thr)
            ).any(axis=0),
            "completion_exceeded": (
                alive & (result.completions > self._guaranteed_thr)
            ).any(axis=0),
            "deadline_missed": (
                alive & (result.completions > self._deadline_thr)
            ).any(axis=0),
        }
        violating = np.zeros(result.columns, dtype=bool)
        for mask in masks.values():
            violating |= mask
        return BatchReport(masks=masks, violating=violating)


def check_batch(schedule: SystemSchedule, result,
                checker: BatchChecker | None = None) -> BatchReport:
    """One-shot batched classification (compiles a throwaway checker)."""
    if checker is None:
        checker = BatchChecker(schedule, result.sim)
    return checker.check(result)


def _check_one(
    simulator: SystemSimulator,
    scenario: FaultScenario,
    report: ValidationReport,
) -> None:
    tag = scenario.describe()
    for violation in check_scenario(simulator, scenario):
        report.add(f"{tag}: {violation.detail}")


def assert_fault_tolerant(
    schedule: SystemSchedule,
    scenarios: Sequence[FaultScenario] | None = None,
    samples: int = 200,
) -> ValidationReport:
    """Raise :class:`FaultToleranceViolation` unless validation passes."""
    report = validate_schedule(schedule, scenarios=scenarios, samples=samples)
    if not report.ok:
        preview = "; ".join(report.violations[:5])
        raise FaultToleranceViolation(
            f"schedule failed fault injection ({len(report.violations)} "
            f"violations): {preview}"
        )
    return report
