"""Real-time kernel model of one node (paper §2.2).

The kernel activates processes in static schedule-table order.  A process
never starts before its table (root) start time; faults delay the local
chain — this is the contingency-schedule behaviour: later processes on the
node slide into the recovery slack, while other nodes notice nothing
because frames keep their MEDL times.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.fault import FaultModel
from repro.model.ftgraph import Instance


@dataclass(frozen=True)
class ExecutionRecord:
    """What one instance actually did in one simulated cycle."""

    instance_id: str
    start: float
    finish: float  # completion of the successful attempt, or busy-end if dead
    attempts: int
    produced: bool  # False iff the replica failed terminally

    @property
    def output_ready(self) -> float | None:
        return self.finish if self.produced else None


class NodeKernel:
    """Executes one node's schedule chain under a concrete fault scenario."""

    def __init__(self, node: str, faults: FaultModel) -> None:
        self.node = node
        self._faults = faults
        self._time = 0.0
        self.records: list[ExecutionRecord] = []

    @property
    def local_time(self) -> float:
        """Busy-until time of the CPU."""
        return self._time

    def execute(
        self,
        instance: Instance,
        table_start: float,
        inputs_ready: float,
        failed_attempts: int,
    ) -> ExecutionRecord:
        """Run ``instance`` with ``failed_attempts`` injected faults.

        The start time honours the static table (no early starts), the local
        chain (contingency delays) and the actual input arrival.  Each failed
        attempt costs ``C + µ`` (detection + recovery); the replica dies when
        the failures exceed its re-execution budget.
        """
        wcet = instance.wcet
        recovery = instance.recovery_unit  # segment only, if checkpointed
        mu = self._faults.mu
        start = max(table_start, inputs_ready, self._time, instance.release)
        survives = failed_attempts <= instance.reexecutions
        if survives:
            attempts = failed_attempts + 1
            finish = start + wcet + failed_attempts * (recovery + mu)
        else:
            attempts = instance.reexecutions + 1
            finish = (
                start + (wcet + mu) + instance.reexecutions * (recovery + mu)
            )
        record = ExecutionRecord(
            instance_id=instance.id,
            start=start,
            finish=finish,
            attempts=attempts,
            produced=survives,
        )
        self._time = finish
        self.records.append(record)
        return record
