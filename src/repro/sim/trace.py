"""Event traces of simulated cycles (observability for the simulator).

Converts a :class:`repro.sim.engine.SimulationResult` into a flat,
time-ordered list of events — execution attempts, recoveries, frame
transmissions — suitable for logging, diffing two scenarios, or export to
CSV/JSON for external timeline viewers.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import asdict, dataclass

from repro.schedule.table import SystemSchedule
from repro.sim.engine import SimulationResult


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped event of a simulated cycle."""

    time: float
    kind: str  # "start" | "fault" | "recovery" | "finish" | "dead" | "frame"
    node: str
    subject: str  # instance id or bus message id
    detail: str = ""


def build_trace(
    schedule: SystemSchedule,
    result: SimulationResult,
) -> list[TraceEvent]:
    """Reconstruct the event timeline of one simulated cycle."""
    events: list[TraceEvent] = []
    ft = schedule.ft
    mu = schedule.faults.mu

    for iid, record in result.executions.items():
        instance = ft.instance(iid)
        events.append(
            TraceEvent(record.start, "start", instance.node, iid)
        )
        # Reconstruct per-attempt fault/recovery timestamps.
        failed = record.attempts - (1 if record.produced else 0)
        clock = record.start + instance.wcet  # first attempt would end here
        for attempt in range(failed):
            events.append(
                TraceEvent(
                    clock,
                    "fault",
                    instance.node,
                    iid,
                    detail=f"attempt {attempt + 1} failed",
                )
            )
            events.append(
                TraceEvent(
                    clock + mu,
                    "recovery",
                    instance.node,
                    iid,
                    detail=f"re-execution {attempt + 1} starts",
                )
            )
            clock += mu + instance.recovery_unit
        if record.produced:
            events.append(
                TraceEvent(record.finish, "finish", instance.node, iid)
            )
        else:
            events.append(
                TraceEvent(
                    record.finish,
                    "dead",
                    instance.node,
                    iid,
                    detail="re-execution budget exhausted",
                )
            )

    for bus_message in ft.bus_messages.values():
        record = result.executions.get(bus_message.sender)
        if record is None:
            continue
        descriptor = schedule.medl[bus_message.id]
        sender_node = ft.instance(bus_message.sender).node
        valid = (
            record.produced and record.finish <= descriptor.slot_start + 1e-9
        )
        events.append(
            TraceEvent(
                descriptor.slot_start,
                "frame",
                sender_node,
                bus_message.id,
                detail="valid" if valid else "empty (payload missed slot)",
            )
        )

    events.sort(key=lambda e: (e.time, e.kind, e.subject))
    return events


def trace_to_json(events: list[TraceEvent]) -> str:
    """Serialize a trace as a JSON array."""
    return json.dumps([asdict(event) for event in events], indent=2)


def trace_to_csv(events: list[TraceEvent]) -> str:
    """Serialize a trace as CSV (header + one row per event)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["time", "kind", "node", "subject", "detail"])
    for event in events:
        writer.writerow(
            [f"{event.time:.3f}", event.kind, event.node, event.subject, event.detail]
        )
    return buffer.getvalue()


def format_trace(events: list[TraceEvent]) -> str:
    """Human-readable rendering, one line per event."""
    lines = []
    for event in events:
        detail = f"  ({event.detail})" if event.detail else ""
        lines.append(
            f"{event.time:9.2f} ms  {event.kind:<9} {event.node:<6} "
            f"{event.subject}{detail}"
        )
    return "\n".join(lines)
