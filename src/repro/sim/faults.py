"""Transient fault scenarios (paper §2.1).

A scenario assigns to some instances the number of *failed execution
attempts* they suffer during one operation cycle.  An instance with ``e``
re-executions can absorb up to ``e`` failures and still produce output; the
``e + 1``-th failure is terminal (the replica is dead for this cycle).
Faults beyond ``e + 1`` cannot hit the same instance — there is nothing left
to hit — so scenario generators cap per-instance failures accordingly.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.errors import SimulationError
from repro.model.ftgraph import FTGraph


@dataclass(frozen=True)
class FaultScenario:
    """A concrete assignment of failed attempts to instances."""

    failures: Mapping[str, int]

    def __post_init__(self) -> None:
        frozen = {iid: count for iid, count in self.failures.items() if count > 0}
        if any(count < 0 for count in self.failures.values()):
            raise SimulationError("failure counts must be >= 0")
        object.__setattr__(self, "failures", frozen)

    @property
    def total_faults(self) -> int:
        return sum(self.failures.values())

    def failures_of(self, iid: str) -> int:
        return self.failures.get(iid, 0)

    def describe(self) -> str:
        if not self.failures:
            return "fault-free"
        inner = ", ".join(f"{iid}x{n}" for iid, n in sorted(self.failures.items()))
        return f"faults({inner})"


FAULT_FREE = FaultScenario(failures={})


def _capacities(ft: FTGraph) -> list[tuple[str, int]]:
    """Per instance, the maximum number of faults that can hit it."""
    return [
        (iid, ft.instance(iid).reexecutions + 1) for iid in sorted(ft.instances)
    ]


def enumerate_scenarios(ft: FTGraph, k: int) -> Iterator[FaultScenario]:
    """Every scenario with at most ``k`` faults (small systems only).

    The count grows roughly as ``(instances + 1) ** k``; use
    :func:`sample_scenarios` beyond toy sizes.
    """
    caps = _capacities(ft)
    yield FAULT_FREE
    for total in range(1, k + 1):
        yield from _distributions(caps, total, {})


def _distributions(
    caps: list[tuple[str, int]],
    remaining: int,
    chosen: dict[str, int],
) -> Iterator[FaultScenario]:
    if remaining == 0:
        yield FaultScenario(failures=dict(chosen))
        return
    if not caps:
        return
    (iid, cap), rest = caps[0], caps[1:]
    for count in range(min(cap, remaining) + 1):
        if count:
            chosen[iid] = count
        yield from _distributions(rest, remaining - count, chosen)
        chosen.pop(iid, None)


def sample_scenarios(
    ft: FTGraph,
    k: int,
    rng: random.Random,
    count: int = 100,
    always_max_faults: bool = False,
) -> list[FaultScenario]:
    """Up to ``count`` *distinct* random scenarios with at most ``k`` faults.

    Draws are deduplicated by failure-map fingerprint, so a validation
    sweep never burns simulation time replaying an identical scenario.
    Fewer than ``count`` scenarios come back when the rejection budget
    (``4 * count`` draws) runs out — for tiny spaces that simply means
    every reachable scenario was drawn.

    With ``always_max_faults`` every draw spends the full budget ``k``
    where capacity allows: each fault lands on a uniformly chosen
    still-open instance, so scenarios carry exactly ``k`` faults unless
    the whole system's capacity ``sum(reexecutions + 1)`` is below ``k``
    (then the draw saturates at that capacity).  Without it the total is
    uniform over ``0..k`` first, then distributed the same way.
    """
    caps = dict(_capacities(ft))
    instance_ids = sorted(caps)
    scenarios: list[FaultScenario] = []
    seen: set[tuple[tuple[str, int], ...]] = set()
    attempts = 0
    max_attempts = max(count * 4, 16)
    while len(scenarios) < count and attempts < max_attempts:
        attempts += 1
        budget = k if always_max_faults else rng.randint(0, k)
        failures: dict[str, int] = {}
        for _ in range(budget):
            open_targets = [i for i in instance_ids if failures.get(i, 0) < caps[i]]
            if not open_targets:
                break
            target = rng.choice(open_targets)
            failures[target] = failures.get(target, 0) + 1
        key = tuple(sorted(failures.items()))
        if key in seen:
            continue
        seen.add(key)
        scenarios.append(FaultScenario(failures=failures))
    return scenarios


def adversarial_scenarios(ft: FTGraph, k: int) -> list[FaultScenario]:
    """Directed scenarios that stress the analytical worst cases.

    For every process: exhaust the re-executions of each replica in turn
    (time-redundancy worst case) and kill replicas in replica order until the
    budget runs out (space-redundancy worst case).
    """
    scenarios: list[FaultScenario] = [FAULT_FREE]
    for process, replicas in sorted(ft.group_of.items()):
        # Worst-case re-execution: all k faults on the busiest replica.
        for iid in replicas:
            cap = min(k, ft.instance(iid).reexecutions + 1)
            if cap > 0:
                scenarios.append(FaultScenario(failures={iid: cap}))
        # Worst-case replication: kill replicas earliest-first.
        failures: dict[str, int] = {}
        budget = k
        for iid in replicas:
            cost = ft.instance(iid).reexecutions + 1
            if budget < cost:
                if budget > 0:
                    failures[iid] = budget
                    budget = 0
                break
            failures[iid] = cost
            budget -= cost
        if failures:
            scenarios.append(FaultScenario(failures=failures))
    unique = {tuple(sorted(s.failures.items())): s for s in scenarios}
    return list(unique.values())
