"""Execution of a synthesized system schedule under injected faults.

The simulator replays one operation cycle: node kernels execute their static
schedule chains (sliding into recovery slack on faults), TTP controllers
broadcast frames at fixed MEDL times, and receivers start once the *first
valid* input from each replica group has arrived.

Because the system is time-triggered, the global order of events is the
placement order produced by the list scheduler; replaying instances in that
order is equivalent to an event-queue simulation (every instance's inputs
and local predecessors strictly precede it in the order).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.model.application import ProcessGraph
from repro.model.fault import FaultModel
from repro.model.ftgraph import FTGraph
from repro.schedule.record import ScheduleRecord
from repro.schedule.table import SystemSchedule
from repro.sim.controller import TTPBusModel
from repro.sim.faults import FaultScenario
from repro.sim.kernel import ExecutionRecord, NodeKernel
from repro.ttp.bus import BusConfig

_EPS = 1e-6


@dataclass
class SimulationResult:
    """Outcome of one simulated cycle under one fault scenario."""

    scenario: FaultScenario
    executions: dict[str, ExecutionRecord] = field(default_factory=dict)
    completions: dict[str, float] = field(default_factory=dict)  # per process
    starved: list[str] = field(default_factory=list)  # instances w/o valid input
    dead_processes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every process produced output from at least one replica."""
        return not self.starved and not self.dead_processes

    def completion(self, process: str) -> float:
        try:
            return self.completions[process]
        except KeyError:
            raise SimulationError(
                f"process {process!r} produced no output in {self.scenario.describe()}"
            ) from None


class SystemSimulator:
    """Reusable simulator bound to one synthesized schedule.

    The replay runs off the compact schedule IR: instance order and table
    start times are read from the record's flat arrays, so simulating never
    materializes the per-instance placement view.
    """

    def __init__(self, schedule: SystemSchedule) -> None:
        self.schedule = schedule
        self.ft: FTGraph = schedule.ft

    @classmethod
    def from_record(
        cls,
        record: ScheduleRecord,
        graph: ProcessGraph,
        ft: FTGraph,
        faults: FaultModel,
        bus: BusConfig,
    ) -> "SystemSimulator":
        """Replay a bare record (e.g. one shipped back from a worker)."""
        return cls(SystemSchedule.from_record(record, graph, ft, faults, bus))

    def run(self, scenario: FaultScenario) -> SimulationResult:
        """Simulate one cycle under ``scenario`` (faults may exceed k)."""
        schedule = self.schedule
        ft = self.ft
        table = schedule.record
        bus = TTPBusModel(schedule.medl)
        kernels = {
            node: NodeKernel(node, schedule.faults) for node in table.nodes
        }
        result = SimulationResult(scenario=scenario)

        for index, iid in enumerate(table.instance_ids):
            instance = ft.instance(iid)
            inputs_ready, starved = self._inputs_ready(iid, bus, result)
            if starved:
                result.starved.append(iid)
                # The instance cannot run without data; mark it dead so its
                # consumers starve too rather than reading garbage.
                continue
            record = kernels[instance.node].execute(
                instance=instance,
                table_start=table.root_start[index],
                inputs_ready=inputs_ready,
                failed_attempts=scenario.failures_of(iid),
            )
            result.executions[iid] = record
            for bus_message in ft.outgoing_bus_messages(iid):
                bus.transmit(bus_message.id, record.output_ready)

        self._derive_completions(result)
        return result

    def _inputs_ready(
        self,
        iid: str,
        bus: TTPBusModel,
        result: SimulationResult,
    ) -> tuple[float, bool]:
        """Earliest time all input groups have one valid arrival."""
        ft = self.ft
        instance = ft.instance(iid)
        ready = instance.release
        for group in ft.inputs_of(iid):
            arrivals: list[float] = []
            for src_iid in group.sources:
                record = result.executions.get(src_iid)
                if record is None or not record.produced:
                    continue
                src = ft.instance(src_iid)
                if src.node == instance.node:
                    arrivals.append(record.finish)
                    continue
                for bus_message in ft.outgoing_bus_messages(src_iid):
                    if bus_message.message.name != group.message.name:
                        continue
                    arrival = bus.valid_arrival(bus_message.id)
                    if arrival is not None:
                        arrivals.append(arrival)
            if not arrivals:
                return ready, True
            ready = max(ready, min(arrivals))
        return ready, False

    def _derive_completions(self, result: SimulationResult) -> None:
        """Process output time: first surviving replica's finish."""
        for process, replicas in self.ft.group_of.items():
            finishes = [
                result.executions[iid].finish
                for iid in replicas
                if iid in result.executions and result.executions[iid].produced
            ]
            if finishes:
                result.completions[process] = min(finishes)
            else:
                result.dead_processes.append(process)


def simulate(schedule: SystemSchedule, scenario: FaultScenario) -> SimulationResult:
    """One-shot convenience wrapper around :class:`SystemSimulator`."""
    return SystemSimulator(schedule).run(scenario)
