"""Execution of a synthesized system schedule under injected faults.

The simulator replays one operation cycle: node kernels execute their static
schedule chains (sliding into recovery slack on faults), TTP controllers
broadcast frames at fixed MEDL times, and receivers start once the *first
valid* input from each replica group has arrived.

Because the system is time-triggered, the global order of events is the
placement order produced by the list scheduler; replaying instances in that
order is equivalent to an event-queue simulation (every instance's inputs
and local predecessors strictly precede it in the order).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.errors import SimulationError
from repro.model.application import ProcessGraph
from repro.model.fault import FaultModel
from repro.model.ftgraph import FTGraph
from repro.schedule.record import ScheduleRecord
from repro.schedule.table import SystemSchedule
from repro.sim.controller import TTPBusModel
from repro.sim.faults import FaultScenario
from repro.sim.kernel import ExecutionRecord, NodeKernel
from repro.ttp.bus import BusConfig

_EPS = 1e-6


@dataclass(frozen=True)
class _SourcePlan:
    """One potential input arrival, resolved against the FT graph once."""

    iid: str
    local: bool  # same node: read the producer's finish directly
    message_ids: tuple[str, ...]  # else: bus messages carrying this group


@dataclass(frozen=True)
class _InstancePlan:
    """Everything :meth:`SystemSimulator.run` needs for one instance.

    Replaying a scenario is a pure function of (plans, failure counts):
    all FT-graph traversal — input groups, replica sources, outgoing bus
    messages, name matching — happens once at simulator construction, so
    million-scenario sweeps pay only the arithmetic per run.
    """

    iid: str
    instance: object
    node: str
    table_start: float
    release: float
    groups: tuple[tuple[_SourcePlan, ...], ...]
    out_message_ids: tuple[str, ...]


@dataclass
class SimulationResult:
    """Outcome of one simulated cycle under one fault scenario."""

    scenario: FaultScenario
    executions: dict[str, ExecutionRecord] = field(default_factory=dict)
    completions: dict[str, float] = field(default_factory=dict)  # per process
    starved: list[str] = field(default_factory=list)  # instances w/o valid input
    dead_processes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every process produced output from at least one replica."""
        return not self.starved and not self.dead_processes

    def completion(self, process: str) -> float:
        try:
            return self.completions[process]
        except KeyError:
            raise SimulationError(
                f"process {process!r} produced no output in {self.scenario.describe()}"
            ) from None


class SystemSimulator:
    """Reusable simulator bound to one synthesized schedule.

    The replay runs off the compact schedule IR: instance order and table
    start times are read from the record's flat arrays, so simulating never
    materializes the per-instance placement view.
    """

    def __init__(self, schedule: SystemSchedule) -> None:
        self.schedule = schedule
        self.ft: FTGraph = schedule.ft
        self._plans = self._build_plans()

    def _build_plans(self) -> tuple[_InstancePlan, ...]:
        """Resolve the FT graph into flat per-instance replay plans."""
        ft = self.ft
        table = self.schedule.record
        plans: list[_InstancePlan] = []
        for index, iid in enumerate(table.instance_ids):
            instance = ft.instance(iid)
            groups: list[tuple[_SourcePlan, ...]] = []
            for group in ft.inputs_of(iid):
                sources: list[_SourcePlan] = []
                for src_iid in group.sources:
                    src = ft.instance(src_iid)
                    if src.node == instance.node:
                        sources.append(
                            _SourcePlan(iid=src_iid, local=True,
                                        message_ids=())
                        )
                        continue
                    message_ids = tuple(
                        bus_message.id
                        for bus_message in ft.outgoing_bus_messages(src_iid)
                        if bus_message.message.name == group.message.name
                    )
                    sources.append(
                        _SourcePlan(iid=src_iid, local=False,
                                    message_ids=message_ids)
                    )
                groups.append(tuple(sources))
            plans.append(
                _InstancePlan(
                    iid=iid,
                    instance=instance,
                    node=instance.node,
                    table_start=table.root_start[index],
                    release=instance.release,
                    groups=tuple(groups),
                    out_message_ids=tuple(
                        bus_message.id
                        for bus_message in ft.outgoing_bus_messages(iid)
                    ),
                )
            )
        return tuple(plans)

    @classmethod
    def from_record(
        cls,
        record: ScheduleRecord,
        graph: ProcessGraph,
        ft: FTGraph,
        faults: FaultModel,
        bus: BusConfig,
    ) -> "SystemSimulator":
        """Replay a bare record (e.g. one shipped back from a worker)."""
        return cls(SystemSchedule.from_record(record, graph, ft, faults, bus))

    def run(self, scenario: FaultScenario) -> SimulationResult:
        """Simulate one cycle under ``scenario`` (faults may exceed k)."""
        schedule = self.schedule
        bus = TTPBusModel(schedule.medl)
        kernels = {
            node: NodeKernel(node, schedule.faults)
            for node in schedule.record.nodes
        }
        result = SimulationResult(scenario=scenario)
        executions = result.executions

        for plan in self._plans:
            ready = plan.release
            starved = False
            for group in plan.groups:
                arrivals: list[float] = []
                for source in group:
                    record = executions.get(source.iid)
                    if record is None or not record.produced:
                        continue
                    if source.local:
                        arrivals.append(record.finish)
                        continue
                    for message_id in source.message_ids:
                        arrival = bus.valid_arrival(message_id)
                        if arrival is not None:
                            arrivals.append(arrival)
                if not arrivals:
                    starved = True
                    break
                ready = max(ready, min(arrivals))
            if starved:
                result.starved.append(plan.iid)
                # The instance cannot run without data; mark it dead so its
                # consumers starve too rather than reading garbage.
                continue
            record = kernels[plan.node].execute(
                instance=plan.instance,
                table_start=plan.table_start,
                inputs_ready=ready,
                failed_attempts=scenario.failures_of(plan.iid),
            )
            executions[plan.iid] = record
            for message_id in plan.out_message_ids:
                bus.transmit(message_id, record.output_ready)

        self._derive_completions(result)
        return result

    def run_many(
        self, scenarios: Iterable[FaultScenario]
    ) -> Iterator[SimulationResult]:
        """Replay a stream of scenarios against the precomputed plans.

        Lazy on purpose: fault-injection shards feed millions of scenarios
        through here and fold each result immediately, never holding more
        than one :class:`SimulationResult` alive.
        """
        for scenario in scenarios:
            yield self.run(scenario)

    def _derive_completions(self, result: SimulationResult) -> None:
        """Process output time: first surviving replica's finish."""
        for process, replicas in self.ft.group_of.items():
            finishes = [
                result.executions[iid].finish
                for iid in replicas
                if iid in result.executions and result.executions[iid].produced
            ]
            if finishes:
                result.completions[process] = min(finishes)
            else:
                result.dead_processes.append(process)


def simulate(schedule: SystemSchedule, scenario: FaultScenario) -> SimulationResult:
    """One-shot convenience wrapper around :class:`SystemSimulator`."""
    return SystemSimulator(schedule).run(scenario)
