"""Fault-injection simulation of synthesized schedules.

This package is the runtime substrate of the reproduction: node kernels
execute the static schedule tables (switching to contingency behaviour on
faults), TTP controllers broadcast frames at their MEDL times, and the
validator checks that a synthesized schedule really tolerates every injected
scenario of at most *k* transient faults — i.e. that the analytical bounds
of :mod:`repro.schedule.analysis` are honoured from below.
"""

from repro.sim.batch import BatchResult, BatchSimulator
from repro.sim.engine import SimulationResult, SystemSimulator, simulate
from repro.sim.faults import (
    FaultScenario,
    adversarial_scenarios,
    enumerate_scenarios,
    sample_scenarios,
)
from repro.sim.trace import build_trace, format_trace, trace_to_csv, trace_to_json
from repro.sim.validate import (
    BatchChecker,
    BatchReport,
    ValidationReport,
    assert_fault_tolerant,
    check_batch,
    validate_schedule,
)

__all__ = [
    "BatchChecker",
    "BatchReport",
    "BatchResult",
    "BatchSimulator",
    "FaultScenario",
    "SimulationResult",
    "SystemSimulator",
    "ValidationReport",
    "adversarial_scenarios",
    "assert_fault_tolerant",
    "build_trace",
    "check_batch",
    "enumerate_scenarios",
    "format_trace",
    "sample_scenarios",
    "simulate",
    "trace_to_csv",
    "trace_to_json",
    "validate_schedule",
]
