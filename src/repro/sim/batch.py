"""Column-parallel batched replay of fault scenarios (numpy kernel).

The scalar :meth:`~repro.sim.engine.SystemSimulator.run` replays one
scenario per call; million-scenario injection sweeps pay its Python
per-instance bookkeeping once per scenario.  This module compiles the
simulator's resolved :class:`~repro.sim.engine._InstancePlan` tuples
*once* into integer-indexed columnar arrays and replays ``B`` scenarios
simultaneously — one matrix column per scenario — with the same
semantics, bit for bit:

* **interning** — instance ids, node names and process names become row
  indices; every per-instance parameter (``wcet``, ``recovery + µ``,
  release, table start, re-execution budget) is a flat vector;
* **arrival options** — each potential input arrival (a local
  predecessor's finish, or one bus frame of a remote sender) is one row
  of a CSR-style flattened option table: per instance a contiguous
  slice, per input group a start offset into that slice.  Arrivals are
  a gather of the source rows' finish columns masked by availability
  (``produced`` and, for frames, ``finish <= slot_start + ε`` — the
  controller's validity test), reduced group-wise with
  ``np.minimum.reduceat`` and across groups with ``max`` — float
  min/max is order-independent-exact, so the reductions match the
  scalar ``max(ready, min(arrivals))`` fold bit-for-bit;
* **kernel execution** — the closed-form contingency arithmetic of
  :class:`~repro.sim.kernel.NodeKernel` applied to whole rows:
  ``(start + wcet) + n·(recovery + µ)`` for survivors,
  ``(start + (wcet + µ)) + reexec·(recovery + µ)`` for dead replicas,
  with the per-instance scalar subexpressions precompiled so the IEEE
  operation order equals the scalar kernel's;
* **starvation/death** propagate as boolean masks (a starved instance
  never executes and never advances its node chain; a dead replica
  *does* occupy the CPU until its busy-end but produces nothing);
* **completions** — per process, a masked ``min`` over its replica
  rows, ``+inf`` marking a dead process.

Parity with the scalar engine is a contract, not an accident — the
hypothesis suite ``tests/sim/test_batch_parity.py`` asserts repr-byte
equality column by column, including faults-beyond-k and dead-replica
edges (the same discipline as ``repro/schedule/vector.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import SimulationError
from repro.sim.engine import SimulationResult, SystemSimulator
from repro.sim.faults import FaultScenario
from repro.sim.kernel import ExecutionRecord

#: Frame validity epsilon — must equal ``repro.sim.controller._EPS`` so the
#: precompiled thresholds (``slot_start + ε``) match the scalar comparison.
_BUS_EPS = 1e-9


@dataclass
class BatchResult:
    """Arrays of one :meth:`BatchSimulator.run_batch` call (column = scenario).

    Row order of the ``(instances, B)`` arrays is the simulator's
    placement order (:attr:`BatchSimulator.instance_ids`); the
    ``(processes, B)`` arrays follow :attr:`BatchSimulator.processes`.
    """

    sim: "BatchSimulator"
    failures: np.ndarray  # (N, B) int64 failed-attempt counts
    start: np.ndarray  # (N, B) float64; +inf where not executed
    finish: np.ndarray  # (N, B) float64; +inf where not executed
    executed: np.ndarray  # (N, B) bool — ran (possibly dying), not starved
    produced: np.ndarray  # (N, B) bool — executed and survived
    starved: np.ndarray  # (N, B) bool — no valid input arrived
    completions: np.ndarray  # (P, B) float64; +inf where the process died
    process_alive: np.ndarray  # (P, B) bool

    @property
    def columns(self) -> int:
        return self.failures.shape[1]

    def scalarize(self, column: int,
                  scenario: FaultScenario | None = None) -> SimulationResult:
        """Rebuild one column as a scalar :class:`SimulationResult`.

        Byte-equal to :meth:`SystemSimulator.run` on the same scenario
        (floats are converted back to Python floats, so ``repr`` output
        matches too) — the bridge the parity suite and exemplar tooling
        compare through.
        """
        sim = self.sim
        if scenario is None:
            scenario = FaultScenario(failures={
                iid: int(count)
                for iid, count in zip(sim.instance_ids, self.failures[:, column])
                if count
            })
        result = SimulationResult(scenario=scenario)
        for i, iid in enumerate(sim.instance_ids):
            if self.starved[i, column]:
                result.starved.append(iid)
                continue
            failed = int(self.failures[i, column])
            reexec = int(sim.reexecutions[i])
            survives = failed <= reexec
            result.executions[iid] = ExecutionRecord(
                instance_id=iid,
                start=float(self.start[i, column]),
                finish=float(self.finish[i, column]),
                attempts=failed + 1 if survives else reexec + 1,
                produced=bool(self.produced[i, column]),
            )
        for p, process in enumerate(sim.processes):
            if self.process_alive[p, column]:
                result.completions[process] = float(self.completions[p, column])
            else:
                result.dead_processes.append(process)
        return result


class BatchSimulator:
    """Columnar compilation of one :class:`SystemSimulator`'s replay plans.

    Compile once per target, then :meth:`run_batch` replays arbitrarily
    many ``(instances, B)`` failure matrices against the frozen arrays.
    """

    def __init__(self, simulator: SystemSimulator) -> None:
        schedule = simulator.schedule
        medl = schedule.medl
        mu = schedule.faults.mu
        plans = simulator._plans

        self.simulator = simulator
        self.instance_ids: tuple[str, ...] = tuple(p.iid for p in plans)
        index = {iid: i for i, iid in enumerate(self.instance_ids)}
        self.nodes: tuple[str, ...] = tuple(schedule.record.nodes)
        node_index = {node: i for i, node in enumerate(self.nodes)}

        n = len(plans)
        self._node = np.empty(n, dtype=np.intp)
        self._table = np.empty(n, dtype=np.float64)
        self._release = np.empty(n, dtype=np.float64)
        self._wcet = np.empty(n, dtype=np.float64)
        self._wcet_mu = np.empty(n, dtype=np.float64)  # wcet + µ (dead head)
        self._recmu = np.empty(n, dtype=np.float64)  # recovery + µ
        self._dead_tail = np.empty(n, dtype=np.float64)  # reexec·(recovery+µ)
        self.reexecutions = np.empty(n, dtype=np.int64)
        self._always_starved = np.zeros(n, dtype=bool)

        # CSR-style flattened arrival-option table: per instance the slice
        # [opt_lo[i], opt_hi[i]) of the flat arrays, per input group a
        # start offset (relative to the instance's slice) for reduceat.
        opt_src: list[int] = []
        opt_thr: list[float] = []  # validity threshold on the source finish
        opt_const: list[float] = []  # frame arrival constant (remote only)
        opt_local: list[bool] = []
        group_starts: list[int] = []
        self._opt_lo = np.empty(n, dtype=np.intp)
        self._opt_hi = np.empty(n, dtype=np.intp)
        self._grp_lo = np.empty(n, dtype=np.intp)
        self._grp_hi = np.empty(n, dtype=np.intp)

        for i, plan in enumerate(plans):
            instance = plan.instance
            recovery = instance.recovery_unit
            self._node[i] = node_index[plan.node]
            self._table[i] = plan.table_start
            self._release[i] = plan.release
            self._wcet[i] = instance.wcet
            self._wcet_mu[i] = instance.wcet + mu
            self._recmu[i] = recovery + mu
            self._dead_tail[i] = instance.reexecutions * (recovery + mu)
            self.reexecutions[i] = instance.reexecutions

            self._opt_lo[i] = len(opt_src)
            self._grp_lo[i] = len(group_starts)
            for group in plan.groups:
                group_starts.append(len(opt_src) - self._opt_lo[i])
                before = len(opt_src)
                for source in group:
                    if source.local:
                        opt_src.append(index[source.iid])
                        opt_thr.append(np.inf)
                        opt_const.append(0.0)
                        opt_local.append(True)
                        continue
                    for message_id in source.message_ids:
                        descriptor = medl[message_id]
                        opt_src.append(index[source.iid])
                        opt_thr.append(descriptor.slot_start + _BUS_EPS)
                        opt_const.append(descriptor.arrival)
                        opt_local.append(False)
                if len(opt_src) == before:
                    # A group with no possible arrival (remote sources
                    # without matching frames): the scalar loop starves
                    # this instance in every scenario.
                    self._always_starved[i] = True
            self._opt_hi[i] = len(opt_src)
            self._grp_hi[i] = len(group_starts)

        self._opt_src = np.asarray(opt_src, dtype=np.intp)
        self._opt_thr = np.asarray(opt_thr, dtype=np.float64)[:, None]
        self._opt_const = np.asarray(opt_const, dtype=np.float64)[:, None]
        self._opt_local = np.asarray(opt_local, dtype=bool)[:, None]
        self._group_starts = np.asarray(group_starts, dtype=np.intp)

        # Completion rows: processes in FT-graph group order, each with
        # the row indices of its replicas present in the schedule.
        ft = simulator.ft
        self.processes: tuple[str, ...] = tuple(ft.group_of)
        self._process_rows: list[np.ndarray] = [
            np.asarray(
                [index[iid] for iid in replicas if iid in index],
                dtype=np.intp,
            )
            for replicas in ft.group_of.values()
        ]
        self._align_cache: dict[tuple[str, ...], np.ndarray] = {}

    # -- alignment ---------------------------------------------------------

    def alignment(self, ids: Sequence[str]) -> np.ndarray:
        """Row gather mapping a matrix indexed by ``ids`` onto plan order.

        ``matrix[alignment(ids)]`` reorders a failure matrix whose rows
        follow ``ids`` (e.g. :attr:`ScenarioSpace.ids`, sorted) into this
        simulator's placement order.
        """
        key = tuple(ids)
        perm = self._align_cache.get(key)
        if perm is None:
            where = {iid: j for j, iid in enumerate(key)}
            try:
                perm = np.asarray(
                    [where[iid] for iid in self.instance_ids], dtype=np.intp
                )
            except KeyError as error:
                raise SimulationError(
                    f"failure matrix is missing instance {error.args[0]!r}"
                ) from None
            self._align_cache[key] = perm
        return perm

    # -- replay ------------------------------------------------------------

    def run_batch(self, failures, ids: Sequence[str] | None = None) -> BatchResult:
        """Replay every column of ``failures`` (one scenario per column).

        ``failures`` is an ``(instances, B)`` integer matrix of
        failed-attempt counts, rows in placement order — or in ``ids``
        order when ``ids`` is given (the matrix is gathered through
        :meth:`alignment` first).  Counts may exceed the fault model's
        ``k`` and a replica's capacity, exactly like the scalar ``run``.
        """
        failures = np.asarray(failures, dtype=np.int64)
        if failures.ndim != 2:
            raise SimulationError(
                f"failure matrix must be 2-D (instances, B), "
                f"got shape {failures.shape}"
            )
        if ids is not None:
            failures = failures[self.alignment(ids)]
        n, width = failures.shape
        if n != len(self.instance_ids):
            raise SimulationError(
                f"failure matrix has {n} rows, schedule has "
                f"{len(self.instance_ids)} instances"
            )
        if failures.size and int(failures.min()) < 0:
            raise SimulationError("failure counts must be >= 0")

        inf = np.inf
        start = np.full((n, width), inf)
        finish = np.full((n, width), inf)
        executed = np.zeros((n, width), dtype=bool)
        produced = np.zeros((n, width), dtype=bool)
        starved = np.zeros((n, width), dtype=bool)
        node_time = np.zeros((len(self.nodes), width))

        for i in range(n):
            if self._always_starved[i]:
                starved[i] = True
                continue
            lo, hi = self._opt_lo[i], self._opt_hi[i]
            if lo == hi:
                ready = self._release[i]
                strv = None
            else:
                sources = self._opt_src[lo:hi]
                fin = finish[sources]
                avail = produced[sources] & (fin <= self._opt_thr[lo:hi])
                values = np.where(
                    self._opt_local[lo:hi], fin, self._opt_const[lo:hi]
                )
                values = np.where(avail, values, inf)
                group_min = np.minimum.reduceat(
                    values,
                    self._group_starts[self._grp_lo[i]:self._grp_hi[i]],
                    axis=0,
                )
                strv = (group_min == inf).any(axis=0)
                ready = np.maximum(self._release[i], group_min.max(axis=0))
            chain = node_time[self._node[i]]
            row_start = np.maximum(np.maximum(self._table[i], ready), chain)
            counts = failures[i]
            survives = counts <= self.reexecutions[i]
            row_finish = np.where(
                survives,
                (row_start + self._wcet[i]) + counts * self._recmu[i],
                (row_start + self._wcet_mu[i]) + self._dead_tail[i],
            )
            if strv is not None and strv.any():
                ran = ~strv
                starved[i] = strv
                row_start = np.where(ran, row_start, inf)
                row_finish = np.where(ran, row_finish, inf)
            else:
                ran = np.ones(width, dtype=bool)
            executed[i] = ran
            produced[i] = ran & survives
            start[i] = row_start
            finish[i] = row_finish
            node_time[self._node[i]] = np.where(ran, row_finish, chain)

        completions = np.full((len(self.processes), width), inf)
        alive = np.zeros((len(self.processes), width), dtype=bool)
        for p, rows in enumerate(self._process_rows):
            if rows.size == 0:
                continue
            ok = produced[rows]
            completions[p] = np.where(ok, finish[rows], inf).min(axis=0)
            alive[p] = ok.any(axis=0)

        return BatchResult(
            sim=self,
            failures=failures,
            start=start,
            finish=finish,
            executed=executed,
            produced=produced,
            starved=starved,
            completions=completions,
            process_alive=alive,
        )
