"""TTP communication controller model (paper §2.1).

The controller runs independently of the CPU: at every MEDL slot it
broadcasts whatever the host CPU has placed in the send buffer.  If the
producing process has not completed by the slot *start*, the frame goes out
without (valid) payload — exactly the behaviour that makes a replica's fast
frame invalid when the replica was delayed or killed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.ttp.medl import MEDL

_EPS = 1e-9


@dataclass(frozen=True)
class FrameTransmission:
    """Outcome of one frame broadcast."""

    bus_message_id: str
    valid: bool
    arrival: float


class TTPBusModel:
    """Replays the MEDL: per frame, was the payload ready at slot start?"""

    def __init__(self, medl: MEDL) -> None:
        self._medl = medl
        self._sent: dict[str, FrameTransmission] = {}

    def transmit(self, bus_message_id: str, data_ready: float | None) -> FrameTransmission:
        """Broadcast a frame; ``data_ready=None`` means the producer died."""
        descriptor = self._medl[bus_message_id]
        valid = data_ready is not None and data_ready <= descriptor.slot_start + _EPS
        transmission = FrameTransmission(
            bus_message_id=bus_message_id,
            valid=valid,
            arrival=descriptor.arrival,
        )
        if bus_message_id in self._sent:
            raise SimulationError(f"frame {bus_message_id!r} transmitted twice")
        self._sent[bus_message_id] = transmission
        return transmission

    def reception(self, bus_message_id: str) -> FrameTransmission:
        """What any receiver observed for this frame."""
        try:
            return self._sent[bus_message_id]
        except KeyError:
            raise SimulationError(
                f"frame {bus_message_id!r} was never transmitted"
            ) from None

    def valid_arrival(self, bus_message_id: str) -> float | None:
        transmission = self._sent.get(bus_message_id)
        if transmission is None or not transmission.valid:
            return None
        return transmission.arrival
