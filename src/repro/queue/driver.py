"""Sweep driver: enqueue jobs, attach workers, stream back ordered results.

The driver is the producer side of the distributed experiment queue.  It
turns a deterministic job list (the same list the serial and process-pool
paths consume) into durable queue entries, optionally attaches local
workers, and collects results **in submission order** so the table/figure
aggregation code downstream is byte-for-byte shared with the serial path.

Resume semantics
----------------
Each job's identity is its submission slot plus canonical JSON payload
(:func:`repro.io.queue_codec.job_fingerprint`).  Re-invoking the same
sweep against the same broker with ``resume=True``:

* jobs already ``done`` are *checkpoint hits* — their stored results are
  decoded instead of re-executed;
* ``queued``/``leased`` jobs are left alone (in-flight work is kept;
  leases of crashed workers lapse on their own);
* ``dead`` jobs get a fresh attempt budget;
* unknown fingerprints are enqueued.

Without ``resume``, a broker that already holds jobs is refused — mixing
two different sweeps in one queue file is almost certainly a mistake.

Dead letters never hang the driver: once nothing is queued or in flight,
remaining dead jobs are reported via :class:`~repro.errors.QueueError`
with each job's description and final error.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro import obs
from repro.errors import ConfigurationError, QueueError
from repro.experiments.parallel import CaseJob
from repro.experiments.runner import VariantRun
from repro.obs.progress import ProgressReporter
from repro.queue.broker import (
    Broker,
    DEFAULT_MAX_ATTEMPTS,
    DONE,
    publish_queue_counts,
)
from repro.queue.memory import MemoryBroker
from repro.queue.sqlite import SqliteBroker
from repro.queue.worker import (
    DEFAULT_LEASE_S,
    DEFAULT_VALIDATE_SAMPLES,
    Worker,
)


@dataclass
class SweepStats:
    """Bookkeeping of one driven sweep (checkpoint hits back resume tests)."""

    total: int = 0
    enqueued: int = 0
    checkpoint_hits: int = 0  # jobs already done when the sweep was submitted
    reset_dead: int = 0  # dead jobs granted a fresh budget on resume
    completed: int = 0  # results streamed back this invocation
    dead: int = 0

    def summary(self) -> str:
        parts = [f"{self.completed}/{self.total} jobs completed"]
        if self.checkpoint_hits:
            parts.append(f"{self.checkpoint_hits} from checkpoint")
        if self.reset_dead:
            parts.append(f"{self.reset_dead} dead jobs retried")
        if self.dead:
            parts.append(f"{self.dead} dead-lettered")
        return ", ".join(parts)


@dataclass
class SweepPlan:
    """The enqueue outcome: per-slot identities plus submission stats."""

    jobs: list[CaseJob]
    fingerprints: list[str]
    stats: SweepStats = field(default_factory=SweepStats)


def enqueue_sweep(
    jobs: Sequence[CaseJob],
    broker: Broker,
    resume: bool = False,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
) -> SweepPlan:
    """Submit ``jobs`` idempotently; see the module docstring for resume."""
    from repro.io.queue_codec import encode_job, job_fingerprint

    job_list = list(jobs)
    if not resume and broker.pending().total > 0:
        raise ConfigurationError(
            "broker already holds jobs; pass resume=True (--resume) to "
            "continue that sweep, or point at a fresh broker path"
        )
    plan = SweepPlan(jobs=job_list, fingerprints=[])
    plan.stats.total = len(job_list)
    payloads = [encode_job(job) for job in job_list]
    plan.fingerprints = [
        job_fingerprint(index, payload)
        for index, payload in enumerate(payloads)
    ]
    known = broker.states()
    orphans = set(known) - set(plan.fingerprints)
    if orphans:
        # Resuming with changed parameters produces all-new fingerprints:
        # without this check (done BEFORE any enqueue mutates the broker)
        # the old sweep's jobs would silently keep running — and keep
        # being paid for — alongside the new ones.
        raise ConfigurationError(
            f"broker holds {len(orphans)} job(s) that are not part of this "
            "sweep; a resumed sweep must use the original parameters — "
            "point changed sweeps at a fresh broker path"
        )
    if resume:
        plan.stats.reset_dead = broker.reset_dead()
    for fingerprint, payload in zip(plan.fingerprints, payloads):
        state = known.get(fingerprint)
        if state is None:
            broker.enqueue(fingerprint, payload, max_attempts)
            plan.stats.enqueued += 1
        elif state == DONE:
            plan.stats.checkpoint_hits += 1
    return plan


def collect_results(
    plan: SweepPlan,
    broker: Broker,
    progress: Callable[[str], None] | None = None,
    poll_interval_s: float = 0.1,
    timeout_s: float | None = None,
    liveness: Callable[[], bool] | None = None,
) -> tuple[list[dict[str, VariantRun]], SweepStats]:
    """Wait for every slot, decoding results in submission order.

    ``liveness`` (when given) is polled each round; returning False means
    "no worker can make further progress" and raises instead of waiting
    forever — the driver passes a check over its locally spawned workers.
    """
    from repro.io.queue_codec import decode_result

    stats = plan.stats
    total = len(plan.fingerprints)
    results: list[dict[str, VariantRun]] = []
    deadline = None if timeout_s is None else time.monotonic() + timeout_s
    reporter = ProgressReporter(progress, total, metric="queue.results")
    cursor = 0
    while cursor < total:
        states = broker.states()
        while cursor < total and states.get(plan.fingerprints[cursor]) == DONE:
            text = broker.result(plan.fingerprints[cursor])
            runs, elapsed = decode_result(text)
            results.append(runs)
            cursor += 1
            stats.completed += 1
            reporter.step(
                plan.jobs[cursor - 1].describe(), elapsed_s=elapsed
            )
        if cursor >= total:
            break
        counts = publish_queue_counts(broker.pending())
        if counts.unfinished == 0:
            # The final ack may have landed between the states() snapshot
            # and this pending() read; only an actual dead letter is
            # terminal — otherwise re-poll and stream the fresh results.
            if broker.dead_letters():
                _raise_dead_letters(plan, broker, stats)
            continue
        if liveness is not None and not liveness():
            raise QueueError(
                f"all local workers exited with {total - cursor} jobs "
                "unfinished and no remote workers attached"
            )
        if deadline is not None and time.monotonic() > deadline:
            raise QueueError(
                f"sweep timed out with {total - cursor} of {total} jobs "
                "unfinished"
            )
        time.sleep(poll_interval_s)
    return results, stats


def run_sweep(
    jobs: Sequence[CaseJob],
    broker: Broker,
    resume: bool = False,
    local_workers: int = 0,
    progress: Callable[[str], None] | None = None,
    lease_s: float = DEFAULT_LEASE_S,
    validate_samples: int | None = DEFAULT_VALIDATE_SAMPLES,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    poll_interval_s: float = 0.1,
    timeout_s: float | None = None,
) -> tuple[list[dict[str, VariantRun]], SweepStats]:
    """Drive one full sweep through ``broker`` and return ordered results.

    ``local_workers`` consumer loops are attached for the duration of the
    call — OS processes for a :class:`SqliteBroker` (the same entry point
    ``ftds worker`` uses on other machines), daemon threads for a
    :class:`MemoryBroker`.  With ``local_workers=0`` the call only
    enqueues and waits, relying entirely on externally attached workers.
    """
    with obs.span("enqueue") as sp:
        plan = enqueue_sweep(
            jobs, broker, resume=resume, max_attempts=max_attempts
        )
        sp.set(
            total=plan.stats.total,
            enqueued=plan.stats.enqueued,
            checkpoint_hits=plan.stats.checkpoint_hits,
        )
    if plan.stats.checkpoint_hits:
        ProgressReporter(progress, plan.stats.total).announce(
            f"resume: {plan.stats.checkpoint_hits}/{plan.stats.total} jobs "
            "already complete (checkpoint hits)"
        )
    workers = _spawn_local_workers(
        broker, local_workers, lease_s, validate_samples
    )
    try:
        liveness = None
        if workers:
            liveness = lambda: any(w.is_alive() for w in workers)
        with obs.span("collect", jobs=plan.stats.total) as sp:
            results, stats = collect_results(
                plan,
                broker,
                progress=progress,
                poll_interval_s=poll_interval_s,
                timeout_s=timeout_s,
                liveness=liveness,
            )
            sp.set(completed=stats.completed, checkpoint_hits=stats.checkpoint_hits)
    except BaseException:
        # The caller asked to stop (timeout, dead letters, interrupt):
        # don't block on drain workers finishing the rest of the queue —
        # they are daemons and die with the process.
        for worker in workers:
            worker.join(timeout=1.0)
        raise
    for worker in workers:
        # Every slot is acked, so drain workers exit promptly.
        worker.join(timeout=lease_s + 30.0)
    return results, stats


# -- local worker attachment --------------------------------------------------

def _sqlite_worker_main(
    path: str, lease_s: float, validate_samples: int | None, suffix: str
) -> None:
    """Entry point of one spawned local worker process."""
    from repro.queue.worker import default_worker_id

    worker_id = default_worker_id(suffix)
    # The spawn context copies os.environ, so a driver tracing with
    # export_env=True hands its run id to every local worker; each worker
    # writes its own shard file stitched back by `ftds trace summarize`.
    tracer = obs.adopt_env_tracing(worker_id)
    broker = SqliteBroker(path)
    try:
        Worker(
            broker,
            worker_id=worker_id,
            lease_s=lease_s,
            validate_samples=validate_samples,
            poll_interval_s=0.05,
        ).run(drain=True)
    finally:
        broker.close()
        if tracer is not None:
            tracer.snapshot_metrics()
            obs.disable_tracing()


def _spawn_local_workers(
    broker: Broker,
    count: int,
    lease_s: float,
    validate_samples: int | None,
) -> list:
    if count <= 0:
        return []
    if isinstance(broker, SqliteBroker):
        # "spawn" keeps the parent's live SQLite connection out of the
        # children; each worker process opens the file itself, exactly as
        # a remote `ftds worker --broker PATH` would.
        context = multiprocessing.get_context("spawn")
        processes = [
            context.Process(
                target=_sqlite_worker_main,
                args=(broker.path, lease_s, validate_samples, str(i)),
                daemon=True,
            )
            for i in range(count)
        ]
        for process in processes:
            process.start()
        return processes
    if isinstance(broker, MemoryBroker):
        threads = [
            threading.Thread(
                target=Worker(
                    broker,
                    worker_id=f"thread-{i}",
                    lease_s=lease_s,
                    validate_samples=validate_samples,
                    poll_interval_s=0.01,
                ).run,
                kwargs={"drain": True},
                daemon=True,
            )
            for i in range(count)
        ]
        for thread in threads:
            thread.start()
        return threads
    raise ConfigurationError(
        f"cannot attach local workers to {type(broker).__name__}; "
        "run workers against it externally and call with local_workers=0"
    )


def _raise_dead_letters(
    plan: SweepPlan, broker: Broker, stats: SweepStats
) -> None:
    """Report dead-lettered jobs by description instead of hanging."""
    from repro.io.queue_codec import decode_job

    letters = broker.dead_letters()
    stats.dead = len(letters)
    obs.get_registry().set("queue.depth.dead", len(letters))
    details = []
    for letter in letters[:10]:
        try:
            label = decode_job(letter.payload).describe()
        except QueueError:
            label = letter.fingerprint[:12]
        details.append(
            f"{label} (attempts {letter.attempts}): {letter.error}"
        )
    raise QueueError(
        f"sweep dead-lettered {len(letters)} job(s) after bounded retries: "
        + "; ".join(details)
    )
