"""Distributed experiment queue: brokers, workers and the sweep driver.

The paper-scale Table 1 / Figure 10 sweeps are embarrassingly parallel;
this package fans them out beyond one machine.  A *broker* stores durable
JSON job payloads with at-least-once delivery (``enqueue / lease / ack /
nack``), *workers* lease jobs, optimize, fault-inject the winning
schedules and ack validated results, and the *driver* enqueues sweeps and
streams results back in deterministic submission order with resumable
checkpoints.  See EXPERIMENTS.md ("Distributed runs").
"""

from repro.queue.broker import (
    Broker,
    DEAD,
    DEFAULT_MAX_ATTEMPTS,
    DONE,
    DeadLetter,
    LEASED,
    LeasedJob,
    QUEUED,
    QueueCounts,
)
from repro.queue.driver import (
    SweepPlan,
    SweepStats,
    collect_results,
    enqueue_sweep,
    run_sweep,
)
from repro.queue.memory import MemoryBroker
from repro.queue.sqlite import SqliteBroker
from repro.queue.worker import (
    DEFAULT_LEASE_S,
    DEFAULT_VALIDATE_SAMPLES,
    Worker,
    default_worker_id,
)

__all__ = [
    "Broker",
    "DEAD",
    "DEFAULT_LEASE_S",
    "DEFAULT_MAX_ATTEMPTS",
    "DEFAULT_VALIDATE_SAMPLES",
    "DONE",
    "DeadLetter",
    "LEASED",
    "LeasedJob",
    "MemoryBroker",
    "QUEUED",
    "QueueCounts",
    "SqliteBroker",
    "SweepPlan",
    "SweepStats",
    "Worker",
    "collect_results",
    "default_worker_id",
    "enqueue_sweep",
    "run_sweep",
]
