"""In-memory broker: the reference implementation of the queue contract.

Backs tests and single-process "local distributed" runs (thread workers).
Thread-safe; the clock is injectable so lease-expiry behaviour can be
tested without sleeping.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

from repro.errors import QueueError
from repro.queue.broker import (
    DEAD,
    DEFAULT_MAX_ATTEMPTS,
    DONE,
    LEASED,
    QUEUED,
    DeadLetter,
    LeasedJob,
    QueueCounts,
)


@dataclass
class _Job:
    fingerprint: str
    payload: str
    max_attempts: int
    state: str = QUEUED
    attempts: int = 0
    worker_id: str = ""
    lease_expires: float = 0.0
    result: str | None = None
    error: str = ""


class MemoryBroker:
    """Queue contract over plain dicts guarded by one lock."""

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._jobs: dict[str, _Job] = {}
        self._order: list[str] = []  # FIFO of enqueue order

    # -- producer side -----------------------------------------------------

    def enqueue(
        self,
        fingerprint: str,
        payload: str,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    ) -> bool:
        with self._lock:
            if fingerprint in self._jobs:
                return False
            self._jobs[fingerprint] = _Job(fingerprint, payload, max_attempts)
            self._order.append(fingerprint)
            return True

    # -- consumer side -----------------------------------------------------

    def lease(self, worker_id: str, lease_s: float) -> LeasedJob | None:
        now = self._clock()
        with self._lock:
            self._expire_locked(now)
            for fingerprint in self._order:
                job = self._jobs[fingerprint]
                if job.state != QUEUED:
                    continue
                job.state = LEASED
                job.attempts += 1
                job.worker_id = worker_id
                job.lease_expires = now + lease_s
                return LeasedJob(
                    fingerprint=fingerprint,
                    payload=job.payload,
                    attempt=job.attempts,
                    worker_id=worker_id,
                )
            return None

    def ack(self, fingerprint: str, result: str) -> None:
        with self._lock:
            job = self._require(fingerprint)
            job.state = DONE
            job.result = result
            job.error = ""

    def nack(self, fingerprint: str, error: str) -> None:
        with self._lock:
            job = self._require(fingerprint)
            if job.state == DONE:
                return  # a twin delivery already completed the job
            job.error = error
            if job.attempts >= job.max_attempts:
                job.state = DEAD
            else:
                job.state = QUEUED

    # -- observation -------------------------------------------------------

    def pending(self) -> QueueCounts:
        now = self._clock()
        with self._lock:
            self._expire_locked(now)
            counts = {QUEUED: 0, LEASED: 0, DONE: 0, DEAD: 0}
            for job in self._jobs.values():
                counts[job.state] += 1
            return QueueCounts(
                queued=counts[QUEUED],
                leased=counts[LEASED],
                done=counts[DONE],
                dead=counts[DEAD],
            )

    def state(self, fingerprint: str) -> str | None:
        with self._lock:
            job = self._jobs.get(fingerprint)
            return None if job is None else job.state

    def states(self) -> dict[str, str]:
        now = self._clock()
        with self._lock:
            self._expire_locked(now)
            return {fp: job.state for fp, job in self._jobs.items()}

    def result(self, fingerprint: str) -> str | None:
        with self._lock:
            job = self._jobs.get(fingerprint)
            return None if job is None else job.result

    def attempts(self, fingerprint: str) -> int:
        with self._lock:
            return self._require(fingerprint).attempts

    def dead_letters(self) -> list[DeadLetter]:
        with self._lock:
            return [
                DeadLetter(job.fingerprint, job.payload, job.attempts, job.error)
                for fp in self._order
                if (job := self._jobs[fp]).state == DEAD
            ]

    def reset_dead(self) -> int:
        with self._lock:
            count = 0
            for job in self._jobs.values():
                if job.state == DEAD:
                    job.state = QUEUED
                    job.attempts = 0
                    count += 1
            return count

    def close(self) -> None:
        pass

    # -- internals ---------------------------------------------------------

    def _require(self, fingerprint: str) -> _Job:
        job = self._jobs.get(fingerprint)
        if job is None:
            raise QueueError(f"unknown job fingerprint {fingerprint!r}")
        return job

    def _expire_locked(self, now: float) -> None:
        """Requeue (or dead-letter) every job whose lease has lapsed."""
        for job in self._jobs.values():
            if job.state == LEASED and job.lease_expires < now:
                job.error = (
                    f"lease expired after delivery {job.attempts} "
                    f"(worker {job.worker_id})"
                )
                if job.attempts >= job.max_attempts:
                    job.state = DEAD
                else:
                    job.state = QUEUED
