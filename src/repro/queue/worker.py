"""Worker daemon: lease -> optimize -> validate -> ack.

A worker is the consumer side of the distributed experiment queue.  Each
iteration leases one JSON job payload, decodes it to a
:class:`~repro.experiments.parallel.CaseJob`, regenerates the case from
its deterministic seed and optimizes it via
:func:`~repro.experiments.parallel.run_case_job`.  Before acking, every
winning schedule is re-checked by fault injection
(:func:`repro.sim.validate.validate_record`) — a shipped schedule is never
trusted without the simulator having replayed it — and the validated
results travel back as canonical JSON.

Failures (decode errors, scheduling errors, validation violations) nack
the delivery with a descriptive error; the broker's bounded-retry policy
decides between redelivery and the dead-letter state.  A crash needs no
handling at all: the un-acked lease simply expires.
"""

from __future__ import annotations

import os
import socket
import time
from typing import Callable

from repro import obs
from repro.queue.broker import Broker

#: Fault-injection sample budget per validated schedule (small systems are
#: enumerated exhaustively regardless; see repro.sim.validate).
DEFAULT_VALIDATE_SAMPLES = 20

#: Default lease duration; generous versus per-job optimization budgets so
#: healthy-but-slow workers are not preempted mid-search.
DEFAULT_LEASE_S = 600.0


def default_worker_id(suffix: str = "") -> str:
    host = socket.gethostname() or "worker"
    base = f"{host}-{os.getpid()}"
    return f"{base}-{suffix}" if suffix else base


class Worker:
    """Single-threaded consumer loop bound to one broker."""

    def __init__(
        self,
        broker: Broker,
        worker_id: str | None = None,
        lease_s: float = DEFAULT_LEASE_S,
        validate_samples: int | None = DEFAULT_VALIDATE_SAMPLES,
        poll_interval_s: float = 0.2,
        progress: Callable[[str], None] | None = None,
    ) -> None:
        self.broker = broker
        self.worker_id = worker_id or default_worker_id()
        self.lease_s = lease_s
        self.validate_samples = validate_samples
        self.poll_interval_s = poll_interval_s
        self.progress = progress
        self.processed = 0
        self.failed = 0

    def run(self, drain: bool = False, max_jobs: int | None = None) -> int:
        """Consume jobs until stopped; returns the number acked.

        ``drain=True`` exits once the queue holds no queued *or* leased
        jobs (i.e. the sweep is fully acked or dead-lettered) instead of
        polling forever; ``max_jobs`` bounds the acks of this call (used
        by tests to simulate a worker that stops mid-sweep).
        """
        acked = 0
        registry = obs.get_registry()
        last_beat = time.monotonic()
        while max_jobs is None or acked < max_jobs:
            leased = self.broker.lease(self.worker_id, self.lease_s)
            if leased is None:
                if drain and self.broker.pending().unfinished == 0:
                    break
                time.sleep(self.poll_interval_s)
            else:
                registry.inc("queue.leases")
                if self.step(
                    leased.fingerprint, leased.payload, leased.attempt
                ):
                    acked += 1
            # Heartbeats (traced runs only): liveness + progress, at most
            # one every ~10s so an idle poll loop stays quiet.
            now = time.monotonic()
            if obs.enabled() and now - last_beat >= 10.0:
                last_beat = now
                obs.event(
                    "worker.heartbeat",
                    worker=self.worker_id,
                    processed=self.processed,
                    failed=self.failed,
                )
        return acked

    def step(self, fingerprint: str, payload: str, attempt: int) -> bool:
        """Process one delivery; returns True if the job was acked.

        Dispatches on the payload's ``"kind"`` marker: fault-injection
        shards (``"inject_shard"``) are simulated, everything else is the
        legacy optimizer job path — one worker fleet drains both.
        """
        # Imported here so worker processes pay the experiments-layer import
        # on first use and module import stays cheap for the CLI.
        from repro.io.queue_codec import payload_kind

        started = time.monotonic()
        label = fingerprint[:12]
        registry = obs.get_registry()
        with obs.span("job", fingerprint=fingerprint[:12]) as sp:
            try:
                kind = payload_kind(payload)
                sp.set(kind=kind or "case")
                if kind == "inject_shard":
                    from repro.inject.runner import run_shard
                    from repro.io.inject_codec import (
                        decode_shard_job,
                        encode_shard_result,
                    )

                    target, spec, target_fp = decode_shard_job(payload)
                    label = f"{target.label}:{spec.describe()}"
                    result = run_shard(target, spec, target_fp)
                    elapsed = time.monotonic() - started
                    self.broker.ack(fingerprint, encode_shard_result(result))
                else:
                    from repro.experiments.parallel import run_case_job
                    from repro.io.queue_codec import decode_job, encode_result

                    job = decode_job(payload)
                    label = job.describe()
                    runs = run_case_job(
                        job, validate_samples=self.validate_samples
                    )
                    elapsed = time.monotonic() - started
                    self.broker.ack(fingerprint, encode_result(runs, elapsed))
            except Exception as error:  # nack failures; broker bounds retries
                self.failed += 1
                registry.inc("queue.nacks")
                sp.set(outcome="nack", error=type(error).__name__)
                self.broker.nack(
                    fingerprint, f"{label}: {type(error).__name__}: {error}"
                )
                if self.progress is not None:
                    self.progress(
                        f"nack {label} (attempt {attempt}): "
                        f"{type(error).__name__}: {error}"
                    )
                return False
            registry.inc("queue.acks")
            registry.observe("queue.job_s", elapsed)
            sp.set(outcome="ack")
        self.processed += 1
        if self.progress is not None:
            self.progress(f"ack {label} ({elapsed:.1f}s, attempt {attempt})")
        return True
