"""Broker protocol of the distributed experiment queue.

A *broker* is a durable (or test-scoped) job store with at-least-once
delivery semantics:

* :meth:`Broker.enqueue` registers a job under a caller-chosen
  *fingerprint* (the durable identity used for resume/checkpointing;
  see :func:`repro.io.queue_codec.job_fingerprint`).  Enqueueing an
  already-known fingerprint is a no-op, which is what makes sweep
  submission idempotent.
* :meth:`Broker.lease` hands the oldest queued job to a worker for at
  most ``lease_s`` seconds.  A worker that crashes simply never acks;
  once the lease expires the job is redelivered to the next caller.
  Every delivery increments the job's attempt counter, and a job that
  exhausts ``max_attempts`` deliveries is *dead-lettered* instead of
  being retried forever.
* :meth:`Broker.ack` stores the result and completes the job.  Results
  of this workload are deterministic functions of the payload, so acks
  are accepted even after a lease expired and the job was handed to a
  second worker — last write wins and both writes are identical.
* :meth:`Broker.nack` returns a failed job to the queue (or dead-letters
  it once its attempts are exhausted), recording the error.

Payloads, results and errors are opaque text to the broker; the codecs
in :mod:`repro.io.queue_codec` define what travels inside.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

#: Default delivery budget before a job is dead-lettered.
DEFAULT_MAX_ATTEMPTS = 3

#: Job lifecycle states as stored by every backend.
QUEUED = "queued"
LEASED = "leased"
DONE = "done"
DEAD = "dead"


@dataclass(frozen=True)
class LeasedJob:
    """One delivery: the payload plus its delivery metadata."""

    fingerprint: str
    payload: str
    attempt: int  # 1-based delivery count, this delivery included
    worker_id: str


@dataclass(frozen=True)
class QueueCounts:
    """Aggregate queue state (one row per lifecycle state)."""

    queued: int = 0
    leased: int = 0
    done: int = 0
    dead: int = 0

    @property
    def unfinished(self) -> int:
        """Jobs that may still produce a result (queued or in flight)."""
        return self.queued + self.leased

    @property
    def total(self) -> int:
        return self.queued + self.leased + self.done + self.dead


def publish_queue_counts(counts: QueueCounts, registry=None) -> QueueCounts:
    """Mirror a pending() poll into ``queue.depth.*`` gauges; returns it.

    Drivers call this on every collection poll so a registry snapshot (or
    Prometheus export) always carries the last observed queue depth.
    """
    if registry is None:
        from repro.obs.metrics import get_registry

        registry = get_registry()
    registry.set("queue.depth.queued", counts.queued)
    registry.set("queue.depth.leased", counts.leased)
    registry.set("queue.depth.done", counts.done)
    registry.set("queue.depth.dead", counts.dead)
    return counts


@dataclass(frozen=True)
class DeadLetter:
    """A job that exhausted its delivery attempts, with its last error."""

    fingerprint: str
    payload: str
    attempts: int
    error: str


class Broker(Protocol):
    """Work-queue backend contract (see module docstring for semantics)."""

    def enqueue(
        self,
        fingerprint: str,
        payload: str,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    ) -> bool:
        """Register a job; returns False if the fingerprint already exists."""
        ...

    def lease(self, worker_id: str, lease_s: float) -> LeasedJob | None:
        """Deliver the oldest queued job, or None if nothing is queued."""
        ...

    def ack(self, fingerprint: str, result: str) -> None:
        """Complete a job, storing its result."""
        ...

    def nack(self, fingerprint: str, error: str) -> None:
        """Fail a delivery: requeue the job or dead-letter it."""
        ...

    def pending(self) -> QueueCounts:
        """Counts per lifecycle state."""
        ...

    def state(self, fingerprint: str) -> str | None:
        """Lifecycle state of one job (None if unknown)."""
        ...

    def states(self) -> dict[str, str]:
        """fingerprint -> lifecycle state for every known job."""
        ...

    def result(self, fingerprint: str) -> str | None:
        """The acked result of a done job (None otherwise)."""
        ...

    def dead_letters(self) -> list[DeadLetter]:
        """Every dead-lettered job with its final error."""
        ...

    def reset_dead(self) -> int:
        """Requeue all dead jobs with a fresh attempt budget; returns count."""
        ...

    def close(self) -> None:
        """Release backend resources (idempotent)."""
        ...
