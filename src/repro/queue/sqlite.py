"""Durable SQLite broker: crash-safe job queue over one shared file.

One ``jobs`` table in a WAL-journaled SQLite database implements the
:class:`~repro.queue.broker.Broker` contract for every worker process that
can reach the file — N workers on M machines via a shared filesystem path.
Durability properties:

* **WAL journal** — writers never block readers; an acked result is on
  disk before :meth:`ack` returns, so a driver crash loses nothing.
* **Lease timeouts** — a worker that dies mid-job never acks; the lease
  row carries an absolute wall-clock expiry (``time.time``, comparable
  across machines with sane clocks) and any later :meth:`lease` call
  sweeps expired deliveries back into the queue.
* **Bounded retries** — each delivery increments ``attempts``; a job
  whose attempts reach its ``max_attempts`` is parked in the ``dead``
  state with its last error instead of poisoning the queue forever.

All mutations run inside ``BEGIN IMMEDIATE`` transactions, so concurrent
workers leasing from the same file never double-deliver an unexpired job.
"""

from __future__ import annotations

import sqlite3
import time
from pathlib import Path

from repro.errors import QueueError
from repro.queue.broker import (
    DEAD,
    DEFAULT_MAX_ATTEMPTS,
    DONE,
    LEASED,
    QUEUED,
    DeadLetter,
    LeasedJob,
    QueueCounts,
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    fingerprint TEXT NOT NULL UNIQUE,
    payload TEXT NOT NULL,
    state TEXT NOT NULL DEFAULT 'queued',
    attempts INTEGER NOT NULL DEFAULT 0,
    max_attempts INTEGER NOT NULL,
    worker_id TEXT NOT NULL DEFAULT '',
    lease_expires REAL NOT NULL DEFAULT 0,
    result TEXT,
    error TEXT NOT NULL DEFAULT ''
);
CREATE INDEX IF NOT EXISTS jobs_state ON jobs (state, id);
"""


class SqliteBroker:
    """Queue contract over one SQLite file (stdlib ``sqlite3`` only)."""

    def __init__(self, path: str | Path, timeout_s: float = 30.0) -> None:
        self.path = str(path)
        self._conn = sqlite3.connect(
            self.path, timeout=timeout_s, isolation_level=None
        )
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.executescript(_SCHEMA)

    # -- producer side -----------------------------------------------------

    def enqueue(
        self,
        fingerprint: str,
        payload: str,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    ) -> bool:
        cursor = self._conn.execute(
            "INSERT OR IGNORE INTO jobs (fingerprint, payload, max_attempts) "
            "VALUES (?, ?, ?)",
            (fingerprint, payload, max_attempts),
        )
        return cursor.rowcount == 1

    # -- consumer side -----------------------------------------------------

    def lease(self, worker_id: str, lease_s: float) -> LeasedJob | None:
        now = time.time()
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            self._expire(now)
            row = self._conn.execute(
                "SELECT fingerprint, payload, attempts FROM jobs "
                "WHERE state = ? ORDER BY id LIMIT 1",
                (QUEUED,),
            ).fetchone()
            if row is None:
                self._conn.execute("COMMIT")
                return None
            fingerprint, payload, attempts = row
            self._conn.execute(
                "UPDATE jobs SET state = ?, attempts = ?, worker_id = ?, "
                "lease_expires = ? WHERE fingerprint = ?",
                (LEASED, attempts + 1, worker_id, now + lease_s, fingerprint),
            )
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        return LeasedJob(
            fingerprint=fingerprint,
            payload=payload,
            attempt=attempts + 1,
            worker_id=worker_id,
        )

    def ack(self, fingerprint: str, result: str) -> None:
        cursor = self._conn.execute(
            "UPDATE jobs SET state = ?, result = ?, error = '' "
            "WHERE fingerprint = ?",
            (DONE, result, fingerprint),
        )
        if cursor.rowcount == 0:
            raise QueueError(f"unknown job fingerprint {fingerprint!r}")

    def nack(self, fingerprint: str, error: str) -> None:
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            row = self._conn.execute(
                "SELECT state, attempts, max_attempts FROM jobs "
                "WHERE fingerprint = ?",
                (fingerprint,),
            ).fetchone()
            if row is None:
                raise QueueError(f"unknown job fingerprint {fingerprint!r}")
            state, attempts, max_attempts = row
            if state != DONE:  # a twin delivery may already have acked
                next_state = DEAD if attempts >= max_attempts else QUEUED
                self._conn.execute(
                    "UPDATE jobs SET state = ?, error = ? WHERE fingerprint = ?",
                    (next_state, error, fingerprint),
                )
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise

    # -- observation -------------------------------------------------------

    def pending(self) -> QueueCounts:
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            self._expire(time.time())
            rows = self._conn.execute(
                "SELECT state, COUNT(*) FROM jobs GROUP BY state"
            ).fetchall()
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        counts = dict(rows)
        return QueueCounts(
            queued=counts.get(QUEUED, 0),
            leased=counts.get(LEASED, 0),
            done=counts.get(DONE, 0),
            dead=counts.get(DEAD, 0),
        )

    def state(self, fingerprint: str) -> str | None:
        row = self._conn.execute(
            "SELECT state FROM jobs WHERE fingerprint = ?", (fingerprint,)
        ).fetchone()
        return None if row is None else row[0]

    def states(self) -> dict[str, str]:
        rows = self._conn.execute("SELECT fingerprint, state FROM jobs")
        return dict(rows.fetchall())

    def result(self, fingerprint: str) -> str | None:
        row = self._conn.execute(
            "SELECT result FROM jobs WHERE fingerprint = ?", (fingerprint,)
        ).fetchone()
        return None if row is None else row[0]

    def attempts(self, fingerprint: str) -> int:
        row = self._conn.execute(
            "SELECT attempts FROM jobs WHERE fingerprint = ?", (fingerprint,)
        ).fetchone()
        if row is None:
            raise QueueError(f"unknown job fingerprint {fingerprint!r}")
        return row[0]

    def dead_letters(self) -> list[DeadLetter]:
        rows = self._conn.execute(
            "SELECT fingerprint, payload, attempts, error FROM jobs "
            "WHERE state = ? ORDER BY id",
            (DEAD,),
        ).fetchall()
        return [DeadLetter(*row) for row in rows]

    def reset_dead(self) -> int:
        cursor = self._conn.execute(
            "UPDATE jobs SET state = ?, attempts = 0 WHERE state = ?",
            (QUEUED, DEAD),
        )
        return cursor.rowcount

    def close(self) -> None:
        self._conn.close()

    # -- internals ---------------------------------------------------------

    def _expire(self, now: float) -> None:
        """Sweep lapsed leases back to queued/dead (inside a transaction)."""
        self._conn.execute(
            "UPDATE jobs SET "
            "  state = CASE WHEN attempts >= max_attempts "
            f"    THEN '{DEAD}' ELSE '{QUEUED}' END, "
            "  error = 'lease expired after delivery ' || attempts "
            "    || ' (worker ' || worker_id || ')' "
            "WHERE state = ? AND lease_expires < ?",
            (LEASED, now),
        )
