"""Groups-of-chains task graphs (paper §6: "groups of chains")."""

from __future__ import annotations

import random

from repro.errors import ModelError


def chain_groups_structure(
    n_processes: int,
    rng: random.Random,
    chain_length_range: tuple[int, int] = (3, 7),
) -> list[tuple[int, int]]:
    """Edges of several parallel chains forked from a source process.

    Process 0 acts as the group source; chains of random length hang off it
    and the last chain simply consumes whatever process budget remains.
    Roughly half of the chain tails are joined into a common sink, giving
    the fork/join patterns typical of signal-processing applications.
    """
    if n_processes <= 0:
        raise ModelError("need at least one process")
    low, high = chain_length_range
    if not (1 <= low <= high):
        raise ModelError("invalid chain length range")

    edges: list[tuple[int, int]] = []
    tails: list[int] = []
    next_index = 1
    while next_index < n_processes:
        length = min(rng.randint(low, high), n_processes - next_index)
        previous = 0
        for _ in range(length):
            edges.append((previous, next_index))
            previous = next_index
            next_index += 1
        tails.append(previous)

    if len(tails) >= 3 and n_processes > 3:
        sink = tails[-1]
        joined = [t for t in tails[:-1] if rng.random() < 0.5 and t != sink]
        for tail in joined:
            edges.append((tail, sink))
    return sorted(set(edges))
