"""The paper's experimental suite (§6).

"For the evaluation of our algorithms we used applications of 20, 40, 60,
80, and 100 processes (all unmapped and with no fault-tolerance policy
assigned) implemented on architectures consisting of 2, 3, 4, 5, and 6
nodes, respectively.  We have varied the number of faults depending on the
architecture size, considering 3, 4, 5, 6, and 7 faults ... The duration µ
of a fault has been set to 5 ms.  Fifteen examples were randomly generated
for each application dimension ... We generated both graphs with random
structure and graphs based on more regular structures like trees and groups
of chains."
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import ModelError
from repro.gen.chains import chain_groups_structure
from repro.gen.params import assign_message_sizes, assign_wcets
from repro.gen.random_dag import random_structure
from repro.gen.trees import tree_structure
from repro.model.application import Application, Message, Process, ProcessGraph
from repro.model.architecture import Architecture, homogeneous_architecture
from repro.model.fault import FaultModel

#: (processes, nodes, faults k) rows of Table 1a.
TABLE1A_DIMENSIONS: tuple[tuple[int, int, int], ...] = (
    (20, 2, 3),
    (40, 3, 4),
    (60, 4, 5),
    (80, 5, 6),
    (100, 6, 7),
)

STRUCTURES = ("random", "tree", "chains")
DISTRIBUTIONS = ("uniform", "exponential")


@dataclass(frozen=True)
class GeneratedCase:
    """One generated benchmark application with its platform and fault model."""

    application: Application
    architecture: Architecture
    faults: FaultModel
    seed: int
    structure: str
    distribution: str

    @property
    def n_processes(self) -> int:
        return len(self.application.graphs[0])


def build_structure(
    kind: str, n_processes: int, rng: random.Random
) -> list[tuple[int, int]]:
    if kind == "random":
        return random_structure(n_processes, rng)
    if kind == "tree":
        return tree_structure(n_processes, rng)
    if kind == "chains":
        return chain_groups_structure(n_processes, rng)
    raise ModelError(f"unknown structure kind {kind!r}")


def generate_case(
    n_processes: int,
    n_nodes: int,
    k: int,
    mu: float = 5.0,
    seed: int = 0,
    structure: str | None = None,
    distribution: str | None = None,
    deadline: float | None = None,
) -> GeneratedCase:
    """Generate one random application exactly in the paper's setup.

    ``structure``/``distribution`` default to a deterministic mix over the
    seed (the paper used both kinds of graphs and both distributions).
    """
    # The fault model (k, mu) must not influence the generated workload so
    # that sweeps over k (Table 1b) and mu (Table 1c) compare like with like.
    rng = random.Random(1_000_003 * n_processes + 10_007 * n_nodes + seed)
    structure = structure or STRUCTURES[seed % len(STRUCTURES)]
    distribution = distribution or DISTRIBUTIONS[seed % len(DISTRIBUTIONS)]

    architecture = homogeneous_architecture(n_nodes)
    edges = build_structure(structure, n_processes, rng)
    wcets = assign_wcets(n_processes, architecture.node_names, rng, distribution)
    sizes = assign_message_sizes(edges, rng)

    graph = ProcessGraph(
        name=f"app_{n_processes}p_{seed}", deadline=deadline
    )
    for index in range(n_processes):
        graph.add_process(Process(name=f"P{index + 1}", wcet=wcets[index]))
    for (src, dst) in edges:
        graph.add_message(
            Message(
                name=f"m{src + 1}_{dst + 1}",
                src=f"P{src + 1}",
                dst=f"P{dst + 1}",
                size=sizes[(src, dst)],
            )
        )
    application = Application([graph], name=graph.name)
    return GeneratedCase(
        application=application,
        architecture=architecture,
        faults=FaultModel(k=k, mu=mu),
        seed=seed,
        structure=structure,
        distribution=distribution,
    )


def paper_suite(
    dimensions: Sequence[tuple[int, int, int]] = TABLE1A_DIMENSIONS,
    seeds: Sequence[int] = tuple(range(15)),
    mu: float = 5.0,
) -> Iterator[GeneratedCase]:
    """All cases of the Table 1a sweep (75 applications at paper scale)."""
    for n_processes, n_nodes, k in dimensions:
        for seed in seeds:
            yield generate_case(n_processes, n_nodes, k, mu=mu, seed=seed)
