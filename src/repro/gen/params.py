"""Random execution times and message sizes (paper §6).

"Execution times and message lengths were assigned randomly using both
uniform and exponential distribution within the 10 to 100 ms, and 1 to 4
bytes ranges, respectively."
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from repro.errors import ModelError

WCET_RANGE_MS = (10.0, 100.0)
MESSAGE_SIZE_RANGE = (1, 4)


def _draw(rng: random.Random, distribution: str, low: float, high: float) -> float:
    if distribution == "uniform":
        return rng.uniform(low, high)
    if distribution == "exponential":
        # Mean one third of the span above the minimum, clipped into range —
        # most processes are short, a few are close to the maximum.
        value = low + rng.expovariate(3.0 / (high - low))
        return min(value, high)
    raise ModelError(f"unknown distribution {distribution!r}")


def assign_wcets(
    n_processes: int,
    node_names: Sequence[str],
    rng: random.Random,
    distribution: str = "uniform",
    wcet_range: tuple[float, float] = WCET_RANGE_MS,
) -> list[dict[str, float]]:
    """Per-process WCET tables ``C_Pi^Nk`` drawn per (process, node) pair."""
    low, high = wcet_range
    if not (0 < low <= high):
        raise ModelError("invalid WCET range")
    tables: list[dict[str, float]] = []
    for _ in range(n_processes):
        tables.append(
            {node: round(_draw(rng, distribution, low, high), 2) for node in node_names}
        )
    return tables


def assign_message_sizes(
    edges: Iterable[tuple[int, int]],
    rng: random.Random,
    size_range: tuple[int, int] = MESSAGE_SIZE_RANGE,
) -> dict[tuple[int, int], int]:
    """One size (bytes) per edge, uniform in ``size_range``."""
    low, high = size_range
    if not (1 <= low <= high):
        raise ModelError("invalid message size range")
    return {edge: rng.randint(low, high) for edge in edges}
