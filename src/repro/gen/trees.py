"""Tree-shaped task graphs (paper §6: "more regular structures like trees")."""

from __future__ import annotations

import random

from repro.errors import ModelError


def tree_structure(
    n_processes: int,
    rng: random.Random,
    max_fanout: int = 4,
) -> list[tuple[int, int]]:
    """Edges of a random out-tree rooted at process 0.

    Every process except the root picks a parent uniformly among the already
    created processes that still have fan-out budget, so trees vary from
    chain-like (fanout ~1) to bushy (fanout up to ``max_fanout``).
    """
    if n_processes <= 0:
        raise ModelError("need at least one process")
    if max_fanout < 1:
        raise ModelError("max_fanout must be >= 1")
    edges: list[tuple[int, int]] = []
    children = [0] * n_processes
    for index in range(1, n_processes):
        candidates = [j for j in range(index) if children[j] < max_fanout]
        if not candidates:
            candidates = list(range(index))
        parent = rng.choice(candidates)
        children[parent] += 1
        edges.append((parent, index))
    return edges
