"""Synthetic workload generation reproducing the paper's evaluation setup (§6)."""

from repro.gen.chains import chain_groups_structure
from repro.gen.params import assign_message_sizes, assign_wcets
from repro.gen.random_dag import random_structure
from repro.gen.suite import (
    TABLE1A_DIMENSIONS,
    GeneratedCase,
    generate_case,
    paper_suite,
)
from repro.gen.trees import tree_structure

__all__ = [
    "GeneratedCase",
    "TABLE1A_DIMENSIONS",
    "assign_message_sizes",
    "assign_wcets",
    "chain_groups_structure",
    "generate_case",
    "paper_suite",
    "random_structure",
    "tree_structure",
]
