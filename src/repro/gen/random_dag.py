"""Random-structure task graphs (paper §6: "graphs with random structure").

The generator uses the classic layer-by-layer method: every process is put
on a random layer; each non-source process receives at least one predecessor
from an earlier layer, and additional forward edges are added with a fixed
probability.  The result is a connected-enough DAG whose depth/width ratio
is controlled by ``layers_per_process``.
"""

from __future__ import annotations

import random

from repro.errors import ModelError


def random_structure(
    n_processes: int,
    rng: random.Random,
    extra_edge_probability: float = 0.08,
    layers_per_process: float = 0.25,
) -> list[tuple[int, int]]:
    """Edges (as index pairs ``src < dst``) of a random DAG structure."""
    if n_processes <= 0:
        raise ModelError("need at least one process")
    if n_processes == 1:
        return []
    n_layers = max(2, round(n_processes * layers_per_process))
    layers = [0] + [rng.randrange(n_layers) for _ in range(n_processes - 1)]
    # Guarantee at least one process on the first layer (index 0 is on it).
    order = sorted(range(n_processes), key=lambda i: (layers[i], i))
    layer_of = {index: layers[index] for index in range(n_processes)}

    edges: set[tuple[int, int]] = set()
    for position, index in enumerate(order):
        if layer_of[index] == 0:
            continue
        earlier = [j for j in order[:position] if layer_of[j] < layer_of[index]]
        if not earlier:
            earlier = order[:position]
        parent = rng.choice(earlier)
        edges.add((parent, index))

    for a_position, a in enumerate(order):
        for b in order[a_position + 1 :]:
            if layer_of[a] >= layer_of[b]:
                continue
            if (a, b) in edges:
                continue
            if rng.random() < extra_edge_probability:
                edges.add((a, b))
    return sorted(edges)
