"""JSON round-tripping for applications, architectures and design decisions.

A downstream user needs to persist three things: the *problem* (application
+ architecture + fault model), the *solution* (policies + mapping + bus
configuration) and, for deployment, the synthesized *schedule tables* and
MEDL.  Problems and solutions round-trip losslessly; schedules are
export-only (they are deterministically derivable from a solution via
:func:`repro.schedule.list_schedule`).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.errors import ModelError
from repro.model.application import Application, Message, Process, ProcessGraph
from repro.model.architecture import Architecture, Node
from repro.model.fault import FaultModel
from repro.model.mapping import ReplicaMapping
from repro.model.policy import Policy, PolicyAssignment
from repro.opt.implementation import Implementation
from repro.schedule.table import SystemSchedule
from repro.ttp.bus import BusConfig

FORMAT_VERSION = 1


# -- application ------------------------------------------------------------

def application_to_dict(application: Application) -> dict[str, Any]:
    return {
        "version": FORMAT_VERSION,
        "name": application.name,
        "graphs": [_graph_to_dict(graph) for graph in application.graphs],
    }


def _graph_to_dict(graph: ProcessGraph) -> dict[str, Any]:
    return {
        "name": graph.name,
        "period": graph.period,
        "deadline": graph.deadline,
        "processes": [
            {
                "name": process.name,
                "wcet": dict(process.wcet),
                "release": process.release,
                "deadline": process.deadline,
                "fixed_node": process.fixed_node,
                "fixed_policy": process.fixed_policy,
            }
            for process in graph.processes.values()
        ],
        "messages": [
            {
                "name": message.name,
                "src": message.src,
                "dst": message.dst,
                "size": message.size,
            }
            for message in graph.messages.values()
        ],
    }


def application_from_dict(data: dict[str, Any]) -> Application:
    _check_version(data)
    application = Application(name=data.get("name", "application"))
    for graph_data in data["graphs"]:
        graph = ProcessGraph(
            graph_data["name"],
            period=graph_data.get("period"),
            deadline=graph_data.get("deadline"),
        )
        for p in graph_data["processes"]:
            graph.add_process(
                Process(
                    name=p["name"],
                    wcet=p["wcet"],
                    release=p.get("release", 0.0),
                    deadline=p.get("deadline"),
                    fixed_node=p.get("fixed_node"),
                    fixed_policy=p.get("fixed_policy"),
                )
            )
        for m in graph_data["messages"]:
            graph.add_message(
                Message(name=m["name"], src=m["src"], dst=m["dst"], size=m["size"])
            )
        application.add_graph(graph)
    application.validate()
    return application


# -- architecture / fault model ------------------------------------------------

def architecture_to_dict(architecture: Architecture) -> dict[str, Any]:
    return {
        "version": FORMAT_VERSION,
        "name": architecture.name,
        "nodes": [
            {"name": node.name, "description": node.description}
            for node in architecture.nodes
        ],
        "bus": None if architecture.bus is None else _bus_to_dict(architecture.bus),
    }


def architecture_from_dict(data: dict[str, Any]) -> Architecture:
    _check_version(data)
    bus = data.get("bus")
    return Architecture(
        nodes=[
            Node(n["name"], n.get("description", "")) for n in data["nodes"]
        ],
        bus=None if bus is None else _bus_from_dict(bus),
        name=data.get("name", "architecture"),
    )


def fault_model_to_dict(faults: FaultModel) -> dict[str, Any]:
    return {
        "version": FORMAT_VERSION,
        "k": faults.k,
        "mu": faults.mu,
        "checkpoint_overhead": faults.checkpoint_overhead,
    }


def fault_model_from_dict(data: dict[str, Any]) -> FaultModel:
    _check_version(data)
    return FaultModel(
        k=data["k"],
        mu=data["mu"],
        checkpoint_overhead=data.get("checkpoint_overhead", 0.0),
    )


def _bus_to_dict(bus: BusConfig) -> dict[str, Any]:
    return {
        "slot_order": list(bus.slot_order),
        "slot_lengths": dict(bus.slot_lengths),
        "ms_per_byte": bus.ms_per_byte,
    }


def _bus_from_dict(data: dict[str, Any]) -> BusConfig:
    return BusConfig(
        slot_order=tuple(data["slot_order"]),
        slot_lengths=data["slot_lengths"],
        ms_per_byte=data["ms_per_byte"],
    )


# -- implementation (solution) ---------------------------------------------

def implementation_to_dict(implementation: Implementation) -> dict[str, Any]:
    return {
        "version": FORMAT_VERSION,
        "policies": {
            process: {
                "n_replicas": policy.n_replicas,
                "reexecutions": list(policy.reexecutions),
                "checkpoints": policy.checkpoints,
            }
            for process, policy in implementation.policies.items()
        },
        "mapping": {
            process: list(nodes) for process, nodes in implementation.mapping.items()
        },
        "bus": _bus_to_dict(implementation.bus),
    }


def implementation_from_dict(data: dict[str, Any]) -> Implementation:
    _check_version(data)
    policies = PolicyAssignment(
        {
            process: Policy(
                n_replicas=p["n_replicas"],
                reexecutions=tuple(p["reexecutions"]),
                checkpoints=p.get("checkpoints", 0),
            )
            for process, p in data["policies"].items()
        }
    )
    mapping = ReplicaMapping(
        {process: tuple(nodes) for process, nodes in data["mapping"].items()}
    )
    return Implementation(
        policies=policies, mapping=mapping, bus=_bus_from_dict(data["bus"])
    )


# -- schedule (export only) ----------------------------------------------------

def schedule_to_dict(schedule: SystemSchedule) -> dict[str, Any]:
    """Deployable artefact: per-node tables, MEDL, analysis results."""
    return {
        "version": FORMAT_VERSION,
        "fault_model": {"k": schedule.faults.k, "mu": schedule.faults.mu},
        "bus": _bus_to_dict(schedule.bus),
        "nodes": {
            node: [
                {
                    "instance": placed.instance_id,
                    "process": placed.process,
                    "start": placed.root_start,
                    "finish": placed.root_finish,
                    "worst_case_finish": placed.wcf,
                }
                for placed in schedule.node_table(node)
            ]
            for node in sorted(schedule.node_chains)
        },
        "medl": [
            {
                "message": d.bus_message_id,
                "sender": d.sender_node,
                "round": d.round_index,
                "slot_start": d.slot_start,
                "slot_end": d.slot_end,
                "offset_bytes": d.offset_bytes,
                "size_bytes": d.size_bytes,
            }
            for d in sorted(
                schedule.medl, key=lambda d: (d.slot_start, d.offset_bytes)
            )
        ],
        "completions": dict(schedule.completions),
        "schedule_length": schedule.makespan,
        "schedulable": schedule.is_schedulable,
    }


# -- whole cases ---------------------------------------------------------------

def save_case(
    path: str | Path,
    application: Application,
    architecture: Architecture,
    faults: FaultModel,
    implementation: Implementation | None = None,
) -> None:
    """Persist a problem (and optionally its solution) as one JSON file."""
    payload: dict[str, Any] = {
        "version": FORMAT_VERSION,
        "application": application_to_dict(application),
        "architecture": architecture_to_dict(architecture),
        "fault_model": fault_model_to_dict(faults),
    }
    if implementation is not None:
        payload["implementation"] = implementation_to_dict(implementation)
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_case(
    path: str | Path,
) -> tuple[Application, Architecture, FaultModel, Implementation | None]:
    """Inverse of :func:`save_case`."""
    payload = json.loads(Path(path).read_text())
    _check_version(payload)
    implementation = None
    if "implementation" in payload:
        implementation = implementation_from_dict(payload["implementation"])
    return (
        application_from_dict(payload["application"]),
        architecture_from_dict(payload["architecture"]),
        fault_model_from_dict(payload["fault_model"]),
        implementation,
    )


def _check_version(data: dict[str, Any]) -> None:
    version = data.get("version", FORMAT_VERSION)
    if version != FORMAT_VERSION:
        raise ModelError(
            f"unsupported format version {version} (expected {FORMAT_VERSION})"
        )
