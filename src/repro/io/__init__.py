"""Serialization of models, implementations, schedules and queue payloads.

:mod:`repro.io.json_codec` persists problems/solutions; the queue wire
format (jobs, results, fingerprints) lives in :mod:`repro.io.queue_codec`
and is imported lazily by the queue subsystem — it is not re-exported here
to keep ``import repro.io`` free of the experiments layer.
"""

from repro.io.json_codec import (
    application_from_dict,
    application_to_dict,
    architecture_from_dict,
    architecture_to_dict,
    fault_model_from_dict,
    fault_model_to_dict,
    implementation_from_dict,
    implementation_to_dict,
    load_case,
    save_case,
    schedule_to_dict,
)

__all__ = [
    "application_from_dict",
    "application_to_dict",
    "architecture_from_dict",
    "architecture_to_dict",
    "fault_model_from_dict",
    "fault_model_to_dict",
    "implementation_from_dict",
    "implementation_to_dict",
    "load_case",
    "save_case",
    "schedule_to_dict",
]
