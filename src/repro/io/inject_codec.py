"""Wire format of fault-injection shard jobs and results.

Shard jobs ride the same broker as optimizer jobs
(:mod:`repro.io.queue_codec`), distinguished by a ``"kind"`` marker in
the payload — legacy :class:`~repro.experiments.parallel.CaseJob`
payloads carry no marker and stay byte-identical, so existing sweep
fingerprints are unaffected.

A shard job embeds the full :class:`~repro.inject.target.InjectTarget`
(application, fault model, implementation, schedule record) as canonical
JSON: any ``ftds worker`` on any machine can lease it cold, rebuild the
replay context deterministically and re-materialize the shard's scenario
set from coordinates alone.  The job's durable identity is
:func:`repro.inject.partition.shard_fingerprint` — a function of the
target fingerprint and the shard coordinates, **not** of the payload
text, so it survives codec-layer reformatting.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.errors import QueueError
from repro.inject.aggregate import ShardResult
from repro.inject.partition import ShardSpec
from repro.inject.target import InjectTarget
from repro.io.queue_codec import canonical_json

INJECT_FORMAT_VERSION = 1

#: Payload marker of shard jobs (see :func:`repro.io.queue_codec.payload_kind`).
INJECT_JOB_KIND = "inject_shard"


def encode_shard_job(target_dict: dict[str, Any], spec: ShardSpec) -> str:
    """Canonical shard-job payload.

    Takes the target's *dict* form so a driver enqueueing hundreds of
    shards serializes the (large, shared) target once, not per shard.
    """
    return canonical_json(
        {
            "kind": INJECT_JOB_KIND,
            "version": INJECT_FORMAT_VERSION,
            "target": target_dict,
            "spec": spec.to_dict(),
        }
    )


def decode_shard_job(text: str) -> tuple[InjectTarget, ShardSpec, str]:
    """Decode one shard job; returns (target, spec, target fingerprint).

    The fingerprint is recomputed from the embedded target's canonical
    JSON — identical to :meth:`InjectTarget.fingerprint` — so worker-side
    caches key on the same identity the driver planned with.
    """
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise QueueError(f"undecodable shard payload: {error}") from None
    if data.get("kind") != INJECT_JOB_KIND:
        raise QueueError("payload is not an inject shard job")
    _check_version(data)
    target_fp = hashlib.sha256(
        canonical_json(data["target"]).encode()
    ).hexdigest()
    return (
        InjectTarget.from_dict(data["target"]),
        ShardSpec.from_dict(data["spec"]),
        target_fp,
    )


def encode_shard_result(result: ShardResult) -> str:
    """One acked shard result (the broker's stored result text)."""
    return canonical_json(
        {
            "kind": INJECT_JOB_KIND,
            "version": INJECT_FORMAT_VERSION,
            "result": result.to_dict(),
        }
    )


def decode_shard_result(text: str) -> ShardResult:
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise QueueError(f"undecodable shard result: {error}") from None
    if data.get("kind") != INJECT_JOB_KIND:
        raise QueueError("payload is not an inject shard result")
    _check_version(data)
    return ShardResult.from_dict(data["result"])


def _check_version(data: dict[str, Any]) -> None:
    version = data.get("version", INJECT_FORMAT_VERSION)
    if version != INJECT_FORMAT_VERSION:
        raise QueueError(
            f"unsupported inject format version {version} "
            f"(expected {INJECT_FORMAT_VERSION})"
        )
