"""Wire format of structured run traces (versioned, append-only JSONL).

A *trace* is a sequence of JSON objects, one per line, written append-only
by :class:`repro.obs.trace.Tracer`.  A distributed run produces one file
per participating process — the driver's file plus one sibling
``<path>.<worker_id>`` shard per worker — and every event carries the
run's ``run`` identifier, so the analysis layer
(:mod:`repro.obs.analyze`) stitches the shards back into one causal
trace by ``run_id`` alone.

Event kinds (the ``kind`` field):

``meta``
    First line of every file: who wrote it (``worker``, ``pid``) and
    under which run.
``span``
    One *completed* nested span, written at span exit: ``name``, file-
    local ``id``, ``parent`` id (``null`` for roots), start ``ts``
    (epoch seconds), duration ``dur`` (seconds), ``status`` (``ok`` /
    ``error`` — the error case carries the exception type in
    ``error``), and free-form JSON-scalar ``attrs``.  Children exit
    before their parents, so a child's line always precedes its
    parent's — the ordering invariant the tests pin down.
``event``
    An instantaneous point event (heartbeats, progress marks).
``metrics``
    A :meth:`repro.obs.metrics.MetricsRegistry.snapshot` embedded in
    the stream, so counters travel with the trace they explain.

The schema is versioned by ``v``; decoding rejects unknown versions and
malformed events loudly (:class:`~repro.errors.TraceError`) instead of
mis-summarizing a corrupt artifact.
"""

from __future__ import annotations

import glob
import json
import os
from typing import Any, Iterable, Iterator

from repro.errors import TraceError

#: Bump when the event layout changes incompatibly.
TRACE_SCHEMA_VERSION = 1

KIND_META = "meta"
KIND_SPAN = "span"
KIND_EVENT = "event"
KIND_METRICS = "metrics"

EVENT_KINDS = (KIND_META, KIND_SPAN, KIND_EVENT, KIND_METRICS)

SPAN_OK = "ok"
SPAN_ERROR = "error"

#: Required fields per event kind (on top of the common envelope).
_REQUIRED: dict[str, tuple[str, ...]] = {
    KIND_META: ("worker", "pid"),
    KIND_SPAN: ("name", "id", "parent", "dur", "status"),
    KIND_EVENT: ("name",),
    KIND_METRICS: ("snapshot",),
}


def encode_trace_event(event: dict[str, Any]) -> str:
    """One canonical JSONL line (sorted keys, no whitespace, no newline)."""
    return json.dumps(event, sort_keys=True, separators=(",", ":"))


def validate_trace_event(event: Any) -> dict[str, Any]:
    """Check one decoded event against the schema; returns it on success."""
    if not isinstance(event, dict):
        raise TraceError(f"trace event must be a JSON object, got {type(event).__name__}")
    version = event.get("v")
    if version != TRACE_SCHEMA_VERSION:
        raise TraceError(
            f"unsupported trace schema version {version!r} "
            f"(this build reads v{TRACE_SCHEMA_VERSION})"
        )
    for field in ("run", "kind"):
        if not isinstance(event.get(field), str) or not event[field]:
            raise TraceError(f"trace event missing {field!r}: {event!r}")
    if not isinstance(event.get("ts"), (int, float)):
        raise TraceError(f"trace event missing numeric 'ts': {event!r}")
    kind = event["kind"]
    if kind not in _REQUIRED:
        raise TraceError(f"unknown trace event kind {kind!r}")
    for field in _REQUIRED[kind]:
        if field not in event:
            raise TraceError(f"{kind} event missing {field!r}: {event!r}")
    if kind == KIND_SPAN:
        if event["status"] not in (SPAN_OK, SPAN_ERROR):
            raise TraceError(f"span status must be ok|error: {event!r}")
        if not isinstance(event["id"], int):
            raise TraceError(f"span id must be an int: {event!r}")
        parent = event["parent"]
        if parent is not None and not isinstance(parent, int):
            raise TraceError(f"span parent must be an int or null: {event!r}")
        if not isinstance(event["dur"], (int, float)) or event["dur"] < 0:
            raise TraceError(f"span dur must be a non-negative number: {event!r}")
        attrs = event.get("attrs", {})
        if not isinstance(attrs, dict):
            raise TraceError(f"span attrs must be an object: {event!r}")
    return event


def decode_trace_event(line: str) -> dict[str, Any]:
    """Decode and validate one JSONL line."""
    try:
        event = json.loads(line)
    except json.JSONDecodeError as error:
        raise TraceError(f"undecodable trace line: {error}") from None
    return validate_trace_event(event)


def iter_trace_events(path: str) -> Iterator[dict[str, Any]]:
    """Validated events of one trace file, in file order."""
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield decode_trace_event(line)
            except TraceError as error:
                raise TraceError(f"{path}:{number}: {error}") from None


def trace_files(path: str) -> list[str]:
    """``path`` plus every worker shard written next to it.

    A driver tracing to ``P`` spawns workers that write ``P.<worker_id>``
    siblings (see :func:`repro.obs.worker_trace_path`); globbing them
    back here is what lets every CLI analysis command take just the
    driver's path.
    """
    files = [path] if os.path.exists(path) else []
    files.extend(sorted(candidate for candidate in glob.glob(glob.escape(path) + ".*") if os.path.isfile(candidate)))
    if not files:
        raise TraceError(f"no trace file at {path}")
    return files


def expand_trace_paths(paths: Iterable[str]) -> list[str]:
    """Expand every given path to itself plus its worker shards (deduped)."""
    seen: dict[str, None] = {}
    for path in paths:
        for file in trace_files(path):
            seen.setdefault(file, None)
    return list(seen)
