"""Wire format of the distributed experiment queue (canonical JSON).

Jobs (:class:`~repro.experiments.parallel.CaseJob`) and results
(:class:`~repro.experiments.runner.VariantRun` maps carrying
:class:`~repro.schedule.record.ScheduleRecord` IRs) cross machine
boundaries as canonical JSON text — sorted keys, no whitespace — so

* payloads are **pickle-free**: any worker process on any machine (or a
  non-Python consumer) can decode them;
* encoding is **byte-stable**: ``encode(decode(text)) == text``, which is
  what lets a job's canonical payload double as its durable identity
  (:func:`job_fingerprint`) for resume/checkpoint bookkeeping.

Bus configurations reuse the dict codec of :mod:`repro.io.json_codec`.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.errors import QueueError
from repro.experiments.parallel import CaseJob
from repro.experiments.runner import VariantRun
from repro.io.json_codec import _bus_from_dict, _bus_to_dict
from repro.opt.strategy import OptimizationConfig
from repro.schedule.record import ScheduleRecord

QUEUE_FORMAT_VERSION = 1


def canonical_json(data: Any) -> str:
    """Serialize ``data`` deterministically (sorted keys, no whitespace)."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def payload_kind(text: str) -> str | None:
    """The ``"kind"`` marker of a queue payload, if it carries one.

    Workers dispatch on this: fault-injection shards declare
    ``"inject_shard"`` (:mod:`repro.io.inject_codec`) while legacy
    :class:`CaseJob` payloads carry no marker (``None``) and keep their
    original, byte-stable encoding.
    """
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise QueueError(f"undecodable job payload: {error}") from None
    if not isinstance(data, dict):
        raise QueueError("job payload must be a JSON object")
    kind = data.get("kind")
    return kind if isinstance(kind, str) else None


# -- optimization config ------------------------------------------------------

def config_to_dict(config: OptimizationConfig) -> dict[str, Any]:
    return {
        "greedy_max_iterations": config.greedy_max_iterations,
        "tabu_max_iterations": config.tabu_max_iterations,
        "tabu_tenure": config.tabu_tenure,
        "rounds": config.rounds,
        "time_limit_s": config.time_limit_s,
        "ms_per_byte": config.ms_per_byte,
        "bus": None if config.bus is None else _bus_to_dict(config.bus),
        "minimize": config.minimize,
        "optimize_bus": config.optimize_bus,
        "bus_scale_factors": list(config.bus_scale_factors),
        "cache_size": config.cache_size,
    }


def config_from_dict(data: dict[str, Any]) -> OptimizationConfig:
    bus = data.get("bus")
    return OptimizationConfig(
        greedy_max_iterations=data["greedy_max_iterations"],
        tabu_max_iterations=data["tabu_max_iterations"],
        tabu_tenure=data["tabu_tenure"],
        rounds=data["rounds"],
        time_limit_s=data["time_limit_s"],
        ms_per_byte=data["ms_per_byte"],
        bus=None if bus is None else _bus_from_dict(bus),
        minimize=data["minimize"],
        optimize_bus=data["optimize_bus"],
        bus_scale_factors=tuple(data["bus_scale_factors"]),
        cache_size=data["cache_size"],
    )


# -- jobs ---------------------------------------------------------------------

def case_job_to_dict(job: CaseJob) -> dict[str, Any]:
    return {
        "version": QUEUE_FORMAT_VERSION,
        "n_processes": job.n_processes,
        "n_nodes": job.n_nodes,
        "k": job.k,
        "mu": job.mu,
        "seed": job.seed,
        "variants": list(job.variants),
        "time_scale": job.time_scale,
        "config": None if job.config is None else config_to_dict(job.config),
        "label": job.label,
    }


def case_job_from_dict(data: dict[str, Any]) -> CaseJob:
    _check_version(data)
    config = data.get("config")
    return CaseJob(
        n_processes=data["n_processes"],
        n_nodes=data["n_nodes"],
        k=data["k"],
        mu=data["mu"],
        seed=data["seed"],
        variants=tuple(data["variants"]),
        time_scale=data["time_scale"],
        config=None if config is None else config_from_dict(config),
        label=data["label"],
    )


def encode_job(job: CaseJob) -> str:
    """Canonical job payload — the text whose hash identifies the job."""
    return canonical_json(case_job_to_dict(job))


def decode_job(text: str) -> CaseJob:
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise QueueError(f"undecodable job payload: {error}") from None
    return case_job_from_dict(data)


def job_fingerprint(index: int, payload: str) -> str:
    """Durable identity of submission slot ``index`` of a sweep.

    The slot index participates so that a sweep may legitimately contain
    two identical jobs, and so that resuming re-maps results onto the same
    deterministic submission order the serial path uses.
    """
    return hashlib.sha256(f"{index}:{payload}".encode()).hexdigest()


# -- results ------------------------------------------------------------------

def variant_run_to_dict(run: VariantRun) -> dict[str, Any]:
    return {
        "variant": run.variant,
        "makespan": run.makespan,
        "schedulable": run.schedulable,
        "seconds": run.seconds,
        "evaluations": run.evaluations,
        "record": None if run.record is None else run.record.to_json_dict(),
    }


def variant_run_from_dict(data: dict[str, Any]) -> VariantRun:
    record = data.get("record")
    return VariantRun(
        variant=data["variant"],
        makespan=data["makespan"],
        schedulable=data["schedulable"],
        seconds=data["seconds"],
        evaluations=data["evaluations"],
        record=None if record is None else ScheduleRecord.from_json_dict(record),
    )


def encode_result(runs: dict[str, VariantRun], elapsed_s: float) -> str:
    """One acked job result: every variant's run plus worker wall-clock."""
    return canonical_json(
        {
            "version": QUEUE_FORMAT_VERSION,
            "elapsed_s": elapsed_s,
            "runs": {
                variant: variant_run_to_dict(run)
                for variant, run in runs.items()
            },
        }
    )


def decode_result(text: str) -> tuple[dict[str, VariantRun], float]:
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise QueueError(f"undecodable result payload: {error}") from None
    _check_version(data)
    runs = {
        variant: variant_run_from_dict(run)
        for variant, run in data["runs"].items()
    }
    return runs, data["elapsed_s"]


def _check_version(data: dict[str, Any]) -> None:
    version = data.get("version", QUEUE_FORMAT_VERSION)
    if version != QUEUE_FORMAT_VERSION:
        raise QueueError(
            f"unsupported queue format version {version} "
            f"(expected {QUEUE_FORMAT_VERSION})"
        )
