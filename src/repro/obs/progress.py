"""The one progress-line reporter every sweep driver shares.

Before this module, three drivers (serial/pool experiment fan-out, the
distributed sweep driver and the injection sweep driver) each carried
their own copy of the ``[i/total] description (elapsed)`` emitter, with
subtly different elapsed formatting between the serial and queue paths.
:class:`ProgressReporter` owns the format, counts steps itself, and —
being obs-backed — mirrors every step into the metrics registry and the
active trace as a point event, so a ``--trace`` run records the same
milestones a human watched scroll by.
"""

from __future__ import annotations

from typing import Callable

from repro import obs


def format_elapsed(seconds: float) -> str:
    """Human elapsed time: ``3.2s`` below a minute, ``2m03.4s`` above."""
    if seconds < 60.0:
        return f"{seconds:.1f}s"
    minutes = int(seconds // 60.0)
    return f"{minutes}m{seconds - 60.0 * minutes:04.1f}s"


class ProgressReporter:
    """Numbered progress lines over an optional sink, mirrored into obs.

    ``emit`` is the line sink (``None`` silences output but the metrics
    and trace events still flow); ``total`` the expected step count;
    ``metric`` the registry counter incremented per step.
    """

    def __init__(
        self,
        emit: Callable[[str], None] | None,
        total: int,
        metric: str = "progress.steps",
    ) -> None:
        self.emit = emit
        self.total = total
        self.metric = metric
        self.done = 0

    def step(
        self,
        description: str,
        elapsed_s: float | None = None,
        note: str = "",
    ) -> None:
        """Report one completed unit of work.

        ``elapsed_s`` is the unit's own wall-clock (worker-side for queue
        paths); ``note`` carries driver-specific detail (scenario counts,
        phase timings) appended inside the parentheses.
        """
        self.done += 1
        obs.get_registry().inc(self.metric)
        parts = []
        if note:
            parts.append(note)
        if elapsed_s is not None:
            parts.append(format_elapsed(elapsed_s))
        suffix = f" ({', '.join(parts)})" if parts else ""
        line = f"[{self.done}/{self.total}] {description}{suffix}"
        obs.event(
            "progress",
            step=self.done,
            total=self.total,
            description=description,
            **({"elapsed_s": elapsed_s} if elapsed_s is not None else {}),
        )
        if self.emit is not None:
            self.emit(line)

    def announce(self, line: str) -> None:
        """Emit an unnumbered one-off line (resume notices and the like)."""
        obs.event("progress.note", description=line)
        if self.emit is not None:
            self.emit(line)
