"""Structured run traces: nested spans over append-only JSONL.

A :class:`Tracer` writes the versioned event stream defined by
:mod:`repro.io.trace_codec` to one file.  Spans nest through a
per-thread stack — ``with tracer.span("schedule"):`` inside
``with tracer.span("optimize"):`` records the parent link — and are
written **on exit**, so a child's line always precedes its parent's and
a crash loses at most the spans still open.  Exceptions mark the span
``status="error"`` (with the exception type) and propagate untouched.

The disabled path is a :class:`NullTracer` whose ``span`` returns one
shared no-op context manager: call sites guard nothing, instrument
unconditionally, and pay only an attribute lookup and an empty
``__enter__``/``__exit__`` when tracing is off.  Nothing in here may
influence scheduling, search or simulation results — the tracer only
ever *observes* (the traced-equals-untraced parity suite pins this
down).
"""

from __future__ import annotations

import os
import socket
import threading
import time
import uuid
from typing import Any

from repro.io.trace_codec import (
    KIND_EVENT,
    KIND_META,
    KIND_METRICS,
    KIND_SPAN,
    SPAN_ERROR,
    SPAN_OK,
    TRACE_SCHEMA_VERSION,
    encode_trace_event,
)


def new_run_id() -> str:
    """A fresh globally unique run identifier."""
    return uuid.uuid4().hex[:16]


class _NullSpan:
    """Reusable no-op span handle (the disabled fast path)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def set(self, **attrs: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracer stand-in when tracing is off: every operation is a no-op."""

    enabled = False
    run_id = ""

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attrs: Any) -> None:
        return None

    def snapshot_metrics(self, registry=None) -> None:
        return None

    def flush(self) -> None:
        return None

    def close(self) -> None:
        return None


NULL_TRACER = NullTracer()


class _Span:
    """Context manager recording one completed span on exit."""

    __slots__ = ("tracer", "name", "attrs", "id", "parent", "ts", "_started")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs

    def set(self, **attrs: Any) -> None:
        """Attach attributes discovered while the span runs (e.g. counts)."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_Span":
        tracer = self.tracer
        stack = tracer._stack()
        self.parent = stack[-1] if stack else None
        self.id = tracer._next_id()
        stack.append(self.id)
        self.ts = tracer._clock()
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        dur = time.perf_counter() - self._started
        stack = self.tracer._stack()
        if stack and stack[-1] == self.id:
            stack.pop()
        event = {
            "name": self.name,
            "id": self.id,
            "parent": self.parent,
            "dur": dur,
            "status": SPAN_OK if exc_type is None else SPAN_ERROR,
        }
        if exc_type is not None:
            event["error"] = exc_type.__name__
        if self.attrs:
            event["attrs"] = self.attrs
        self.tracer._write(KIND_SPAN, self.ts, event)
        return None  # never swallow the exception


class Tracer:
    """Writes one process's JSONL trace shard (see module docstring)."""

    enabled = True

    def __init__(
        self,
        path: str,
        run_id: str | None = None,
        worker: str = "driver",
        label: str | None = None,
    ) -> None:
        self.path = path
        self.run_id = run_id or new_run_id()
        self.worker = worker
        self._file = open(path, "a", encoding="utf-8")
        self._lock = threading.Lock()
        self._ids = iter(range(1, 1 << 62)).__next__
        self._local = threading.local()
        self._clock = time.time
        meta: dict[str, Any] = {
            "worker": worker,
            "pid": os.getpid(),
            "host": socket.gethostname() or "unknown",
        }
        if label:
            meta["label"] = label
        self._write(KIND_META, self._clock(), meta)

    # -- internals -----------------------------------------------------------

    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _next_id(self) -> int:
        with self._lock:
            return self._ids()

    def _write(self, kind: str, ts: float, body: dict[str, Any]) -> None:
        event = {
            "v": TRACE_SCHEMA_VERSION,
            "run": self.run_id,
            "kind": kind,
            "ts": ts,
        }
        event.update(body)
        line = encode_trace_event(event) + "\n"
        with self._lock:
            if not self._file.closed:
                self._file.write(line)
                self._file.flush()

    # -- public API ----------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> _Span:
        """Open a nested span; written (with duration) when the block exits."""
        return _Span(self, name, attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """Record one instantaneous point event."""
        body: dict[str, Any] = {"name": name}
        if attrs:
            body["attrs"] = attrs
        self._write(KIND_EVENT, self._clock(), body)

    def snapshot_metrics(self, registry=None) -> None:
        """Embed the registry's current snapshot into the trace stream."""
        if registry is None:
            from repro.obs.metrics import get_registry

            registry = get_registry()
        self._write(
            KIND_METRICS, self._clock(), {"snapshot": registry.snapshot()}
        )

    def flush(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.flush()

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.close()
