"""Unified telemetry: structured run traces + a process-local metrics registry.

One substrate for "where did the time and the failures go", threaded
through all four layers of the stack (scheduler/evaluator, search,
queue, injection):

* **Traces** (:mod:`repro.obs.trace`): nested spans with a ``run_id``,
  emitted as append-only JSONL under the versioned schema of
  :mod:`repro.io.trace_codec`.  A distributed sweep produces one shard
  file per process; :mod:`repro.obs.analyze` stitches them back into a
  single causal tree by ``run_id``.
* **Metrics** (:mod:`repro.obs.metrics`): always-on process-local
  counters/gauges/histograms, snapshotted into trace events and
  exportable as a Prometheus-style text page.
* **Progress** (:mod:`repro.obs.progress`): the one progress-line
  reporter every driver shares.

Tracing is **off by default**: the module-level :func:`span`/:func:`event`
helpers dispatch to a :class:`~repro.obs.trace.NullTracer` whose
operations are no-ops, so instrumented code needs no guards and the
disabled path costs only an attribute lookup (the ``obs.overhead_pct``
benchmark field keeps this honest).  Nothing in this package may alter
optimization or simulation results — the traced-vs-untraced parity
suite asserts byte-identical records and aggregates.

Cross-process propagation: :func:`enable_tracing` (with
``export_env=True``) exports the trace path and run id through the
``FTDS_TRACE`` / ``FTDS_TRACE_RUN`` environment variables; spawned
worker processes call :func:`adopt_env_tracing` and write sibling shard
files ``<path>.<worker_id>`` under the same run id.
"""

from __future__ import annotations

import os
from typing import Any

from repro.obs.metrics import (
    MetricsRegistry,
    get_registry,
    render_prometheus,
    reset_metrics,
)
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer, new_run_id

#: Environment variables carrying the active trace to spawned workers.
TRACE_PATH_ENV = "FTDS_TRACE"
TRACE_RUN_ENV = "FTDS_TRACE_RUN"

_TRACER: Tracer | NullTracer = NULL_TRACER

__all__ = [
    "MetricsRegistry",
    "NullTracer",
    "Tracer",
    "adopt_env_tracing",
    "disable_tracing",
    "enable_tracing",
    "enabled",
    "event",
    "get_registry",
    "new_run_id",
    "render_prometheus",
    "reset_metrics",
    "span",
    "snapshot_metrics",
    "tracer",
    "worker_trace_path",
]


def tracer() -> Tracer | NullTracer:
    """The process's active tracer (a no-op NullTracer by default)."""
    return _TRACER


def enabled() -> bool:
    """True when a real tracer is installed."""
    return _TRACER.enabled


def span(name: str, **attrs: Any):
    """Open a span on the active tracer (no-op when tracing is off)."""
    return _TRACER.span(name, **attrs)


def event(name: str, **attrs: Any) -> None:
    """Record a point event on the active tracer (no-op when off)."""
    _TRACER.event(name, **attrs)


def snapshot_metrics(registry: MetricsRegistry | None = None) -> None:
    """Snapshot the metrics registry into the active trace (no-op when off)."""
    _TRACER.snapshot_metrics(registry)


def worker_trace_path(base: str, worker_id: str) -> str:
    """The shard file a worker writes next to the driver's trace file."""
    safe = "".join(
        ch if ch.isalnum() or ch in "-_." else "-" for ch in worker_id
    )
    return f"{base}.{safe}"


def enable_tracing(
    path: str,
    run_id: str | None = None,
    worker: str = "driver",
    label: str | None = None,
    export_env: bool = False,
) -> Tracer:
    """Install a real tracer writing to ``path`` and return it.

    ``export_env=True`` additionally publishes the path and run id in the
    process environment so worker processes spawned from here (the
    ``multiprocessing`` spawn context copies ``os.environ``) join the
    same run via :func:`adopt_env_tracing`.
    """
    global _TRACER
    if _TRACER.enabled:
        _TRACER.close()
    _TRACER = Tracer(path, run_id=run_id, worker=worker, label=label)
    if export_env:
        os.environ[TRACE_PATH_ENV] = path
        os.environ[TRACE_RUN_ENV] = _TRACER.run_id
    return _TRACER


def disable_tracing() -> None:
    """Close any active tracer and restore the no-op default."""
    global _TRACER
    if _TRACER.enabled:
        _TRACER.close()
    _TRACER = NULL_TRACER
    os.environ.pop(TRACE_PATH_ENV, None)
    os.environ.pop(TRACE_RUN_ENV, None)


def adopt_env_tracing(worker_id: str) -> Tracer | None:
    """Join the run exported via the environment, as worker ``worker_id``.

    Returns the installed tracer, or ``None`` when no trace is exported
    (or one is already active in this process — local *threads* share
    the driver's tracer instead of opening shard files).
    """
    base = os.environ.get(TRACE_PATH_ENV)
    if not base or _TRACER.enabled:
        return None
    return enable_tracing(
        worker_trace_path(base, worker_id),
        run_id=os.environ.get(TRACE_RUN_ENV) or None,
        worker=worker_id,
    )
