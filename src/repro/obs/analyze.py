"""Trace analysis: stitch JSONL shards by run_id, profile the span tree.

Feeds the ``ftds trace summarize|top|export`` commands.  Loading
validates every event against the versioned schema
(:mod:`repro.io.trace_codec`), groups events by ``run_id`` and — because
span ids are only unique per file — qualifies every span by its source
file before linking children to parents.  The result is one causal tree
per run spanning driver and worker processes, plus the merged metrics
picture (last registry snapshot per worker, counters summed across
workers).

The headline numbers ``summarize`` reports:

* **time by span tree** — per span name (aggregated over the tree),
  total seconds, *self* seconds (total minus direct children) and call
  counts, sorted by self time: a wall-clock profile of the run;
* **attribution** — the fraction of every root span's wall time covered
  by its named children, the "≥95% of wall time is attributed"
  acceptance bar of the telemetry layer;
* **queue overhead per shard/job** — worker-side ``job`` span self time
  (lease/decode/ack bookkeeping around the traced payload work);
* **cache / tier effectiveness** — evaluator cache hits vs exact vs
  ranked pricings, injection per-tier scenario throughput and broker
  lease/ack/nack/dead-letter counts, straight from the merged registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.errors import TraceError
from repro.io.trace_codec import (
    KIND_EVENT,
    KIND_META,
    KIND_METRICS,
    KIND_SPAN,
    expand_trace_paths,
    iter_trace_events,
)
from repro.obs.metrics import merge_snapshots


@dataclass
class SpanNode:
    """One completed span, linked into its per-worker tree."""

    name: str
    worker: str
    ts: float
    dur: float
    status: str
    attrs: dict[str, Any] = field(default_factory=dict)
    error: str | None = None
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def self_s(self) -> float:
        """Seconds not covered by direct children (cannot go negative)."""
        return max(0.0, self.dur - sum(child.dur for child in self.children))


@dataclass
class TraceRun:
    """Everything one run_id's stitched shards contain."""

    run_id: str
    files: list[str]
    workers: dict[str, dict[str, Any]]  # worker -> meta event
    roots: list[SpanNode]  # parentless spans, all workers, by start time
    spans: list[SpanNode]  # every span, by start time
    events: list[dict[str, Any]]
    metrics: dict[str, Any]  # merged registry snapshot across workers

    @property
    def wall_s(self) -> float:
        """Wall-clock of the run as seen by its longest root span."""
        return max((root.dur for root in self.roots), default=0.0)


def available_runs(paths: Iterable[str]) -> dict[str, list[str]]:
    """run_id -> files that carry events of it (after shard expansion)."""
    runs: dict[str, list[str]] = {}
    for path in expand_trace_paths(paths):
        for event in iter_trace_events(path):
            files = runs.setdefault(event["run"], [])
            if path not in files:
                files.append(path)
    return runs


def load_run(paths: Iterable[str], run_id: str | None = None) -> TraceRun:
    """Stitch every shard of one run into a :class:`TraceRun`.

    With ``run_id=None`` the files must contain exactly one run; multiple
    runs raise with the candidate ids so the caller can pick one.
    """
    files = expand_trace_paths(paths)
    runs = available_runs(files)
    if not runs:
        raise TraceError(f"no trace events in {', '.join(files)}")
    if run_id is None:
        if len(runs) > 1:
            raise TraceError(
                f"trace files contain {len(runs)} runs "
                f"({', '.join(sorted(runs))}); pass --run to pick one"
            )
        run_id = next(iter(runs))
    elif run_id not in runs:
        raise TraceError(
            f"run {run_id} not present; available: {', '.join(sorted(runs))}"
        )

    workers: dict[str, dict[str, Any]] = {}
    events: list[dict[str, Any]] = []
    snapshots_by_worker: dict[str, dict[str, Any]] = {}
    spans: list[SpanNode] = []
    links: list[tuple[SpanNode, tuple[str, int] | None]] = []
    by_key: dict[tuple[str, int], SpanNode] = {}

    for path in runs[run_id]:
        worker = path  # fallback until the file's meta line names it
        for event in iter_trace_events(path):
            if event["run"] != run_id:
                continue
            kind = event["kind"]
            if kind == KIND_META:
                worker = event["worker"]
                workers[worker] = event
            elif kind == KIND_SPAN:
                node = SpanNode(
                    name=event["name"],
                    worker=worker,
                    ts=event["ts"],
                    dur=event["dur"],
                    status=event["status"],
                    attrs=event.get("attrs", {}),
                    error=event.get("error"),
                )
                spans.append(node)
                by_key[(path, event["id"])] = node
                parent = event["parent"]
                links.append(
                    (node, (path, parent) if parent is not None else None)
                )
            elif kind == KIND_EVENT:
                events.append(event)
            elif kind == KIND_METRICS:
                # Snapshots are cumulative: the last one per worker wins.
                snapshots_by_worker[worker] = event["snapshot"]

    roots: list[SpanNode] = []
    for node, parent_key in links:
        parent = by_key.get(parent_key) if parent_key is not None else None
        if parent is None:
            roots.append(node)
        else:
            parent.children.append(node)
    for node in spans:
        node.children.sort(key=lambda child: child.ts)
    spans.sort(key=lambda node: node.ts)
    roots.sort(key=lambda node: node.ts)

    return TraceRun(
        run_id=run_id,
        files=runs[run_id],
        workers=workers,
        roots=roots,
        spans=spans,
        events=events,
        metrics=merge_snapshots(snapshots_by_worker.values()),
    )


# -- profiling ----------------------------------------------------------------


def time_by_name(run: TraceRun) -> list[dict[str, Any]]:
    """Aggregate the span tree by name: count, total and self seconds."""
    rows: dict[str, dict[str, Any]] = {}
    for node in run.spans:
        row = rows.setdefault(
            node.name,
            {"name": node.name, "count": 0, "total_s": 0.0, "self_s": 0.0,
             "errors": 0},
        )
        row["count"] += 1
        row["total_s"] += node.dur
        row["self_s"] += node.self_s
        if node.status == "error":
            row["errors"] += 1
    return sorted(rows.values(), key=lambda row: -row["self_s"])


def attribution(run: TraceRun) -> dict[str, Any]:
    """Fraction of root wall time attributed to named child spans.

    Anchored on the driver's ``cli.*`` root(s) when the trace has them —
    that is the run's wall clock; worker-side ``job`` roots overlap it
    and would double-count.  Traces without a CLI root (library use) fall
    back to all roots.
    """
    anchors = [root for root in run.roots if root.name.startswith("cli.")]
    if not anchors:
        anchors = run.roots
    total = 0.0
    attributed = 0.0
    for root in anchors:
        total += root.dur
        attributed += sum(child.dur for child in root.children)
    return {
        "roots": len(anchors),
        "wall_s": total,
        "attributed_s": attributed,
        "attributed_pct": 100.0 * attributed / total if total > 0 else 0.0,
    }


def queue_overhead(run: TraceRun) -> dict[str, Any]:
    """Worker-side queue bookkeeping around the traced payload work."""
    jobs = [node for node in run.spans if node.name == "job"]
    if not jobs:
        return {"jobs": 0, "total_s": 0.0, "overhead_s": 0.0,
                "overhead_per_job_s": 0.0}
    total = sum(node.dur for node in jobs)
    overhead = sum(node.self_s for node in jobs)
    return {
        "jobs": len(jobs),
        "total_s": total,
        "overhead_s": overhead,
        "overhead_per_job_s": overhead / len(jobs),
    }


def effectiveness(run: TraceRun) -> dict[str, Any]:
    """Cache/tier/broker effectiveness from the merged registry snapshot."""
    counters = run.metrics.get("counters", {})
    gauges = run.metrics.get("gauges", {})

    hits = counters.get("evaluator.cache_hits", 0.0)
    exact = counters.get("evaluator.exact_evaluations", 0.0)
    ranked = counters.get("evaluator.ranked_evaluations", 0.0)
    requests = hits + exact + ranked
    tiers = {}
    for name, value in counters.items():
        if name.startswith("inject.tier.") and name.endswith(".scenarios"):
            tier = name[len("inject.tier."):-len(".scenarios")]
            seconds = counters.get(f"inject.tier.{tier}.elapsed_s", 0.0)
            tiers[tier] = {
                "scenarios": value,
                "elapsed_s": seconds,
                "scenarios_per_sec": value / seconds if seconds > 0 else 0.0,
            }
    return {
        "evaluator": {
            "requests": requests,
            "cache_hits": hits,
            "cache_hit_rate": hits / requests if requests else 0.0,
            "exact": exact,
            "ranked": ranked,
            "record_rebuilds": counters.get("evaluator.record_rebuilds", 0.0),
        },
        "broker": {
            "leases": counters.get("queue.leases", 0.0),
            "acks": counters.get("queue.acks", 0.0),
            "nacks": counters.get("queue.nacks", 0.0),
            "dead_letters": gauges.get("queue.depth.dead", 0.0),
        },
        "inject_tiers": tiers,
    }


def summarize(run: TraceRun) -> dict[str, Any]:
    """The full JSON-safe summary behind ``ftds trace summarize``."""
    return {
        "run": run.run_id,
        "files": run.files,
        "workers": sorted(run.workers),
        "spans": len(run.spans),
        "events": len(run.events),
        "wall_s": run.wall_s,
        "attribution": attribution(run),
        "by_name": time_by_name(run),
        "queue": queue_overhead(run),
        "effectiveness": effectiveness(run),
    }


# -- rendering ----------------------------------------------------------------


def _tree_lines(node: SpanNode, depth: int, limit: int,
                lines: list[str]) -> None:
    flag = "" if node.status == "ok" else f" !{node.error or 'error'}"
    lines.append(
        f"{'  ' * depth}{node.name:<{max(1, 28 - 2 * depth)}} "
        f"{node.dur:9.3f}s  self {node.self_s:8.3f}s{flag}"
    )
    if depth + 1 < limit:
        for child in node.children:
            _tree_lines(child, depth + 1, limit, lines)


def format_summary(run: TraceRun, depth: int = 4) -> str:
    """Human-readable summary (span tree + profile + effectiveness)."""
    summary = summarize(run)
    att = summary["attribution"]
    lines = [
        f"run {run.run_id}: {len(run.files)} shard file(s), "
        f"{len(run.workers)} worker(s), {summary['spans']} span(s)",
        f"wall {run.wall_s:.3f}s; {att['attributed_pct']:.1f}% of root time "
        f"attributed to named spans",
        "",
        "span tree (per worker root):",
    ]
    for root in run.roots:
        lines.append(f"-- {root.worker}")
        _tree_lines(root, 1, depth, lines)
    lines += ["", "time by span name (self-time profile):"]
    lines.append(
        f"  {'name':<24} {'count':>6} {'total_s':>10} {'self_s':>10}"
    )
    for row in summary["by_name"]:
        lines.append(
            f"  {row['name']:<24} {row['count']:>6} "
            f"{row['total_s']:>10.3f} {row['self_s']:>10.3f}"
            + (f"  ({row['errors']} error(s))" if row["errors"] else "")
        )
    queue = summary["queue"]
    if queue["jobs"]:
        lines += [
            "",
            f"queue: {queue['jobs']} job(s), "
            f"{queue['overhead_s']:.3f}s broker overhead "
            f"({queue['overhead_per_job_s'] * 1000.0:.1f}ms/job)",
        ]
    eff = summary["effectiveness"]
    evaluator = eff["evaluator"]
    if evaluator["requests"]:
        lines += [
            "",
            f"evaluator: {evaluator['requests']:.0f} requests, "
            f"{100.0 * evaluator['cache_hit_rate']:.1f}% cache hits, "
            f"{evaluator['exact']:.0f} exact / {evaluator['ranked']:.0f} "
            f"ranked pricings, {evaluator['record_rebuilds']:.0f} rebuilds",
        ]
    for tier, data in sorted(eff["inject_tiers"].items()):
        lines.append(
            f"inject[{tier}]: {data['scenarios']:.0f} scenarios in "
            f"{data['elapsed_s']:.3f}s "
            f"({data['scenarios_per_sec']:.0f}/s)"
        )
    broker = eff["broker"]
    if broker["leases"] or broker["acks"]:
        lines.append(
            f"broker: {broker['leases']:.0f} leases, {broker['acks']:.0f} "
            f"acks, {broker['nacks']:.0f} nacks, "
            f"{broker['dead_letters']:.0f} dead-lettered"
        )
    return "\n".join(lines)


def format_top(run: TraceRun, limit: int = 10) -> str:
    """Top spans by self time, flamegraph-style one-liners."""
    rows = time_by_name(run)[:limit]
    wall = run.wall_s or 1.0
    lines = [f"top {len(rows)} span name(s) by self time (wall {run.wall_s:.3f}s):"]
    for row in rows:
        lines.append(
            f"  {row['self_s']:9.3f}s {100.0 * row['self_s'] / wall:5.1f}%  "
            f"{row['name']} (x{row['count']})"
        )
    return "\n".join(lines)
