"""Process-local metrics registry: counters, gauges, histograms.

Zero-dependency and always-on: incrementing a counter is one dict lookup
plus a float add, cheap enough for every layer (scheduler passes, broker
lease/ack/nack, injection phases) to report unconditionally, whether or
not a trace is being written.  Tracing snapshots the registry into the
trace stream (:meth:`repro.obs.trace.Tracer.snapshot_metrics`); the
:func:`render_prometheus` exporter turns a snapshot into the standard
text exposition format for scraping.

Three instrument kinds, all keyed by dotted names:

* :class:`Counter` — monotonically increasing total (events, seconds);
* :class:`Gauge` — last-write-wins level (queue depth, cache size);
* :class:`Histogram` — bucketed distribution with count/sum/min/max
  (job durations, span latencies).

Registries compose: :meth:`MetricsRegistry.merge` folds one registry
into another (the injection runner times each shard against a private
registry, then folds it into the process-wide one), and
:func:`merge_snapshots` does the same over the JSON form when stitching
multi-worker traces.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Iterable

#: Default histogram bucket upper bounds, in seconds (latency-shaped).
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 300.0,
)


class Counter:
    """Monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """Last-write-wins level."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Cumulative-bucket distribution (Prometheus semantics)."""

    __slots__ = ("bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(sorted(bounds))
        self.bucket_counts = [0] * len(self.bounds)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1


class _Timer:
    """Context manager adding elapsed seconds to ``<name>_s`` (+ calls)."""

    __slots__ = ("registry", "name", "started")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self.registry = registry
        self.name = name

    def __enter__(self) -> "_Timer":
        self.started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = time.perf_counter() - self.started
        self.registry.counter(self.name + "_s").inc(elapsed)
        self.registry.counter(self.name + "_calls").inc()


class MetricsRegistry:
    """One process-local (or scope-local) family of named instruments."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        # Guards instrument *creation* only (worker threads of the
        # in-memory broker race on first use); mutating an existing
        # instrument is plain attribute arithmetic under the GIL.
        self._lock = threading.Lock()

    # -- instrument access ---------------------------------------------------

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._counters.setdefault(name, Counter())
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.setdefault(name, Gauge())
        return instrument

    def histogram(
        self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.setdefault(
                    name, Histogram(bounds)
                )
        return instrument

    # -- shorthands ----------------------------------------------------------

    def inc(self, name: str, amount: float = 1.0) -> None:
        self.counter(name).inc(amount)

    def set(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def timer(self, name: str) -> _Timer:
        """Time a block into the ``<name>_s`` / ``<name>_calls`` counters."""
        return _Timer(self, name)

    def value(self, name: str) -> float:
        """Current value of a counter or gauge named ``name`` (0 if unset)."""
        counter = self._counters.get(name)
        if counter is not None:
            return counter.value
        gauge = self._gauges.get(name)
        return gauge.value if gauge is not None else 0.0

    # -- composition ---------------------------------------------------------

    def merge(self, other: "MetricsRegistry", prefix: str = "") -> None:
        """Fold ``other`` into this registry (counters add, gauges overwrite)."""
        for name, counter in other._counters.items():
            self.counter(prefix + name).inc(counter.value)
        for name, gauge in other._gauges.items():
            self.gauge(prefix + name).set(gauge.value)
        for name, histogram in other._histograms.items():
            mine = self.histogram(prefix + name, histogram.bounds)
            _merge_histogram(mine, _histogram_dict(histogram))

    # -- snapshots -----------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """JSON-safe dump of every instrument (the trace/metrics payload)."""
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "gauges": {
                name: gauge.value
                for name, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                name: _histogram_dict(histogram)
                for name, histogram in sorted(self._histograms.items())
            },
        }


def _histogram_dict(histogram: Histogram) -> dict[str, Any]:
    data: dict[str, Any] = {
        "count": histogram.count,
        "sum": histogram.total,
        "buckets": [
            [bound, count]
            for bound, count in zip(histogram.bounds, histogram.bucket_counts)
        ],
    }
    if histogram.count:
        data["min"] = histogram.min
        data["max"] = histogram.max
    return data


def _merge_histogram(mine: Histogram, data: dict[str, Any]) -> None:
    """Fold one snapshot-form histogram into a live one (matching bounds)."""
    counts = {bound: count for bound, count in data.get("buckets", [])}
    for index, bound in enumerate(mine.bounds):
        mine.bucket_counts[index] += int(counts.get(bound, 0))
    mine.count += int(data.get("count", 0))
    mine.total += float(data.get("sum", 0.0))
    if data.get("count"):
        mine.min = min(mine.min, float(data.get("min", mine.min)))
        mine.max = max(mine.max, float(data.get("max", mine.max)))


def merge_snapshots(snapshots: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Combine per-worker registry snapshots into one (counters add).

    Counters and histogram buckets sum across workers; for gauges the
    maximum is kept — a queue-depth or cache-size gauge merged across
    workers is best read as "the largest level any process saw".
    """
    merged = MetricsRegistry()
    seen_gauges: dict[str, float] = {}
    for snapshot in snapshots:
        for name, value in snapshot.get("counters", {}).items():
            merged.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            seen_gauges[name] = max(seen_gauges.get(name, float("-inf")), value)
        for name, data in snapshot.get("histograms", {}).items():
            bounds = tuple(bound for bound, _ in data.get("buckets", []))
            mine = merged.histogram(name, bounds or DEFAULT_BUCKETS)
            _merge_histogram(mine, data)
    for name, value in seen_gauges.items():
        merged.gauge(name).set(value)
    return merged.snapshot()


def _prom_name(name: str) -> str:
    """Dotted registry name -> Prometheus-legal metric name."""
    return "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )


def render_prometheus(snapshot: dict[str, Any]) -> str:
    """Render a registry snapshot as a Prometheus text exposition page."""
    lines: list[str] = []
    for name, value in snapshot.get("counters", {}).items():
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value:g}")
    for name, value in snapshot.get("gauges", {}).items():
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {value:g}")
    for name, data in snapshot.get("histograms", {}).items():
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} histogram")
        for bound, count in data.get("buckets", []):
            lines.append(f'{metric}_bucket{{le="{bound:g}"}} {count}')
        lines.append(f'{metric}_bucket{{le="+Inf"}} {data.get("count", 0)}')
        lines.append(f"{metric}_sum {data.get('sum', 0.0):g}")
        lines.append(f"{metric}_count {data.get('count', 0)}")
    return "\n".join(lines) + "\n"


#: The process-wide default registry every layer reports into.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry (one per worker process)."""
    return _REGISTRY


def reset_metrics() -> MetricsRegistry:
    """Swap in a fresh process-wide registry (tests; returns the new one)."""
    global _REGISTRY
    _REGISTRY = MetricsRegistry()
    return _REGISTRY
