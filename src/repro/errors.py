"""Exception hierarchy for the repro library.

All exceptions raised by this package derive from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
still distinguishing modelling mistakes from scheduling failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by :mod:`repro`."""


class ModelError(ReproError):
    """An application, architecture or policy model is ill-formed."""


class ConfigurationError(ReproError):
    """A bus/optimization configuration is inconsistent."""


class SchedulingError(ReproError):
    """The list scheduler could not produce a schedule."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class FaultToleranceViolation(ReproError):
    """A synthesized schedule failed validation under fault injection."""


class ExperimentJobError(ReproError):
    """An experiment job raised in a worker; carries the job description."""


class QueueError(ReproError):
    """A work-queue operation failed or a sweep dead-lettered jobs."""


class TraceError(ReproError):
    """A telemetry trace artifact is malformed or inconsistent."""
