"""Compact schedule IR: the canonical output of the list scheduler.

A :class:`ScheduleRecord` is the synthesized configuration ``S`` of the
paper (schedule tables + MEDL, §4) reduced to flat tuples: every process,
node and instance id is interned once into an index, and all per-instance
data lives in parallel arrays indexed by *placement order*.  The record is

* **immutable and hashable** — every field is a tuple of str/int/float, so
  records can key caches and be compared structurally;
* **cycle-free** — no field ever references the record or any other
  container twice, so retaining thousands of records adds no work to the
  cyclic GC (the reason the evaluator cache bound could be raised, see
  DESIGN.md);
* **picklable** — records cross process boundaries for the price of a few
  flat tuples, which is what lets experiment workers return full schedules
  instead of summary scalars.

Rich behaviour (per-node tables, Gantt, metrics, simulation) lives in
*views* that render lazily from a record bound to its model context —
see :class:`repro.schedule.table.SystemSchedule`.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping

from repro.errors import SchedulingError

#: Binding kinds, by code: what fixed an instance's root start time.
BIND_RELEASE = 0  # its own release time
BIND_NODE = 1  # the previous instance in the node's schedule
BIND_INPUT = 2  # the dominant input sender's arrival

BINDING_KINDS = ("release", "node", "input")


@dataclass(frozen=True, slots=True)
class ScheduleRecord:
    """One synthesized system schedule as flat, index-interned arrays.

    Index spaces
    ------------
    * *process index* — position in :attr:`processes`;
    * *node index* — position in :attr:`nodes`;
    * *instance index* — position in :attr:`instance_ids`, which is the
      list scheduler's placement order (the replay order of the simulator).

    Per-instance arrays (``instance_process`` … ``bindings``) are parallel
    to :attr:`instance_ids`.  A binding is an index triple ``(kind,
    source, budget)``: the kind code (see :data:`BINDING_KINDS`), the
    instance index of the constraining predecessor (``-1`` for release
    bindings) and the adversary budget at which that constraint dominated
    the worst case.  MEDL descriptors are packed ``(bus_message_id,
    node, round, slot_start, slot_end, offset_bytes, size_bytes)``
    tuples with the sender node interned.
    """

    processes: tuple[str, ...]
    nodes: tuple[str, ...]
    instance_ids: tuple[str, ...]
    instance_process: tuple[int, ...]
    instance_node: tuple[int, ...]
    root_start: tuple[float, ...]
    root_finish: tuple[float, ...]
    wcf: tuple[float, ...]
    finish_rows: tuple[tuple[float, ...], ...]
    bindings: tuple[tuple[int, int, int], ...]
    node_chains: tuple[tuple[int, ...], ...]  # per node index
    process_replicas: tuple[tuple[int, ...], ...]  # per process index
    completions: tuple[float, ...]  # per process index
    deadlines: tuple[float | None, ...]  # per process index
    medl: tuple[tuple[str, int, int, float, float, int, int], ...]
    k: int
    mu: float

    def __len__(self) -> int:
        return len(self.instance_ids)

    # -- schedule-level metrics -------------------------------------------

    @property
    def makespan(self) -> float:
        """Schedule length δ: latest guaranteed completion of any process."""
        if not self.completions:
            raise SchedulingError("schedule has no completions")
        return max(self.completions)

    def tardiness(self) -> dict[str, float]:
        """Per-process positive lateness versus its (absolute) deadline."""
        late: dict[str, float] = {}
        for index, deadline in enumerate(self.deadlines):
            if deadline is None:
                continue
            overshoot = self.completions[index] - deadline
            if overshoot > 1e-9:
                late[self.processes[index]] = overshoot
        return late

    def degree_of_schedulability(self) -> float:
        """Sum of deadline overshoots (0.0 when schedulable)."""
        total = 0.0
        for index, deadline in enumerate(self.deadlines):
            if deadline is None:
                continue
            overshoot = self.completions[index] - deadline
            if overshoot > 1e-9:
                total += overshoot
        return total

    @property
    def is_schedulable(self) -> bool:
        return self.degree_of_schedulability() == 0.0

    # -- lookups -----------------------------------------------------------

    def process_index(self, process: str) -> int:
        try:
            return self.processes.index(process)
        except ValueError:
            raise SchedulingError(f"unknown process {process!r}") from None

    def completion(self, process: str) -> float:
        return self.completions[self.process_index(process)]

    # -- critical path -----------------------------------------------------

    def critical_path(self) -> list[str]:
        """Process names on the chain of constraints behind the makespan.

        Starting from the process whose guaranteed completion equals the
        schedule length, follow each instance's binding backwards through
        the index triples (node predecessor or input sender) until a
        release-bound instance is reached.  Ordered source -> sink,
        deduplicated — the walk never touches the materialized views.
        """
        if not self.completions:
            raise SchedulingError("schedule has no completions")
        target = max(
            range(len(self.processes)),
            key=lambda p: (self.completions[p], self.processes[p]),
        )
        index = max(
            self.process_replicas[target],
            key=lambda i: (self.wcf[i], self.instance_ids[i]),
        )
        path: list[str] = []
        seen: set[int] = set()
        guard = 0
        while index >= 0:
            guard += 1
            if guard > len(self.instance_ids) + 1:
                raise SchedulingError("cyclic binding chain (internal error)")
            process = self.instance_process[index]
            if process not in seen:
                path.append(self.processes[process])
                seen.add(process)
            index = self.bindings[index][1]
        path.reverse()
        return path


    # -- stable JSON round-trip -------------------------------------------

    def to_json_dict(self) -> dict:
        """A JSON-safe dict whose round-trip is byte-stable.

        Tuples flatten to lists and ``None`` deadlines to ``null``; every
        leaf is a str/int/float that the :mod:`json` module reproduces
        exactly (float repr round-trips), so canonical re-encoding of
        :meth:`from_json_dict`'s output is byte-identical.  This is the
        wire format of the distributed experiment queue — records cross
        machine boundaries without pickle.
        """
        return {
            "version": RECORD_FORMAT_VERSION,
            "processes": list(self.processes),
            "nodes": list(self.nodes),
            "instance_ids": list(self.instance_ids),
            "instance_process": list(self.instance_process),
            "instance_node": list(self.instance_node),
            "root_start": list(self.root_start),
            "root_finish": list(self.root_finish),
            "wcf": list(self.wcf),
            "finish_rows": [list(row) for row in self.finish_rows],
            "bindings": [list(binding) for binding in self.bindings],
            "node_chains": [list(chain) for chain in self.node_chains],
            "process_replicas": [list(r) for r in self.process_replicas],
            "completions": list(self.completions),
            "deadlines": list(self.deadlines),
            "medl": [list(descriptor) for descriptor in self.medl],
            "k": self.k,
            "mu": self.mu,
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "ScheduleRecord":
        """Inverse of :meth:`to_json_dict` (strict on the format version)."""
        version = data.get("version", RECORD_FORMAT_VERSION)
        if version != RECORD_FORMAT_VERSION:
            raise SchedulingError(
                f"unsupported record format version {version} "
                f"(expected {RECORD_FORMAT_VERSION})"
            )
        return cls(
            processes=tuple(data["processes"]),
            nodes=tuple(data["nodes"]),
            instance_ids=tuple(data["instance_ids"]),
            instance_process=tuple(data["instance_process"]),
            instance_node=tuple(data["instance_node"]),
            root_start=tuple(data["root_start"]),
            root_finish=tuple(data["root_finish"]),
            wcf=tuple(data["wcf"]),
            finish_rows=tuple(tuple(row) for row in data["finish_rows"]),
            bindings=tuple(
                (binding[0], binding[1], binding[2])
                for binding in data["bindings"]
            ),
            node_chains=tuple(tuple(chain) for chain in data["node_chains"]),
            process_replicas=tuple(tuple(r) for r in data["process_replicas"]),
            completions=tuple(data["completions"]),
            deadlines=tuple(data["deadlines"]),
            medl=tuple(
                (d[0], d[1], d[2], d[3], d[4], d[5], d[6])
                for d in data["medl"]
            ),
            k=data["k"],
            mu=data["mu"],
        )


#: Version tag of the record wire format (bump on layout changes).
RECORD_FORMAT_VERSION = 1


class RecordBuilder:
    """Incremental construction of a :class:`ScheduleRecord`.

    The list scheduler appends one row per placement; ids are interned on
    first sight so the hot loop only pays dict lookups.  ``finish`` seals
    the arrays into the immutable record.
    """

    __slots__ = (
        "_processes",
        "_process_index",
        "_nodes",
        "_node_index",
        "instance_ids",
        "index_of",
        "instance_process",
        "instance_node",
        "root_start",
        "root_finish",
        "wcf",
        "finish_rows",
        "bindings",
        "_chains",
    )

    def __init__(self) -> None:
        self._processes: list[str] = []
        self._process_index: dict[str, int] = {}
        self._nodes: list[str] = []
        self._node_index: dict[str, int] = {}
        self.instance_ids: list[str] = []
        self.index_of: dict[str, int] = {}
        self.instance_process: list[int] = []
        self.instance_node: list[int] = []
        self.root_start: list[float] = []
        self.root_finish: list[float] = []
        self.wcf: list[float] = []
        self.finish_rows: list[tuple[float, ...]] = []
        self.bindings: list[tuple[int, int, int]] = []
        self._chains: dict[int, list[int]] = {}

    @property
    def process_count(self) -> int:
        return len(self._processes)

    @property
    def node_index(self) -> Mapping[str, int]:
        """The node -> index intern table (immutable proxy)."""
        return MappingProxyType(self._node_index)

    def process_id(self, process: str) -> int:
        index = self._process_index.get(process)
        if index is None:
            index = len(self._processes)
            self._process_index[process] = index
            self._processes.append(process)
        return index

    def node_id(self, node: str) -> int:
        index = self._node_index.get(node)
        if index is None:
            index = len(self._nodes)
            self._node_index[node] = index
            self._nodes.append(node)
        return index

    def chain(self, node_id: int) -> list[int]:
        """The (mutable) placement chain of ``node_id``, in index space."""
        chain = self._chains.get(node_id)
        if chain is None:
            chain = self._chains[node_id] = []
        return chain

    def place(
        self,
        iid: str,
        process_id: int,
        node_id: int,
        root_start: float,
        root_finish: float,
        wcf: float,
        finish_row: tuple[float, ...],
        binding: tuple[int, int, int],
    ) -> int:
        """Append one placement row; returns the new instance index."""
        index = len(self.instance_ids)
        self.index_of[iid] = index
        self.instance_ids.append(iid)
        self.instance_process.append(process_id)
        self.instance_node.append(node_id)
        self.root_start.append(root_start)
        self.root_finish.append(root_finish)
        self.wcf.append(wcf)
        self.finish_rows.append(finish_row)
        self.bindings.append(binding)
        self.chain(node_id).append(index)
        return index

    def snapshot(self) -> tuple:
        """Shallow-copy every accumulator (all elements are immutable).

        Together with :meth:`restore` this lets the incremental scheduler
        rewind a builder to a placement-rank boundary; one snapshot can
        seed any number of replays because ``restore`` copies again.
        """
        return (
            list(self._processes),
            dict(self._process_index),
            list(self._nodes),
            dict(self._node_index),
            list(self.instance_ids),
            dict(self.index_of),
            list(self.instance_process),
            list(self.instance_node),
            list(self.root_start),
            list(self.root_finish),
            list(self.wcf),
            list(self.finish_rows),
            list(self.bindings),
            {node_id: list(chain) for node_id, chain in self._chains.items()},
        )

    def restore(self, state: tuple) -> None:
        """Reset to a state captured by :meth:`snapshot`."""
        (
            processes,
            process_index,
            nodes,
            node_index,
            instance_ids,
            index_of,
            instance_process,
            instance_node,
            root_start,
            root_finish,
            wcf,
            finish_rows,
            bindings,
            chains,
        ) = state
        self._processes = list(processes)
        self._process_index = dict(process_index)
        self._nodes = list(nodes)
        self._node_index = dict(node_index)
        self.instance_ids = list(instance_ids)
        self.index_of = dict(index_of)
        self.instance_process = list(instance_process)
        self.instance_node = list(instance_node)
        self.root_start = list(root_start)
        self.root_finish = list(root_finish)
        self.wcf = list(wcf)
        self.finish_rows = list(finish_rows)
        self.bindings = list(bindings)
        self._chains = {
            node_id: list(chain) for node_id, chain in chains.items()
        }

    def finish(
        self,
        process_replicas: tuple[tuple[int, ...], ...],
        completions: tuple[float, ...],
        deadlines: tuple[float | None, ...],
        medl: tuple[tuple[str, int, int, float, float, int, int], ...],
        k: int,
        mu: float,
    ) -> ScheduleRecord:
        node_chains = tuple(
            tuple(self._chains.get(node_id, ()))
            for node_id in range(len(self._nodes))
        )
        return ScheduleRecord(
            processes=tuple(self._processes),
            nodes=tuple(self._nodes),
            instance_ids=tuple(self.instance_ids),
            instance_process=tuple(self.instance_process),
            instance_node=tuple(self.instance_node),
            root_start=tuple(self.root_start),
            root_finish=tuple(self.root_finish),
            wcf=tuple(self.wcf),
            finish_rows=tuple(self.finish_rows),
            bindings=tuple(self.bindings),
            node_chains=node_chains,
            process_replicas=process_replicas,
            completions=completions,
            deadlines=deadlines,
            medl=medl,
            k=k,
            mu=mu,
        )
