"""Modified partial-critical-path (PCP) priorities (paper §5.1, ref. [6]).

List scheduling extracts the highest-priority process from the ready list.
The priority of an instance is the length of the longest path from it to any
sink of the FT-extended graph, where

* a vertex costs its WCET plus the recovery slack its own re-executions may
  need (``C + e * (C + µ)``) — fault-tolerance overhead is part of the
  critical path, which is the "modification" relative to plain PCP;
* an edge costs one TDMA round when it crosses nodes (the expected wait for
  the sender's slot plus delivery), and nothing when it stays on a node.

Priorities are recomputed for every candidate implementation because both
the mapping (edge costs) and the policy assignment (vertex costs) change.
"""

from __future__ import annotations

from repro.model.fault import FaultModel
from repro.model.ftgraph import FTGraph
from repro.ttp.bus import BusConfig


def instance_weight(wcet: float, reexecutions: int, mu: float) -> float:
    """Path weight of one instance: WCET plus worst-case recovery time."""
    return wcet + reexecutions * (wcet + mu)


def pcp_priorities(
    ft: FTGraph,
    bus: BusConfig,
    faults: FaultModel,
) -> dict[str, float]:
    """Longest path to a sink for every instance of ``ft``."""
    round_length = bus.round_length
    mu = faults.mu
    instances = ft.instances
    succ_of = ft._succ
    priorities: dict[str, float] = {}
    for iid in reversed(ft.topological_order()):
        instance = instances[iid]
        weight = instance.wcet * (1 + instance.reexecutions) + instance.reexecutions * mu
        best_tail = 0.0
        for succ in succ_of[iid]:
            edge = round_length if instances[succ].node != instance.node else 0.0
            tail = edge + priorities[succ]
            if tail > best_tail:
                best_tail = tail
        priorities[iid] = weight + best_tail
    return priorities
