"""ASCII Gantt rendering of synthesized schedules.

Renders the root schedule of every node plus the TDMA bus as fixed-width
text, in the style of the paper's schedule figures: process boxes, shared
recovery slack (hatched), and bus slots with their frames.  Useful for
examples, debugging moves, and documentation.

Example output (two nodes, one message)::

    0        50        100       150       200
    |---------|---------|---------|---------|
    N1  [A        ][B   ]:::::::::
    N2            [C         ]::::::
    bus       --m_A_C--
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.schedule.table import SystemSchedule
from repro.ttp.medl import PACKED_ID, PACKED_SLOT_END, PACKED_SLOT_START

_MIN_WIDTH = 40
_MAX_WIDTH = 120


@dataclass(frozen=True)
class GanttOptions:
    """Rendering knobs."""

    width: int = 80  # characters used for the time axis
    show_slack: bool = True  # hatch the recovery-slack region per node
    show_bus: bool = True
    label_instances: bool = True  # write instance names inside boxes


def _scale(makespan: float, width: int) -> float:
    if makespan <= 0:
        raise ValueError("cannot render an empty schedule")
    return width / makespan


def _axis(makespan: float, width: int) -> list[str]:
    """Two header lines: tick values and tick marks."""
    ticks = 5
    step = makespan / ticks
    values = ""
    marks = ""
    per_tick = width // ticks
    for i in range(ticks):
        label = f"{i * step:.0f}"
        values += label.ljust(per_tick)
        marks += "|" + "-" * (per_tick - 1)
    values += f"{makespan:.0f}"
    marks += "|"
    return [values, marks]


def _paint(row: list[str], start: int, end: int, text: str) -> None:
    """Write ``text`` into ``row[start:end]`` clipped to the row length."""
    end = min(end, len(row))
    start = max(0, start)
    if end <= start:
        return
    body = text[: end - start].ljust(end - start)
    for offset, char in enumerate(body):
        row[start + offset] = char


def render_gantt(
    schedule: SystemSchedule,
    options: GanttOptions | None = None,
) -> str:
    """Render ``schedule`` as an ASCII Gantt chart.

    Painted straight from the record arrays — an export/debug rendering
    never materializes the placement view.
    """
    options = options or GanttOptions()
    record = schedule.record
    width = max(_MIN_WIDTH, min(options.width, _MAX_WIDTH))
    makespan = record.makespan
    scale = _scale(makespan, width)

    label_width = max(
        [len(node) for node in record.nodes] + [3]
    ) + 2
    lines = [
        " " * label_width + line for line in _axis(makespan, width)
    ]

    for node_index in sorted(
        range(len(record.nodes)), key=lambda i: record.nodes[i]
    ):
        chain = record.node_chains[node_index]
        row = [" "] * width
        slack_end_col = 0
        for index in chain:
            start = int(record.root_start[index] * scale)
            end = max(start + 1, int(record.root_finish[index] * scale))
            name = record.instance_ids[index] if options.label_instances else ""
            _paint(row, start, end, f"[{name}"[: end - start])
            if end - start >= 2:
                row[end - 1] = "]"
            slack_end_col = max(slack_end_col, int(record.wcf[index] * scale))
        if options.show_slack and chain:
            # Hatch from the last root finish to the node's worst case.
            start = int(record.root_finish[chain[-1]] * scale)
            for col in range(start, min(slack_end_col, width)):
                if row[col] == " ":
                    row[col] = ":"
        lines.append(f"{record.nodes[node_index]:<{label_width}}" + "".join(row))

    if options.show_bus and record.medl:
        row = [" "] * width
        for packed in record.medl:
            slot_start = packed[PACKED_SLOT_START]
            start = int(slot_start * scale)
            end = max(start + 1, int(packed[PACKED_SLOT_END] * scale))
            name = packed[PACKED_ID].split("[")[0]
            _paint(row, start, end, f"-{name}"[: end - start])
            if end - start >= 2:
                row[end - 1] = "-"
        lines.append(f"{'bus':<{label_width}}" + "".join(row))

    lines.append(
        f"{'':<{label_width}}schedule length {makespan:.1f} ms"
        f" ([x] root schedule, :::: recovery slack)"
    )
    return "\n".join(lines)


def render_node_table(schedule: SystemSchedule, node: str) -> str:
    """A plain-text schedule table for one node (start/finish/WCF rows)."""
    record = schedule.record
    rows = [f"schedule table of {node}:"]
    rows.append(f"{'instance':<26}{'start':>10}{'finish':>10}{'WCF':>10}")
    node_index = record.nodes.index(node) if node in record.nodes else -1
    chain = record.node_chains[node_index] if node_index >= 0 else ()
    for index in chain:
        rows.append(
            f"{record.instance_ids[index]:<26}{record.root_start[index]:>10.2f}"
            f"{record.root_finish[index]:>10.2f}{record.wcf[index]:>10.2f}"
        )
    return "\n".join(rows)
