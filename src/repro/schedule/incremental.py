"""Incremental (delta) re-scheduling around a captured base schedule.

The optimizer's neighbourhood moves change one process's mapping/policy;
the rest of the design is untouched.  A cold list-scheduling pass therefore
re-derives mostly identical rows.  This module captures one base schedule
as an :class:`EvalContext` — the sealed record plus the per-step trace and
periodic :class:`~repro.schedule.state.SchedulerSnapshot`s — and replays
*moved* variants against it:

1. **Graph overlay** — :func:`repro.model.ftgraph.ft_graph_with_move`
   rebuilds only the moved process's cone of the FT graph, sharing every
   untouched object with the base by reference.
2. **Prefix resume** — instances whose parameters and priorities are
   unchanged are popped in the base order until the first rank at which a
   changed instance *could* become ready (its base ready rank).  The replay
   restores the deepest snapshot strictly below that rank instead of
   re-scheduling the prefix.
3. **Suffix clean-copy** — after the divergence rank the replay still pops
   from a live heap (order may differ), but an instance whose inputs are
   provably unaffected — senders value-clean with unchanged parameters,
   the MEDL descriptors it reads byte-identical, the same chain predecessor
   with an equal tail row — has its base rows copied verbatim instead of
   re-running the release/worst-case machinery.  Bus packs are copied via a
   per-node cursor into the base pack sequence for as long as a node's pack
   stream matches the base exactly; the first mismatch switches that node
   to live first-fit packing forever.
4. **Convergence** — a recomputed instance whose rows come out equal to the
   base re-enters the clean set, so divergence cones close instead of
   poisoning everything downstream.

Byte-identity is the contract: the sealed delta record must equal the cold
``build_schedule_record`` of the moved implementation *exactly* (the
property suite in ``tests/opt/test_delta_parity.py`` enforces it, and
DESIGN.md documents the argument).  Whenever a precondition cannot be
established the kernel silently degrades to recomputation — the worst case
is a full replay, never a wrong record.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from heapq import heappop, heappush

import numpy as np

from repro.model.application import ProcessGraph
from repro.model.fault import FaultModel
from repro.model.ftgraph import FTGraph, ft_graph_with_move
from repro.model.mapping import ReplicaMapping
from repro.model.policy import PolicyAssignment
from repro.schedule.record import (
    BIND_INPUT,
    BIND_NODE,
    BIND_RELEASE,
    ScheduleRecord,
)
from repro.schedule.state import (
    SchedulerSnapshot,
    SchedulerState,
    ScheduleTrace,
    release_row,
)
from repro.ttp.bus import BusConfig


@dataclass(frozen=True, slots=True)
class MoveCone:
    """The schedule region a single-process design change can reach.

    ``earliest_rank`` is the deepest base placement rank guaranteed to be
    unaffected: every instance whose parameters or priority the move
    changes first becomes ready at or after it, so the base schedule's
    prefix below that rank is byte-reusable.  ``changed`` lists the
    instance ids with changed parameters or priorities (the cone's seeds —
    divergence may spread further during replay, which the kernel tracks
    dynamically).
    """

    process: str
    earliest_rank: int
    changed: frozenset[str]


@dataclass(slots=True)
class DeltaStats:
    """Work accounting of one delta replay (for benchmarks/telemetry)."""

    resumed_rank: int
    copied: int
    recomputed: int

    @property
    def scheduled(self) -> int:
        return self.copied + self.recomputed


class EvalContext:
    """One base schedule, captured with everything delta replays need."""

    __slots__ = (
        "graph",
        "ft",
        "faults",
        "bus",
        "priorities",
        "record",
        "trace",
        "no_recovery_rows",
        "base_index",
        "chain_pred",
        "reads",
        "medl_by_id",
        "snapshots",
        "_snapshot_ranks",
        "_root_finish_arr",
        "_ready_rank_arr",
        "_ancestors",
        "_pricer",
    )

    def __init__(
        self,
        graph: ProcessGraph,
        ft: FTGraph,
        faults: FaultModel,
        bus: BusConfig,
        priorities: dict[str, float],
        record: ScheduleRecord,
        trace: ScheduleTrace,
        no_recovery_rows: dict[str, tuple[float, ...]],
        medl_by_id: dict,
        snapshots: list[tuple[int, SchedulerSnapshot, dict[str, int]]],
    ) -> None:
        self.graph = graph
        self.ft = ft
        self.faults = faults
        self.bus = bus
        self.priorities = priorities
        self.record = record
        self.trace = trace
        self.no_recovery_rows = no_recovery_rows
        self.medl_by_id = medl_by_id
        self.snapshots = snapshots
        self._snapshot_ranks = [rank for rank, _, _ in snapshots]
        self._ancestors: dict[str, tuple[str, ...]] = {}
        self._pricer = None

        ids = record.instance_ids
        self.base_index = {iid: index for index, iid in enumerate(ids)}
        # Flat numpy mirrors of the per-rank base columns.  The kernel's
        # scalar paths index the record tuples directly (faster at this
        # row width), but batched consumers — evaluate_many aggregation,
        # cone statistics — slice these without re-walking Python tuples.
        self._root_finish_arr = np.asarray(record.root_finish)
        self._ready_rank_arr = np.asarray(
            [trace.ready_rank[iid] for iid in ids], dtype=np.int32
        )

        chain_pred: dict[str, str | None] = {}
        for chain in record.node_chains:
            prev: int | None = None
            for index in chain:
                chain_pred[ids[index]] = None if prev is None else ids[prev]
                prev = index
        self.chain_pred = chain_pred

        # Per-instance read sets against the *base* graph: which sender
        # instances and which MEDL descriptors its release row consults.
        # Valid for every instance the overlay shares with the base (the
        # moved process's own instances never take the copy path).
        reads: dict[str, tuple[tuple[str, ...], tuple[str, ...]]] = {}
        instances = ft.instances
        bus_messages = ft.bus_messages
        for iid, inst in instances.items():
            senders: list[str] = []
            desc_ids: list[str] = []
            for group in ft.inputs_of(iid):
                message_name = group.message.name
                replicated = len(group.sources) > 1
                for src_iid in group.sources:
                    senders.append(src_iid)
                    if instances[src_iid].node == inst.node:
                        continue
                    fast_id = f"{message_name}[{src_iid}]"
                    desc_ids.append(fast_id)
                    if replicated and f"{fast_id}#g" in bus_messages:
                        desc_ids.append(f"{fast_id}#g")
            reads[iid] = (tuple(senders), tuple(desc_ids))
        self.reads = reads

    # -- capture -----------------------------------------------------------

    @classmethod
    def capture(
        cls,
        graph: ProcessGraph,
        ft: FTGraph,
        faults: FaultModel,
        bus: BusConfig,
        *,
        stride: int | None = None,
    ) -> "EvalContext":
        """Run one traced cold schedule, snapshotting every ``stride`` ranks.

        The sealed record is byte-identical to an untraced
        ``build_schedule_record`` — tracing only observes.
        """
        if stride is None:
            # Denser snapshots help small problems (every restore skips
            # more of the prefix proportionally); for big ones the snapshot
            # copies themselves would dominate, so space them out.
            stride = max(8, len(ft) // 8)
        trace = ScheduleTrace()
        state = SchedulerState(graph, ft, faults, bus, trace=trace)
        snapshots: list[tuple[int, SchedulerSnapshot, dict[str, int]]] = []
        pack = trace.pack
        while not state.done:
            rank = state.rank
            if rank % stride == 0:
                counts = {node: len(seq) for node, seq in pack.items()}
                snapshots.append((rank, state.snapshot(), counts))
            state.step()
        record = state.seal()
        return cls(
            graph=graph,
            ft=ft,
            faults=faults,
            bus=bus,
            priorities=state.priorities,
            record=record,
            trace=trace,
            no_recovery_rows=state.no_recovery_rows,
            medl_by_id=state.bus_scheduler.medl.by_id(),
            snapshots=snapshots,
        )

    # -- cone --------------------------------------------------------------

    def cone_of(
        self,
        moved_ft: FTGraph,
        moved_priorities: dict[str, float],
        process: str,
    ) -> MoveCone:
        """Exact impact cone of a single-process change (see Move.cone)."""
        ready_rank = self.trace.ready_rank
        base_priorities = self.priorities
        changed: set[str] = set(self.ft.group_of[process])
        changed.update(moved_ft.group_of[process])
        # Every replica of the process shares its predecessors, so one
        # representative's base ready rank bounds them all (new replicas
        # included — they become ready exactly when the base ones did).
        earliest = ready_rank[self.ft.group_of[process][0]]
        for iid, priority in moved_priorities.items():
            base = base_priorities.get(iid)
            if base is not None and base != priority:
                changed.add(iid)
                rank = ready_rank[iid]
                if rank < earliest:
                    earliest = rank
        # Moving a process also changes which nodes *receive* its input
        # messages, which can create or remove frames of its predecessor
        # senders (a frame exists only if some receiver is remote).  Those
        # frames are packed at the sender's placement rank — possibly far
        # inside the otherwise-unaffected prefix — so a changed frame set
        # bounds the cone at the sender's placement, not its values.
        base_index = self.base_index
        base_out = self.ft._out_bus
        moved_out = moved_ft._out_bus
        for message in self.graph.in_messages(process):
            for src_iid in self.ft.group_of[message.src]:
                before = base_out.get(src_iid)
                after = moved_out.get(src_iid)
                if before is after:
                    continue
                if [m.id for m in before or ()] != [m.id for m in after or ()]:
                    changed.add(src_iid)
                    rank = base_index[src_iid]
                    if rank < earliest:
                        earliest = rank
        return MoveCone(
            process=process,
            earliest_rank=earliest,
            changed=frozenset(changed),
        )

    # -- incremental priorities --------------------------------------------

    def _ancestor_instances(self, process: str) -> tuple[str, ...]:
        """Instances of ``process``'s graph ancestors, descendants first.

        The order is a filtered reversal of the base placement order — a
        valid topological order of the instance DAG, so each ancestor is
        visited only after every affected successor.  Replica-count changes
        on ``process`` never alter *which* processes are its ancestors, so
        the tuple is cached per process across moves.
        """
        cached = self._ancestors.get(process)
        if cached is None:
            ancestor_procs: set[str] = set()
            stack = [process]
            in_messages = self.graph.in_messages
            while stack:
                for message in in_messages(stack.pop()):
                    src = message.src
                    if src not in ancestor_procs:
                        ancestor_procs.add(src)
                        stack.append(src)
            group_of = self.ft.group_of
            member = {
                iid for proc in ancestor_procs for iid in group_of[proc]
            }
            cached = tuple(
                iid
                for iid in reversed(self.record.instance_ids)
                if iid in member
            )
            self._ancestors[process] = cached
        return cached

    def moved_priorities(
        self, moved_ft: FTGraph, process: str
    ) -> dict[str, float]:
        """PCP priorities of the moved design, recomputed incrementally.

        Only the moved process's instances and their ancestors can change
        priority (a non-ancestor's longest path to a sink never runs
        through the moved process), so the base mapping is copied and just
        those entries are recomputed — with the exact arithmetic of
        :func:`repro.schedule.priorities.pcp_priorities`, so every value is
        bit-equal to a full recomputation on ``moved_ft``.
        """
        priorities = dict(self.priorities)
        for iid in self.ft.group_of[process]:
            del priorities[iid]
        mu = self.faults.mu
        round_length = self.bus.round_length
        instances = moved_ft.instances
        succ_of = moved_ft._succ
        for iid in (
            *moved_ft.group_of[process],
            *self._ancestor_instances(process),
        ):
            instance = instances[iid]
            weight = (
                instance.wcet * (1 + instance.reexecutions)
                + instance.reexecutions * mu
            )
            best_tail = 0.0
            for succ in succ_of[iid]:
                edge = (
                    round_length
                    if instances[succ].node != instance.node
                    else 0.0
                )
                tail = edge + priorities[succ]
                if tail > best_tail:
                    best_tail = tail
            priorities[iid] = weight + best_tail
        return priorities

    def _moved_priorities_batch(
        self, fts: list[FTGraph], process: str
    ) -> list[dict[str, float]]:
        """:meth:`moved_priorities` for many overlays of one process at once.

        All overlays share the ancestor closure and visit order, every
        ancestor's PCP weight is computed once, and non-parent ancestors —
        whose successor lists the overlays share with the base by
        reference — fold their per-overlay tails as ``(G,)`` numpy maxima.
        Values are bit-equal to the scalar path: float ``max`` is
        order-independent-exact and the ``edge + priority`` /
        ``weight + best`` additions are the same float64 ops elementwise.
        """
        count = len(fts)
        mu = self.faults.mu
        round_length = self.bus.round_length
        base_priorities = self.priorities
        base_instances = self.ft.instances
        old_group = self.ft.group_of[process]
        parent_processes = {
            message.src for message in self.graph.in_messages(process)
        }

        # Per-overlay new-group priorities: group sizes differ per overlay
        # and successors keep base priorities, so this part stays scalar.
        group_priorities: list[dict[str, float]] = []
        for ft in fts:
            instances = ft.instances
            succ_of = ft._succ
            values: dict[str, float] = {}
            for iid in ft.group_of[process]:
                instance = instances[iid]
                weight = (
                    instance.wcet * (1 + instance.reexecutions)
                    + instance.reexecutions * mu
                )
                best_tail = 0.0
                for succ in succ_of[iid]:
                    edge = (
                        round_length
                        if instances[succ].node != instance.node
                        else 0.0
                    )
                    tail = edge + base_priorities[succ]
                    if tail > best_tail:
                        best_tail = tail
                values[iid] = weight + best_tail
            group_priorities.append(values)

        # Ancestors in the cached topological order (descendants first).
        vectors: dict[str, np.ndarray] = {}
        for iid in self._ancestor_instances(process):
            instance = base_instances[iid]
            weight = (
                instance.wcet * (1 + instance.reexecutions)
                + instance.reexecutions * mu
            )
            node = instance.node
            if instance.process not in parent_processes:
                # Successor list shared with the base by reference: one
                # scan, vectorized over the overlays.
                best = np.zeros(count)
                for succ in self.ft._succ[iid]:
                    edge = (
                        round_length
                        if base_instances[succ].node != node
                        else 0.0
                    )
                    vector = vectors.get(succ)
                    if vector is None:
                        np.maximum(
                            best, edge + base_priorities[succ], out=best
                        )
                    else:
                        np.maximum(best, edge + vector, out=best)
                vectors[iid] = weight + best
            else:
                # Direct parent: its successor list was rebuilt per overlay
                # (it references the moved group), so fold per overlay.
                best = np.empty(count)
                for g, ft in enumerate(fts):
                    instances = ft.instances
                    best_tail = 0.0
                    group_values = group_priorities[g]
                    for succ in ft._succ[iid]:
                        edge = (
                            round_length
                            if instances[succ].node != node
                            else 0.0
                        )
                        vector = vectors.get(succ)
                        if vector is not None:
                            tail = edge + float(vector[g])
                        else:
                            value = group_values.get(succ)
                            if value is None:
                                value = base_priorities[succ]
                            tail = edge + value
                        if tail > best_tail:
                            best_tail = tail
                    best[g] = best_tail
                vectors[iid] = weight + best

        results: list[dict[str, float]] = []
        for g in range(count):
            priorities = dict(base_priorities)
            for iid in old_group:
                del priorities[iid]
            priorities.update(group_priorities[g])
            for iid, vector in vectors.items():
                priorities[iid] = float(vector[g])
            results.append(priorities)
        return results

    # -- delta replay ------------------------------------------------------

    def plan_move(
        self,
        policies: PolicyAssignment,
        mapping: ReplicaMapping,
        process: str,
    ) -> tuple[FTGraph, dict[str, float], MoveCone]:
        """Overlay graph, incremental priorities and impact cone of a move."""
        ft = ft_graph_with_move(
            self.ft, self.graph, policies, mapping, self.faults, process
        )
        priorities = self.moved_priorities(ft, process)
        return ft, priorities, self.cone_of(ft, priorities, process)

    def plan_moves(
        self,
        candidates: list[tuple[PolicyAssignment, ReplicaMapping, str]],
    ) -> list[tuple[FTGraph, dict[str, float], MoveCone]]:
        """:meth:`plan_move` for a whole neighbourhood, sharing per-process
        work: moves of the same process batch their ancestor-closure
        priority recomputation (:meth:`_moved_priorities_batch`) instead of
        redoing it per move.  Result order matches ``candidates``; every
        plan is bit-equal to its scalar :meth:`plan_move` counterpart.
        """
        by_process: dict[str, list[int]] = {}
        for index, (_, _, process) in enumerate(candidates):
            by_process.setdefault(process, []).append(index)
        results: list = [None] * len(candidates)
        for process, indices in by_process.items():
            fts = [
                ft_graph_with_move(
                    self.ft,
                    self.graph,
                    candidates[index][0],
                    candidates[index][1],
                    self.faults,
                    process,
                )
                for index in indices
            ]
            if len(indices) < 4:
                # Too few moves on this process to amortize the batched
                # setup; the scalar path is cheaper.
                for index, ft in zip(indices, fts):
                    priorities = self.moved_priorities(ft, process)
                    results[index] = (
                        ft,
                        priorities,
                        self.cone_of(ft, priorities, process),
                    )
            else:
                for index, ft, priorities in zip(
                    indices, fts, self._moved_priorities_batch(fts, process)
                ):
                    results[index] = (
                        ft,
                        priorities,
                        self.cone_of(ft, priorities, process),
                    )
        return results

    def pricer(self):
        """The lazily built vector pricing kernel over this base context.

        Imported on first use: :mod:`repro.schedule.vector` is only needed
        by the ranking tier, and the import indirection keeps the module
        graph acyclic.
        """
        pricer = self._pricer
        if pricer is None:
            from repro.schedule.vector import NeighbourhoodPricer

            pricer = self._pricer = NeighbourhoodPricer(self)
        return pricer

    def delta_record(
        self,
        policies: PolicyAssignment,
        mapping: ReplicaMapping,
        process: str,
    ) -> tuple[ScheduleRecord, DeltaStats]:
        """Schedule the moved design by replaying against the base.

        ``policies``/``mapping`` must differ from the base implementation
        only in ``process``.  Returns the sealed record — byte-identical
        to a cold schedule of the moved design — plus replay statistics.
        """
        state, stats = self.delta_schedule(policies, mapping, process)
        return state.seal(), stats

    def delta_schedule(
        self,
        policies: PolicyAssignment,
        mapping: ReplicaMapping,
        process: str,
        plan: tuple[FTGraph, dict[str, float], MoveCone] | None = None,
    ) -> tuple[SchedulerState, DeltaStats]:
        """Replay the moved design; returns the completed, *unsealed* state.

        Callers that only price a candidate read
        :meth:`SchedulerState.cost_view` off the returned state and skip
        sealing entirely; the winner of a neighbourhood is sealed once.
        ``plan`` short-circuits the overlay/priorities/cone computation
        when the caller already planned the move (:meth:`plan_moves`).
        """
        graph = self.graph
        faults = self.faults
        ft, priorities, cone = (
            self.plan_move(policies, mapping, process)
            if plan is None
            else plan
        )

        state = SchedulerState(
            graph, ft, faults, self.bus, priorities=priorities
        )
        old_group = self.ft.group_of[process]
        new_group = ft.group_of[process]
        cursors: dict[str, int] = {}
        resumed = 0
        # Deepest snapshot strictly below the cone: at any rank < earliest
        # no changed instance is in the heap yet (its base ready rank is
        # >= earliest), so the base heap/arrays restore verbatim.
        slot = bisect_right(self._snapshot_ranks, cone.earliest_rank - 1) - 1
        if slot >= 0:
            rank, snapshot, pack_counts = self.snapshots[slot]
            state.restore(snapshot)
            cursors.update(pack_counts)
            resumed = rank
            remaining = state.remaining
            grew = len(new_group) - len(old_group)
            if grew:
                if grew > 0:
                    # New replicas share the base replicas' predecessors,
                    # none of which are placed in the prefix (the process
                    # itself only becomes ready at/after the cone rank) —
                    # so the pending count transfers verbatim.
                    seed = remaining[old_group[0]]
                    for iid in new_group[len(old_group):]:
                        remaining[iid] = seed
                else:
                    for iid in old_group[len(new_group):]:
                        del remaining[iid]
                # Each successor's pending count grows by the group delta
                # exactly once, even when several distinct messages connect
                # the moved process to the same successor — the instance
                # DAG dedupes (src, dst) pairs.
                for dst in {m.dst for m in graph.out_messages(process)}:
                    for iid in ft.group_of[dst]:
                        remaining[iid] += grew
        stats = self._replay(state, ft, cone, cursors, resumed)
        return state, stats

    def _replay(
        self,
        state: SchedulerState,
        ft: FTGraph,
        cone: MoveCone,
        cursors: dict[str, int],
        resumed: int,
    ) -> DeltaStats:
        """Drive ``state`` to completion with base-copy fast paths."""
        faults = self.faults
        k = faults.k
        record = self.record
        base_ids = record.instance_ids
        base_index = self.base_index
        base_finish_rows = record.finish_rows
        base_root_start = record.root_start
        base_root_finish = record.root_finish
        base_wcf = record.wcf
        base_bindings = record.bindings
        base_no_recovery = self.no_recovery_rows
        base_tails = self.trace.tail_rows
        base_pack = self.trace.pack
        base_medl = self.medl_by_id
        chain_pred = self.chain_pred
        reads = self.reads

        builder = state.builder
        analyzer = state.analyzer
        tails = analyzer._tails
        bus_scheduler = state.bus_scheduler
        live_medl = bus_scheduler.medl.by_id()
        ready = state.ready
        remaining = state.remaining
        priorities = state.priorities
        root_finish = state.root_finish
        no_recovery_rows = state.no_recovery_rows
        succ_of = ft._succ
        instances = ft.instances
        group_of = ft.group_of

        # Instances whose *parameters* changed never copy and keep their
        # readers dirty; value-dirtiness additionally spreads to any
        # instance whose recomputed rows differ from the base, and clears
        # again on convergence.
        param_dirty = frozenset(
            set(self.ft.group_of[cone.process]) | set(group_of[cone.process])
        )
        dirty_values: set[str] = set(param_dirty)
        dirty_desc: set[str] = set()
        pack_dirty: set[str] = set()  # nodes whose pack stream diverged

        copied = 0
        recomputed = 0

        while ready:
            _, iid = heappop(ready)
            instance = instances[iid]
            node = instance.node
            base_at = (
                base_index.get(iid) if iid not in param_dirty else None
            )

            copy = False
            if base_at is not None:
                senders, desc_ids = reads[iid]
                if dirty_values.isdisjoint(senders) and (
                    not dirty_desc or dirty_desc.isdisjoint(desc_ids)
                ):
                    predecessor = chain_pred[iid]
                    if predecessor is None:
                        copy = not builder._chains.get(
                            builder._node_index.get(node, -1)
                        )
                    else:
                        copy = tails.get(node) == base_tails[predecessor]

            node_id = builder.node_id(node)
            chain = builder.chain(node_id)
            if copy:
                copied += 1
                kind, source, budget = base_bindings[base_at]
                if kind == BIND_NODE:
                    binding = (BIND_NODE, chain[-1], budget)
                elif kind == BIND_INPUT:
                    binding = (
                        BIND_INPUT,
                        builder.index_of[base_ids[source]],
                        budget,
                    )
                else:
                    binding = (BIND_RELEASE, -1, budget)
                finish_row = base_finish_rows[base_at]
                wcf = base_wcf[base_at]
                builder.place(
                    iid,
                    builder.process_id(instance.process),
                    node_id,
                    base_root_start[base_at],
                    base_root_finish[base_at],
                    wcf,
                    finish_row,
                    binding,
                )
                root_finish[iid] = base_root_finish[base_at]
                no_recovery_rows[iid] = base_no_recovery[iid]
                tails[node] = base_tails[iid]
            else:
                recomputed += 1
                rel_row, rel_sources = release_row(
                    ft, iid, faults, root_finish, no_recovery_rows, live_medl
                )
                result = analyzer.place(instance, rel_row)
                if result.dominant == "node" and chain:
                    binding = (BIND_NODE, chain[-1], result.dominant_budget)
                else:
                    source_iid = rel_sources[result.dominant_budget]
                    if source_iid is None:
                        binding = (BIND_RELEASE, -1, result.dominant_budget)
                    else:
                        binding = (
                            BIND_INPUT,
                            builder.index_of[source_iid],
                            result.dominant_budget,
                        )
                finish_row = result.finish_row
                wcf = result.wcf
                builder.place(
                    iid,
                    builder.process_id(instance.process),
                    node_id,
                    result.root_finish - instance.wcet,
                    result.root_finish,
                    wcf,
                    finish_row,
                    binding,
                )
                root_finish[iid] = result.root_finish
                no_recovery_rows[iid] = result.no_recovery_row

                # Convergence: rows identical to the base make this
                # instance transparent to its readers again.
                if base_at is not None:
                    if (
                        finish_row == base_finish_rows[base_at]
                        and result.no_recovery_row == base_no_recovery[iid]
                        and result.tail_row == base_tails[iid]
                    ):
                        dirty_values.discard(iid)
                    else:
                        dirty_values.add(iid)
                elif iid not in param_dirty:
                    dirty_values.add(iid)

            outgoing = ft.outgoing_bus_messages(iid)
            if outgoing:
                reuse_budget = 0
                for sibling in group_of[instance.process]:
                    if (
                        sibling != iid
                        and sibling in root_finish
                        and instances[sibling].node == node
                    ):
                        reuse_budget += instances[sibling].kill_cost
                fast_ready = finish_row[
                    reuse_budget if reuse_budget < k else k
                ]
                pack_ok = node not in pack_dirty
                sequence = base_pack.get(node, ())
                cursor = cursors.get(node, 0)
                for bus_message in outgoing:
                    data_ready = (
                        fast_ready if bus_message.kind == "fast" else wcf
                    )
                    bid = bus_message.id
                    if (
                        pack_ok
                        and cursor < len(sequence)
                        and sequence[cursor][0] == bid
                        and sequence[cursor][1] == data_ready
                    ):
                        bus_scheduler.copy_descriptor(base_medl[bid])
                        cursor += 1
                        continue
                    if pack_ok:
                        pack_ok = False
                        pack_dirty.add(node)
                    descriptor = bus_scheduler.schedule_message(
                        bid, node, bus_message.message.size, data_ready
                    )
                    # Field-wise divergence check: slot times derive from
                    # (sender node, round) and the payload size is fixed per
                    # message, so three fields decide descriptor equality.
                    base_desc = base_medl.get(bid)
                    if (
                        base_desc is None
                        or base_desc.round_index != descriptor.round_index
                        or base_desc.offset_bytes != descriptor.offset_bytes
                        or base_desc.sender_node != descriptor.sender_node
                    ):
                        dirty_desc.add(bid)
                cursors[node] = cursor

            for succ in succ_of[iid]:
                count = remaining[succ] - 1
                remaining[succ] = count
                if count == 0:
                    heappush(ready, (-priorities[succ], succ))

        return DeltaStats(
            resumed_rank=resumed, copied=copied, recomputed=recomputed
        )
