"""Vectorized neighbourhood pricing: numpy chain-DP / release-row kernels.

The delta kernel (:mod:`repro.schedule.incremental`) prices one move with a
python suffix replay; its byte-identity contract caps the speedup at the
fraction of the schedule a move genuinely reorders (54–67% for critical-path
moves, see DESIGN.md).  This module sidesteps that wall for *ranking*: it
prices an entire neighbourhood as array programs over the captured base
schedule's flat per-rank mirrors, exact where a candidate's cone is
replay-free and bounded-error elsewhere, so the search can re-price only a
shortlist exactly and seal just the winner.

Two layers:

* **Bit-parity kernels** — :func:`fast_cost_table`,
  :func:`release_row_vec`, :func:`chain_dp_batch`, :func:`place_vec` compute
  the same rows as the scalar :func:`repro.schedule.state.release_row` /
  :meth:`repro.schedule.analysis.WorstCaseAnalyzer.place` *bit-for-bit* on
  identical inputs (property-tested in
  ``tests/schedule/test_vector_parity.py``).  Parity is arranged, not
  accidental: float ``max`` is order-independent-exact so 2-D reductions are
  safe, but the scalar paths accumulate ``delayed += step`` / ``extra +=
  step`` *sequentially*, which rounds differently from ``base + t * step`` —
  the kernels therefore build their lattices with ``np.add.accumulate``
  along the budget axis, and first-tie-wins choices (``argmax`` first
  occurrence) mirror the scalar strict-``>`` updates in iteration order.

* **The estimator** — :class:`NeighbourhoodPricer` prices ``(process,
  nodes, policy)`` candidates against the base mirrors without building an
  FT-graph overlay or replaying: replica parameters are derived from the
  process/policy directly, release rows are computed from the *base*
  senders' no-recovery rows and MEDL (cacheable per ``(process, node)`` —
  every candidate that lands a replica on the same node shares one row),
  and the per-node chain DP runs batched across all candidates.  What the
  base mirrors cannot see — displaced chains, re-rounded frames, reordered
  pops from priority changes — is charged to an explicit error allowance
  returned with each price.  The allowance is a calibrated engineering
  bound (validated on seeded cases by the parity suite), *not* a proven
  invariant; correctness of the search never depends on it because the
  shortlist is re-priced by the exact delta kernel before anything is
  sealed (see ``Evaluator.rank_neighbourhood``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.model.fault import FaultModel
from repro.model.ftgraph import FTGraph, Instance, _guaranteed_backed
from repro.schedule.analysis import (
    PlacementResult,
    group_survivor_indices,
    guaranteed_completion,
)
from repro.schedule.state import group_release_inputs

if TYPE_CHECKING:
    from repro.model.policy import Policy
    from repro.schedule.incremental import EvalContext


# -- bit-parity kernels -----------------------------------------------------


def fast_cost_table(
    rows,
    slot_starts,
    steps,
    reexecs,
    kill_costs,
    k: int,
) -> np.ndarray:
    """Fast-frame silencing price per (sender, shared budget) — vectorized.

    ``rows`` is the ``(S, k+1)`` stack of the senders' no-recovery rows;
    the result ``costs[s, d]`` equals the scalar loop in
    :func:`repro.schedule.state.release_row`: the smallest number ``t`` of
    own recoveries that pushes sender ``s`` (already delayed by the shared
    budget ``d``) past its slot start, capped at the kill cost, or the kill
    cost when even ``reexec`` recoveries cannot miss the slot.

    The delay lattice accumulates ``step`` sequentially along the ``t``
    axis (``np.add.accumulate``) so every float matches the scalar
    ``delayed += step`` chain bit-for-bit.
    """
    rows = np.asarray(rows, dtype=np.float64)
    count = rows.shape[0]
    reexecs = np.asarray(reexecs, dtype=np.int64)
    kills = np.asarray(kill_costs, dtype=np.int64)
    tmax = int(reexecs.max()) if count else 0
    lattice = np.empty((count, k + 1, tmax + 1), dtype=np.float64)
    lattice[:, :, 0] = rows
    if tmax:
        lattice[:, :, 1:] = np.asarray(steps, dtype=np.float64)[:, None, None]
        np.add.accumulate(lattice, axis=2, out=lattice)
    thresholds = np.asarray(slot_starts, dtype=np.float64) + 1e-9
    miss = lattice > thresholds[:, None, None]
    miss &= (np.arange(tmax + 1) <= reexecs[:, None])[:, None, :]
    first = miss.argmax(axis=2)
    return np.where(
        miss.any(axis=2), np.minimum(first, kills[:, None]), kills[:, None]
    )


def price_group_into(
    immune: list,
    fast_senders: list,
    rel_row: list[float],
    sources: list,
    k: int,
) -> None:
    """Fold one input group's guaranteed arrivals into ``rel_row``/``sources``.

    In-place counterpart of the per-group body of
    :func:`repro.schedule.state.release_row` with the fast-cost double loop
    replaced by :func:`fast_cost_table`; the per-breakpoint entry sort and
    greedy survivor scan stay scalar because their tie semantics (tuple
    order including the sender id, survivor-by-index) are what the
    critical-path extraction depends on.
    """
    if not fast_senders and len(immune) == 1:
        arrival, _, src_iid = immune[0]
        for c in range(k + 1):
            if arrival > rel_row[c]:
                rel_row[c] = arrival
                sources[c] = src_iid
        return

    if fast_senders:
        costs = fast_cost_table(
            [sender[3] for sender in fast_senders],
            [sender[0] for sender in fast_senders],
            [sender[4] for sender in fast_senders],
            [sender[5] for sender in fast_senders],
            [sender[6] for sender in fast_senders],
            k,
        )
        breaks = np.flatnonzero(
            np.concatenate(
                ([True], (costs[:, 1:] != costs[:, :-1]).any(axis=0))
            )
        ).tolist()
        cost_rows = costs.tolist()
    else:
        breaks = [0]
        cost_rows = []

    for d in breaks:
        entries = list(immune)
        for costs_row, (
            _, slot_end, guaranteed_end, _, _, _, kill_cost, src_iid,
        ) in zip(cost_rows, fast_senders):
            fast_cost = costs_row[d]
            if fast_cost > 0:
                entries.append((slot_end, fast_cost, src_iid))
            if guaranteed_end is not None:
                entries.append(
                    (guaranteed_end, kill_cost - fast_cost, src_iid)
                )
        entries.sort()
        indices = group_survivor_indices(entries, k - d)
        for c in range(d, k + 1):
            survivor = entries[indices[c - d]]
            if survivor[0] > rel_row[c]:
                rel_row[c] = survivor[0]
                sources[c] = survivor[2]


def release_row_vec(
    ft: FTGraph,
    iid: str,
    faults: FaultModel,
    root_finish: dict[str, float],
    no_recovery_rows: dict[str, tuple[float, ...]],
    medl_by_id: dict,
) -> tuple[list[float], list[str | None]]:
    """Drop-in parity twin of :func:`repro.schedule.state.release_row`."""
    k = faults.k
    instance = ft.instances[iid]
    rel_row = [instance.release] * (k + 1)
    sources: list[str | None] = [None] * (k + 1)
    for group in ft.inputs_of(iid):
        immune, fast_senders = group_release_inputs(
            group, instance.node, ft.instances, root_finish,
            no_recovery_rows, medl_by_id, faults.mu, iid,
        )
        price_group_into(immune, fast_senders, rel_row, sources, k)
    return rel_row, sources


def chain_dp_batch(
    base_rows,
    wcets,
    reexecs,
    steps,
    mu: float,
    k: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Worst-case chain DP for ``C`` independent instances at once.

    ``base_rows`` is the ``(C, k+1)`` stack of per-budget base releases
    (input arrival already merged with the chain tail).  Returns
    ``(finish, tail, no_recovery, dominant_budget)`` where the three row
    arrays are ``(C, k+1)`` and each row is bit-equal to
    :meth:`repro.schedule.analysis.WorstCaseAnalyzer.place` on the same
    inputs: the re-execution surcharge accumulates sequentially
    (``np.add.accumulate`` matches the scalar ``extra += step``), the max
    over re-execution counts is order-independent-exact, and the dominant
    budget at ``q = k`` takes the *first* maximizing ``t`` in ascending
    order (``argmax`` first occurrence == the scalar strict-``>`` update
    walking ``b`` downward).
    """
    base = np.asarray(base_rows, dtype=np.float64)
    count = base.shape[0]
    wcets = np.asarray(wcets, dtype=np.float64)
    reexecs = np.asarray(reexecs, dtype=np.int64)
    steps = np.asarray(steps, dtype=np.float64)
    tmax = int(reexecs.max()) if count else 0

    extras = np.empty((count, tmax + 1), dtype=np.float64)
    extras[:, 0] = wcets
    if tmax:
        extras[:, 1:] = steps[:, None]
        np.add.accumulate(extras, axis=1, out=extras)

    t_index = np.arange(tmax + 1)
    q_index = np.arange(k + 1)
    budgets = q_index[None, :, None] - t_index[None, None, :]
    valid = (budgets >= 0) & (
        t_index[None, None, :] <= reexecs[:, None, None]
    )
    values = (
        base[np.arange(count)[:, None, None], np.clip(budgets, 0, k)]
        + extras[:, None, :]
    )
    values = np.where(valid, values, -np.inf)
    finish = values.max(axis=2)
    dominant_budget = k - values[:, k, :].argmax(axis=1)

    kill_attempts = reexecs + 1
    shift = q_index[None, :] - kill_attempts[:, None]
    killed = (
        base[np.arange(count)[:, None], np.clip(shift, 0, k)]
        + (wcets + mu)[:, None]
    ) + (reexecs * steps)[:, None]
    tail = np.where((shift >= 0) & (killed > finish), killed, finish)

    return finish, tail, base + wcets[:, None], dominant_budget


def place_vec(
    instance: Instance,
    rel_row,
    prev_tail,
    faults: FaultModel,
) -> PlacementResult:
    """Single-instance placement via the batched DP — parity twin of
    :meth:`repro.schedule.analysis.WorstCaseAnalyzer.place` (``prev_tail``
    is the node chain's current tail row, or ``None`` for an empty chain).
    Unlike the analyzer this does not mutate any chain state.
    """
    k = faults.k
    rel = np.asarray(rel_row, dtype=np.float64)
    if prev_tail is None:
        base = rel
        input_row = np.ones(k + 1, dtype=bool)
    else:
        prev = np.asarray(prev_tail, dtype=np.float64)
        input_row = ~(prev > rel)
        base = np.where(input_row, rel, prev)
    finish, tail, no_recovery, dominant = chain_dp_batch(
        base[None, :],
        [instance.wcet],
        [instance.reexecutions],
        [instance.recovery_unit + faults.mu],
        faults.mu,
        k,
    )
    budget = int(dominant[0])
    return PlacementResult(
        finish_row=tuple(finish[0].tolist()),
        tail_row=tuple(tail[0].tolist()),
        no_recovery_row=tuple(no_recovery[0].tolist()),
        dominant="input" if bool(input_row[budget]) else "node",
        dominant_budget=budget,
    )


# -- the neighbourhood estimator -------------------------------------------


@dataclass(frozen=True, slots=True)
class VectorPrice:
    """Estimated cost of one candidate move, with its error allowance.

    ``makespan``/``degree`` are the estimate; the true values are expected
    within ``± error`` / ``± degree_error`` (calibrated, not proven — see
    the module docstring).  ``exact`` is ``True`` only when the estimate is
    provably the true cost (the move's cone is replay-free against the
    base mirrors), in which case both allowances are zero.
    """

    degree: float
    makespan: float
    error: float
    degree_error: float
    exact: bool


class NeighbourhoodPricer:
    """Batched bounded-error pricing of moves against one captured base.

    Built lazily per :class:`~repro.schedule.incremental.EvalContext`
    (``context.pricer()``); all caches below are valid for the context's
    lifetime because they are derived purely from the base schedule:

    * ``_release_cache[(process, node)]`` — a candidate replica's release
      row depends only on the receiver node given the base mirrors (its
      senders are base-fixed), so all candidates landing any replica of
      ``process`` on ``node`` share one row.  The second element counts
      frames that had to be *estimated* (no base MEDL descriptor — the
      frame would only exist in the moved design), each of which charges
      one round length to the error allowance.
    * ``_tail_cache[(process, node)]`` — the base chain tail of ``node``
      just below the process's earliest base rank: the chain prefix a
      freshly inserted replica would extend.
    """

    def __init__(self, context: "EvalContext") -> None:
        self.context = context
        record = context.record
        faults = context.faults
        self.k = faults.k
        self.mu = faults.mu
        self.round_length = context.bus.round_length

        ids = record.instance_ids
        self._root_finish = dict(zip(ids, record.root_finish))
        self._wcf = dict(zip(ids, record.wcf))

        processes = record.processes
        completions = record.completions
        self._completion = dict(zip(processes, completions))
        deadlined = sum(1 for d in record.deadlines if d is not None)
        self._deadlined = max(1, deadlined)

        # Interference model inputs: per-process completion/deadline
        # arrays plus, for each node, the chain of process indices in
        # placement order.  A move that vacates occupancy on a node
        # credits every process placed after it in that chain; a move
        # that adds occupancy debits everything on the receiving node.
        self._proc_index = {name: i for i, name in enumerate(processes)}
        self._completions_arr = np.asarray(completions, dtype=np.float64)
        self._deadlines_arr = np.asarray(
            [np.inf if d is None else d for d in record.deadlines],
            dtype=np.float64,
        )
        instance_process = record.instance_process
        self._node_chain_procs: dict[str, np.ndarray] = {}
        self._node_pos: dict[str, dict[int, int]] = {}
        for node_name, chain in zip(record.nodes, record.node_chains):
            chain_procs = np.asarray(
                [instance_process[i] for i in chain], dtype=np.intp
            )
            self._node_chain_procs[node_name] = chain_procs
            first_pos: dict[int, int] = {}
            for position, proc in enumerate(chain_procs.tolist()):
                if proc not in first_pos:
                    first_pos[proc] = position
            self._node_pos[node_name] = first_pos

        self._release_cache: dict[tuple[str, str], tuple[np.ndarray, int]] = {}
        self._tail_cache: dict[tuple[str, str], np.ndarray | None] = {}
        self._base_occ: dict[str, dict[str, float]] = {}
        self._base_prio_sig: dict[str, list[tuple[str, float]]] = {}
        self._descendants: dict[str, np.ndarray] = {}
        self._out_degree: dict[str, int] = {}

    # -- cached base-schedule derivations ---------------------------------

    def _release_for(self, process: str, node: str) -> tuple[np.ndarray, int]:
        """Release row of a ``process`` replica on ``node`` vs base mirrors."""
        key = (process, node)
        cached = self._release_cache.get(key)
        if cached is not None:
            return cached
        context = self.context
        ft = context.ft
        bus = context.bus
        k = self.k
        mu = self.mu
        instances = ft.instances
        representative = ft.group_of[process][0]
        rel_row = [instances[representative].release] * (k + 1)
        sources: list[str | None] = [None] * (k + 1)
        estimated = 0
        for group in ft.inputs_of(representative):
            missing: list = []
            immune, fast_senders = group_release_inputs(
                group, node, instances, self._root_finish,
                context.no_recovery_rows, context.medl_by_id, mu, process,
                missing=missing,
            )
            if missing:
                estimated += len(missing)
                backed = _guaranteed_backed(ft, group.sources, k)
                for src_iid, _fast, _guaranteed, replicated in missing:
                    src = instances[src_iid]
                    if not replicated:
                        # A masked frame departs after the sender's WCF.
                        ready = self._wcf[src_iid]
                        round_index = bus.first_round_at_or_after(
                            src.node, ready
                        )
                        immune.append(
                            (
                                bus.slot_end(src.node, round_index),
                                src.kill_cost,
                                src_iid,
                            )
                        )
                        continue
                    ready = self._root_finish[src_iid]
                    round_index = bus.first_round_at_or_after(src.node, ready)
                    guaranteed_end = None
                    if src_iid in backed:
                        wcf_round = bus.first_round_at_or_after(
                            src.node, self._wcf[src_iid]
                        )
                        guaranteed_end = bus.slot_end(src.node, wcf_round)
                    fast_senders.append(
                        (
                            bus.slot_start(src.node, round_index),
                            bus.slot_end(src.node, round_index),
                            guaranteed_end,
                            context.no_recovery_rows[src_iid],
                            src.recovery_unit + mu,
                            src.reexecutions,
                            src.kill_cost,
                            src_iid,
                        )
                    )
            price_group_into(immune, fast_senders, rel_row, sources, k)
        result = (np.asarray(rel_row, dtype=np.float64), estimated)
        self._release_cache[key] = result
        return result

    def _chain_tail(self, process: str, node: str) -> np.ndarray | None:
        """Base tail row of ``node``'s chain below ``process``'s base rank."""
        key = (process, node)
        if key in self._tail_cache:
            return self._tail_cache[key]
        context = self.context
        record = context.record
        earliest = min(
            context.base_index[iid]
            for iid in context.ft.group_of[process]
        )
        tail: np.ndarray | None = None
        try:
            node_index = record.nodes.index(node)
        except ValueError:
            node_index = None
        if node_index is not None:
            last = None
            for placed in record.node_chains[node_index]:
                if placed >= earliest:
                    break
                last = placed
            if last is not None:
                tail = np.asarray(
                    context.trace.tail_rows[record.instance_ids[last]],
                    dtype=np.float64,
                )
        self._tail_cache[key] = tail
        return tail

    def _base_occupancy(self, process: str) -> dict[str, float]:
        """Worst-case node occupancy of ``process``'s base replicas."""
        occ = self._base_occ.get(process)
        if occ is None:
            occ = {}
            instances = self.context.ft.instances
            mu = self.mu
            for iid in self.context.ft.group_of[process]:
                instance = instances[iid]
                occ[instance.node] = occ.get(instance.node, 0.0) + (
                    instance.reexecutions + 1
                ) * (instance.wcet + mu)
            self._base_occ[process] = occ
        return occ

    def _base_priority_signature(
        self, process: str
    ) -> list[tuple[str, float]]:
        """Sorted (node, PCP weight) multiset of the base replicas.

        Replica priorities — and through them every ancestor's — are a
        function of this multiset alone (successor placements are
        base-fixed), so an unchanged signature means no priority moves.
        """
        signature = self._base_prio_sig.get(process)
        if signature is None:
            instances = self.context.ft.instances
            mu = self.mu
            signature = sorted(
                (
                    instances[iid].node,
                    instances[iid].wcet
                    * (1 + instances[iid].reexecutions)
                    + instances[iid].reexecutions * mu,
                )
                for iid in self.context.ft.group_of[process]
            )
            self._base_prio_sig[process] = signature
        return signature

    def _descendant_indices(self, process: str) -> np.ndarray:
        """Process indices of everything downstream of ``process``."""
        indices = self._descendants.get(process)
        if indices is None:
            seen: set[str] = set()
            stack = [process]
            out_messages = self.context.graph.out_messages
            while stack:
                for message in out_messages(stack.pop()):
                    if message.dst not in seen:
                        seen.add(message.dst)
                        stack.append(message.dst)
            indices = np.asarray(
                sorted(self._proc_index[name] for name in seen),
                dtype=np.intp,
            )
            self._descendants[process] = indices
        return indices

    def _frame_events(
        self, process: str, nodes: tuple[str, ...], policy: "Policy"
    ) -> int:
        """Bus-frame perturbations a candidate can cause (beyond estimates).

        Counts sender frame-set existence flips (a base predecessor frame
        appears/disappears because the receiver node set changed) and the
        process's own outgoing frames when its placement or policy changed
        (their slots re-round).  Each event charges one round length.
        """
        context = self.context
        ft = context.ft
        instances = ft.instances
        base_group = ft.group_of[process]
        base_nodes = {instances[iid].node for iid in base_group}
        new_nodes = set(nodes)
        events = 0
        representative = base_group[0]
        for group in ft.inputs_of(representative):
            for src_iid in group.sources:
                src_node = instances[src_iid].node
                base_has = any(n != src_node for n in base_nodes)
                new_has = any(n != src_node for n in new_nodes)
                if base_has != new_has:
                    events += 1
        out_degree = self._out_degree.get(process)
        if out_degree is None:
            out_degree = len(context.graph.out_messages(process))
            self._out_degree[process] = out_degree
        if out_degree:
            base_multiset = sorted(instances[iid].node for iid in base_group)
            base_policy_sig = tuple(
                (instances[iid].reexecutions, instances[iid].checkpoints)
                for iid in base_group
            )
            new_policy_sig = tuple(
                (policy.reexecutions[r], policy.checkpoints)
                for r in range(len(nodes))
            )
            if (
                sorted(nodes) != base_multiset
                or new_policy_sig != base_policy_sig
            ):
                events += out_degree * max(len(nodes), len(base_group))
        return events

    # -- pricing -----------------------------------------------------------

    def price(
        self, candidates: list[tuple[str, tuple[str, ...], "Policy"]]
    ) -> list[VectorPrice]:
        """Price every ``(process, nodes, policy)`` candidate in one sweep.

        Replica worst-case finishes come from level-batched
        :func:`chain_dp_batch` calls (level = number of earlier same-move
        replicas on the same node, so chained replicas see their
        predecessor's tail); completions and error terms are folded per
        candidate.  Result order matches ``candidates``.
        """
        context = self.context
        graph = context.graph
        faults = context.faults
        k = self.k
        mu = self.mu

        plans: list[list[tuple[str, float, int, float, int]]] = []
        for process, nodes, policy in candidates:
            proc = graph.processes[process]
            level_count: dict[str, int] = {}
            replicas = []
            for index, node in enumerate(nodes):
                wcet = proc.wcet_on(node)
                if policy.checkpoints > 0:
                    wcet += policy.checkpoints * faults.checkpoint_overhead
                recovery = (
                    wcet / policy.checkpoints
                    if policy.checkpoints > 0
                    else wcet
                )
                level = level_count.get(node, 0)
                level_count[node] = level + 1
                replicas.append(
                    (
                        node,
                        wcet,
                        policy.reexecutions[index],
                        recovery + mu,
                        level,
                    )
                )
            plans.append(replicas)

        release_events = [0] * len(candidates)
        finish_rows: list[list[np.ndarray | None]] = [
            [None] * len(plan) for plan in plans
        ]
        chained_tails: dict[tuple[int, str], np.ndarray] = {}
        max_level = max(
            (replica[4] for plan in plans for replica in plan), default=0
        )
        for level in range(max_level + 1):
            batch: list[tuple[int, int, str, np.ndarray]] = []
            wcets: list[float] = []
            reexecs: list[int] = []
            steps: list[float] = []
            for ci, plan in enumerate(plans):
                process = candidates[ci][0]
                for ri, (node, wcet, reexec, step, lvl) in enumerate(plan):
                    if lvl != level:
                        continue
                    rel, estimated = self._release_for(process, node)
                    if level == 0:
                        release_events[ci] += estimated
                        prev = self._chain_tail(process, node)
                    else:
                        prev = chained_tails[(ci, node)]
                    if prev is None:
                        base = rel
                    else:
                        base = np.where(prev > rel, prev, rel)
                    batch.append((ci, ri, node, base))
                    wcets.append(wcet)
                    reexecs.append(reexec)
                    steps.append(step)
            if not batch:
                continue
            finish, tail, _no_recovery, _dominant = chain_dp_batch(
                np.stack([item[3] for item in batch]),
                wcets, reexecs, steps, mu, k,
            )
            for j, (ci, ri, node, _base) in enumerate(batch):
                finish_rows[ci][ri] = finish[j]
                chained_tails[(ci, node)] = tail[j]

        round_length = self.round_length
        prices: list[VectorPrice] = []
        for ci, (process, nodes, policy) in enumerate(candidates):
            plan = plans[ci]
            pairs = [
                (float(finish_rows[ci][ri][k]), 1 + plan[ri][2])
                for ri in range(len(plan))
            ]
            completion = guaranteed_completion(pairs, k)

            base_occ = self._base_occupancy(process)
            new_occ: dict[str, float] = {}
            for node, wcet, reexec, _step, _level in plan:
                new_occ[node] = new_occ.get(node, 0.0) + (reexec + 1) * (
                    wcet + mu
                )
            added = 0.0
            removed = 0.0
            proc = self._proc_index[process]
            adjust = np.zeros(len(self._completions_arr))
            for node in base_occ.keys() | new_occ.keys():
                delta = new_occ.get(node, 0.0) - base_occ.get(node, 0.0)
                if delta > 0.0:
                    # Added occupancy is already visible in the candidate's
                    # own completion (its release/chain-tail rows include
                    # the receiving node's base prefix); debiting other
                    # processes here would double-count the contention, so
                    # it is charged to the error allowance only.
                    added += delta
                    continue
                if delta == 0.0:
                    continue
                removed -= delta
                chain = self._node_chain_procs.get(node)
                if chain is None or chain.size == 0:
                    continue
                # Vacated occupancy: only processes placed *after* this
                # one in the node's chain can start earlier.
                position = self._node_pos[node].get(proc)
                if position is None:
                    continue
                adjust[np.unique(chain[position + 1:])] += delta
            adjust[proc] = 0.0

            # Dependency propagation: the moved process's own completion
            # shift reaches every downstream consumer through its output
            # messages.  A credit is capped at the larger of the two
            # channels (chain credit vs. input arrival — a start time is
            # one max, not a sum); a debit stacks on top of any credit.
            own_delta = completion - self._completion[process]
            if own_delta != 0.0:
                dep = self._descendant_indices(process)
                if dep.size:
                    if own_delta < 0.0:
                        adjust[dep] = np.minimum(adjust[dep], own_delta)
                    else:
                        adjust[dep] += own_delta

            # First-order completions of the *other* processes under the
            # move, then schedule length and degree over the whole set.
            estimated = self._completions_arr + adjust
            estimated[proc] = completion
            makespan = float(estimated.max())
            over = estimated - self._deadlines_arr
            over[over <= 1e-9] = 0.0
            degree = float(over.sum())
            if degree <= 1e-9:
                degree = 0.0

            # -- error allowance (calibrated; see module docstring) -------
            base_shift = abs(completion - self._completion[process])
            frame_events = release_events[ci] + self._frame_events(
                process, nodes, policy
            )
            new_signature = sorted(
                (node, wcet * (1 + reexec) + reexec * mu)
                for node, wcet, reexec, _step, _level in plan
            )
            priorities_changed = (
                new_signature != self._base_priority_signature(process)
            )
            error = (
                base_shift
                + added
                + removed
                + round_length * frame_events
            )
            if error > 0.0 or priorities_changed:
                # A perturbation can cascade: every downstream hop may
                # re-round a frame by up to one round length.
                error += (
                    self._descendant_indices(process).size * round_length
                )
            if priorities_changed:
                # Reordered pops displace unrelated chains; double the
                # allowance rather than trying to model the reorder.
                error = 2.0 * error + round_length
            exact = error == 0.0
            prices.append(
                VectorPrice(
                    degree=degree,
                    makespan=makespan,
                    error=error,
                    degree_error=error * self._deadlined,
                    exact=exact,
                )
            )
        return prices
