"""Fault-tolerance aware list scheduling (paper §5.1, Fig. 6 `ListScheduling`).

Given the merged application graph, a mapping, a policy assignment and a bus
configuration, this module builds the static schedule tables for every node
and the MEDL for the TTP bus:

1. the merged graph is expanded into replica instances
   (:mod:`repro.model.ftgraph`);
2. instances become *ready* once all their predecessors are scheduled; the
   ready instance with the highest modified-PCP priority is placed next;
3. an instance is appended to its node's schedule at the earliest root time
   allowed by the node and by its inputs — for replicated predecessors this
   is the arrival of the *first* replica message (contingency scenarios are
   handled analytically, reproducing Fig. 7);
4. the worst-case analyzer attaches per-budget finish rows (shared recovery
   slack), and every outgoing bus message is packed into the earliest TDMA
   slot at/after the sender's worst-case finish, making recovery transparent
   to all other nodes;
5. finally the guaranteed completion of every process is derived from its
   replicas' worst-case finishes.

The synthesized configuration is emitted as a compact
:class:`repro.schedule.record.ScheduleRecord` — flat interned arrays, built
row by row as instances are placed — and returned wrapped in the lazy
:class:`repro.schedule.table.SystemSchedule` view.
"""

from __future__ import annotations

import heapq

from repro.errors import SchedulingError
from repro.model.application import ProcessGraph
from repro.model.fault import FaultModel
from repro.model.ftgraph import FTGraph, build_ft_graph
from repro.model.mapping import ReplicaMapping
from repro.model.policy import PolicyAssignment
from repro.schedule.analysis import (
    WorstCaseAnalyzer,
    group_survivor_indices,
    guaranteed_completion,
)
from repro.schedule.priorities import pcp_priorities
from repro.schedule.record import (
    BIND_INPUT,
    BIND_NODE,
    BIND_RELEASE,
    RecordBuilder,
    ScheduleRecord,
)
from repro.schedule.table import SystemSchedule
from repro.ttp.bus import BusConfig
from repro.ttp.schedule import BusScheduler


def list_schedule(
    graph: ProcessGraph,
    faults: FaultModel,
    policies: PolicyAssignment,
    mapping: ReplicaMapping,
    bus: BusConfig,
) -> SystemSchedule:
    """Build the complete system schedule for one candidate implementation."""
    ft = build_ft_graph(graph, policies, mapping, faults)
    return schedule_ft_graph(graph, ft, faults, bus)


def schedule_ft_graph(
    graph: ProcessGraph,
    ft: FTGraph,
    faults: FaultModel,
    bus: BusConfig,
) -> SystemSchedule:
    """Schedule an already-expanded FT graph (exposed for tests/tools)."""
    record = build_schedule_record(graph, ft, faults, bus)
    return SystemSchedule(record, graph, ft, faults, bus)


def build_schedule_record(
    graph: ProcessGraph,
    ft: FTGraph,
    faults: FaultModel,
    bus: BusConfig,
) -> ScheduleRecord:
    """Run the list scheduler and emit the compact IR directly."""
    if len(ft) == 0:
        raise SchedulingError("nothing to schedule: the FT graph is empty")

    priorities = pcp_priorities(ft, bus, faults)
    analyzer = WorstCaseAnalyzer(faults)
    bus_scheduler = BusScheduler(bus)
    k = faults.k

    # Readiness bookkeeping: an instance is ready when all predecessors in
    # the instance DAG are placed (their bus messages are scheduled at
    # placement time, so readiness implies known arrival times).
    succ_of = ft._succ
    remaining: dict[str, int] = {
        iid: len(ft._pred[iid]) for iid in ft.instances
    }
    ready: list[tuple[float, str]] = [
        (-priorities[iid], iid) for iid, count in remaining.items() if count == 0
    ]
    heapq.heapify(ready)

    builder = RecordBuilder()
    root_finish: dict[str, float] = {}
    finish_rows: dict[str, tuple[float, ...]] = {}

    placed_count = 0
    while ready:
        _, iid = heapq.heappop(ready)
        instance = ft.instances[iid]
        rel_row, rel_sources = _release_row(
            ft, iid, k, root_finish, finish_rows, bus_scheduler
        )

        node = instance.node
        node_id = builder.node_id(node)
        chain = builder.chain(node_id)

        result = analyzer.place(instance, rel_row)
        if result.dominant == "node" and chain:
            binding = (BIND_NODE, chain[-1], result.dominant_budget)
        else:
            source = rel_sources[result.dominant_budget]
            if source is None:
                binding = (BIND_RELEASE, -1, result.dominant_budget)
            else:
                binding = (
                    BIND_INPUT,
                    builder.index_of[source],
                    result.dominant_budget,
                )
        root_start = result.root_finish - instance.wcet
        builder.place(
            iid=iid,
            process_id=builder.process_id(instance.process),
            node_id=node_id,
            root_start=root_start,
            root_finish=result.root_finish,
            wcf=result.wcf,
            finish_row=result.finish_row,
            binding=binding,
        )
        root_finish[iid] = result.root_finish
        finish_rows[iid] = result.finish_row
        placed_count += 1

        outgoing = ft.outgoing_bus_messages(iid)
        if outgoing:
            # Fast frames of replicas depart right after the fault-free
            # finish (Fig. 4b); masked/guaranteed frames only after the
            # worst-case finish so recovery stays transparent (Fig. 4a).
            #
            # Co-location caveat: killing an *earlier co-located* replica of
            # the same process both removes that replica's frame and delays
            # this one (fault reuse).  The fast frame therefore departs only
            # after the finish under a budget covering those sibling kills,
            # so the receiver-side marginal cost accounting stays sound.
            reuse_budget = 0
            for sibling in ft.group_of[instance.process]:
                if (
                    sibling != iid
                    and sibling in root_finish
                    and ft.instances[sibling].node == node
                ):
                    reuse_budget += ft.instances[sibling].kill_cost
            fast_ready = result.finish_row[min(reuse_budget, k)]
            for bus_message in outgoing:
                data_ready = fast_ready if bus_message.kind == "fast" else result.wcf
                bus_scheduler.schedule_message(
                    bus_message_id=bus_message.id,
                    sender_node=node,
                    size_bytes=bus_message.message.size,
                    ready_time=data_ready,
                )

        for succ in succ_of[iid]:
            remaining[succ] -= 1
            if remaining[succ] == 0:
                heapq.heappush(ready, (-priorities[succ], succ))

    if placed_count != len(ft):
        unplaced = [iid for iid, count in remaining.items() if count > 0]
        raise SchedulingError(
            f"list scheduling left {len(unplaced)} instances unplaced "
            f"(cycle in the FT graph?): {unplaced[:5]}"
        )

    return _seal_record(builder, graph, ft, faults, bus_scheduler)


def _release_row(
    ft: FTGraph,
    iid: str,
    k: int,
    root_finish: dict[str, float],
    finish_rows: dict[str, tuple[float, ...]],
    bus_scheduler: BusScheduler,
) -> tuple[list[float], list[str | None]]:
    """Guaranteed release per adversary budget, plus per-budget sources.

    ``rel_row[c]`` is the latest guaranteed availability of all inputs when
    the adversary may spend ``c`` faults invalidating input messages;
    ``rel_row[0]`` is the fault-free (root) release.  ``sources[c]`` names
    the sender instance whose (possibly contingency) arrival dominates at
    budget ``c`` — the critical-path extraction follows these links — or
    ``None`` when the release time itself dominates.

    Every input group contributes one *entry list*: per sender replica a
    local finish, a masked arrival, or a fast arrival (plus, for re-executed
    replicas, the guaranteed second frame).  Each entry carries the marginal
    number of faults the adversary must spend to invalidate it; the greedy
    earliest-first kill of :func:`group_survivor_indices` then yields the
    surviving entry — and hence the guaranteed arrival — per budget.
    """
    instances = ft.instances
    instance = instances[iid]
    node = instance.node
    medl_by_id = bus_scheduler.medl.by_id()

    def descriptor_for(bus_id: str):
        try:
            return medl_by_id[bus_id]
        except KeyError:
            raise SchedulingError(
                f"no MEDL entry for bus message {bus_id!r} while releasing "
                f"{iid!r} (bus scheduling out of sync with the FT graph)"
            ) from None

    rel_row = [instance.release] * (k + 1)
    sources: list[str | None] = [None] * (k + 1)

    for group in ft.inputs_of(iid):
        arrivals: list[tuple[float, int, str]] = []
        replicated = len(group.sources) > 1
        message_name = group.message.name
        for src_iid in group.sources:
            src = instances[src_iid]
            kill_cost = src.kill_cost
            if src.node == node:
                # Local input: delays of the local chain are handled by the
                # node DP, so only the terminal kill removes this entry.
                arrivals.append((root_finish[src_iid], kill_cost, src_iid))
                continue
            descriptor = descriptor_for(f"{message_name}[{src_iid}]")
            if not replicated:
                # Masked frame: slot lies after the sender's WCF, so within
                # budget k only a terminal kill (impossible for a sole
                # replica of a valid policy) removes it.
                arrivals.append((descriptor.slot_end, kill_cost, src_iid))
                continue
            # Fast frame: invalid if the sender misses the slot start. The
            # cheapest way is q* faults delaying the sender (its finish row
            # exceeds the slot start) or an outright kill, whichever is
            # cheaper.  A fault on the sender both delays and counts toward
            # the kill, so the guaranteed frame costs the *remaining* kills.
            row = finish_rows[src_iid]
            threshold = descriptor.slot_start + 1e-9
            q_star = k + 1
            for q in range(k + 1):
                if row[q] > threshold:
                    q_star = q
                    break
            fast_cost = kill_cost if kill_cost < q_star else q_star
            arrivals.append((descriptor.slot_end, fast_cost, src_iid))
            if src.reexecutions > 0 and fast_cost < kill_cost:
                guaranteed = descriptor_for(f"{message_name}[{src_iid}]#g")
                arrivals.append(
                    (guaranteed.slot_end, kill_cost - fast_cost, src_iid)
                )
        arrivals.sort()
        # Survivors are tracked by *index*: on arrival-time ties a value
        # lookup would name the first tied sender, which may be a replica
        # the adversary already killed, corrupting critical-path extraction.
        for c, index in enumerate(group_survivor_indices(arrivals, k)):
            guaranteed_arrival = arrivals[index][0]
            if guaranteed_arrival > rel_row[c]:
                rel_row[c] = guaranteed_arrival
                sources[c] = arrivals[index][2]
    return rel_row, sources


def _seal_record(
    builder: RecordBuilder,
    graph: ProcessGraph,
    ft: FTGraph,
    faults: FaultModel,
    bus_scheduler: BusScheduler,
) -> ScheduleRecord:
    """Derive completions/groups and freeze the builder into the record."""
    k = faults.k
    index_of = builder.index_of
    wcf = builder.wcf
    n_processes = builder.process_count
    replicas: list[tuple[int, ...]] = [()] * n_processes
    completions: list[float] = [0.0] * n_processes
    deadlines: list[float | None] = [None] * n_processes
    for process, replica_ids in ft.group_of.items():
        process_id = builder.process_id(process)
        indices = tuple(index_of[iid] for iid in replica_ids)
        replicas[process_id] = indices
        pairs = [
            (wcf[index], ft.instances[iid].kill_cost)
            for index, iid in zip(indices, replica_ids)
        ]
        completions[process_id] = guaranteed_completion(pairs, k)
        deadlines[process_id] = graph.processes[process].deadline
    medl = bus_scheduler.medl.packed(builder.node_index)
    return builder.finish(
        process_replicas=tuple(replicas),
        completions=tuple(completions),
        deadlines=tuple(deadlines),
        medl=medl,
        k=k,
        mu=faults.mu,
    )
