"""Fault-tolerance aware list scheduling (paper §5.1, Fig. 6 `ListScheduling`).

Given the merged application graph, a mapping, a policy assignment and a bus
configuration, this module builds the static schedule tables for every node
and the MEDL for the TTP bus:

1. the merged graph is expanded into replica instances
   (:mod:`repro.model.ftgraph`);
2. instances become *ready* once all their predecessors are scheduled; the
   ready instance with the highest modified-PCP priority is placed next;
3. an instance is appended to its node's schedule at the earliest root time
   allowed by the node and by its inputs — for replicated predecessors this
   is the arrival of the *first* replica message (contingency scenarios are
   handled analytically, reproducing Fig. 7);
4. the worst-case analyzer attaches per-budget finish rows (shared recovery
   slack), and every outgoing bus message is packed into the earliest TDMA
   slot at/after the sender's worst-case finish, making recovery transparent
   to all other nodes;
5. finally the guaranteed completion of every process is derived from its
   replicas' worst-case finishes.

The synthesized configuration is emitted as a compact
:class:`repro.schedule.record.ScheduleRecord` — flat interned arrays, built
row by row as instances are placed — and returned wrapped in the lazy
:class:`repro.schedule.table.SystemSchedule` view.

The scheduling machinery itself lives in :mod:`repro.schedule.state` as the
snapshotable :class:`~repro.schedule.state.SchedulerState`; this module is
the one-shot façade (build a state, run it to completion, seal).  The
incremental kernel in :mod:`repro.schedule.incremental` drives the same
state machine with snapshot/restore for delta re-scheduling.
"""

from __future__ import annotations

from repro.model.application import ProcessGraph
from repro.model.fault import FaultModel
from repro.model.ftgraph import FTGraph, build_ft_graph
from repro.model.mapping import ReplicaMapping
from repro.model.policy import PolicyAssignment
from repro.schedule.record import ScheduleRecord
from repro.schedule.state import SchedulerState, ScheduleTrace
from repro.schedule.table import SystemSchedule
from repro.ttp.bus import BusConfig


def list_schedule(
    graph: ProcessGraph,
    faults: FaultModel,
    policies: PolicyAssignment,
    mapping: ReplicaMapping,
    bus: BusConfig,
) -> SystemSchedule:
    """Build the complete system schedule for one candidate implementation."""
    ft = build_ft_graph(graph, policies, mapping, faults)
    return schedule_ft_graph(graph, ft, faults, bus)


def schedule_ft_graph(
    graph: ProcessGraph,
    ft: FTGraph,
    faults: FaultModel,
    bus: BusConfig,
) -> SystemSchedule:
    """Schedule an already-expanded FT graph (exposed for tests/tools)."""
    record = build_schedule_record(graph, ft, faults, bus)
    return SystemSchedule(record, graph, ft, faults, bus)


def build_schedule_record(
    graph: ProcessGraph,
    ft: FTGraph,
    faults: FaultModel,
    bus: BusConfig,
    *,
    trace: ScheduleTrace | None = None,
) -> ScheduleRecord:
    """Run the list scheduler cold and emit the compact IR directly."""
    state = SchedulerState(graph, ft, faults, bus, trace=trace)
    state.run()
    return state.seal()
