"""Fault-tolerance aware list scheduling (paper §5.1, Fig. 6 `ListScheduling`).

Given the merged application graph, a mapping, a policy assignment and a bus
configuration, this module builds the static schedule tables for every node
and the MEDL for the TTP bus:

1. the merged graph is expanded into replica instances
   (:mod:`repro.model.ftgraph`);
2. instances become *ready* once all their predecessors are scheduled; the
   ready instance with the highest modified-PCP priority is placed next;
3. an instance is appended to its node's schedule at the earliest root time
   allowed by the node and by its inputs — for replicated predecessors this
   is the arrival of the *first* replica message (contingency scenarios are
   handled analytically, reproducing Fig. 7);
4. the worst-case analyzer attaches per-budget finish rows (shared recovery
   slack), and every outgoing bus message is packed into the earliest TDMA
   slot at/after the sender's worst-case finish, making recovery transparent
   to all other nodes;
5. finally the guaranteed completion of every process is derived from its
   replicas' worst-case finishes.

The synthesized configuration is emitted as a compact
:class:`repro.schedule.record.ScheduleRecord` — flat interned arrays, built
row by row as instances are placed — and returned wrapped in the lazy
:class:`repro.schedule.table.SystemSchedule` view.
"""

from __future__ import annotations

import heapq

from repro.errors import SchedulingError
from repro.model.application import ProcessGraph
from repro.model.fault import FaultModel
from repro.model.ftgraph import FTGraph, build_ft_graph
from repro.model.mapping import ReplicaMapping
from repro.model.policy import PolicyAssignment
from repro.schedule.analysis import (
    WorstCaseAnalyzer,
    group_survivor_indices,
    guaranteed_completion,
)
from repro.schedule.priorities import pcp_priorities
from repro.schedule.record import (
    BIND_INPUT,
    BIND_NODE,
    BIND_RELEASE,
    RecordBuilder,
    ScheduleRecord,
)
from repro.schedule.table import SystemSchedule
from repro.ttp.bus import BusConfig
from repro.ttp.schedule import BusScheduler


def list_schedule(
    graph: ProcessGraph,
    faults: FaultModel,
    policies: PolicyAssignment,
    mapping: ReplicaMapping,
    bus: BusConfig,
) -> SystemSchedule:
    """Build the complete system schedule for one candidate implementation."""
    ft = build_ft_graph(graph, policies, mapping, faults)
    return schedule_ft_graph(graph, ft, faults, bus)


def schedule_ft_graph(
    graph: ProcessGraph,
    ft: FTGraph,
    faults: FaultModel,
    bus: BusConfig,
) -> SystemSchedule:
    """Schedule an already-expanded FT graph (exposed for tests/tools)."""
    record = build_schedule_record(graph, ft, faults, bus)
    return SystemSchedule(record, graph, ft, faults, bus)


def build_schedule_record(
    graph: ProcessGraph,
    ft: FTGraph,
    faults: FaultModel,
    bus: BusConfig,
) -> ScheduleRecord:
    """Run the list scheduler and emit the compact IR directly."""
    if len(ft) == 0:
        raise SchedulingError("nothing to schedule: the FT graph is empty")

    priorities = pcp_priorities(ft, bus, faults)
    analyzer = WorstCaseAnalyzer(faults)
    bus_scheduler = BusScheduler(bus)
    k = faults.k

    # Readiness bookkeeping: an instance is ready when all predecessors in
    # the instance DAG are placed (their bus messages are scheduled at
    # placement time, so readiness implies known arrival times).
    succ_of = ft._succ
    remaining: dict[str, int] = {
        iid: len(ft._pred[iid]) for iid in ft.instances
    }
    ready: list[tuple[float, str]] = [
        (-priorities[iid], iid) for iid, count in remaining.items() if count == 0
    ]
    heapq.heapify(ready)

    builder = RecordBuilder()
    root_finish: dict[str, float] = {}
    no_recovery_rows: dict[str, tuple[float, ...]] = {}

    placed_count = 0
    while ready:
        _, iid = heapq.heappop(ready)
        instance = ft.instances[iid]
        rel_row, rel_sources = _release_row(
            ft, iid, faults, root_finish, no_recovery_rows, bus_scheduler
        )

        node = instance.node
        node_id = builder.node_id(node)
        chain = builder.chain(node_id)

        result = analyzer.place(instance, rel_row)
        if result.dominant == "node" and chain:
            binding = (BIND_NODE, chain[-1], result.dominant_budget)
        else:
            source = rel_sources[result.dominant_budget]
            if source is None:
                binding = (BIND_RELEASE, -1, result.dominant_budget)
            else:
                binding = (
                    BIND_INPUT,
                    builder.index_of[source],
                    result.dominant_budget,
                )
        root_start = result.root_finish - instance.wcet
        builder.place(
            iid=iid,
            process_id=builder.process_id(instance.process),
            node_id=node_id,
            root_start=root_start,
            root_finish=result.root_finish,
            wcf=result.wcf,
            finish_row=result.finish_row,
            binding=binding,
        )
        root_finish[iid] = result.root_finish
        no_recovery_rows[iid] = result.no_recovery_row
        placed_count += 1

        outgoing = ft.outgoing_bus_messages(iid)
        if outgoing:
            # Fast frames of replicas depart right after the fault-free
            # finish (Fig. 4b); masked/guaranteed frames only after the
            # worst-case finish so recovery stays transparent (Fig. 4a).
            #
            # Co-location caveat: killing an *earlier co-located* replica of
            # the same process both removes that replica's frame and delays
            # this one (fault reuse).  The fast frame therefore departs only
            # after the finish under a budget covering those sibling kills,
            # so the receiver-side marginal cost accounting stays sound.
            reuse_budget = 0
            for sibling in ft.group_of[instance.process]:
                if (
                    sibling != iid
                    and sibling in root_finish
                    and ft.instances[sibling].node == node
                ):
                    reuse_budget += ft.instances[sibling].kill_cost
            fast_ready = result.finish_row[min(reuse_budget, k)]
            for bus_message in outgoing:
                data_ready = fast_ready if bus_message.kind == "fast" else result.wcf
                bus_scheduler.schedule_message(
                    bus_message_id=bus_message.id,
                    sender_node=node,
                    size_bytes=bus_message.message.size,
                    ready_time=data_ready,
                )

        for succ in succ_of[iid]:
            remaining[succ] -= 1
            if remaining[succ] == 0:
                heapq.heappush(ready, (-priorities[succ], succ))

    if placed_count != len(ft):
        unplaced = [iid for iid, count in remaining.items() if count > 0]
        raise SchedulingError(
            f"list scheduling left {len(unplaced)} instances unplaced "
            f"(cycle in the FT graph?): {unplaced[:5]}"
        )

    return _seal_record(builder, graph, ft, faults, bus_scheduler)


def _release_row(
    ft: FTGraph,
    iid: str,
    faults: FaultModel,
    root_finish: dict[str, float],
    no_recovery_rows: dict[str, tuple[float, ...]],
    bus_scheduler: BusScheduler,
) -> tuple[list[float], list[str | None]]:
    """Guaranteed release per adversary budget, plus per-budget sources.

    ``rel_row[c]`` is the latest guaranteed availability of all inputs when
    the adversary may spend ``c`` faults invalidating input messages;
    ``rel_row[0]`` is the fault-free (root) release.  ``sources[c]`` names
    the sender instance whose (possibly contingency) arrival dominates at
    budget ``c`` — the critical-path extraction follows these links — or
    ``None`` when the release time itself dominates.

    Adversary model (shared upstream delays + per-sender faults)
    ------------------------------------------------------------
    A sender replica's frames can be invalidated three ways, and their
    costs compose differently:

    * **shared delay** — faults that are *not* on the sender itself (its
      inputs, its node chain) push the sender's no-recovery row past its
      fast slot's start.  Such delays *correlate*: replicas of a group
      share predecessors, so one upstream fault may delay every replica
      past its slot simultaneously.  The model spends a single shared
      budget ``d`` whose effect applies to **all** senders at once.
    * **own recoveries** — ``t`` failed attempts on the sender delay it by
      ``t * (recovery + mu)`` on top of the shared delay.  Faults on
      distinct instances are disjoint, so these are priced per sender,
      like (partial) kills.
    * **kill** — ``kill_cost`` faults on the sender terminate it, removing
      *all* its frames; the guaranteed twin therefore costs only the
      *remaining* kills after the fast frame was silenced.

    ``rel_row[c]`` maximizes over every split ``c = d + (c - d)``: given
    ``d``, each fast frame's silencing price is the cheaper of the own
    recoveries still needed (0 if the shared delay alone misses the slot)
    and the outright kill; guaranteed/masked slots lie after the sender's
    WCF and local inputs are covered by the node DP, so only kills remove
    them.  The greedy earliest-first argument of
    :func:`group_survivor_indices` then spends the remaining ``c - d``
    faults.  Enough replicas carry a guaranteed twin that their combined
    kill price out-lasts every split's kill budget
    (``ftgraph._guaranteed_backed``).  Soundness: any concrete <= c fault
    scenario splits into faults on group senders (covered by the per-
    sender prices) and faults elsewhere (covered by some ``d``); budget 0
    reproduces the fault-free fast arrivals exactly.
    """
    k = faults.k
    mu = faults.mu
    instances = ft.instances
    instance = instances[iid]
    node = instance.node
    medl_by_id = bus_scheduler.medl.by_id()

    def descriptor_for(bus_id: str):
        try:
            return medl_by_id[bus_id]
        except KeyError:
            raise SchedulingError(
                f"no MEDL entry for bus message {bus_id!r} while releasing "
                f"{iid!r} (bus scheduling out of sync with the FT graph)"
            ) from None

    rel_row = [instance.release] * (k + 1)
    sources: list[str | None] = [None] * (k + 1)

    for group in ft.inputs_of(iid):
        # Entries whose price does not depend on the shared delay budget:
        # local finishes and masked frames fall only with their sender.
        immune: list[tuple[float, int, str]] = []
        # Fast senders: (slot_start, slot_end, guaranteed_slot_end | None,
        # no-recovery row, recovery step, reexecutions, kill_cost, src).
        fast_senders: list[
            tuple[float, float, float | None, tuple[float, ...], float, int, int, str]
        ] = []
        replicated = len(group.sources) > 1
        message_name = group.message.name
        for src_iid in group.sources:
            src = instances[src_iid]
            kill_cost = src.kill_cost
            if src.node == node:
                # Local input: delays of the local chain are handled by the
                # node DP, so only the terminal kill removes this entry.
                immune.append((root_finish[src_iid], kill_cost, src_iid))
            elif not replicated:
                # Masked frame: slot lies after the sender's WCF, so within
                # budget k only a terminal kill (impossible for a sole
                # replica of a valid policy) removes it.
                descriptor = descriptor_for(f"{message_name}[{src_iid}]")
                immune.append((descriptor.slot_end, kill_cost, src_iid))
            else:
                fast = descriptor_for(f"{message_name}[{src_iid}]")
                guaranteed = medl_by_id.get(f"{message_name}[{src_iid}]#g")
                fast_senders.append(
                    (
                        fast.slot_start,
                        fast.slot_end,
                        None if guaranteed is None else guaranteed.slot_end,
                        no_recovery_rows[src_iid],
                        src.recovery_unit + mu,
                        src.reexecutions,
                        kill_cost,
                        src_iid,
                    )
                )

        # Per sender, the fast frame's silencing price at every shared
        # budget d: own recoveries still needed to miss the slot on top of
        # the shared delay (beyond reexec only a kill silences).  The
        # price is non-increasing in d; a branch whose prices all equal
        # the previous d's is dominated by it (same entries, smaller kill
        # budget => an earlier survivor), so only the breakpoints where
        # some price drops need evaluating.
        fast_costs: list[list[int]] = []
        breakpoints = {0}
        for (
            slot_start, _, _, row, step, reexec, kill_cost, _,
        ) in fast_senders:
            threshold = slot_start + 1e-9
            costs = []
            for d in range(k + 1):
                fast_cost = kill_cost
                delayed = row[d]
                for t in range(reexec + 1):
                    if delayed > threshold:
                        fast_cost = t if t < kill_cost else kill_cost
                        break
                    delayed += step
                costs.append(fast_cost)
                if d and fast_cost != costs[d - 1]:
                    breakpoints.add(d)
            fast_costs.append(costs)

        for d in sorted(breakpoints):
            entries = list(immune)
            for costs, (
                _, slot_end, guaranteed_end, _, _, _, kill_cost, src_iid,
            ) in zip(fast_costs, fast_senders):
                fast_cost = costs[d]
                if fast_cost > 0:
                    entries.append((slot_end, fast_cost, src_iid))
                if guaranteed_end is not None:
                    # A kill removes both frames: after the fast one was
                    # silenced, the twin costs the remaining kills (0 when
                    # silencing already was a full kill).
                    entries.append(
                        (guaranteed_end, kill_cost - fast_cost, src_iid)
                    )
            # Survivors are tracked by *index*: on arrival-time ties a
            # value lookup would name the first tied sender, which may be
            # a replica the adversary already killed, corrupting
            # critical-path extraction.
            entries.sort()
            indices = group_survivor_indices(entries, k - d)
            for c in range(d, k + 1):
                survivor = entries[indices[c - d]]
                if survivor[0] > rel_row[c]:
                    rel_row[c] = survivor[0]
                    sources[c] = survivor[2]
    return rel_row, sources


def _seal_record(
    builder: RecordBuilder,
    graph: ProcessGraph,
    ft: FTGraph,
    faults: FaultModel,
    bus_scheduler: BusScheduler,
) -> ScheduleRecord:
    """Derive completions/groups and freeze the builder into the record."""
    k = faults.k
    index_of = builder.index_of
    wcf = builder.wcf
    n_processes = builder.process_count
    replicas: list[tuple[int, ...]] = [()] * n_processes
    completions: list[float] = [0.0] * n_processes
    deadlines: list[float | None] = [None] * n_processes
    for process, replica_ids in ft.group_of.items():
        process_id = builder.process_id(process)
        indices = tuple(index_of[iid] for iid in replica_ids)
        replicas[process_id] = indices
        pairs = [
            (wcf[index], ft.instances[iid].kill_cost)
            for index, iid in zip(indices, replica_ids)
        ]
        completions[process_id] = guaranteed_completion(pairs, k)
        deadlines[process_id] = graph.processes[process].deadline
    medl = bus_scheduler.medl.packed(builder.node_index)
    return builder.finish(
        process_replicas=tuple(replicas),
        completions=tuple(completions),
        deadlines=tuple(deadlines),
        medl=medl,
        k=k,
        mu=faults.mu,
    )
