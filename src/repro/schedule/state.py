"""The list scheduler's mutable core, exposed as a snapshotable state machine.

:class:`SchedulerState` owns every piece of mutable state the fault-tolerant
list scheduler (paper §5.1, Fig. 6) advances per placement step:

* the ready heap and per-instance predecessor countdowns,
* the :class:`repro.schedule.record.RecordBuilder` accumulating the flat
  :class:`~repro.schedule.record.ScheduleRecord` arrays,
* the worst-case analyzer's per-node chain tails,
* the bus scheduler's slot fill levels and MEDL,
* the per-instance ``root_finish`` / ``no_recovery_row`` maps feeding later
  release computations.

``step()`` places exactly one instance (one iteration of the Fig. 6 loop);
``run()`` drives the schedule to completion; ``seal()`` freezes the record.
The split exists for the incremental evaluation kernel
(:mod:`repro.schedule.incremental`): every field is a flat dict/list over
immutable values, so :meth:`SchedulerState.snapshot` captures the whole
machine at a process-rank boundary in O(state) shallow copies and
:meth:`SchedulerState.restore` rewinds to it, letting a re-schedule resume
from the deepest prefix unaffected by a design change instead of starting
cold.  The snapshot contract is documented in DESIGN.md.

With ``trace=ScheduleTrace()`` the state additionally records the per-step
facts the delta kernel needs to decide, during a later replay, whether an
instance's base rows can be copied verbatim: the rank at which each instance
became ready, the fault-reuse budget behind its fast frames, its chain tail
row, and each node's bus pack sequence.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field

from repro.errors import SchedulingError
from repro.model.application import ProcessGraph
from repro.model.fault import FaultModel
from repro.model.ftgraph import FTGraph
from repro.obs.metrics import get_registry
from repro.schedule.analysis import (
    WorstCaseAnalyzer,
    group_survivor_indices,
    guaranteed_completion,
)
from repro.schedule.priorities import pcp_priorities
from repro.schedule.record import (
    BIND_INPUT,
    BIND_NODE,
    BIND_RELEASE,
    RecordBuilder,
    ScheduleRecord,
)
from repro.ttp.bus import BusConfig
from repro.ttp.medl import MessageDescriptor
from repro.ttp.schedule import BusScheduler


def group_release_inputs(
    group,
    node: str,
    instances,
    root_finish: dict[str, float],
    no_recovery_rows: dict[str, tuple[float, ...]],
    medl_by_id: dict[str, MessageDescriptor],
    mu: float,
    owner: str,
    missing: list | None = None,
):
    """Classify one input group's senders for release pricing.

    This is the single source of truth for the local/masked/fast sender
    classification both release paths share: the scalar :func:`release_row`
    below and the vectorized kernel in :mod:`repro.schedule.vector` (which
    additionally prices *hypothetical* receiver nodes against base-schedule
    mirrors, so classification drift between the two would silently break
    the vector tier's error bounds).

    Returns ``(immune, fast_senders)``:

    * ``immune`` — ``(arrival, kill_cost, src_iid)`` entries whose price
      does not depend on the shared delay budget: local finishes and
      masked frames fall only with their sender.
    * ``fast_senders`` — ``(slot_start, slot_end, guaranteed_slot_end |
      None, no_recovery_row, recovery_step, reexecutions, kill_cost,
      src_iid)`` per replicated remote sender.

    A sender whose fast frame has no MEDL descriptor is an error on the
    live scheduling path (``missing=None`` raises, bus scheduling out of
    sync with the FT graph); the vector estimator passes a list instead
    and receives ``(src_iid, fast_id, guaranteed_id, replicated)`` tuples
    to price with *estimated* slots (the frame would only exist in the
    moved design).
    """
    immune: list[tuple[float, int, str]] = []
    fast_senders: list[
        tuple[float, float, float | None, tuple[float, ...], float, int, int, str]
    ] = []
    frame_ids = group.frame_ids
    replicated = len(frame_ids) > 1
    for src_iid, fast_id, guaranteed_id in frame_ids:
        src = instances[src_iid]
        kill_cost = src.kill_cost
        if src.node == node:
            # Local input: delays of the local chain are handled by the
            # node DP, so only the terminal kill removes this entry.
            immune.append((root_finish[src_iid], kill_cost, src_iid))
            continue
        descriptor = medl_by_id.get(fast_id)
        if descriptor is None:
            if missing is None:
                raise SchedulingError(
                    f"no MEDL entry for bus message {fast_id!r} while "
                    f"releasing {owner!r} (bus scheduling out of sync with "
                    f"the FT graph)"
                )
            missing.append((src_iid, fast_id, guaranteed_id, replicated))
            continue
        if not replicated:
            # Masked frame: slot lies after the sender's WCF, so within
            # budget k only a terminal kill (impossible for a sole
            # replica of a valid policy) removes it.
            immune.append((descriptor.slot_end, kill_cost, src_iid))
        else:
            guaranteed = medl_by_id.get(guaranteed_id)
            fast_senders.append(
                (
                    descriptor.slot_start,
                    descriptor.slot_end,
                    None if guaranteed is None else guaranteed.slot_end,
                    no_recovery_rows[src_iid],
                    src.recovery_unit + mu,
                    src.reexecutions,
                    kill_cost,
                    src_iid,
                )
            )
    return immune, fast_senders


def release_row(
    ft: FTGraph,
    iid: str,
    faults: FaultModel,
    root_finish: dict[str, float],
    no_recovery_rows: dict[str, tuple[float, ...]],
    medl_by_id: dict[str, MessageDescriptor],
) -> tuple[list[float], list[str | None]]:
    """Guaranteed release per adversary budget, plus per-budget sources.

    ``rel_row[c]`` is the latest guaranteed availability of all inputs when
    the adversary may spend ``c`` faults invalidating input messages;
    ``rel_row[0]`` is the fault-free (root) release.  ``sources[c]`` names
    the sender instance whose (possibly contingency) arrival dominates at
    budget ``c`` — the critical-path extraction follows these links — or
    ``None`` when the release time itself dominates.

    Adversary model (shared upstream delays + per-sender faults)
    ------------------------------------------------------------
    A sender replica's frames can be invalidated three ways, and their
    costs compose differently:

    * **shared delay** — faults that are *not* on the sender itself (its
      inputs, its node chain) push the sender's no-recovery row past its
      fast slot's start.  Such delays *correlate*: replicas of a group
      share predecessors, so one upstream fault may delay every replica
      past its slot simultaneously.  The model spends a single shared
      budget ``d`` whose effect applies to **all** senders at once.
    * **own recoveries** — ``t`` failed attempts on the sender delay it by
      ``t * (recovery + mu)`` on top of the shared delay.  Faults on
      distinct instances are disjoint, so these are priced per sender,
      like (partial) kills.
    * **kill** — ``kill_cost`` faults on the sender terminate it, removing
      *all* its frames; the guaranteed twin therefore costs only the
      *remaining* kills after the fast frame was silenced.

    ``rel_row[c]`` maximizes over every split ``c = d + (c - d)``: given
    ``d``, each fast frame's silencing price is the cheaper of the own
    recoveries still needed (0 if the shared delay alone misses the slot)
    and the outright kill; guaranteed/masked slots lie after the sender's
    WCF and local inputs are covered by the node DP, so only kills remove
    them.  The greedy earliest-first argument of
    :func:`group_survivor_indices` then spends the remaining ``c - d``
    faults.  Enough replicas carry a guaranteed twin that their combined
    kill price out-lasts every split's kill budget
    (``ftgraph._guaranteed_backed``).  Soundness: any concrete <= c fault
    scenario splits into faults on group senders (covered by the per-
    sender prices) and faults elsewhere (covered by some ``d``); budget 0
    reproduces the fault-free fast arrivals exactly.
    """
    k = faults.k
    mu = faults.mu
    instances = ft.instances
    instance = instances[iid]
    node = instance.node

    rel_row = [instance.release] * (k + 1)
    sources: list[str | None] = [None] * (k + 1)

    for group in ft.inputs_of(iid):
        immune, fast_senders = group_release_inputs(
            group, node, instances, root_finish, no_recovery_rows,
            medl_by_id, mu, iid,
        )

        if not fast_senders and len(immune) == 1:
            # Single-source group (the common case): the lone entry survives
            # every budget (`group_survivor_indices` pins index 0), so the
            # breakpoint scan below would only rediscover it.
            arrival, _, src_iid = immune[0]
            for c in range(k + 1):
                if arrival > rel_row[c]:
                    rel_row[c] = arrival
                    sources[c] = src_iid
            continue

        # Per sender, the fast frame's silencing price at every shared
        # budget d: own recoveries still needed to miss the slot on top of
        # the shared delay (beyond reexec only a kill silences).  The
        # price is non-increasing in d; a branch whose prices all equal
        # the previous d's is dominated by it (same entries, smaller kill
        # budget => an earlier survivor), so only the breakpoints where
        # some price drops need evaluating.
        fast_costs: list[list[int]] = []
        breakpoints = {0}
        for (
            slot_start, _, _, row, step, reexec, kill_cost, _,
        ) in fast_senders:
            threshold = slot_start + 1e-9
            costs = []
            for d in range(k + 1):
                fast_cost = kill_cost
                delayed = row[d]
                for t in range(reexec + 1):
                    if delayed > threshold:
                        fast_cost = t if t < kill_cost else kill_cost
                        break
                    delayed += step
                costs.append(fast_cost)
                if d and fast_cost != costs[d - 1]:
                    breakpoints.add(d)
            fast_costs.append(costs)

        for d in sorted(breakpoints):
            entries = list(immune)
            for costs, (
                _, slot_end, guaranteed_end, _, _, _, kill_cost, src_iid,
            ) in zip(fast_costs, fast_senders):
                fast_cost = costs[d]
                if fast_cost > 0:
                    entries.append((slot_end, fast_cost, src_iid))
                if guaranteed_end is not None:
                    # A kill removes both frames: after the fast one was
                    # silenced, the twin costs the remaining kills (0 when
                    # silencing already was a full kill).
                    entries.append(
                        (guaranteed_end, kill_cost - fast_cost, src_iid)
                    )
            # Survivors are tracked by *index*: on arrival-time ties a
            # value lookup would name the first tied sender, which may be
            # a replica the adversary already killed, corrupting
            # critical-path extraction.
            entries.sort()
            indices = group_survivor_indices(entries, k - d)
            for c in range(d, k + 1):
                survivor = entries[indices[c - d]]
                if survivor[0] > rel_row[c]:
                    rel_row[c] = survivor[0]
                    sources[c] = survivor[2]
    return rel_row, sources


@dataclass(slots=True)
class ScheduleTrace:
    """Per-step facts recorded during a full run for later delta replays.

    All maps are keyed by instance id.  ``ready_rank[iid]`` is the earliest
    placement rank at which ``iid`` could have been popped (0 for roots,
    otherwise one past the rank of its last-placed predecessor) — the delta
    kernel's divergence bound rewinds to the minimum ready rank over all
    affected instances.  ``pack`` holds each node's bus pack sequence as
    ``(bus_message_id, data_ready)`` pairs in pack order, which is what the
    replay compares against to reuse a base MEDL descriptor without
    re-running first-fit.
    """

    ready_rank: dict[str, int] = field(default_factory=dict)
    reuse_budget: dict[str, int] = field(default_factory=dict)
    tail_rows: dict[str, tuple[float, ...]] = field(default_factory=dict)
    pack: dict[str, list[tuple[str, float]]] = field(default_factory=dict)


@dataclass(slots=True)
class SchedulerSnapshot:
    """All mutable scheduler state frozen at one placement-rank boundary.

    Every field is a fresh shallow container over immutable values (floats,
    tuples, descriptors), so restoring is plain re-copying — no deep
    structure is shared mutably with the live state.
    """

    rank: int
    ready: list[tuple[float, str]]
    remaining: dict[str, int]
    tails: dict[str, tuple[float, ...]]
    bus_used: dict[tuple[str, int], int]
    medl_by_id: dict[str, MessageDescriptor]
    root_finish: dict[str, float]
    no_recovery_rows: dict[str, tuple[float, ...]]
    builder_state: tuple


class SchedulerState:
    """One in-flight list-scheduling pass as an explicit state machine."""

    __slots__ = (
        "graph",
        "ft",
        "faults",
        "bus",
        "priorities",
        "analyzer",
        "bus_scheduler",
        "builder",
        "ready",
        "remaining",
        "root_finish",
        "no_recovery_rows",
        "trace",
        "_succ_of",
        "_k",
    )

    def __init__(
        self,
        graph: ProcessGraph,
        ft: FTGraph,
        faults: FaultModel,
        bus: BusConfig,
        *,
        priorities: dict[str, float] | None = None,
        trace: ScheduleTrace | None = None,
    ) -> None:
        if len(ft) == 0:
            raise SchedulingError("nothing to schedule: the FT graph is empty")
        self.graph = graph
        self.ft = ft
        self.faults = faults
        self.bus = bus
        self.priorities = (
            pcp_priorities(ft, bus, faults) if priorities is None else priorities
        )
        self.analyzer = WorstCaseAnalyzer(faults)
        self.bus_scheduler = BusScheduler(bus)
        self.builder = RecordBuilder()
        self.root_finish = {}
        self.no_recovery_rows = {}
        self.trace = trace
        self._succ_of = ft._succ
        self._k = faults.k

        # Readiness bookkeeping: an instance is ready when all predecessors
        # in the instance DAG are placed (their bus messages are scheduled
        # at placement time, so readiness implies known arrival times).
        priorities_of = self.priorities
        self.remaining = {iid: len(ft._pred[iid]) for iid in ft.instances}
        self.ready = [
            (-priorities_of[iid], iid)
            for iid, count in self.remaining.items()
            if count == 0
        ]
        heapq.heapify(self.ready)
        if trace is not None:
            for _, iid in self.ready:
                trace.ready_rank[iid] = 0

    @property
    def rank(self) -> int:
        """Number of instances placed so far (= next placement rank)."""
        return len(self.builder.instance_ids)

    @property
    def done(self) -> bool:
        return not self.ready

    def peek(self) -> str | None:
        """Instance id the next ``step()`` will place (None when done)."""
        return self.ready[0][1] if self.ready else None

    def step(self) -> str:
        """Place the highest-priority ready instance; one Fig. 6 iteration."""
        _, iid = heapq.heappop(self.ready)
        ft = self.ft
        instance = ft.instances[iid]
        rel_row, rel_sources = release_row(
            ft,
            iid,
            self.faults,
            self.root_finish,
            self.no_recovery_rows,
            self.bus_scheduler.medl.by_id(),
        )

        builder = self.builder
        node = instance.node
        node_id = builder.node_id(node)
        chain = builder.chain(node_id)

        result = self.analyzer.place(instance, rel_row)
        if result.dominant == "node" and chain:
            binding = (BIND_NODE, chain[-1], result.dominant_budget)
        else:
            source = rel_sources[result.dominant_budget]
            if source is None:
                binding = (BIND_RELEASE, -1, result.dominant_budget)
            else:
                binding = (
                    BIND_INPUT,
                    builder.index_of[source],
                    result.dominant_budget,
                )
        builder.place(
            iid,
            builder.process_id(instance.process),
            node_id,
            result.root_finish - instance.wcet,
            result.root_finish,
            result.wcf,
            result.finish_row,
            binding,
        )
        self.root_finish[iid] = result.root_finish
        self.no_recovery_rows[iid] = result.no_recovery_row
        trace = self.trace
        if trace is not None:
            trace.tail_rows[iid] = result.tail_row

        outgoing = ft.outgoing_bus_messages(iid)
        if outgoing:
            # Fast frames of replicas depart right after the fault-free
            # finish (Fig. 4b); masked/guaranteed frames only after the
            # worst-case finish so recovery stays transparent (Fig. 4a).
            #
            # Co-location caveat: killing an *earlier co-located* replica of
            # the same process both removes that replica's frame and delays
            # this one (fault reuse).  The fast frame therefore departs only
            # after the finish under a budget covering those sibling kills,
            # so the receiver-side marginal cost accounting stays sound.
            reuse_budget = 0
            root_finish = self.root_finish
            for sibling in ft.group_of[instance.process]:
                if (
                    sibling != iid
                    and sibling in root_finish
                    and ft.instances[sibling].node == node
                ):
                    reuse_budget += ft.instances[sibling].kill_cost
            fast_ready = result.finish_row[min(reuse_budget, self._k)]
            if trace is not None:
                trace.reuse_budget[iid] = reuse_budget
                pack_seq = trace.pack.setdefault(node, [])
            schedule_message = self.bus_scheduler.schedule_message
            for bus_message in outgoing:
                data_ready = (
                    fast_ready if bus_message.kind == "fast" else result.wcf
                )
                schedule_message(
                    bus_message.id, node, bus_message.message.size, data_ready
                )
                if trace is not None:
                    pack_seq.append((bus_message.id, data_ready))

        remaining = self.remaining
        ready = self.ready
        priorities = self.priorities
        rank_after = len(builder.instance_ids)
        for succ in self._succ_of[iid]:
            remaining[succ] -= 1
            if remaining[succ] == 0:
                heapq.heappush(ready, (-priorities[succ], succ))
                if trace is not None:
                    trace.ready_rank[succ] = rank_after
        return iid

    def run(self) -> None:
        """Drive the schedule to completion."""
        started = time.perf_counter()
        step = self.step
        while self.ready:
            step()
        registry = get_registry()
        registry.inc("scheduler.passes")
        registry.inc("scheduler.pass_s", time.perf_counter() - started)

    # -- snapshot / restore (incremental kernel) ---------------------------

    def snapshot(self) -> SchedulerSnapshot:
        """Freeze all mutable state at the current rank (shallow copies)."""
        bus_used, medl_by_id = self.bus_scheduler.bus_state()
        return SchedulerSnapshot(
            rank=self.rank,
            ready=list(self.ready),
            remaining=dict(self.remaining),
            tails=dict(self.analyzer._tails),
            bus_used=bus_used,
            medl_by_id=medl_by_id,
            root_finish=dict(self.root_finish),
            no_recovery_rows=dict(self.no_recovery_rows),
            builder_state=self.builder.snapshot(),
        )

    def restore(self, snapshot: SchedulerSnapshot) -> None:
        """Rewind to a snapshot taken from *this* configuration.

        The snapshot's containers are copied again on restore, so one
        snapshot can seed any number of replays.
        """
        self.ready = list(snapshot.ready)
        self.remaining = dict(snapshot.remaining)
        self.analyzer._tails = dict(snapshot.tails)
        self.bus_scheduler.restore_bus_state(
            dict(snapshot.bus_used), dict(snapshot.medl_by_id)
        )
        self.root_finish = dict(snapshot.root_finish)
        self.no_recovery_rows = dict(snapshot.no_recovery_rows)
        self.builder.restore(snapshot.builder_state)

    # -- sealing ------------------------------------------------------------

    def cost_view(self) -> tuple[float, float]:
        """``(degree_of_schedulability, makespan)`` without sealing a record.

        Candidate pricing needs only these two floats; sealing (completion
        derivation *plus* tuple freezing and MEDL packing) is deferred to
        the winner of a neighbourhood.  Bit-parity contract: completions
        are derived with the same per-group arithmetic as :meth:`seal` and
        the degree is summed in process-intern order — the order
        :meth:`repro.schedule.record.ScheduleRecord.degree_of_schedulability`
        sums in — so both floats equal the sealed record's exactly.
        """
        ft = self.ft
        if self.rank != len(ft):
            raise SchedulingError(
                "cost_view on an incomplete schedule "
                f"({self.rank}/{len(ft)} instances placed)"
            )
        builder = self.builder
        k = self._k
        index_of = builder.index_of
        wcf = builder.wcf
        instances = ft.instances
        group_of = ft.group_of
        graph_processes = self.graph.processes
        degree = 0.0
        makespan = 0.0
        for process in builder._processes:
            replica_ids = group_of[process]
            pairs = [
                (wcf[index_of[iid]], instances[iid].kill_cost)
                for iid in replica_ids
            ]
            completion = guaranteed_completion(pairs, k)
            if completion > makespan:
                makespan = completion
            deadline = graph_processes[process].deadline
            if deadline is not None:
                overshoot = completion - deadline
                if overshoot > 1e-9:
                    degree += overshoot
        return degree, makespan

    def seal(self) -> ScheduleRecord:
        """Derive completions/groups and freeze the builder into the record."""
        get_registry().inc("scheduler.seals")
        ft = self.ft
        if self.rank != len(ft):
            unplaced = [
                iid for iid, count in self.remaining.items() if count > 0
            ]
            raise SchedulingError(
                f"list scheduling left {len(unplaced)} instances unplaced "
                f"(cycle in the FT graph?): {unplaced[:5]}"
            )
        builder = self.builder
        k = self._k
        index_of = builder.index_of
        wcf = builder.wcf
        n_processes = builder.process_count
        replicas: list[tuple[int, ...]] = [()] * n_processes
        completions: list[float] = [0.0] * n_processes
        deadlines: list[float | None] = [None] * n_processes
        graph_processes = self.graph.processes
        for process, replica_ids in ft.group_of.items():
            process_id = builder.process_id(process)
            indices = tuple(index_of[iid] for iid in replica_ids)
            replicas[process_id] = indices
            pairs = [
                (wcf[index], ft.instances[iid].kill_cost)
                for index, iid in zip(indices, replica_ids)
            ]
            completions[process_id] = guaranteed_completion(pairs, k)
            deadlines[process_id] = graph_processes[process].deadline
        medl = self.bus_scheduler.medl.packed(builder.node_index)
        return builder.finish(
            process_replicas=tuple(replicas),
            completions=tuple(completions),
            deadlines=tuple(deadlines),
            medl=medl,
            k=k,
            mu=self.faults.mu,
        )
