"""Worst-case (k, µ) fault analysis with shared recovery slack.

This module is the analytical heart of the reproduction.  It computes, for
every scheduled instance, the worst-case finish time (WCF) over *all*
scenarios of at most ``k`` transient faults, reproducing three key paper
behaviours:

* **Re-execution slack** (Fig. 2a): a lone process with WCET ``C`` and ``e``
  re-executions finishes at worst at ``start + C + e*(C+µ)``.
* **Slack sharing** (Fig. 3b): processes scheduled consecutively on one node
  share recovery slack; the per-node chain DP below computes the exact worst
  finish for every fault budget instead of summing per-process slacks.
* **Replica contingency** (Fig. 7): a process waiting on a replicated
  predecessor may be placed right after the local replica; the scenario in
  which the local replica was killed consumed faults, so the remaining
  budget — and hence the required slack — shrinks, possibly to zero.

Chain DP
--------
For the ``i``-th instance of a node's schedule (order = placement order) and
a fault budget ``q``::

    F(i, q) = max over t in [0, min(q, e_i)] of
                 max(rel_i(q - t), F(i - 1, q - t)) + C_i + t * (C_i + µ)

``rel_i(c)`` is the guaranteed release of the instance when an adversary may
spend ``c`` faults killing input replicas (see
:func:`group_guaranteed_arrival`).  ``F(i, 0)`` is the fault-free (root)
finish.  The *tail* passed to the next chain element additionally covers the
scenario where instance ``i`` is terminally killed (all ``e_i + 1``
executions fail), which occupies ``(e_i+1) * (C_i + µ)``.

Soundness note: both the ``rel`` and the chain term receive the same budget
``q - t``; an adversary fault can therefore be counted against both terms.
This slight pessimism (never optimism) keeps the analysis safe — the
fault-injection validator in :mod:`repro.sim` checks the bound from below.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchedulingError
from repro.model.fault import FaultModel
from repro.model.ftgraph import Instance

_NEG_INF = float("-inf")


def group_survivor_index(
    arrivals: list[tuple[float, int]],
    budget: int,
) -> int:
    """Index of the surviving entry under ``budget`` kills (see below).

    ``arrivals`` is a list of ``(arrival_time, kill_cost)`` pairs sorted by
    arrival time.  The adversary delays the receiver most by terminally
    killing the earliest-arriving replicas first; it must stop at the first
    replica it cannot afford (killing a *later* replica while an earlier one
    survives gains nothing).  At least one replica always survives because a
    valid policy prices the whole group above ``k``.

    Returning the *index* (not the arrival time) lets callers identify the
    surviving entry even when several entries arrive at the identical time —
    a float-equality lookup would name the first tied entry, which may be a
    replica the adversary already killed.
    """
    if not arrivals:
        raise SchedulingError("replica group with no arrivals")
    spent = 0
    index = 0
    last = len(arrivals) - 1
    for _, kill_cost in arrivals:
        if index == last:
            break
        if spent + kill_cost > budget:
            break
        spent += kill_cost
        index += 1
    return index


def group_survivor_indices(
    arrivals: list[tuple],
    max_budget: int,
) -> list[int]:
    """Surviving-entry index for every budget ``0..max_budget`` in one pass.

    Entries are ``(arrival_time, kill_cost, ...)`` tuples sorted by arrival
    time; trailing elements (e.g. the sender id) are ignored.  Equivalent to
    ``[group_survivor_index(arrivals, c) for c in range(...)]`` but computed
    with a single walk over the (budget-monotone) kill prefix — this sits on
    the per-instance hot path of the list scheduler.
    """
    if not arrivals:
        raise SchedulingError("replica group with no arrivals")
    indices: list[int] = []
    spent = 0
    index = 0
    last = len(arrivals) - 1
    for budget in range(max_budget + 1):
        while index < last and spent + arrivals[index][1] <= budget:
            spent += arrivals[index][1]
            index += 1
        indices.append(index)
    return indices


def group_guaranteed_arrival(
    arrivals: list[tuple[float, int]],
    budget: int,
) -> float:
    """Guaranteed arrival of a replica group's data under ``budget`` kills.

    See :func:`group_survivor_index` for the adversary argument.
    """
    return arrivals[group_survivor_index(arrivals, budget)][0]


@dataclass(frozen=True, slots=True)
class PlacementResult:
    """Per-budget worst-case rows of a freshly placed instance.

    ``finish_row`` is retained verbatim as one row of the compact
    :class:`repro.schedule.record.ScheduleRecord`; ``dominant`` and
    ``dominant_budget`` feed the record's binding index triple, which is
    what the critical-path walk follows.
    """

    finish_row: tuple[float, ...]  # F(i, q): worst finish when it completes
    tail_row: tuple[float, ...]  # chain tail incl. the terminally-killed case
    #: Worst finish under q faults when NONE of them hits this instance's
    #: own recoveries (base release/chain delay + one clean execution).
    #: Receivers price fast-frame invalidation with it: delays through
    #: this row can be shared with sibling replicas (common upstream
    #: faults), while own-recovery delays are disjoint per sender.
    no_recovery_row: tuple[float, ...] = ()
    dominant: str = "input"  # what bounded F(i, k): "input" or "node"
    dominant_budget: int = 0  # the b = k - t at which the worst case occurred

    @property
    def root_finish(self) -> float:
        return self.finish_row[0]

    @property
    def wcf(self) -> float:
        """Worst-case finish over every scenario of at most k faults."""
        return self.finish_row[-1]


class WorstCaseAnalyzer:
    """Incremental per-node chain DP driven by the list scheduler."""

    def __init__(self, faults: FaultModel) -> None:
        self.faults = faults
        self._tails: dict[str, tuple[float, ...]] = {}

    def node_tail(self, node: str) -> tuple[float, ...] | None:
        """Current chain tail of ``node`` (``None`` if nothing placed yet)."""
        return self._tails.get(node)

    def root_available(self, node: str) -> float:
        """Fault-free time at which ``node`` becomes free."""
        tail = self._tails.get(node)
        return tail[0] if tail is not None else 0.0

    def place(self, instance: Instance, rel_row: list[float]) -> PlacementResult:
        """Append ``instance`` to its node's chain and return its rows.

        ``rel_row[c]`` must be the guaranteed release time of the instance
        when the adversary spends ``c`` faults on its input replicas (it
        already includes the instance's release time).
        """
        k = self.faults.k
        mu = self.faults.mu
        if len(rel_row) != k + 1:
            raise SchedulingError(
                f"rel_row must have k+1={k + 1} entries, got {len(rel_row)}"
            )
        wcet = instance.wcet
        reexec = instance.reexecutions
        # Checkpointing extension: a re-execution re-runs one segment only.
        recovery = instance.recovery_unit
        prev = self._tails.get(instance.node)
        step = recovery + mu

        # Base release per budget: the later of the guaranteed input arrival
        # and the node chain's tail (hoisted out of the (q, t) double loop).
        if prev is None:
            base_row = rel_row
            input_row = [True] * (k + 1)
        else:
            base_row = []
            input_row = []
            for b in range(k + 1):
                rel = rel_row[b]
                chained = prev[b]
                if chained > rel:
                    base_row.append(chained)
                    input_row.append(False)
                else:
                    base_row.append(rel)
                    input_row.append(True)

        # F(q) maximizes over t in [0, min(q, reexec)] re-executions, i.e.
        # over budgets b = q - t walking down from q; ``extra`` accumulates
        # wcet + t * step without re-multiplying per iteration.
        finish_row: list[float] = []
        for q in range(k):
            tmax = q if q < reexec else reexec
            best = _NEG_INF
            extra = wcet
            for b in range(q, q - tmax - 1, -1):
                value = base_row[b] + extra
                if value > best:
                    best = value
                extra += step
            finish_row.append(best)
        tmax = k if k < reexec else reexec
        best = _NEG_INF
        extra = wcet
        dominant_budget = 0
        for b in range(k, k - tmax - 1, -1):
            value = base_row[b] + extra
            if value > best:
                best = value
                dominant_budget = b
            extra += step
        finish_row.append(best)
        dominant = "input" if input_row[dominant_budget] else "node"

        tail_row: list[float] = []
        kill_attempts = reexec + 1
        for q in range(k + 1):
            tail = finish_row[q]
            if q >= kill_attempts:
                killed = base_row[q - kill_attempts] + (wcet + mu) + reexec * step
                if killed > tail:
                    tail = killed
            tail_row.append(tail)

        result = PlacementResult(
            finish_row=tuple(finish_row),
            tail_row=tuple(tail_row),
            no_recovery_row=tuple(base + wcet for base in base_row),
            dominant=dominant,
            dominant_budget=dominant_budget,
        )
        self._tails[instance.node] = result.tail_row
        return result


def guaranteed_completion(
    replica_wcfs: list[tuple[float, int]],
    budget: int,
) -> float:
    """Guaranteed completion of a replicated process.

    ``replica_wcfs`` pairs each replica's worst-case finish with its kill
    cost.  The adversary again kills the earliest-finishing replicas first;
    the process is guaranteed complete when the earliest *surviving* replica
    has finished.  With pure replication on otherwise idle nodes this equals
    the root finish of the last replica (Fig. 2b); with a single re-executed
    replica it is that replica's WCF (Fig. 2a).
    """
    ordered = sorted(replica_wcfs)
    return group_guaranteed_arrival(ordered, budget)
