"""Diagnostics for synthesized schedules: utilization, slack, bus load.

These are the quantities a designer inspects when the optimizer reports an
unschedulable system: which node is saturated, how much of the schedule is
recovery slack, how loaded the TDMA rounds are, and how much redundancy the
chosen policies cost (the paper's "overhead" decomposed per resource).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.schedule.table import SystemSchedule
from repro.ttp.medl import PACKED_ROUND, PACKED_SIZE, PACKED_SLOT_END


@dataclass(frozen=True)
class NodeMetrics:
    """Per-node timing breakdown."""

    node: str
    busy_time: float  # sum of fault-free execution times
    slack_time: float  # worst-case recovery slack (WCF end - root end)
    horizon: float  # schedule length used for utilization
    instances: int

    @property
    def utilization(self) -> float:
        """Fault-free busy fraction of the schedule horizon."""
        if self.horizon <= 0:
            return 0.0
        return self.busy_time / self.horizon

    @property
    def worst_case_utilization(self) -> float:
        """Busy + reserved-slack fraction of the horizon."""
        if self.horizon <= 0:
            return 0.0
        return min(1.0, (self.busy_time + self.slack_time) / self.horizon)


@dataclass(frozen=True)
class BusMetrics:
    """TDMA bus usage.

    ``frames`` counts scheduled message descriptors (MEDL entries), so the
    "N frames, M bytes" diagnostic always agrees with the MEDL rendering.
    """

    frames: int
    payload_bytes: int
    rounds_used: int
    round_length: float
    last_slot_end: float

    @property
    def bytes_per_round(self) -> float:
        if self.rounds_used == 0:
            return 0.0
        return self.payload_bytes / self.rounds_used


@dataclass(frozen=True)
class RedundancyMetrics:
    """How much extra execution the policy assignment reserves."""

    base_executions: int  # one per process
    replica_executions: int  # additional active replicas
    reserved_reexecutions: int  # re-execution budget across all replicas

    @property
    def space_redundancy(self) -> float:
        """Replica executions per process (0.0 = no replication)."""
        if self.base_executions == 0:
            return 0.0
        return self.replica_executions / self.base_executions

    @property
    def time_redundancy(self) -> float:
        """Reserved re-executions per process."""
        if self.base_executions == 0:
            return 0.0
        return self.reserved_reexecutions / self.base_executions


@dataclass
class ScheduleMetrics:
    """Everything together, with a text rendering."""

    makespan: float
    nodes: dict[str, NodeMetrics] = field(default_factory=dict)
    bus: BusMetrics | None = None
    redundancy: RedundancyMetrics | None = None

    def bottleneck_node(self) -> str:
        """The node with the highest worst-case utilization."""
        return max(
            self.nodes, key=lambda n: (self.nodes[n].worst_case_utilization, n)
        )

    def format(self) -> str:
        lines = [f"schedule length: {self.makespan:.1f} ms"]
        for name in sorted(self.nodes):
            m = self.nodes[name]
            lines.append(
                f"  {name:<6} busy {m.busy_time:7.1f} ms ({m.utilization:5.1%})"
                f"  slack {m.slack_time:7.1f} ms"
                f"  worst-case {m.worst_case_utilization:5.1%}"
                f"  [{m.instances} instances]"
            )
        if self.bus is not None:
            lines.append(
                f"  bus    {self.bus.frames} frames, {self.bus.payload_bytes} B"
                f" over {self.bus.rounds_used} rounds"
                f" (round {self.bus.round_length:.1f} ms)"
            )
        if self.redundancy is not None:
            lines.append(
                f"  redundancy: {self.redundancy.space_redundancy:.2f} extra "
                f"replicas/process, {self.redundancy.time_redundancy:.2f} "
                f"re-executions/process"
            )
        lines.append(f"  bottleneck: {self.bottleneck_node()}")
        return "\n".join(lines)


def compute_metrics(schedule: SystemSchedule) -> ScheduleMetrics:
    """Derive :class:`ScheduleMetrics` from a synthesized schedule.

    Reads the compact record arrays directly — deriving diagnostics never
    materializes the per-instance placement view.
    """
    record = schedule.record
    makespan = record.makespan
    metrics = ScheduleMetrics(makespan=makespan)

    for node_index, chain in enumerate(record.node_chains):
        busy = 0.0
        slack = 0.0
        for index in chain:
            busy += record.root_finish[index] - record.root_start[index]
        if chain:
            node_wcf = max(record.wcf[index] for index in chain)
            slack = max(0.0, node_wcf - record.root_finish[chain[-1]])
        metrics.nodes[record.nodes[node_index]] = NodeMetrics(
            node=record.nodes[node_index],
            busy_time=busy,
            slack_time=slack,
            horizon=makespan,
            instances=len(chain),
        )

    rows = record.medl
    metrics.bus = BusMetrics(
        frames=len(rows),
        payload_bytes=sum(row[PACKED_SIZE] for row in rows),
        rounds_used=len({row[PACKED_ROUND] for row in rows}),
        round_length=schedule.bus.round_length,
        last_slot_end=max((row[PACKED_SLOT_END] for row in rows), default=0.0),
    )

    base = len(schedule.ft.group_of)
    replicas = sum(
        len(group) - 1 for group in schedule.ft.group_of.values()
    )
    reserved = sum(
        schedule.ft.instances[iid].reexecutions for iid in schedule.ft.instances
    )
    metrics.redundancy = RedundancyMetrics(
        base_executions=base,
        replica_executions=replicas,
        reserved_reexecutions=reserved,
    )
    return metrics
