"""Schedule views: the synthesized system configuration ``S`` (paper §4).

The canonical schedule artifact is the compact, immutable
:class:`repro.schedule.record.ScheduleRecord`; a :class:`SystemSchedule`
binds one record to its model context (merged graph, FT graph, fault model,
bus config) and *lazily* renders the classic object views from it — the
per-node schedule tables, the instance placements, the MEDL and the
guaranteed completions.  Nothing is materialized until a caller asks, so a
schedule that is only priced (the optimizer hot path) never grows beyond
its record.

Materialized views are cached and mutable on purpose: tests and what-if
tooling overwrite individual placements or completions, and every consumer
that reads *through the view* observes the change — the validator's
analytical bounds (``placements[iid].wcf``, ``completions``) and the
view-level :meth:`SystemSchedule.critical_path` are such readers.  Replay
structure, however, comes from the IR: the simulator takes instance order
and table start times from the record's flat arrays, and contingency
tables measure shifts against the record's root schedule, so editing a
view never alters *when* the synthesized tables dispatch.  The record
always keeps the as-synthesized truth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchedulingError
from repro.model.application import ProcessGraph
from repro.model.fault import FaultModel
from repro.model.ftgraph import FTGraph
from repro.schedule.record import BINDING_KINDS, ScheduleRecord
from repro.ttp.bus import BusConfig
from repro.ttp.medl import MEDL


@dataclass(frozen=True, slots=True)
class Binding:
    """Which constraint fixed an instance's root start time.

    ``kind`` is ``"release"`` (its release time), ``"node"`` (the previous
    instance in the node's schedule; ``source`` is its id) or ``"input"``
    (an input arrival; ``source`` is the sender instance id).
    """

    kind: str
    source: str | None = None


@dataclass(frozen=True, slots=True)
class ScheduledInstance:
    """One row of a node's static schedule table."""

    instance_id: str
    process: str
    node: str
    root_start: float
    root_finish: float
    wcf: float
    finish_row: tuple[float, ...]
    binding: Binding


class SystemSchedule:
    """Thin view over a :class:`ScheduleRecord` bound to its model context."""

    __slots__ = (
        "record",
        "graph",
        "ft",
        "faults",
        "bus",
        "_placements",
        "_order",
        "_node_chains",
        "_completions",
        "_medl",
    )

    def __init__(
        self,
        record: ScheduleRecord,
        graph: ProcessGraph,
        ft: FTGraph,
        faults: FaultModel,
        bus: BusConfig,
    ) -> None:
        self.record = record
        self.graph = graph
        self.ft = ft
        self.faults = faults
        self.bus = bus
        self._placements: dict[str, ScheduledInstance] | None = None
        self._order: list[str] | None = None
        self._node_chains: dict[str, list[str]] | None = None
        self._completions: dict[str, float] | None = None
        self._medl: MEDL | None = None

    @classmethod
    def from_record(
        cls,
        record: ScheduleRecord,
        graph: ProcessGraph,
        ft: FTGraph,
        faults: FaultModel,
        bus: BusConfig,
    ) -> "SystemSchedule":
        """Rebind a record (e.g. one shipped from a worker) to its context."""
        return cls(record, graph, ft, faults, bus)

    # -- lazily materialized views ----------------------------------------

    @property
    def placements(self) -> dict[str, ScheduledInstance]:
        """Instance id -> schedule-table row, rendered from the record."""
        if self._placements is None:
            record = self.record
            ids = record.instance_ids
            placements: dict[str, ScheduledInstance] = {}
            for index, iid in enumerate(ids):
                kind, source, _ = record.bindings[index]
                placements[iid] = ScheduledInstance(
                    instance_id=iid,
                    process=record.processes[record.instance_process[index]],
                    node=record.nodes[record.instance_node[index]],
                    root_start=record.root_start[index],
                    root_finish=record.root_finish[index],
                    wcf=record.wcf[index],
                    finish_row=record.finish_rows[index],
                    binding=Binding(
                        kind=BINDING_KINDS[kind],
                        source=None if source < 0 else ids[source],
                    ),
                )
            self._placements = placements
        return self._placements

    @property
    def order(self) -> list[str]:
        """Instance ids in placement (= simulation replay) order."""
        if self._order is None:
            self._order = list(self.record.instance_ids)
        return self._order

    @property
    def node_chains(self) -> dict[str, list[str]]:
        """Per-node execution chains, as instance ids."""
        if self._node_chains is None:
            record = self.record
            self._node_chains = {
                record.nodes[node_index]: [
                    record.instance_ids[i] for i in chain
                ]
                for node_index, chain in enumerate(record.node_chains)
            }
        return self._node_chains

    @property
    def completions(self) -> dict[str, float]:
        """Guaranteed completion per process."""
        if self._completions is None:
            record = self.record
            self._completions = dict(zip(record.processes, record.completions))
        return self._completions

    @property
    def medl(self) -> MEDL:
        """The bus MEDL, rendered from the record's packed descriptors."""
        if self._medl is None:
            self._medl = MEDL.from_packed(self.record.medl, self.record.nodes)
        return self._medl

    # -- schedule-level metrics ---------------------------------------------

    @property
    def makespan(self) -> float:
        """Schedule length δ: latest guaranteed completion of any process."""
        if not self.completions:
            raise SchedulingError("schedule has no completions")
        return max(self.completions.values())

    def tardiness(self) -> dict[str, float]:
        """Per-process positive lateness versus its (absolute) deadline."""
        late: dict[str, float] = {}
        for name, process in self.graph.processes.items():
            if process.deadline is None:
                continue
            overshoot = self.completions[name] - process.deadline
            if overshoot > 1e-9:
                late[name] = overshoot
        return late

    def degree_of_schedulability(self) -> float:
        """Sum of deadline overshoots (0.0 when schedulable)."""
        return sum(self.tardiness().values())

    @property
    def is_schedulable(self) -> bool:
        return not self.tardiness()

    # -- views ----------------------------------------------------------------

    def node_table(self, node: str) -> list[ScheduledInstance]:
        """The static schedule table of ``node`` in execution order."""
        return [self.placements[iid] for iid in self.node_chains.get(node, [])]

    def instance_wcf(self, iid: str) -> float:
        return self.placements[iid].wcf

    def completion(self, process: str) -> float:
        try:
            return self.completions[process]
        except KeyError:
            raise SchedulingError(f"unknown process {process!r}") from None

    # -- critical path -----------------------------------------------------

    def critical_path(self) -> list[str]:
        """Process names on the chain of constraints behind the makespan.

        Walks the materialized placement view (so hand-edited placements
        are honoured); the allocation-free equivalent over the raw index
        triples is :meth:`ScheduleRecord.critical_path`, which the
        optimizer uses.
        """
        target = max(self.completions, key=lambda p: (self.completions[p], p))
        replicas = self.ft.replicas(target)
        iid = max(replicas, key=lambda r: (self.placements[r].wcf, r))
        path: list[str] = []
        seen: set[str] = set()
        guard = 0
        while iid is not None:
            guard += 1
            if guard > len(self.placements) + 1:
                raise SchedulingError("cyclic binding chain (internal error)")
            placed = self.placements[iid]
            if placed.process not in seen:
                path.append(placed.process)
                seen.add(placed.process)
            iid = placed.binding.source
        path.reverse()
        return path

    # -- rendering -----------------------------------------------------------

    def format_tables(self) -> str:
        """ASCII rendering of all node schedule tables and the MEDL."""
        lines: list[str] = []
        for node in sorted(self.node_chains):
            lines.append(f"node {node}:")
            for placed in self.node_table(node):
                lines.append(
                    f"  {placed.instance_id:<24} start={placed.root_start:8.2f} "
                    f"finish={placed.root_finish:8.2f} wcf={placed.wcf:8.2f}"
                )
        if len(self.medl):
            lines.append("bus (MEDL):")
            for descriptor in sorted(
                self.medl, key=lambda d: (d.slot_start, d.offset_bytes)
            ):
                lines.append(
                    f"  {descriptor.bus_message_id:<28} round={descriptor.round_index:<3} "
                    f"slot=[{descriptor.slot_start:.2f}, {descriptor.slot_end:.2f})"
                )
        lines.append(f"schedule length = {self.makespan:.2f} ms")
        return "\n".join(lines)
