"""Schedule tables: the synthesized system configuration ``S`` (paper §4).

A :class:`SystemSchedule` bundles the per-node static schedule tables (root
start times plus worst-case finish rows), the bus MEDL, and the analysis
results (guaranteed completions, schedule length, schedulability).  It also
records, for every instance, the *binding* constraint that determined its
root start time; following bindings backwards yields the critical path used
by the optimization moves (paper §5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchedulingError
from repro.model.application import ProcessGraph
from repro.model.fault import FaultModel
from repro.model.ftgraph import FTGraph
from repro.ttp.bus import BusConfig
from repro.ttp.medl import MEDL


@dataclass(frozen=True, slots=True)
class Binding:
    """Which constraint fixed an instance's root start time.

    ``kind`` is ``"release"`` (its release time), ``"node"`` (the previous
    instance in the node's schedule; ``source`` is its id) or ``"input"``
    (an input arrival; ``source`` is the sender instance id).
    """

    kind: str
    source: str | None = None


@dataclass(frozen=True, slots=True)
class ScheduledInstance:
    """One row of a node's static schedule table."""

    instance_id: str
    process: str
    node: str
    root_start: float
    root_finish: float
    wcf: float
    finish_row: tuple[float, ...]
    binding: Binding


@dataclass
class SystemSchedule:
    """The full synthesized schedule plus its worst-case analysis."""

    graph: ProcessGraph
    ft: FTGraph
    faults: FaultModel
    bus: BusConfig
    medl: MEDL
    placements: dict[str, ScheduledInstance] = field(default_factory=dict)
    order: list[str] = field(default_factory=list)
    node_chains: dict[str, list[str]] = field(default_factory=dict)
    completions: dict[str, float] = field(default_factory=dict)

    # -- schedule-level metrics ---------------------------------------------

    @property
    def makespan(self) -> float:
        """Schedule length δ: latest guaranteed completion of any process."""
        if not self.completions:
            raise SchedulingError("schedule has no completions")
        return max(self.completions.values())

    def tardiness(self) -> dict[str, float]:
        """Per-process positive lateness versus its (absolute) deadline."""
        late: dict[str, float] = {}
        for name, process in self.graph.processes.items():
            if process.deadline is None:
                continue
            overshoot = self.completions[name] - process.deadline
            if overshoot > 1e-9:
                late[name] = overshoot
        return late

    def degree_of_schedulability(self) -> float:
        """Sum of deadline overshoots (0.0 when schedulable)."""
        return sum(self.tardiness().values())

    @property
    def is_schedulable(self) -> bool:
        return not self.tardiness()

    # -- views ----------------------------------------------------------------

    def node_table(self, node: str) -> list[ScheduledInstance]:
        """The static schedule table of ``node`` in execution order."""
        return [self.placements[iid] for iid in self.node_chains.get(node, [])]

    def instance_wcf(self, iid: str) -> float:
        return self.placements[iid].wcf

    def completion(self, process: str) -> float:
        try:
            return self.completions[process]
        except KeyError:
            raise SchedulingError(f"unknown process {process!r}") from None

    # -- critical path -----------------------------------------------------

    def critical_path(self) -> list[str]:
        """Process names on the chain of constraints behind the makespan.

        Starting from the process whose guaranteed completion equals the
        schedule length, follow each instance's binding backwards (node
        predecessor or input sender) until a release-bound instance is
        reached.  The result is ordered source -> sink, deduplicated.
        """
        target = max(self.completions, key=lambda p: (self.completions[p], p))
        replicas = self.ft.replicas(target)
        iid = max(replicas, key=lambda r: (self.placements[r].wcf, r))
        path: list[str] = []
        seen: set[str] = set()
        guard = 0
        while iid is not None:
            guard += 1
            if guard > len(self.placements) + 1:
                raise SchedulingError("cyclic binding chain (internal error)")
            placed = self.placements[iid]
            if placed.process not in seen:
                path.append(placed.process)
                seen.add(placed.process)
            iid = placed.binding.source
        path.reverse()
        return path

    # -- rendering -----------------------------------------------------------

    def format_tables(self) -> str:
        """ASCII rendering of all node schedule tables and the MEDL."""
        lines: list[str] = []
        for node in sorted(self.node_chains):
            lines.append(f"node {node}:")
            for placed in self.node_table(node):
                lines.append(
                    f"  {placed.instance_id:<24} start={placed.root_start:8.2f} "
                    f"finish={placed.root_finish:8.2f} wcf={placed.wcf:8.2f}"
                )
        if len(self.medl):
            lines.append("bus (MEDL):")
            for descriptor in sorted(
                self.medl, key=lambda d: (d.slot_start, d.offset_bytes)
            ):
                lines.append(
                    f"  {descriptor.bus_message_id:<28} round={descriptor.round_index:<3} "
                    f"slot=[{descriptor.slot_start:.2f}, {descriptor.slot_end:.2f})"
                )
        lines.append(f"schedule length = {self.makespan:.2f} ms")
        return "\n".join(lines)
