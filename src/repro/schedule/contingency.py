"""Explicit contingency schedule synthesis (paper §5.1, Figs. 4/7).

At run time a node's scheduler switches to a *contingency schedule* when a
fault is detected: subsequent processes slide into the recovery slack, and
descendants of killed replicas wait for the surviving replica's message.
The worst-case analysis guarantees such schedules exist within the slack;
this module *materializes* them, one table per fault scenario, by replaying
the scenario on the simulator.  The tables are what an engineer would
actually burn into the target's schedule memory next to the root schedule.

It also exposes :func:`transparency_report`, which checks the paper's
transparency property: a masked (re-execution) fault on one node must not
shift any start time on other nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.schedule.table import SystemSchedule
from repro.sim.engine import SystemSimulator
from repro.sim.faults import FAULT_FREE, FaultScenario

_EPS = 1e-6


@dataclass(frozen=True)
class ContingencyEntry:
    """One row of a contingency table.

    ``produced`` is False for a terminally-killed replica: it occupies the
    CPU until its last failed attempt (+µ detection), which may exceed its
    analytical worst-case *finish* — the WCF only bounds executions that
    complete.
    """

    instance_id: str
    start: float
    finish: float
    shifted_by: float  # delay versus the root schedule
    produced: bool = True


@dataclass
class ContingencySchedule:
    """The per-node tables activated by one fault scenario."""

    scenario: FaultScenario
    tables: dict[str, list[ContingencyEntry]] = field(default_factory=dict)

    def shifted_nodes(self) -> list[str]:
        """Nodes whose schedule differs from the root schedule."""
        return sorted(
            node
            for node, entries in self.tables.items()
            if any(entry.shifted_by > _EPS for entry in entries)
        )

    def max_shift(self) -> float:
        return max(
            (e.shifted_by for entries in self.tables.values() for e in entries),
            default=0.0,
        )


def synthesize_contingency_schedules(
    schedule: SystemSchedule,
    scenarios: list[FaultScenario] | None = None,
) -> list[ContingencySchedule]:
    """Materialize contingency tables for the given (default: single-fault)
    scenarios."""
    simulator = SystemSimulator(schedule)
    record = schedule.record
    if scenarios is None:
        scenarios = single_fault_scenarios(schedule)
    out: list[ContingencySchedule] = []
    for scenario in scenarios:
        result = simulator.run(scenario)
        contingency = ContingencySchedule(scenario=scenario)
        for node_index, chain in enumerate(record.node_chains):
            entries = []
            for index in chain:
                iid = record.instance_ids[index]
                execution = result.executions.get(iid)
                if execution is None:
                    continue
                entries.append(
                    ContingencyEntry(
                        instance_id=iid,
                        start=execution.start,
                        finish=execution.finish,
                        shifted_by=max(
                            0.0, execution.start - record.root_start[index]
                        ),
                        produced=execution.produced,
                    )
                )
            contingency.tables[record.nodes[node_index]] = entries
        out.append(contingency)
    return out


def single_fault_scenarios(schedule: SystemSchedule) -> list[FaultScenario]:
    """One scenario per instance: its first execution attempt fails."""
    if schedule.faults.k < 1:
        return []
    return [
        FaultScenario({iid: 1})
        for iid in schedule.record.instance_ids
        # A single fault can always hit any instance (cap is e+1 >= 1).
    ]


@dataclass
class TransparencyReport:
    """Which single faults stay invisible outside their node."""

    transparent: list[str] = field(default_factory=list)  # scenario tags
    visible: dict[str, list[str]] = field(default_factory=dict)  # tag -> nodes

    @property
    def fully_transparent(self) -> bool:
        return not self.visible


def transparency_report(schedule: SystemSchedule) -> TransparencyReport:
    """Check which single-fault scenarios shift schedules on *other* nodes.

    With pure re-execution every single fault must be masked: only the
    faulty instance's own node re-arranges (paper's transparent recovery).
    With replication, killing a replica legitimately activates contingency
    schedules of descendant nodes (Fig. 7) — those scenarios are reported
    as visible together with the affected nodes.
    """
    report = TransparencyReport()
    ft = schedule.ft
    for contingency in synthesize_contingency_schedules(schedule):
        (faulty_iid,) = contingency.scenario.failures.keys()
        home_node = ft.instance(faulty_iid).node
        foreign = [n for n in contingency.shifted_nodes() if n != home_node]
        tag = contingency.scenario.describe()
        if foreign:
            report.visible[tag] = foreign
        else:
            report.transparent.append(tag)
    return report


def format_contingency(contingency: ContingencySchedule) -> str:
    """Plain-text rendering of one contingency schedule."""
    lines = [f"contingency for {contingency.scenario.describe()}:"]
    for node in sorted(contingency.tables):
        lines.append(f"  node {node}:")
        for entry in contingency.tables[node]:
            marker = (
                f"  (+{entry.shifted_by:.1f} ms)" if entry.shifted_by > _EPS else ""
            )
            lines.append(
                f"    {entry.instance_id:<24} start {entry.start:8.2f} "
                f"finish {entry.finish:8.2f}{marker}"
            )
    return "\n".join(lines)
