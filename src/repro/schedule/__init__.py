"""Fault-tolerant static cyclic scheduling (paper §5.1)."""

from repro.schedule.analysis import (
    WorstCaseAnalyzer,
    group_guaranteed_arrival,
)
from repro.schedule.contingency import (
    synthesize_contingency_schedules,
    transparency_report,
)
from repro.schedule.gantt import GanttOptions, render_gantt
from repro.schedule.list_scheduler import build_schedule_record, list_schedule
from repro.schedule.metrics import ScheduleMetrics, compute_metrics
from repro.schedule.priorities import pcp_priorities
from repro.schedule.record import ScheduleRecord
from repro.schedule.table import Binding, ScheduledInstance, SystemSchedule
from repro.schedule.vector import (
    NeighbourhoodPricer,
    VectorPrice,
    chain_dp_batch,
    release_row_vec,
)

__all__ = [
    "NeighbourhoodPricer",
    "VectorPrice",
    "chain_dp_batch",
    "release_row_vec",
    "Binding",
    "GanttOptions",
    "ScheduleMetrics",
    "ScheduleRecord",
    "ScheduledInstance",
    "SystemSchedule",
    "build_schedule_record",
    "compute_metrics",
    "WorstCaseAnalyzer",
    "group_guaranteed_arrival",
    "list_schedule",
    "pcp_priorities",
    "render_gantt",
    "synthesize_contingency_schedules",
    "transparency_report",
]
