"""The system configuration ψ = <F, M, S> explored by the optimizer (paper §4).

An :class:`Implementation` carries the decided parts of ψ — the policy
assignment ``F`` and the mapping ``M`` plus the bus configuration — while the
schedule table set ``S`` is derived deterministically from them by
:func:`repro.schedule.list_schedule`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.mapping import ReplicaMapping
from repro.model.policy import PolicyAssignment
from repro.ttp.bus import BusConfig


@dataclass
class Implementation:
    """One point of the design space: policies + replica mapping + bus."""

    policies: PolicyAssignment
    mapping: ReplicaMapping
    bus: BusConfig

    def copy(self) -> "Implementation":
        return Implementation(
            policies=self.policies.copy(),
            mapping=self.mapping.copy(),
            bus=self.bus,
        )

    def signature(self) -> tuple:
        """Canonical hashable identity (used for evaluation caching)."""
        design = tuple(
            (
                process,
                policy.n_replicas,
                policy.reexecutions,
                policy.checkpoints,
                self.mapping[process],
            )
            for process, policy in sorted(self.policies.items())
        )
        return (design, self.bus.signature())

    def with_move(
        self,
        process: str,
        nodes: tuple[str, ...],
        policy,
    ) -> "Implementation":
        """A copy in which ``process`` got new replica nodes and policy."""
        new = self.copy()
        new.policies[process] = policy
        new.mapping.assign(process, nodes)
        return new
