"""GreedyMPA: steepest-descent over critical-path moves (paper §5.2).

In each iteration all moves on the critical path of the current solution are
evaluated and the best one is applied — but only if it improves the current
cost, otherwise the search stops (this is the "can get stuck in a local
optimum" behaviour the tabu search of :mod:`repro.opt.tabu` fixes).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from repro import obs
from repro.model.application import ProcessGraph
from repro.model.fault import FaultModel
from repro.opt.cost import Cost
from repro.opt.evaluator import Evaluator
from repro.opt.implementation import Implementation
from repro.opt.moves import generate_moves


@dataclass
class SearchOutcome:
    """Result of one local-search stage (greedy or tabu)."""

    implementation: Implementation
    cost: Cost
    iterations: int = 0
    history: list[Cost] = field(default_factory=list)


def greedy_mpa(
    merged: ProcessGraph,
    faults: FaultModel,
    evaluator: Evaluator,
    start: Implementation,
    replica_counts: Sequence[int],
    max_iterations: int = 100,
    stop_when_schedulable: bool = True,
    time_limit_s: float | None = None,
    checkpoint_segments: Sequence[int] = (),
    shortlist: int | None = None,
) -> SearchOutcome:
    """Greedily improve ``start``; returns the last (best) solution found.

    With ``shortlist`` set the neighbourhood is priced by the vectorized
    ranking tier (:meth:`Evaluator.rank_neighbourhood`): only the top-K
    candidates by optimistic estimate are re-priced exactly and the winner
    is chosen among those — the realized record stays byte-identical to a
    cold pass because selection never trusts an estimate.  ``None`` (the
    default) prices every candidate exactly via ``evaluate_many``.
    """
    registry = obs.get_registry()
    current = start
    current_cost, current_record = evaluator.evaluate_record(current)
    outcome = SearchOutcome(
        implementation=current, cost=current_cost, history=[current_cost]
    )
    deadline = None if time_limit_s is None else time.monotonic() + time_limit_s

    with obs.span("greedy") as sp:
        for _ in range(max_iterations):
            if stop_when_schedulable and current_cost.schedulable:
                break
            if deadline is not None and time.monotonic() > deadline:
                break
            moves = generate_moves(
                merged,
                faults,
                current,
                current_record.critical_path(),
                replica_counts,
                checkpoint_segments,
            )
            registry.inc("search.greedy.moves_priced", len(moves))
            # Batched delta evaluation: the whole neighbourhood is priced
            # against one captured base context (cone-suffix replays, no
            # records sealed); only the winner's schedule is realized, and
            # the critical path is walked on the record's binding index
            # triples — no view is ever materialized.  The ranking tier
            # narrows the exact pricing further to the shortlist; steepest
            # descent only ever follows an exactly priced candidate.
            best = None
            best_cost = current_cost
            if shortlist is None:
                for candidate in evaluator.evaluate_many(current, moves):
                    if candidate.cost.is_better_than(best_cost):
                        best = candidate
                        best_cost = candidate.cost
            else:
                for ranked in evaluator.rank_neighbourhood(
                    current, moves, shortlist=shortlist
                ):
                    exact = ranked.exact
                    if exact is not None and exact.cost.is_better_than(
                        best_cost
                    ):
                        best = exact
                        best_cost = exact.cost
            registry.inc("search.greedy.iterations")
            if best is None:
                registry.inc("search.greedy.plateaus")
                break
            registry.inc("search.greedy.accepted")
            current = best.implementation
            current_cost = best_cost
            current_record = evaluator.realize(best)
            outcome.iterations += 1
            outcome.history.append(current_cost)
        sp.set(iterations=outcome.iterations)

    outcome.implementation = current
    outcome.cost = current_cost
    return outcome
