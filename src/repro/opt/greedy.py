"""GreedyMPA: steepest-descent over critical-path moves (paper §5.2).

In each iteration all moves on the critical path of the current solution are
evaluated and the best one is applied — but only if it improves the current
cost, otherwise the search stops (this is the "can get stuck in a local
optimum" behaviour the tabu search of :mod:`repro.opt.tabu` fixes).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.model.application import ProcessGraph
from repro.model.fault import FaultModel
from repro.opt.cost import Cost
from repro.opt.evaluator import Evaluator
from repro.opt.implementation import Implementation
from repro.opt.moves import generate_moves


@dataclass
class SearchOutcome:
    """Result of one local-search stage (greedy or tabu)."""

    implementation: Implementation
    cost: Cost
    iterations: int = 0
    history: list[Cost] = field(default_factory=list)


def greedy_mpa(
    merged: ProcessGraph,
    faults: FaultModel,
    evaluator: Evaluator,
    start: Implementation,
    replica_counts: Sequence[int],
    max_iterations: int = 100,
    stop_when_schedulable: bool = True,
    time_limit_s: float | None = None,
    checkpoint_segments: Sequence[int] = (),
) -> SearchOutcome:
    """Greedily improve ``start``; returns the last (best) solution found."""
    current = start
    current_cost, current_record = evaluator.evaluate_record(current)
    outcome = SearchOutcome(
        implementation=current, cost=current_cost, history=[current_cost]
    )
    deadline = None if time_limit_s is None else time.monotonic() + time_limit_s

    for _ in range(max_iterations):
        if stop_when_schedulable and current_cost.schedulable:
            break
        if deadline is not None and time.monotonic() > deadline:
            break
        moves = generate_moves(
            merged,
            faults,
            current,
            current_record.critical_path(),
            replica_counts,
            checkpoint_segments,
        )
        # Single-pass evaluation: each candidate is priced and scheduled in
        # one list-scheduling call returning the compact IR; the winner's
        # implementation and record are reused directly instead of
        # re-applying the move, and the critical path is walked on the
        # record's binding index triples — no view is ever materialized.
        best_candidate = None
        best_cost = current_cost
        best_record = None
        for move in moves:
            candidate = move.apply(current)
            cost, record = evaluator.evaluate_record(candidate)
            if cost.is_better_than(best_cost):
                best_candidate = candidate
                best_cost = cost
                best_record = record
        if best_candidate is None:
            break
        current = best_candidate
        current_cost = best_cost
        current_record = best_record
        outcome.iterations += 1
        outcome.history.append(current_cost)

    outcome.implementation = current
    outcome.cost = current_cost
    return outcome
