"""TabuSearchMPA: tabu search over mapping/policy moves (paper §5.2, Fig. 9).

The selective history is kept in two tables indexed by process:

* ``Tabu(P) > 0`` — P was changed recently; moves on it are forbidden unless
  they beat the best-so-far solution (aspiration, Fig. 9 line 9);
* ``Wait(P) > |Γ|`` — P has not been touched for a long time; moves on it
  are *diversification* candidates (Fig. 9 line 12).

Selection (Fig. 9 lines 14–20): take the best non-tabu-or-aspired move if it
improves on the best-so-far; otherwise prefer a diversification move;
otherwise the best non-tabu move; as a last resort (everything tabu) the
best move overall.  The loop ends when a schedulable solution is found (or,
in *minimize* mode, when the iteration/time budget is exhausted).
"""

from __future__ import annotations

import time
from typing import Sequence

from repro import obs
from repro.model.application import ProcessGraph
from repro.model.fault import FaultModel
from repro.opt.cost import Cost
from repro.opt.evaluator import Evaluator
from repro.opt.greedy import SearchOutcome
from repro.opt.implementation import Implementation
from repro.opt.moves import Move, generate_moves


def tabu_search_mpa(
    merged: ProcessGraph,
    faults: FaultModel,
    evaluator: Evaluator,
    start: Implementation,
    replica_counts: Sequence[int],
    max_iterations: int = 60,
    tabu_tenure: int | None = None,
    time_limit_s: float | None = None,
    stop_when_schedulable: bool = True,
    checkpoint_segments: Sequence[int] = (),
    shortlist: int | None = None,
) -> SearchOutcome:
    """Run TabuSearchMPA from ``start`` and return the best-so-far solution.

    With ``shortlist`` set the neighbourhood is priced by the vectorized
    ranking tier: the Fig. 9 selection sees exact costs for the shortlist
    and bounded-error estimates for the rest, and whichever move it picks
    is re-priced *exactly* before being applied — aspiration checks,
    best-so-far updates and the realized record never trust an estimate.
    ``None`` (the default) prices every candidate exactly.
    """
    graph_size = len(merged)
    if tabu_tenure is None:
        tabu_tenure = max(2, graph_size // 8)

    tabu: dict[str, int] = {name: 0 for name in merged}
    wait: dict[str, int] = {name: 0 for name in merged}

    registry = obs.get_registry()
    x_now = start
    best = start
    best_cost, now_record = evaluator.evaluate_record(start)
    outcome = SearchOutcome(implementation=best, cost=best_cost, history=[best_cost])
    deadline = None if time_limit_s is None else time.monotonic() + time_limit_s

    sp = obs.span("tabu")
    with sp:
        for _ in range(max_iterations):
            if stop_when_schedulable and best_cost.schedulable:
                break
            if deadline is not None and time.monotonic() > deadline:
                break

            critical_path = now_record.critical_path()
            moves = generate_moves(
                merged, faults, x_now, critical_path, replica_counts,
                checkpoint_segments,
            )
            if not moves:
                break
            registry.inc("search.tabu.moves_priced", len(moves))

            # Batched delta evaluation: the neighbourhood is priced against
            # one captured base context (cone-suffix replays, nothing
            # sealed); only the *chosen* move's schedule record is realized
            # — the selection itself needs costs alone.
            if shortlist is None:
                candidates = evaluator.evaluate_many(x_now, moves)
                chosen = _select_move(
                    [(c.move, c.cost) for c in candidates],
                    tabu, wait, best_cost, graph_size,
                )
                if chosen is None:
                    break
                move, now_cost = chosen
                chosen_eval = next(
                    candidate
                    for candidate in candidates
                    if candidate.move is move
                )
            else:
                ranked = evaluator.rank_neighbourhood(
                    x_now, moves, shortlist=shortlist
                )
                chosen = _select_move(
                    [(r.move, r.cost) for r in ranked],
                    tabu, wait, best_cost, graph_size,
                )
                if chosen is None:
                    break
                move, now_cost = chosen
                chosen_ranked = next(r for r in ranked if r.move is move)
                chosen_eval = chosen_ranked.exact
                if chosen_eval is None:
                    # The selection picked an estimate-only candidate (e.g.
                    # a diversification move outside the shortlist):
                    # re-price it exactly before trusting or applying it.
                    chosen_eval = evaluator.evaluate_delta(x_now, move)
                now_cost = chosen_eval.cost
            x_now = chosen_eval.implementation
            now_record = evaluator.realize(chosen_eval)
            outcome.iterations += 1
            registry.inc("search.tabu.iterations")
            outcome.history.append(now_cost)
            if now_cost.is_better_than(best_cost):
                best = x_now
                best_cost = now_cost
                registry.inc("search.tabu.improvements")
            else:
                registry.inc("search.tabu.plateau_iterations")

            _update_history(tabu, wait, move.process, tabu_tenure)
        sp.set(iterations=outcome.iterations)

    outcome.implementation = best
    outcome.cost = best_cost
    return outcome


def _select_move(
    evaluated: list[tuple[Move, Cost]],
    tabu: dict[str, int],
    wait: dict[str, int],
    best_cost: Cost,
    graph_size: int,
) -> tuple[Move, Cost] | None:
    """Apply the aspiration/diversification selection of Fig. 9."""

    def best_of(pairs: list[tuple[Move, Cost]]) -> tuple[Move, Cost] | None:
        if not pairs:
            return None
        return min(
            pairs,
            key=lambda pair: (
                pair[1].sort_key,
                pair[0].process,
                pair[0].kind,
                pair[0].nodes,
            ),
        )

    non_tabu = [(m, c) for m, c in evaluated if tabu[m.process] == 0]
    aspired = [
        (m, c)
        for m, c in evaluated
        if tabu[m.process] > 0 and c.is_better_than(best_cost)
    ]
    waiting = [(m, c) for m, c in evaluated if wait[m.process] > graph_size]

    candidate = best_of(non_tabu + aspired)
    if candidate is not None and candidate[1].is_better_than(best_cost):
        return candidate
    diversify = best_of(waiting)
    if diversify is not None:
        return diversify
    fallback = best_of(non_tabu)
    if fallback is not None:
        return fallback
    return best_of(evaluated)


def _update_history(
    tabu: dict[str, int],
    wait: dict[str, int],
    moved_process: str,
    tenure: int,
) -> None:
    """Decay tabu counters, age waiting counters, stamp the moved process."""
    for name in tabu:
        if tabu[name] > 0:
            tabu[name] -= 1
        wait[name] += 1
    tabu[moved_process] = tenure
    wait[moved_process] = 0
