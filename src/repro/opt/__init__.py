"""Design optimization: mapping + fault-tolerance policy assignment (paper §5)."""

from repro.opt.cost import Cost
from repro.opt.evaluator import Evaluator
from repro.opt.greedy import greedy_mpa
from repro.opt.implementation import Implementation
from repro.opt.initial import initial_bus_access, initial_mpa
from repro.opt.strategy import (
    OptimizationConfig,
    OptimizationResult,
    Variant,
    optimize,
)
from repro.opt.tabu import tabu_search_mpa

__all__ = [
    "Cost",
    "Evaluator",
    "Implementation",
    "OptimizationConfig",
    "OptimizationResult",
    "Variant",
    "greedy_mpa",
    "initial_bus_access",
    "initial_mpa",
    "optimize",
    "tabu_search_mpa",
]
