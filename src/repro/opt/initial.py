"""Step 1 of the strategy: initial bus access and initial MPA (paper §5, Fig. 6).

``InitialBusAccess`` assigns slot *i* to node *i* and fixes every slot to the
minimal allowed length — the transmission time of the largest message in the
application.  ``InitialMPA`` assigns the re-execution policy to every process
in ``P+`` (the designer-fixed sets ``P_X``/``P_R`` are respected) and maps the
processes of ``P*`` so that node utilization is balanced.
"""

from __future__ import annotations

from repro.model.application import Application, Process, ProcessGraph
from repro.model.architecture import Architecture
from repro.model.fault import FaultModel
from repro.model.mapping import ReplicaMapping
from repro.model.policy import Policy, PolicyAssignment
from repro.opt.implementation import Implementation
from repro.ttp.bus import BusConfig


def initial_bus_access(
    application: Application,
    architecture: Architecture,
    ms_per_byte: float = 1.0,
) -> BusConfig:
    """The paper's ``B0``: node-ordered slots of minimal length."""
    return BusConfig.minimal(
        node_order=architecture.node_names,
        largest_message_size=application.largest_message_size(),
        ms_per_byte=ms_per_byte,
    )


def initial_policy_for(
    process: Process,
    faults: FaultModel,
    default_replicas: int = 1,
) -> Policy:
    """Initial policy: designer-fixed sets win, otherwise ``default_replicas``."""
    if faults.fault_free:
        return Policy.reexecution(0)
    if process.fixed_policy == "replication":
        return Policy.replication(faults.k)
    if process.fixed_policy == "reexecution":
        return Policy.reexecution(faults.k)
    return Policy.combined(default_replicas, faults.k)


def place_replicas(
    process: Process,
    n_replicas: int,
    primary: str,
    load: dict[str, float],
) -> tuple[str, ...]:
    """Choose nodes for the replicas of ``process``, primary first.

    Further replicas go to distinct legal nodes in order of increasing
    ``load + WCET``; when the process may run on fewer nodes than it has
    replicas (``k`` can exceed the node count, §4 footnote 1) placement
    wraps around and co-locates — co-located replicas simply serialize on
    that node's schedule.
    """
    nodes = [primary]
    allowed = list(process.allowed_nodes)
    while len(nodes) < n_replicas:
        remaining = [n for n in allowed if n not in nodes]
        if not remaining:
            remaining = allowed  # wrap around: co-location is legal
        best = min(
            remaining,
            key=lambda n: (load.get(n, 0.0) + process.wcet_on(n), n),
        )
        nodes.append(best)
    return tuple(nodes)


def initial_mpa(
    merged: ProcessGraph,
    architecture: Architecture,
    faults: FaultModel,
    bus: BusConfig,
    default_replicas: int = 1,
) -> Implementation:
    """Initial mapping and policy assignment ψ0 (paper ``InitialMPA``).

    Processes are visited in topological order; every replica is placed on
    the legal node where it finishes the balance criterion
    ``load(N) + C_P^N`` best.  Pre-mapped processes (set ``P_M``) keep their
    node as primary.
    """
    policies = PolicyAssignment()
    mapping = ReplicaMapping()
    load: dict[str, float] = {name: 0.0 for name in architecture.node_names}

    for name in merged.topological_order():
        process = merged.process(name)
        policy = initial_policy_for(process, faults, default_replicas)
        policies[name] = policy
        if process.fixed_node is not None:
            primary = process.fixed_node
        else:
            primary = min(
                process.allowed_nodes,
                key=lambda n: (load[n] + process.wcet_on(n), n),
            )
        nodes = place_replicas(process, policy.n_replicas, primary, load)
        mapping.assign(name, nodes)
        for replica_index, node in enumerate(nodes):
            # Utilization balancing counts the recovery slack a replica may
            # consume, so re-executed processes weigh more than replicas.
            reexec = policy.reexecutions[replica_index]
            load[node] += process.wcet_on(node) * (1 + reexec * 0.5)

    return Implementation(policies=policies, mapping=mapping, bus=bus)
