"""Bus access optimization (paper §4.2 / §5 step "finally").

The paper performs a final optimization of the TDMA configuration using the
techniques of Pop et al. [19]; here we implement the part that matters for
the fault-tolerance interplay: a steepest-descent search over slot *orders*
(pairwise swaps) and optional slot-length scaling.  Every candidate bus is
priced by re-running the list scheduler, so the optimization naturally
accounts for where re-execution slack forces messages into later rounds.
"""

from __future__ import annotations

from typing import Iterable

from repro.opt.cost import Cost
from repro.opt.evaluator import Evaluator
from repro.opt.implementation import Implementation


def optimize_bus_access(
    evaluator: Evaluator,
    implementation: Implementation,
    scale_factors: Iterable[float] = (),
    max_rounds: int = 10,
) -> tuple[Implementation, Cost]:
    """Improve the bus configuration of ``implementation`` by local search.

    Returns the best implementation found (possibly the input) and its cost.
    ``scale_factors`` optionally also tries scaling every slot length by the
    given factors (e.g. ``(2.0,)`` doubles frame capacity at the price of
    later slot-end delivery times).
    """
    best = implementation
    best_cost = evaluator.evaluate(implementation)

    for _ in range(max_rounds):
        candidate, candidate_cost = _best_neighbour(
            evaluator, best, best_cost, scale_factors
        )
        if candidate is None:
            break
        best, best_cost = candidate, candidate_cost
    return best, best_cost


def _best_neighbour(
    evaluator: Evaluator,
    implementation: Implementation,
    current_cost: Cost,
    scale_factors: Iterable[float],
) -> tuple[Implementation | None, Cost]:
    """The best strictly-improving bus neighbour, or ``None``."""
    bus = implementation.bus
    order = list(bus.slot_order)
    best: Implementation | None = None
    best_cost = current_cost

    def consider(new_bus) -> None:
        nonlocal best, best_cost
        candidate = Implementation(
            policies=implementation.policies,
            mapping=implementation.mapping,
            bus=new_bus,
        )
        cost = evaluator.evaluate(candidate)
        if cost.is_better_than(best_cost):
            best = candidate
            best_cost = cost

    for i in range(len(order)):
        for j in range(i + 1, len(order)):
            swapped = list(order)
            swapped[i], swapped[j] = swapped[j], swapped[i]
            consider(bus.with_slot_order(swapped))

    for factor in scale_factors:
        scaled = bus
        for node in order:
            scaled = scaled.with_slot_length(
                node, bus.slot_lengths[node] * factor
            )
        consider(scaled)

    return best, best_cost
