"""The overall optimization strategy and its evaluation variants (paper §5/§6).

``optimize`` implements ``OptimizationStrategy`` from Fig. 6:

1. initial bus access ``B0`` + ``InitialMPA`` (balanced mapping,
   re-execution everywhere) — stop if already schedulable;
2. ``GreedyMPA`` — stop if schedulable;
3. ``TabuSearchMPA``;
4. optional bus access optimization.

The experiment section compares five *variants* of this strategy:

========  ==================================================================
``MXR``   full strategy; policies may mix re-execution and replication
``MX``    mapping optimized, but only re-execution policies allowed
``MR``    mapping optimized, but only pure replication allowed
``NFT``   non-fault-tolerant reference (k=0) — the baseline of Table 1
``SFX``   straightforward approach: derive the best non-fault-tolerant
          mapping, then bolt re-execution on top without re-optimizing
========  ==================================================================

Applications without any deadline are optimized in *minimize* mode (the
search never stops early and the best schedule length is reported), which is
how the paper's Table 1 experiments are run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro import obs
from repro.errors import ConfigurationError
from repro.model.application import Application, ProcessGraph
from repro.model.architecture import Architecture
from repro.model.fault import NO_FAULTS, FaultModel
from repro.model.merge import merge_application
from repro.opt.busopt import optimize_bus_access
from repro.opt.cost import Cost
from repro.opt.evaluator import Evaluator
from repro.opt.greedy import greedy_mpa
from repro.opt.implementation import Implementation
from repro.opt.initial import initial_bus_access, initial_mpa, initial_policy_for
from repro.opt.tabu import tabu_search_mpa
from repro.schedule.table import SystemSchedule
from repro.ttp.bus import BusConfig


@dataclass(frozen=True)
class Variant:
    """One evaluation variant of the optimization strategy."""

    name: str
    description: str
    fault_tolerant: bool = True
    policy_mode: str = "all"  # "all" | "reexecution" | "replication"
    initial_replicas: int = 1
    optimize_moves: bool = True
    checkpoint_segments: tuple[int, ...] = ()  # extension, see Policy.checkpointing

    def replica_counts(self, k: int) -> tuple[int, ...]:
        """Replica counts the policy moves may choose from."""
        if not self.fault_tolerant:
            return ()
        if self.policy_mode == "reexecution":
            return (1,)
        if self.policy_mode == "replication":
            return (k + 1,)
        return tuple(range(1, k + 2))


VARIANTS: dict[str, Variant] = {
    "MXR": Variant(
        name="MXR",
        description="mapping + combined re-execution/replication (Fig. 6)",
    ),
    "MX": Variant(
        name="MX",
        description="mapping + re-execution only",
        policy_mode="reexecution",
    ),
    "MR": Variant(
        name="MR",
        description="mapping + active replication only",
        policy_mode="replication",
        initial_replicas=-1,  # resolved to k+1 at run time
    ),
    "NFT": Variant(
        name="NFT",
        description="optimized non-fault-tolerant reference",
        fault_tolerant=False,
    ),
    "SFX": Variant(
        name="SFX",
        description="NFT mapping, then re-execution without re-optimization",
        policy_mode="reexecution",
        optimize_moves=False,
    ),
    "MXC": Variant(
        name="MXC",
        description=(
            "extension: MXR plus checkpointed re-execution policies "
            "(segment-level recovery)"
        ),
        checkpoint_segments=(2, 4),
    ),
}


@dataclass
class OptimizationConfig:
    """Tunables of the optimization strategy (paper used CPU-time limits).

    ``rounds`` alternates GreedyMPA and TabuSearchMPA: with the scaled-down
    iteration budgets of this reproduction, a single greedy+tabu pass over
    the full mixed policy space can be trapped by early replication moves,
    so the first round of the ``MXR`` variant explores mapping moves with
    re-execution policies only and later rounds open the full policy space
    (the paper achieved the same effect with hours-long tabu runs).
    """

    greedy_max_iterations: int = 50
    tabu_max_iterations: int = 25
    tabu_tenure: int | None = 6
    rounds: int = 3
    time_limit_s: float | None = None
    ms_per_byte: float = 1.0
    bus: BusConfig | None = None
    minimize: bool | None = None  # None: auto-detect (no deadlines anywhere)
    optimize_bus: bool = False
    bus_scale_factors: tuple[float, ...] = ()
    cache_size: int | None = None  # None: Evaluator's DEFAULT_CACHE_SIZE
    #: Candidates the ranking tier re-prices exactly per neighbourhood
    #: (``Evaluator.rank_neighbourhood``).  ``None`` prices every candidate
    #: exactly through the delta kernel — the byte-for-byte default; see
    #: EXPERIMENTS.md for when to set it.
    shortlist: int | None = None


@dataclass
class OptimizationResult:
    """Everything a caller needs about one optimization run."""

    variant: str
    implementation: Implementation
    schedule: SystemSchedule
    cost: Cost
    faults: FaultModel
    merged: ProcessGraph
    evaluations: int = 0
    cache_hits: int = 0
    stage_costs: dict[str, Cost] = field(default_factory=dict)
    iterations: dict[str, int] = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        return self.cost.makespan

    @property
    def is_schedulable(self) -> bool:
        return self.cost.schedulable

    @property
    def record(self):
        """The compact, picklable IR of the winning schedule."""
        return self.schedule.record


def _make_evaluator(
    merged: ProcessGraph, faults: FaultModel, config: OptimizationConfig
) -> Evaluator:
    if config.cache_size is None:
        return Evaluator(merged, faults)
    return Evaluator(merged, faults, cache_size=config.cache_size)


def optimize(
    application: Application,
    architecture: Architecture,
    faults: FaultModel,
    variant: str = "MXR",
    config: OptimizationConfig | None = None,
) -> OptimizationResult:
    """Run one strategy variant on ``application`` (see module docstring)."""
    config = config or OptimizationConfig()
    try:
        spec = VARIANTS[variant.upper()]
    except KeyError:
        raise ConfigurationError(
            f"unknown variant {variant!r}; choose from {sorted(VARIANTS)}"
        ) from None

    if spec.name == "SFX":
        return _run_sfx(application, architecture, faults, config)

    effective_faults = faults if spec.fault_tolerant else NO_FAULTS
    merged = merge_application(application)
    bus = config.bus or initial_bus_access(
        application, architecture, config.ms_per_byte
    )
    evaluator = _make_evaluator(merged, effective_faults, config)
    span = obs.span("optimize", variant=spec.name)
    with span:
        result = _optimize_moves(
            spec, config, merged, architecture, effective_faults, bus,
            evaluator,
        )
        span.set(
            evaluations=result.evaluations, cache_hits=result.cache_hits
        )
        evaluator.publish_metrics()
    return result


def _optimize_moves(
    spec: Variant,
    config: OptimizationConfig,
    merged: ProcessGraph,
    architecture: Architecture,
    effective_faults: FaultModel,
    bus: BusConfig,
    evaluator: Evaluator,
) -> OptimizationResult:
    """The move-optimization core of :func:`optimize` (span-wrapped there)."""

    minimize = config.minimize
    if minimize is None:
        minimize = all(
            process.deadline is None for process in merged.processes.values()
        )
    stop_when_schedulable = not minimize

    initial_replicas = spec.initial_replicas
    if initial_replicas == -1:
        initial_replicas = effective_faults.k + 1
    current = initial_mpa(
        merged, architecture, effective_faults, bus, initial_replicas
    )
    cost, initial_schedule = evaluator.evaluate_full(current)

    result = OptimizationResult(
        variant=spec.name,
        implementation=current,
        schedule=initial_schedule,
        cost=cost,
        faults=effective_faults,
        merged=merged,
    )
    result.stage_costs["initial"] = cost

    counts = spec.replica_counts(effective_faults.k)
    if spec.optimize_moves and not (stop_when_schedulable and cost.schedulable):
        deadline = (
            None
            if config.time_limit_s is None
            else time.monotonic() + config.time_limit_s
        )
        for round_index in range(max(1, config.rounds)):
            if stop_when_schedulable and cost.schedulable:
                break
            if deadline is not None and time.monotonic() > deadline:
                break
            # Staged neighbourhood: the first MXR round optimizes the
            # mapping under re-execution only; later rounds add policy moves.
            round_counts = counts
            if spec.policy_mode == "all" and round_index == 0:
                round_counts = (1,)

            greedy_remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            round_segments = spec.checkpoint_segments if round_counts == counts else ()
            greedy = greedy_mpa(
                merged,
                effective_faults,
                evaluator,
                current,
                round_counts,
                max_iterations=config.greedy_max_iterations,
                stop_when_schedulable=stop_when_schedulable,
                time_limit_s=greedy_remaining,
                checkpoint_segments=round_segments,
                shortlist=config.shortlist,
            )
            start = greedy.implementation
            start_cost = greedy.cost
            if cost.is_better_than(start_cost):
                start, start_cost = current, cost
            result.stage_costs[f"greedy[{round_index}]"] = start_cost
            result.iterations[f"greedy[{round_index}]"] = greedy.iterations
            if stop_when_schedulable and start_cost.schedulable:
                current, cost = start, start_cost
                break

            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            tabu = tabu_search_mpa(
                merged,
                effective_faults,
                evaluator,
                start,
                round_counts,
                max_iterations=config.tabu_max_iterations,
                tabu_tenure=config.tabu_tenure,
                time_limit_s=remaining,
                stop_when_schedulable=stop_when_schedulable,
                checkpoint_segments=round_segments,
                shortlist=config.shortlist,
            )
            result.stage_costs[f"tabu[{round_index}]"] = tabu.cost
            result.iterations[f"tabu[{round_index}]"] = tabu.iterations
            improved = tabu.cost.is_better_than(cost)
            if improved or start_cost.is_better_than(cost):
                current = (
                    tabu.implementation if improved else start
                )
                cost = tabu.cost if improved else start_cost
            elif round_counts == counts:
                break  # converged on the full neighbourhood

    if config.optimize_bus:
        current, cost = optimize_bus_access(
            evaluator, current, scale_factors=config.bus_scale_factors
        )
        result.stage_costs["bus"] = cost

    result.implementation = current
    result.cost = cost
    result.schedule = evaluator.schedule(current)
    result.evaluations = evaluator.evaluations
    result.cache_hits = evaluator.cache_hits
    return result


def _run_sfx(
    application: Application,
    architecture: Architecture,
    faults: FaultModel,
    config: OptimizationConfig,
) -> OptimizationResult:
    """SFX: best NFT mapping, then re-execution bolted on (paper §6, Fig. 10)."""
    nft = optimize(application, architecture, faults, variant="NFT", config=config)

    merged = nft.merged
    evaluator = _make_evaluator(merged, faults, config)
    implementation = nft.implementation.copy()
    for name, process in merged.processes.items():
        policy = initial_policy_for(process, faults, default_replicas=1)
        implementation.policies[name] = policy
        primary = implementation.mapping[name][0]
        if policy.n_replicas == 1:
            implementation.mapping.assign(name, (primary,))
        else:
            from repro.opt.initial import place_replicas

            wcets = {n: p.wcet for n, p in merged.processes.items()}
            load = implementation.mapping.node_load(wcets)
            implementation.mapping.assign(
                name, place_replicas(process, policy.n_replicas, primary, load)
            )

    cost, schedule = evaluator.evaluate_full(implementation)
    result = OptimizationResult(
        variant="SFX",
        implementation=implementation,
        schedule=schedule,
        cost=cost,
        faults=faults,
        merged=merged,
        evaluations=evaluator.evaluations + nft.evaluations,
        cache_hits=evaluator.cache_hits + nft.cache_hits,
    )
    result.stage_costs["nft"] = nft.cost
    result.stage_costs["sfx"] = cost
    evaluator.publish_metrics()
    return result
