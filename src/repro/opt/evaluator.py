"""Candidate evaluation: list-schedule an implementation and price it.

Tabu search revisits design points frequently, so evaluation results are
cached by the implementation's canonical signature.  The cache is a bounded
LRU holding the *full* evaluation — cost **and** schedule — so one
:func:`repro.schedule.list_scheduler.list_schedule` pass serves both the
pricing of a candidate and the critical-path extraction the search performs
on the chosen solution.  :meth:`Evaluator.evaluate_full` is the single entry
point of that pipeline; :meth:`evaluate` and :meth:`schedule` are thin views
of it kept for callers that need only one half.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.model.application import ProcessGraph
from repro.model.fault import FaultModel
from repro.opt.cost import Cost
from repro.opt.implementation import Implementation
from repro.schedule.list_scheduler import list_schedule
from repro.schedule.table import SystemSchedule

#: Default bound of the LRU schedule cache.  A tabu neighbourhood holds a
#: few dozen candidates and the search keeps a handful of neighbourhoods
#: alive (current, best-so-far, recent history), so a few hundred entries
#: give good hit rates.  The bound matters beyond memory: every retained
#: schedule is a large tracked object graph the cyclic GC re-scans, so an
#: oversized cache costs more in collector time than the extra hits save
#: (measured on the 20-process MXR strategy run; see DESIGN.md).
DEFAULT_CACHE_SIZE = 256


class Evaluator:
    """Schedules candidate implementations of one merged graph."""

    def __init__(
        self,
        merged: ProcessGraph,
        faults: FaultModel,
        cache: bool = True,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> None:
        self.merged = merged
        self.faults = faults
        self.evaluations = 0
        self.cache_hits = 0
        self._cache_size = cache_size
        self._cache: (
            OrderedDict[tuple, tuple[Cost, SystemSchedule]] | None
        ) = OrderedDict() if cache else None

    def evaluate_full(
        self, implementation: Implementation
    ) -> tuple[Cost, SystemSchedule]:
        """Cost and schedule of ``implementation`` in one scheduling pass."""
        cache = self._cache
        signature = None
        if cache is not None:
            signature = implementation.signature()
            cached = cache.get(signature)
            if cached is not None:
                cache.move_to_end(signature)
                self.cache_hits += 1
                return cached
        self.evaluations += 1
        schedule = list_schedule(
            self.merged,
            self.faults,
            implementation.policies,
            implementation.mapping,
            implementation.bus,
        )
        cost = self.cost_of(schedule)
        if cache is not None:
            cache[signature] = (cost, schedule)
            if len(cache) > self._cache_size:
                cache.popitem(last=False)
        return cost, schedule

    def schedule(self, implementation: Implementation) -> SystemSchedule:
        """Full schedule for ``implementation`` (served from the LRU cache)."""
        return self.evaluate_full(implementation)[1]

    def cost_of(self, schedule: SystemSchedule) -> Cost:
        degree = schedule.degree_of_schedulability()
        return Cost(
            schedulable=degree == 0.0,
            degree=degree,
            makespan=schedule.makespan,
        )

    def evaluate(self, implementation: Implementation) -> Cost:
        """Cost of ``implementation`` (cached by design signature)."""
        return self.evaluate_full(implementation)[0]

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of evaluation requests served from the cache."""
        total = self.evaluations + self.cache_hits
        if total == 0:
            return 0.0
        return self.cache_hits / total
