"""Candidate evaluation: list-schedule an implementation and price it.

Tabu search revisits design points frequently, so costs are cached by the
implementation's canonical signature.  Schedules themselves are *not* cached
(they are large); :meth:`Evaluator.schedule` recomputes the one schedule the
caller actually needs — typically the current solution, for critical-path
extraction.
"""

from __future__ import annotations

from repro.model.application import ProcessGraph
from repro.model.fault import FaultModel
from repro.opt.cost import Cost
from repro.opt.implementation import Implementation
from repro.schedule.list_scheduler import list_schedule
from repro.schedule.table import SystemSchedule


class Evaluator:
    """Schedules candidate implementations of one merged graph."""

    def __init__(
        self,
        merged: ProcessGraph,
        faults: FaultModel,
        cache: bool = True,
    ) -> None:
        self.merged = merged
        self.faults = faults
        self.evaluations = 0
        self.cache_hits = 0
        self._cache: dict[tuple, Cost] | None = {} if cache else None

    def schedule(self, implementation: Implementation) -> SystemSchedule:
        """Full schedule for ``implementation`` (never cached)."""
        return list_schedule(
            self.merged,
            self.faults,
            implementation.policies,
            implementation.mapping,
            implementation.bus,
        )

    def cost_of(self, schedule: SystemSchedule) -> Cost:
        degree = schedule.degree_of_schedulability()
        return Cost(
            schedulable=degree == 0.0,
            degree=degree,
            makespan=schedule.makespan,
        )

    def evaluate(self, implementation: Implementation) -> Cost:
        """Cost of ``implementation`` (cached by design signature)."""
        signature = None
        if self._cache is not None:
            signature = implementation.signature()
            cached = self._cache.get(signature)
            if cached is not None:
                self.cache_hits += 1
                return cached
        self.evaluations += 1
        cost = self.cost_of(self.schedule(implementation))
        if self._cache is not None and signature is not None:
            self._cache[signature] = cost
        return cost
