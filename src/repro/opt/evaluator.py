"""Candidate evaluation: list-schedule an implementation and price it.

Tabu search revisits design points frequently, so evaluation results are
cached by the implementation's canonical signature.  The cache is a bounded
LRU holding the *compact schedule record* — cost **and** full schedule IR —
so one list-scheduling pass serves both the pricing of a candidate and the
critical-path extraction the search performs on the chosen solution.

:meth:`Evaluator.evaluate_record` is the hot path: it returns ``(Cost,
ScheduleRecord)`` and never materializes object views.  Callers that need
the classic :class:`~repro.schedule.table.SystemSchedule` (validation,
rendering, the final result of a strategy run) go through
:meth:`evaluate_full`/:meth:`schedule`, which rebind the cached record to a
freshly expanded FT graph.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import NamedTuple

from repro.model.application import ProcessGraph
from repro.model.fault import FaultModel
from repro.model.ftgraph import build_ft_graph
from repro.opt.cost import Cost
from repro.opt.implementation import Implementation
from repro.schedule.list_scheduler import build_schedule_record
from repro.schedule.record import ScheduleRecord
from repro.schedule.table import SystemSchedule

#: Default bound of the LRU schedule cache.  A cached entry is a compact
#: :class:`ScheduleRecord` — flat tuples, no reference cycles — so unlike
#: the object-graph caching of PR 1 (where 256 entries was the measured
#: optimum before cyclic-GC re-scan cost ate the extra hits), retention is
#: almost free and the bound is set by hit-rate saturation instead.  The
#: cache-scaling benchmark (``benchmarks/test_cache_scaling.py``, written
#: to ``BENCH_cache.json``) re-measured the 20-process MXR strategy run at
#: 64/256/1024/4096 entries: wall-clock is flat across the whole range
#: while the hit rate keeps growing (long-distance revisits across search
#: rounds), so the bound moved from 256 to 4096 — a 16x larger cache at
#: equal wall-clock.  See DESIGN.md.
DEFAULT_CACHE_SIZE = 4096


class CacheInfo(NamedTuple):
    """Cache statistics à la ``functools.lru_cache``."""

    hits: int
    misses: int
    size: int  # entries currently retained
    bound: int  # maximum entries (LRU capacity)


class Evaluator:
    """Schedules candidate implementations of one merged graph."""

    def __init__(
        self,
        merged: ProcessGraph,
        faults: FaultModel,
        cache: bool = True,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> None:
        self.merged = merged
        self.faults = faults
        self.evaluations = 0
        self.cache_hits = 0
        self._cache_size = cache_size
        self._cache: (
            OrderedDict[tuple, tuple[Cost, ScheduleRecord]] | None
        ) = OrderedDict() if cache else None

    def evaluate_record(
        self, implementation: Implementation
    ) -> tuple[Cost, ScheduleRecord]:
        """Cost and compact schedule IR of ``implementation`` (one pass)."""
        cost, record, _ = self._evaluate(implementation)
        return cost, record

    def _evaluate(self, implementation: Implementation):
        """Core pipeline; also returns the FT graph when freshly expanded.

        The third element is ``None`` on a cache hit — view-materializing
        callers rebuild it then, but a miss hands its FT graph on so the
        expansion is never done twice for one request.
        """
        cache = self._cache
        signature = None
        if cache is not None:
            signature = implementation.signature()
            cached = cache.get(signature)
            if cached is not None:
                cache.move_to_end(signature)
                self.cache_hits += 1
                return (*cached, None)
        self.evaluations += 1
        ft = build_ft_graph(
            self.merged,
            implementation.policies,
            implementation.mapping,
            self.faults,
        )
        record = build_schedule_record(
            self.merged, ft, self.faults, implementation.bus
        )
        cost = self.cost_of_record(record)
        if cache is not None:
            cache[signature] = (cost, record)
            if len(cache) > self._cache_size:
                cache.popitem(last=False)
        return cost, record, ft

    def evaluate_full(
        self, implementation: Implementation
    ) -> tuple[Cost, SystemSchedule]:
        """Cost and materialized schedule view of ``implementation``.

        On a cache hit the record is rebound to a freshly expanded FT
        graph — a few percent of a scheduling pass — so only callers that
        actually render, simulate or hand the schedule on pay for views.
        """
        cost, record, ft = self._evaluate(implementation)
        if ft is None:
            return cost, self.materialize(implementation, record)
        return cost, SystemSchedule.from_record(
            record, self.merged, ft, self.faults, implementation.bus
        )

    def materialize(
        self, implementation: Implementation, record: ScheduleRecord
    ) -> SystemSchedule:
        """Bind ``record`` to its model context as a lazy view."""
        ft = build_ft_graph(
            self.merged,
            implementation.policies,
            implementation.mapping,
            self.faults,
        )
        return SystemSchedule.from_record(
            record, self.merged, ft, self.faults, implementation.bus
        )

    def schedule(self, implementation: Implementation) -> SystemSchedule:
        """Full schedule view for ``implementation`` (record LRU-cached)."""
        return self.evaluate_full(implementation)[1]

    def cost_of_record(self, record: ScheduleRecord) -> Cost:
        degree = record.degree_of_schedulability()
        return Cost(
            schedulable=degree == 0.0,
            degree=degree,
            makespan=record.makespan,
        )

    def cost_of(self, schedule: SystemSchedule) -> Cost:
        return self.cost_of_record(schedule.record)

    def evaluate(self, implementation: Implementation) -> Cost:
        """Cost of ``implementation`` (cached by design signature)."""
        return self.evaluate_record(implementation)[0]

    def cache_info(self) -> CacheInfo:
        """Hits, misses, current size and bound of the evaluation cache."""
        return CacheInfo(
            hits=self.cache_hits,
            misses=self.evaluations,
            size=0 if self._cache is None else len(self._cache),
            bound=0 if self._cache is None else self._cache_size,
        )

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of evaluation requests served from the cache."""
        total = self.evaluations + self.cache_hits
        if total == 0:
            return 0.0
        return self.cache_hits / total
