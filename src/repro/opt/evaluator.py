"""Candidate evaluation: schedule an implementation and price it.

This is the single documented evaluation surface of the optimizer (the
``evaluate``/``evaluate_full``/``cost_of_record`` trio of earlier revisions
is kept as thin shims over it):

* :meth:`Evaluator.evaluate_record` — canonical single-candidate path:
  ``(Cost, ScheduleRecord)`` from one cold list-scheduling pass, LRU-cached
  by the implementation's canonical signature.
* :meth:`Evaluator.evaluate_many` — the search hot path: a whole
  neighbourhood of single-process moves priced against one shared
  :class:`~repro.schedule.incremental.EvalContext` via delta re-scheduling.
  Candidates are priced *without sealing a record*
  (:meth:`~repro.schedule.state.SchedulerState.cost_view`); the caller
  seals only the candidates it actually follows via :meth:`realize`.
* :meth:`Evaluator.evaluate_delta` — one candidate through the delta
  kernel, for callers that manage their own neighbourhood loop.
* :meth:`Evaluator.evaluate_full` / :meth:`schedule` — materialized
  :class:`~repro.schedule.table.SystemSchedule` views for validation,
  rendering and final results.  ``evaluate_full`` always runs or rebinds a
  *cold* full pass and is the golden-parity fallback for the delta kernel
  (the parity suite asserts delta records equal it byte-for-byte).

Caching: results are cached by design signature in a bounded LRU.  An entry
holds the cost and, when one was ever sealed, the compact schedule record;
delta-priced entries start record-less and are filled in on first
:meth:`realize`.  Cost parity between the two tiers is exact (see
``cost_view``), so a cache entry's cost never depends on which tier priced
it.

Counters: ``evaluations`` counts *pricings of designs not served by the
cache* — the sum of ``full_evaluations``, ``delta_evaluations`` and
``ranked_evaluations`` (bounded-error vector pricings from
:meth:`Evaluator.rank_neighbourhood`; those are never cached, since the
cache must only ever serve exact costs).  Sealing a record for an
already-priced design (``realize``, or a view request hitting a
record-less entry) is materialization, not evaluation: it is counted in
``record_rebuilds`` instead.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, NamedTuple

from repro.model.application import ProcessGraph
from repro.model.fault import FaultModel
from repro.model.ftgraph import build_ft_graph
from repro.opt.cost import WORST_COST, Cost
from repro.opt.implementation import Implementation
from repro.opt.moves import Move
from repro.schedule.incremental import EvalContext
from repro.schedule.list_scheduler import build_schedule_record
from repro.schedule.record import ScheduleRecord
from repro.schedule.state import SchedulerState
from repro.schedule.table import SystemSchedule

#: Default bound of the LRU schedule cache.  A cached entry is a compact
#: :class:`ScheduleRecord` — flat tuples, no reference cycles — so unlike
#: the object-graph caching of PR 1 (where 256 entries was the measured
#: optimum before cyclic-GC re-scan cost ate the extra hits), retention is
#: almost free and the bound is set by hit-rate saturation instead.  The
#: cache-scaling benchmark (``benchmarks/test_cache_scaling.py``, written
#: to ``BENCH_cache.json``) re-measured the 20-process MXR strategy run at
#: 64/256/1024/4096 entries: wall-clock is flat across the whole range
#: while the hit rate keeps growing (long-distance revisits across search
#: rounds), so the bound moved from 256 to 4096 — a 16x larger cache at
#: equal wall-clock.  See DESIGN.md.
DEFAULT_CACHE_SIZE = 4096

#: Bound of the base-context LRU used by :meth:`Evaluator.evaluate_many`.
#: The search advances one base per iteration, but tabu oscillation can
#: bounce between a couple of recent bases; contexts are an order of
#: magnitude heavier than records (trace + snapshots), so the bound is
#: deliberately tiny.
DEFAULT_CONTEXT_CACHE_SIZE = 4

#: Default number of top-ranked candidates :meth:`Evaluator.rank_neighbourhood`
#: re-prices exactly through the delta kernel.  Measured on the 40-process
#: micro-benchmark neighbourhood (48 moves): 8 keeps the winner inside the
#: shortlist on every seeded case while pricing the remaining ~83% of the
#: neighbourhood at vector-kernel cost.
DEFAULT_SHORTLIST = 8


class CacheInfo(NamedTuple):
    """Cache statistics à la ``functools.lru_cache``.

    ``exact``/``ranked`` split the misses by pricing fidelity: ``exact``
    counts full+delta pricings (costs the search can seal), ``ranked``
    counts bounded-error vector pricings (never cached, never sealed) —
    ``misses == exact + ranked`` always holds.  Both default to 0 so the
    tuple stays compatible with callers unpacking the original four
    fields.
    """

    hits: int
    misses: int
    size: int  # entries currently retained
    bound: int  # maximum entries (LRU capacity)
    exact: int = 0  # full + delta evaluations
    ranked: int = 0  # bounded-error vector pricings


@dataclass(slots=True)
class CandidateEval:
    """One priced neighbourhood candidate (see :meth:`Evaluator.evaluate_many`).

    The cost is final; the schedule record is deliberately *not* — sealing
    is deferred until :meth:`Evaluator.realize` is called for the (usually
    single) candidate the search follows.  ``_state`` holds the completed
    but unsealed scheduler state of a fresh delta pricing; ``_record`` is
    set when the record already exists (cache hit or full-path pricing).
    """

    move: Move
    implementation: Implementation
    cost: Cost
    _signature: tuple | None = None
    _state: SchedulerState | None = None
    _record: ScheduleRecord | None = None


@dataclass(slots=True)
class RankedCandidate:
    """One neighbourhood candidate priced by the ranking tier.

    ``estimate`` comes from the vector kernel with its error allowance;
    candidates re-priced exactly (shortlist members and cache hits) carry
    the authoritative :class:`CandidateEval` in ``exact``.  A search loop
    may *select* using :attr:`cost` over all candidates, but must only
    *seal* (realize) candidates with ``exact`` set — estimates are never
    associated with a record.
    """

    move: Move
    implementation: Implementation
    estimate: Cost
    error: float = 0.0
    degree_error: float = 0.0
    exact: CandidateEval | None = None

    @property
    def cost(self) -> Cost:
        """Exact cost when available, the bounded-error estimate otherwise."""
        return self.estimate if self.exact is None else self.exact.cost

    @property
    def optimistic_key(self) -> tuple[int, float, float]:
        """Best-case sort key: the estimate minus its error allowance.

        Ranking by optimism keeps any candidate that *could* beat the
        field inside the shortlist (branch-and-bound style); exact
        candidates rank by their true key.
        """
        if self.exact is not None:
            return self.exact.cost.sort_key
        degree = self.estimate.degree - self.degree_error
        if degree < 0.0:
            degree = 0.0
        return (
            0 if degree <= 0.0 else 1,
            degree,
            self.estimate.makespan - self.error,
        )


class Evaluator:
    """Schedules candidate implementations of one merged graph."""

    def __init__(
        self,
        merged: ProcessGraph,
        faults: FaultModel,
        cache: bool = True,
        cache_size: int = DEFAULT_CACHE_SIZE,
        delta: bool = True,
        context_cache_size: int = DEFAULT_CONTEXT_CACHE_SIZE,
    ) -> None:
        self.merged = merged
        self.faults = faults
        self.evaluations = 0
        self.full_evaluations = 0
        self.delta_evaluations = 0
        self.ranked_evaluations = 0
        self.record_rebuilds = 0
        self.cache_hits = 0
        self._cache_size = cache_size
        # Entry layout: [Cost, ScheduleRecord | None] — a mutable pair so
        # realize() can fill the record into an existing entry in place.
        self._cache: (
            OrderedDict[tuple, list] | None
        ) = OrderedDict() if cache else None
        self._delta = delta
        self._context_cache_size = context_cache_size
        self._contexts: OrderedDict[tuple, EvalContext] = OrderedDict()

    # -- canonical single-candidate path ------------------------------------

    def evaluate_record(
        self, implementation: Implementation
    ) -> tuple[Cost, ScheduleRecord]:
        """Cost and compact schedule IR of ``implementation`` (one pass)."""
        cost, record, _ = self._evaluate(implementation)
        return cost, record

    def _evaluate(self, implementation: Implementation):
        """Core full-pass pipeline; also returns the FT graph when expanded.

        The third element is ``None`` on a cache hit — view-materializing
        callers rebuild it then, but a miss hands its FT graph on so the
        expansion is never done twice for one request.
        """
        cache = self._cache
        signature = None
        if cache is not None:
            signature = implementation.signature()
            entry = cache.get(signature)
            if entry is not None:
                cache.move_to_end(signature)
                self.cache_hits += 1
                if entry[1] is None:
                    # Delta-priced entry that was never sealed: the cost is
                    # final, only the record is materialized (and memoized)
                    # now.
                    entry[1] = self._rebuild_record(implementation)
                return entry[0], entry[1], None
        self.evaluations += 1
        self.full_evaluations += 1
        ft = build_ft_graph(
            self.merged,
            implementation.policies,
            implementation.mapping,
            self.faults,
        )
        record = build_schedule_record(
            self.merged, ft, self.faults, implementation.bus
        )
        cost = self.cost_of_record(record)
        if cache is not None:
            self._store(signature, [cost, record])
        return cost, record, ft

    def _rebuild_record(self, implementation: Implementation) -> ScheduleRecord:
        """Cold record for an already-priced design (not an evaluation)."""
        self.record_rebuilds += 1
        ft = build_ft_graph(
            self.merged,
            implementation.policies,
            implementation.mapping,
            self.faults,
        )
        return build_schedule_record(
            self.merged, ft, self.faults, implementation.bus
        )

    def _store(self, signature: tuple, entry: list) -> None:
        cache = self._cache
        cache[signature] = entry
        if len(cache) > self._cache_size:
            cache.popitem(last=False)

    # -- delta tier ---------------------------------------------------------

    def context_for(self, implementation: Implementation) -> EvalContext:
        """The captured base context of ``implementation`` (LRU-cached).

        Capturing runs one traced cold schedule (the sealed record is
        byte-identical to an untraced pass) plus periodic state snapshots;
        the cost amortizes over every move priced against the base.
        """
        signature = implementation.signature()
        contexts = self._contexts
        context = contexts.get(signature)
        if context is None:
            ft = build_ft_graph(
                self.merged,
                implementation.policies,
                implementation.mapping,
                self.faults,
            )
            context = EvalContext.capture(
                self.merged, ft, self.faults, implementation.bus
            )
            contexts[signature] = context
            if len(contexts) > self._context_cache_size:
                contexts.popitem(last=False)
            if self._cache is not None and signature not in self._cache:
                # The capture pass produced the base's sealed record anyway;
                # keep it (a side effect of capturing, not a priced
                # evaluation request, so no counter moves).
                self._store(
                    signature,
                    [self.cost_of_record(context.record), context.record],
                )
        else:
            contexts.move_to_end(signature)
        return context

    def evaluate_delta(
        self, base: Implementation, move: Move
    ) -> CandidateEval:
        """Price ``move`` applied to ``base`` via cone-suffix re-scheduling.

        Falls back to a full pass when the delta tier is disabled.  The
        returned candidate carries the final cost; call :meth:`realize` to
        obtain its schedule record.
        """
        return self._evaluate_move(
            self.context_for(base) if self._delta else None, base, move
        )

    def evaluate_many(
        self, base: Implementation, moves: Iterable[Move]
    ) -> list[CandidateEval]:
        """Price a whole neighbourhood of ``base`` (the search hot path).

        One :class:`EvalContext` capture of ``base`` is shared by every
        move; cache misses are *planned* as a batch
        (:meth:`EvalContext.plan_moves` shares the per-process
        ancestor-closure priority work) and each costs one delta replay
        *without* sealing.  The order of the result matches ``moves``.
        """
        moves = list(moves)
        context = self.context_for(base) if self._delta else None
        if context is None:
            return [self._evaluate_move(None, base, move) for move in moves]
        results: list[CandidateEval | None] = [None] * len(moves)
        pending: list[int] = []
        candidates: list[Implementation] = []
        cache = self._cache
        for index, move in enumerate(moves):
            candidate = move.apply(base)
            candidates.append(candidate)
            if cache is not None:
                signature = candidate.signature()
                entry = cache.get(signature)
                if entry is not None:
                    cache.move_to_end(signature)
                    self.cache_hits += 1
                    results[index] = CandidateEval(
                        move, candidate, entry[0], signature, None, entry[1]
                    )
                    continue
            pending.append(index)
        if pending:
            plans = context.plan_moves(
                [
                    (
                        candidates[index].policies,
                        candidates[index].mapping,
                        moves[index].process,
                    )
                    for index in pending
                ]
            )
            for index, plan in zip(pending, plans):
                results[index] = self._priced_delta(
                    context, moves[index], candidates[index], plan
                )
        return results

    def _evaluate_move(
        self,
        context: EvalContext | None,
        base: Implementation,
        move: Move,
    ) -> CandidateEval:
        candidate = move.apply(base)
        cache = self._cache
        if cache is not None:
            signature = candidate.signature()
            entry = cache.get(signature)
            if entry is not None:
                cache.move_to_end(signature)
                self.cache_hits += 1
                return CandidateEval(
                    move, candidate, entry[0], signature, None, entry[1]
                )
        if context is None:
            signature = (
                candidate.signature() if cache is not None else None
            )
            cost, record, _ = self._evaluate(candidate)
            return CandidateEval(
                move, candidate, cost, signature, None, record
            )
        return self._priced_delta(context, move, candidate, None)

    def _priced_delta(
        self,
        context: EvalContext,
        move: Move,
        candidate: Implementation,
        plan,
    ) -> CandidateEval:
        """Delta-price one (cache-missed) candidate; counters and store."""
        state, _stats = context.delta_schedule(
            candidate.policies, candidate.mapping, move.process, plan=plan
        )
        degree, makespan = state.cost_view()
        cost = Cost(
            schedulable=degree == 0.0, degree=degree, makespan=makespan
        )
        self.evaluations += 1
        self.delta_evaluations += 1
        signature = None
        if self._cache is not None:
            signature = candidate.signature()
            self._store(signature, [cost, None])
        return CandidateEval(move, candidate, cost, signature, state, None)

    def rank_neighbourhood(
        self,
        base: Implementation,
        moves: Iterable[Move],
        shortlist: int = DEFAULT_SHORTLIST,
    ) -> list[RankedCandidate]:
        """Rank a neighbourhood with the vector kernel, re-price the top-K.

        Every cache-missed candidate is priced by the bounded-error vector
        kernel (:class:`~repro.schedule.vector.NeighbourhoodPricer`); the
        ``shortlist`` best by :attr:`RankedCandidate.optimistic_key` are
        then re-priced *exactly* through the delta kernel, so the
        candidate a search selects (and later :meth:`realize`\\ s) carries
        a cost — and eventually a record — byte-identical to a cold pass.
        Estimates are never cached and never sealed.  With the delta tier
        disabled every candidate is priced exactly (degenerates to
        :meth:`evaluate_many`).  Result order matches ``moves``.
        """
        moves = list(moves)
        if not self._delta:
            return [
                RankedCandidate(
                    candidate.move,
                    candidate.implementation,
                    candidate.cost,
                    exact=candidate,
                )
                for candidate in self.evaluate_many(base, moves)
            ]
        context = self.context_for(base)
        results: list[RankedCandidate | None] = [None] * len(moves)
        pending: list[int] = []
        cache = self._cache
        for index, move in enumerate(moves):
            candidate = move.apply(base)
            if cache is not None:
                signature = candidate.signature()
                entry = cache.get(signature)
                if entry is not None:
                    cache.move_to_end(signature)
                    self.cache_hits += 1
                    exact = CandidateEval(
                        move, candidate, entry[0], signature, None, entry[1]
                    )
                    results[index] = RankedCandidate(
                        move, candidate, entry[0], exact=exact
                    )
                    continue
            results[index] = RankedCandidate(move, candidate, WORST_COST)
            pending.append(index)
        if pending:
            prices = context.pricer().price(
                [
                    (
                        moves[index].process,
                        moves[index].nodes,
                        moves[index].policy,
                    )
                    for index in pending
                ]
            )
            for index, price in zip(pending, prices):
                ranked = results[index]
                ranked.estimate = Cost(
                    schedulable=price.degree == 0.0,
                    degree=price.degree,
                    makespan=price.makespan,
                )
                ranked.error = price.error
                ranked.degree_error = price.degree_error
            # Exact re-pricing of the shortlist, most promising first.
            # Sorting by (key, index) keeps the order deterministic across
            # equal estimates.
            order = sorted(
                pending, key=lambda index: (results[index].optimistic_key, index)
            )
            for index in order[:shortlist]:
                ranked = results[index]
                ranked.exact = self._evaluate_move(context, base, ranked.move)
            for _index in order[shortlist:]:
                self.evaluations += 1
                self.ranked_evaluations += 1
        return results

    def realize(self, candidate: CandidateEval) -> ScheduleRecord:
        """Seal (or fetch) the schedule record behind a priced candidate.

        For a fresh delta pricing this seals the pending scheduler state —
        byte-identical to a cold pass by the delta kernel's parity
        contract; for a cache hit it returns the cached record, cold-
        rebuilding it once if the entry was priced record-less.
        """
        record = candidate._record
        if record is None:
            state = candidate._state
            if state is not None:
                record = state.seal()
                candidate._state = None
            else:
                record = self._rebuild_record(candidate.implementation)
            candidate._record = record
            cache = self._cache
            if cache is not None and candidate._signature is not None:
                entry = cache.get(candidate._signature)
                if entry is not None:
                    entry[1] = record
                else:
                    self._store(
                        candidate._signature, [candidate.cost, record]
                    )
        return record

    # -- materialized views (golden-parity fallback tier) -------------------

    def evaluate_full(
        self, implementation: Implementation
    ) -> tuple[Cost, SystemSchedule]:
        """Cost and materialized schedule view of ``implementation``.

        Always a *cold* full pass (or the cached record of one): this is
        the golden-parity fallback the delta tier is checked against.  On a
        cache hit the record is rebound to a freshly expanded FT graph — a
        few percent of a scheduling pass — so only callers that actually
        render, simulate or hand the schedule on pay for views.
        """
        cost, record, ft = self._evaluate(implementation)
        if ft is None:
            return cost, self.materialize(implementation, record)
        return cost, SystemSchedule.from_record(
            record, self.merged, ft, self.faults, implementation.bus
        )

    def materialize(
        self, implementation: Implementation, record: ScheduleRecord
    ) -> SystemSchedule:
        """Bind ``record`` to its model context as a lazy view."""
        ft = build_ft_graph(
            self.merged,
            implementation.policies,
            implementation.mapping,
            self.faults,
        )
        return SystemSchedule.from_record(
            record, self.merged, ft, self.faults, implementation.bus
        )

    def schedule(self, implementation: Implementation) -> SystemSchedule:
        """Full schedule view for ``implementation`` (record LRU-cached)."""
        return self.evaluate_full(implementation)[1]

    # -- thin shims over the canonical surface ------------------------------

    def cost_of_record(self, record: ScheduleRecord) -> Cost:
        degree = record.degree_of_schedulability()
        return Cost(
            schedulable=degree == 0.0,
            degree=degree,
            makespan=record.makespan,
        )

    def cost_of(self, schedule: SystemSchedule) -> Cost:
        return self.cost_of_record(schedule.record)

    def evaluate(self, implementation: Implementation) -> Cost:
        """Cost of ``implementation`` (cached by design signature)."""
        return self.evaluate_record(implementation)[0]

    # -- statistics ----------------------------------------------------------

    def cache_info(self) -> CacheInfo:
        """Hits, misses, current size and bound of the evaluation cache.

        ``misses`` (== ``evaluations``) splits into ``exact`` (full +
        delta pricings) and ``ranked`` (bounded-error vector pricings), so
        ``evaluations = full + delta + ranked`` stays auditable.
        """
        return CacheInfo(
            hits=self.cache_hits,
            misses=self.evaluations,
            size=0 if self._cache is None else len(self._cache),
            bound=0 if self._cache is None else self._cache_size,
            exact=self.full_evaluations + self.delta_evaluations,
            ranked=self.ranked_evaluations,
        )

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of evaluation requests served from the cache."""
        total = self.evaluations + self.cache_hits
        if total == 0:
            return 0.0
        return self.cache_hits / total

    def publish_metrics(self, registry=None) -> None:
        """Publish counter deltas since the last publish into the registry.

        Deltas (not absolutes) so several evaluators in one process — one
        per root-schedule alternative under ``optimize`` — accumulate
        rather than overwrite.  Gauges describe *this* evaluator's cache.
        """
        if registry is None:
            from repro.obs.metrics import get_registry

            registry = get_registry()
        published = getattr(self, "_published", None)
        current = {
            "evaluator.cache_hits": self.cache_hits,
            "evaluator.exact_evaluations": (
                self.full_evaluations + self.delta_evaluations
            ),
            "evaluator.full_evaluations": self.full_evaluations,
            "evaluator.delta_evaluations": self.delta_evaluations,
            "evaluator.ranked_evaluations": self.ranked_evaluations,
            "evaluator.record_rebuilds": self.record_rebuilds,
        }
        for name, value in current.items():
            previous = published.get(name, 0) if published else 0
            if value > previous:
                registry.inc(name, value - previous)
        self._published = current
        info = self.cache_info()
        registry.set("evaluator.cache.size", info.size)
        registry.set("evaluator.cache.bound", info.bound)
        registry.set("evaluator.cache.hit_rate", self.cache_hit_rate)
