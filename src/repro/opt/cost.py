"""Cost function for candidate implementations (paper §5.2).

An implementation is *schedulable* when every deadline is met in the worst
fault scenario.  Unschedulable candidates are compared by their *degree of
schedulability* (the summed deadline overshoot) so the search still receives
gradient information; schedulable candidates are compared by schedule length
δ so the optimizer keeps compressing the schedule (this is also the metric
reported in Table 1, where applications carry no deadline at all).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Cost:
    """Comparable quality of one candidate implementation."""

    schedulable: bool
    degree: float  # summed deadline overshoot; 0.0 when schedulable
    makespan: float  # schedule length delta in ms

    @property
    def sort_key(self) -> tuple[int, float, float]:
        """Total order: schedulable first, then degree, then makespan."""
        return (0 if self.schedulable else 1, self.degree, self.makespan)

    def is_better_than(self, other: "Cost") -> bool:
        return self.sort_key < other.sort_key

    def __str__(self) -> str:
        if self.schedulable:
            return f"schedulable, delta={self.makespan:.2f} ms"
        return (
            f"unschedulable, overshoot={self.degree:.2f} ms, "
            f"delta={self.makespan:.2f} ms"
        )


WORST_COST = Cost(schedulable=False, degree=float("inf"), makespan=float("inf"))
"""Sentinel that loses every comparison."""
