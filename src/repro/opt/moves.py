"""Design transformations (moves) on the critical path (paper §5.2, Fig. 8).

A move changes the mapping of a process and/or its fault-tolerance policy.
As in the paper, moves are only generated for processes on the critical path
of the current solution's schedule.  Three families are produced:

* **remap** — move the primary replica to another legal node (remaining
  replicas are re-placed by the balance heuristic);
* **policy** — change the replica count ``r`` (re-executions are then
  ``k + 1 - r``, distributed evenly), keeping the primary node;
* **replica-remap** — for replicated processes, move the *second* replica to
  a different legal node, keeping everything else.

Designer-fixed processes are respected: members of ``P_M`` generate no remap
moves, members of ``P_X``/``P_R`` no policy moves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.model.application import ProcessGraph
from repro.model.fault import FaultModel
from repro.model.policy import Policy
from repro.opt.implementation import Implementation
from repro.opt.initial import place_replicas

if TYPE_CHECKING:
    from repro.schedule.incremental import EvalContext, MoveCone


@dataclass(frozen=True)
class Move:
    """One neighbourhood transformation of the current implementation."""

    process: str
    nodes: tuple[str, ...]
    policy: Policy
    kind: str  # "remap" | "policy" | "replica-remap"

    def apply(self, implementation: Implementation) -> Implementation:
        return implementation.with_move(self.process, self.nodes, self.policy)

    def cone(
        self, context: "EvalContext", implementation: Implementation
    ) -> "MoveCone":
        """This move's impact cone against a captured base schedule.

        ``context`` must be the :class:`EvalContext` of ``implementation``.
        The cone names the moved process, the earliest base placement rank
        the move can affect (everything below it is byte-reusable by the
        delta kernel) and the seed set of changed instances — see
        :meth:`repro.schedule.incremental.EvalContext.cone_of` for the
        exact rules.
        """
        candidate = self.apply(implementation)
        return context.plan_move(
            candidate.policies, candidate.mapping, self.process
        )[2]


def generate_moves(
    merged: ProcessGraph,
    faults: FaultModel,
    implementation: Implementation,
    critical_path: Iterable[str],
    replica_counts: Sequence[int],
    checkpoint_segments: Sequence[int] = (),
) -> list[Move]:
    """All neighbour moves of ``implementation`` along ``critical_path``.

    ``checkpoint_segments`` (extension) additionally offers re-execution
    policies whose recovery re-runs only one of ``s`` segments.
    """
    wcets = {name: process.wcet for name, process in merged.processes.items()}
    load = implementation.mapping.node_load(wcets)
    moves: list[Move] = []
    for name in critical_path:
        process = merged.process(name)
        current_policy = implementation.policies[name]
        current_nodes = implementation.mapping[name]

        if process.fixed_node is None:
            for node in process.allowed_nodes:
                if node == current_nodes[0]:
                    continue
                nodes = place_replicas(
                    process, current_policy.n_replicas, node, load
                )
                moves.append(
                    Move(process=name, nodes=nodes, policy=current_policy, kind="remap")
                )

        if process.fixed_policy is None and not faults.fault_free:
            for count in replica_counts:
                if count == current_policy.n_replicas or count > faults.k + 1:
                    continue
                policy = Policy.combined(count, faults.k)
                nodes = place_replicas(process, count, current_nodes[0], load)
                moves.append(
                    Move(process=name, nodes=nodes, policy=policy, kind="policy")
                )
            for segments in checkpoint_segments:
                policy = Policy.checkpointing(faults.k, segments)
                if policy == current_policy:
                    continue
                moves.append(
                    Move(
                        process=name,
                        nodes=(current_nodes[0],),
                        policy=policy,
                        kind="policy",
                    )
                )

        if current_policy.n_replicas > 1 and len(process.allowed_nodes) > 1:
            for node in process.allowed_nodes:
                if node in current_nodes[:2]:
                    continue
                nodes = (current_nodes[0], node) + current_nodes[2:]
                moves.append(
                    Move(
                        process=name,
                        nodes=nodes,
                        policy=current_policy,
                        kind="replica-remap",
                    )
                )
    return _dedupe(moves, implementation)


def _dedupe(moves: list[Move], implementation: Implementation) -> list[Move]:
    """Drop duplicates and no-op moves, preserving order deterministically."""
    seen: set[tuple] = set()
    unique: list[Move] = []
    for move in moves:
        key = (move.process, move.nodes, move.policy)
        current = (
            move.process,
            implementation.mapping[move.process],
            implementation.policies[move.process],
        )
        if key in seen or key == current:
            continue
        seen.add(key)
        unique.append(move)
    return unique
