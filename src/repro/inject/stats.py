"""Exact binomial coverage bounds (no scipy in the container).

The stratified tier draws scenarios i.i.d. uniformly within a stratum, so
"``x`` violating draws out of ``n``" is a binomial sample of the
stratum's true violation fraction ``p``.  The aggregator reports the
one-sided Clopper–Pearson upper bound::

    p_hi = sup { p : P[Bin(n, p) <= x] >= alpha }

i.e. the largest violation fraction still consistent (at level
``1 - alpha``) with what the sweep observed.  For the common ``x = 0``
case this closes to ``1 - alpha**(1/n)`` (the rule of three); the general
case is solved by bisection on the exact binomial CDF, evaluated in log
space with :func:`math.lgamma` so ``n`` in the millions is fine.
"""

from __future__ import annotations

import math

from repro.errors import SimulationError

_BISECT_STEPS = 80  # ~2^-80 interval: far below reporting precision


def log_binom_pmf(n: int, i: int, p: float) -> float:
    """log P[Bin(n, p) = i] (p strictly inside (0, 1))."""
    return (
        math.lgamma(n + 1)
        - math.lgamma(i + 1)
        - math.lgamma(n - i + 1)
        + i * math.log(p)
        + (n - i) * math.log1p(-p)
    )


def binom_cdf(n: int, x: int, p: float) -> float:
    """P[Bin(n, p) <= x], exact summation in log space."""
    if p <= 0.0:
        return 1.0
    if p >= 1.0:
        return 1.0 if x >= n else 0.0
    if x >= n:
        return 1.0
    # Sum the x+1 lower-tail terms via a running log-sum-exp.
    log_total = None
    for i in range(x + 1):
        term = log_binom_pmf(n, i, p)
        if log_total is None:
            log_total = term
        elif term > log_total:
            log_total = term + math.log1p(math.exp(log_total - term))
        else:
            log_total = log_total + math.log1p(math.exp(term - log_total))
    return math.exp(log_total) if log_total is not None else 0.0


def clopper_pearson_upper(x: int, n: int, alpha: float = 0.05) -> float:
    """One-sided exact upper confidence bound on a binomial proportion.

    ``x`` successes (violating draws) in ``n`` trials; confidence level
    ``1 - alpha``.  ``n = 0`` yields the vacuous bound 1.0.
    """
    if not 0.0 < alpha < 1.0:
        raise SimulationError(f"alpha must be in (0, 1), got {alpha}")
    if x < 0 or n < 0 or x > n:
        raise SimulationError(f"invalid binomial sample x={x}, n={n}")
    if n == 0:
        return 1.0
    if x >= n:
        return 1.0
    if x == 0:
        # Exact closed form: P[Bin(n, p) = 0] = (1-p)^n = alpha.
        return -math.expm1(math.log(alpha) / n)
    lo, hi = x / n, 1.0
    for _ in range(_BISECT_STEPS):
        mid = 0.5 * (lo + hi)
        if binom_cdf(n, x, mid) >= alpha:
            lo = mid
        else:
            hi = mid
    return hi
