"""Importance tier: directed scenarios from the adversary structure.

The sampling planner schedules these before any random coverage because
they are exactly the scenarios the analysis itself identifies as
worst-case-shaped — if the analytical bound is unsound, it is these that
break it first (the PR 3 starvation counterexample was a one-fault
correlated upstream delay of this family).

Two generators feed the tier, both deterministic functions of the target:

* :func:`repro.sim.faults.adversarial_scenarios` — per process, exhaust
  one replica's re-executions / kill replicas in order (the time- and
  space-redundancy worst cases of the chain DP).
* **Correlated-delay probes** — for every receiver with a replicated
  remote input group, spend ``d`` faults on a *shared upstream ancestor*
  of the sender replicas (one upstream fault delays every replica toward
  its fast-frame slot simultaneously — the adversary the shared-budget
  model of ``schedule/analysis.py`` prices through the per-sender
  no-recovery rows) and the remaining budget on the senders themselves,
  tightest slot first.

Probes are ranked by **slack**: the margin between each sender's fast
MEDL slot start and its delayed worst-case finish, read from the
record's per-budget finish rows (``finish_rows[d]`` upper-bounds the
analysis's no-recovery arrival under ``d`` shared faults, so small slack
⇒ the slot is plausibly missable ⇒ the scenario is scheduled earlier).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.ftgraph import FTGraph
from repro.schedule.record import ScheduleRecord
from repro.sim.faults import FaultScenario, adversarial_scenarios
from repro.inject.space import scenario_key

#: Upper bound on generated importance scenarios; directed probes beyond
#: this add little (the tail repeats near-duplicate sender splits).
DEFAULT_IMPORTANCE_CAP = 4096


@dataclass(frozen=True)
class RankedScenario:
    """One importance-tier scenario with its priority weight."""

    scenario: FaultScenario
    weight: float  # larger = scheduled earlier
    origin: str  # "adversarial" or "correlated"


def _fast_slot_starts(record: ScheduleRecord, ft: FTGraph) -> dict[str, float]:
    """Per sender instance, the earliest MEDL slot start of its frames.

    The *fast* frame is the earliest slot a sender transmits in; missing
    it is what invalidates a replica's contribution to its group.
    """
    slot_by_message: dict[str, float] = {}
    for descriptor in record.medl:
        message_id, _, _, slot_start, _, _, _ = descriptor
        current = slot_by_message.get(message_id)
        if current is None or slot_start < current:
            slot_by_message[message_id] = slot_start
    starts: dict[str, float] = {}
    for iid in ft.instances:
        for bus_message in ft.outgoing_bus_messages(iid):
            slot = slot_by_message.get(bus_message.id)
            if slot is None:
                continue
            current = starts.get(iid)
            if current is None or slot < current:
                starts[iid] = slot
    return starts


def _shared_ancestors(ft: FTGraph, senders: tuple[str, ...]) -> list[str]:
    """Instances upstream of at least two of ``senders`` (sorted).

    Faults on these delay several replicas of the group at once — the
    correlated-delay channel the shared-budget analysis prices.
    """
    counts: dict[str, int] = {}
    for sender in senders:
        seen: set[str] = set()
        frontier = list(ft.predecessors(sender))
        while frontier:
            iid = frontier.pop()
            if iid in seen:
                continue
            seen.add(iid)
            frontier.extend(ft.predecessors(iid))
        for iid in seen:
            counts[iid] = counts.get(iid, 0) + 1
    return sorted(iid for iid, n in counts.items() if n >= 2)


def importance_scenarios(
    record: ScheduleRecord,
    ft: FTGraph,
    k: int,
    cap: int = DEFAULT_IMPORTANCE_CAP,
) -> list[FaultScenario]:
    """The deterministic, ranked importance list of one target.

    Weights order the list (descending, ties broken by scenario key for
    cross-process stability); the returned scenarios are deduplicated by
    failure-map fingerprint.  Every scenario spends at most ``k`` faults.
    """
    index_of = {iid: i for i, iid in enumerate(record.instance_ids)}
    slot_starts = _fast_slot_starts(record, ft)

    def delayed_finish(iid: str, budget: int) -> float:
        index = index_of.get(iid)
        if index is None:
            return 0.0
        row = record.finish_rows[index]
        return row[min(budget, len(row) - 1)]

    ranked: list[RankedScenario] = []

    # Tier seed: the analytical worst cases, highest weight — these are
    # free (no search) and directly probe the chain DP.
    for scenario in adversarial_scenarios(ft, k):
        ranked.append(
            RankedScenario(scenario=scenario, weight=float("inf"),
                           origin="adversarial")
        )

    # Correlated-delay probes per replicated remote input group.
    for receiver, groups in sorted(ft.inputs.items()):
        for group in groups:
            senders = tuple(sorted(group.sources))
            if len(senders) < 2:
                continue
            remote = [
                s for s in senders
                if ft.instance(s).node != ft.instance(receiver).node
            ]
            if not remote:
                continue
            ancestors = _shared_ancestors(ft, senders)
            for ancestor in ancestors:
                anc = ft.instance(ancestor)
                max_d = min(k, anc.reexecutions + 1)
                for d in range(1, max_d + 1):
                    failures = {ancestor: d}
                    budget = k - d
                    # Rank senders tightest-slot-first under the shared
                    # delay d; spend the rest of the budget on their own
                    # recoveries in that order.
                    slacks = []
                    for sender in remote:
                        slot = slot_starts.get(sender)
                        if slot is None:
                            continue
                        slack = slot - delayed_finish(sender, d)
                        slacks.append((slack, sender))
                    slacks.sort()
                    for slack, sender in slacks:
                        if budget <= 0:
                            break
                        if sender == ancestor:
                            continue
                        spend = min(
                            budget, ft.instance(sender).reexecutions + 1
                        )
                        if spend > 0:
                            failures[sender] = spend
                            budget -= spend
                    scenario = FaultScenario(failures=failures)
                    if scenario.total_faults == 0 or scenario.total_faults > k:
                        continue
                    weight = -min(
                        (s for s, _ in slacks), default=float("inf")
                    )
                    ranked.append(
                        RankedScenario(
                            scenario=scenario,
                            weight=weight,
                            origin="correlated",
                        )
                    )

    # Deduplicate by fingerprint keeping the best weight, then order by
    # (weight desc, key asc) — a total order identical in every process.
    best: dict[str, RankedScenario] = {}
    for entry in ranked:
        key = scenario_key(entry.scenario.failures)
        current = best.get(key)
        if current is None or entry.weight > current.weight:
            best[key] = entry
    ordered = sorted(
        best.items(), key=lambda item: (-item[1].weight, item[0])
    )
    return [entry.scenario for _, entry in ordered[:cap]]
