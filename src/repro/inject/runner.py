"""Shard execution: materialize, simulate, classify, summarize.

A shard never travels with scenarios — only coordinates.  The runner
re-materializes them locally (rank/unrank for range shards, seeded RNG
for stratified draws, the deterministic importance list for wave 0),
feeds them through the target's cached simulator and folds every
violation into a compact :class:`~repro.inject.aggregate.ShardResult`.

Stratified shards simulate each *distinct* drawn scenario once but count
violations per draw: the draws are the i.i.d. Bernoulli trials the
Clopper–Pearson bound needs, the dedup is just compute savings.
"""

from __future__ import annotations

import random
import time
from collections import Counter

from repro.errors import SimulationError
from repro.inject.aggregate import Exemplar, ShardResult
from repro.inject.importance import importance_scenarios
from repro.inject.partition import (
    ShardSpec,
    TIER_EXHAUSTIVE,
    TIER_IMPORTANCE,
    TIER_STRATIFIED,
    shard_fingerprint,
)
from repro.inject.space import ScenarioSpace
from repro.inject.target import InjectContext, InjectTarget, cached_context
from repro.sim.faults import FaultScenario
from repro.sim.validate import check_scenario

#: Per-fingerprint (space, importance list) caches — derived from the
#: target exactly like the replay context, shared across a sweep's shards.
_SPACE_CACHE: dict[str, ScenarioSpace] = {}
_IMPORTANCE_CACHE: dict[str, list[FaultScenario]] = {}
_DERIVED_CACHE_LIMIT = 4


def _cache_put(cache: dict, key: str, value) -> None:
    if len(cache) >= _DERIVED_CACHE_LIMIT:
        cache.pop(next(iter(cache)))
    cache[key] = value


def _space_of(context: InjectContext, target: InjectTarget,
              fingerprint: str) -> ScenarioSpace:
    space = _SPACE_CACHE.get(fingerprint)
    if space is None:
        space = ScenarioSpace.of(context.ft, target.faults.k)
        _cache_put(_SPACE_CACHE, fingerprint, space)
    return space


def _importance_of(context: InjectContext, target: InjectTarget,
                   fingerprint: str) -> list[FaultScenario]:
    scenarios = _IMPORTANCE_CACHE.get(fingerprint)
    if scenarios is None:
        scenarios = importance_scenarios(
            target.record, context.ft, target.faults.k
        )
        _cache_put(_IMPORTANCE_CACHE, fingerprint, scenarios)
    return scenarios


def run_shard(
    target: InjectTarget,
    spec: ShardSpec,
    target_fp: str | None = None,
) -> ShardResult:
    """Execute one shard against its target and summarize the outcome."""
    fingerprint = target_fp or target.fingerprint()
    context = cached_context(target, fingerprint)
    started = time.perf_counter()

    # (scenario, draw multiplicity, offset of first draw) in shard order.
    trials: list[tuple[FaultScenario, int, int]]
    if spec.tier == TIER_EXHAUSTIVE:
        space = _space_of(context, target, fingerprint)
        trials = [
            (space.scenario(counts), 1, offset)
            for offset, counts in enumerate(
                space.iter_range(spec.stratum, spec.lo, spec.hi)
            )
        ]
    elif spec.tier == TIER_STRATIFIED:
        space = _space_of(context, target, fingerprint)
        size = space.stratum_size(spec.stratum)
        rng = random.Random(spec.rng_label())
        first_offset: dict[int, int] = {}
        multiplicity: Counter[int] = Counter()
        for offset in range(spec.draws):
            index = rng.randrange(size)
            multiplicity[index] += 1
            first_offset.setdefault(index, offset)
        trials = [
            (
                space.scenario(space.unrank(spec.stratum, index)),
                multiplicity[index],
                first_offset[index],
            )
            for index in sorted(first_offset, key=first_offset.get)
        ]
    elif spec.tier == TIER_IMPORTANCE:
        ranked = _importance_of(context, target, fingerprint)
        if spec.hi > len(ranked):
            raise SimulationError(
                f"importance shard [{spec.lo}, {spec.hi}) exceeds the "
                f"{len(ranked)}-scenario importance list (planner and "
                "worker disagree on the target)"
            )
        trials = [
            (scenario, 1, offset)
            for offset, scenario in enumerate(ranked[spec.lo:spec.hi])
        ]
    else:  # pragma: no cover - ShardSpec validates tiers
        raise SimulationError(f"unknown shard tier {spec.tier!r}")

    stratum_key = spec.stratum if spec.stratum is not None else -1
    result = ShardResult(
        fingerprint=shard_fingerprint(fingerprint, spec),
        spec=spec,
        scenarios=0,
        draws=0,
        violation_draws=0,
        violation_scenarios=0,
    )
    for scenario, draws, offset in trials:
        result.scenarios += 1
        result.draws += draws
        violations = check_scenario(context.simulator, scenario)
        if not violations:
            continue
        result.violation_scenarios += 1
        result.violation_draws += draws
        order = (spec.wave, stratum_key, spec.lo, offset)
        for violation in violations:
            result.class_counts[violation.kind] = (
                result.class_counts.get(violation.kind, 0) + 1
            )
            current = result.exemplars.get(violation.kind)
            if current is None or order < current.order:
                result.exemplars[violation.kind] = Exemplar(
                    order=order,
                    failures=dict(scenario.failures),
                    subject=violation.subject,
                    detail=violation.detail,
                )
    result.elapsed_s = time.perf_counter() - started
    return result
