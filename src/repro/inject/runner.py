"""Shard execution: materialize, simulate, classify, summarize.

A shard never travels with scenarios — only coordinates.  The runner
re-materializes them locally (rank/unrank for range shards, seeded RNG
for stratified draws, the deterministic importance list for wave 0) and
replays them through the target's cached **batched** simulator: blocks
of ``batch_size`` scenarios become int count matrices
(:meth:`~repro.inject.space.ScenarioSpace.counts_range` /
``sample_counts`` / ``counts_matrix``), one
:meth:`~repro.sim.batch.BatchSimulator.run_batch` call replays every
column at once, and :class:`~repro.sim.validate.BatchChecker` reduces
the block to per-kind violation masks.  Only *violating* columns are
re-materialized as :class:`FaultScenario` objects and re-run through the
scalar :func:`~repro.sim.validate.check_scenario` — the single
classification point — so violation counts, messages and exemplar orders
are byte-identical to a scalar sweep.  ``batch_size=0`` falls back to
the pure scalar path (the exemplar/replay reference the batch tier is
tested against).

Stratified shards simulate each *distinct* drawn scenario once but count
violations per draw: the draws are the i.i.d. Bernoulli trials the
Clopper–Pearson bound needs, the dedup is just compute savings.

Each shard reports per-phase seconds (materialize / simulate / classify
/ fold) next to its wall-clock, so batch-path wins stay observable per
shard through ``ftds inject --json`` and the queue progress lines.
"""

from __future__ import annotations

import random
import time
from collections import Counter

from repro import obs
from repro.errors import SimulationError
from repro.obs.metrics import MetricsRegistry
from repro.inject.aggregate import Exemplar, ShardResult
from repro.inject.importance import importance_scenarios
from repro.inject.partition import (
    ShardSpec,
    TIER_EXHAUSTIVE,
    TIER_IMPORTANCE,
    TIER_STRATIFIED,
    shard_fingerprint,
)
from repro.inject.space import ScenarioSpace
from repro.inject.target import InjectContext, InjectTarget, cached_context
from repro.sim.faults import FaultScenario
from repro.sim.validate import check_scenario

#: Columns per ``run_batch`` call.  Wide enough to amortize the numpy
#: dispatch across a shard, small enough that a block's arrays stay
#: cache-resident (`ftds inject --batch-size` overrides; 0 = scalar).
DEFAULT_BATCH_SIZE = 1024

#: Per-fingerprint (space, importance list) caches — derived from the
#: target exactly like the replay context, shared across a sweep's
#: shards.  LRU: hits re-insert at the back, eviction pops the front, so
#: interleaving shards of >limit targets never evicts the active one.
_SPACE_CACHE: dict[str, ScenarioSpace] = {}
_IMPORTANCE_CACHE: dict[str, list[FaultScenario]] = {}
_DERIVED_CACHE_LIMIT = 4


def _cache_get(cache: dict, key: str):
    value = cache.pop(key, None)
    if value is not None:
        cache[key] = value  # move to the back: most recently used
    return value


def _cache_put(cache: dict, key: str, value) -> None:
    cache.pop(key, None)
    if len(cache) >= _DERIVED_CACHE_LIMIT:
        cache.pop(next(iter(cache)))  # least recently used
    cache[key] = value


def _space_of(context: InjectContext, target: InjectTarget,
              fingerprint: str) -> ScenarioSpace:
    space = _cache_get(_SPACE_CACHE, fingerprint)
    if space is None:
        space = ScenarioSpace.of(context.ft, target.faults.k)
        _cache_put(_SPACE_CACHE, fingerprint, space)
    return space


def _importance_of(context: InjectContext, target: InjectTarget,
                   fingerprint: str) -> list[FaultScenario]:
    scenarios = _cache_get(_IMPORTANCE_CACHE, fingerprint)
    if scenarios is None:
        scenarios = importance_scenarios(
            target.record, context.ft, target.faults.k
        )
        _cache_put(_IMPORTANCE_CACHE, fingerprint, scenarios)
    return scenarios


def _importance_slice(context: InjectContext, target: InjectTarget,
                      fingerprint: str, spec: ShardSpec) -> list[FaultScenario]:
    ranked = _importance_of(context, target, fingerprint)
    if spec.hi > len(ranked):
        raise SimulationError(
            f"importance shard [{spec.lo}, {spec.hi}) exceeds the "
            f"{len(ranked)}-scenario importance list (planner and "
            "worker disagree on the target)"
        )
    return ranked[spec.lo:spec.hi]


def run_shard(
    target: InjectTarget,
    spec: ShardSpec,
    target_fp: str | None = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> ShardResult:
    """Execute one shard against its target and summarize the outcome.

    ``batch_size`` columns flow through the batched replay kernel per
    block; ``0`` (or ``None``) replays scenario-by-scenario through the
    scalar simulator instead.  Both paths produce byte-identical
    results — the batch tier is the throughput engine, the scalar tier
    the reference and exemplar replay fallback.
    """
    fingerprint = target_fp or target.fingerprint()
    context = cached_context(target, fingerprint)
    started = time.perf_counter()
    result = ShardResult(
        fingerprint=shard_fingerprint(fingerprint, spec),
        spec=spec,
        scenarios=0,
        draws=0,
        violation_draws=0,
        violation_scenarios=0,
    )
    stratum_key = spec.stratum if spec.stratum is not None else -1
    # Phase seconds accumulate in a shard-local registry (one timer block
    # per phase instead of the hand-rolled perf_counter bookkeeping this
    # replaces), are copied into the ShardResult's wire fields — the JSON
    # form is unchanged — and folded into the process registry under
    # ``inject.phase.*`` / ``inject.tier.*`` for traces and exports.
    phases = MetricsRegistry()
    with obs.span(
        "shard", tier=spec.tier, stratum=stratum_key, lo=spec.lo, hi=spec.hi
    ) as sp:
        if batch_size:
            _run_shard_batched(
                context, target, spec, fingerprint, result, stratum_key,
                batch_size, phases,
            )
        else:
            _run_shard_scalar(
                context, target, spec, fingerprint, result, stratum_key,
                phases,
            )
        sp.set(scenarios=result.scenarios, draws=result.draws)
    result.materialize_s = phases.value("materialize_s")
    result.simulate_s = phases.value("simulate_s")
    result.classify_s = phases.value("classify_s")
    result.fold_s = phases.value("fold_s")
    result.elapsed_s = time.perf_counter() - started
    registry = obs.get_registry()
    registry.merge(phases, prefix="inject.phase.")
    registry.inc(f"inject.tier.{spec.tier}.scenarios", result.scenarios)
    registry.inc(f"inject.tier.{spec.tier}.elapsed_s", result.elapsed_s)
    registry.inc("inject.shards")
    return result


# -- shared fold -------------------------------------------------------------


def _fold_violations(
    result: ShardResult,
    violations,
    scenario: FaultScenario,
    draws: int,
    offset: int,
    spec: ShardSpec,
    stratum_key: int,
) -> None:
    """Fold one violating scenario's classified violations (both paths)."""
    result.violation_scenarios += 1
    result.violation_draws += draws
    order = (spec.wave, stratum_key, spec.lo, offset)
    for violation in violations:
        result.class_counts[violation.kind] = (
            result.class_counts.get(violation.kind, 0) + 1
        )
        current = result.exemplars.get(violation.kind)
        if current is None or order < current.order:
            result.exemplars[violation.kind] = Exemplar(
                order=order,
                failures=dict(scenario.failures),
                subject=violation.subject,
                detail=violation.detail,
            )


def _stratified_trials(space: ScenarioSpace, spec: ShardSpec):
    """Distinct draw indices with multiplicities, in first-draw order.

    Returns ``(distinct, multiplicity, first_offset)`` — the exact
    dedup the scalar path performs, shared so both paths derive the same
    RNG stream from the shard's coordinate label.
    """
    size = space.stratum_size(spec.stratum)
    rng = random.Random(spec.rng_label())
    first_offset: dict[int, int] = {}
    multiplicity: Counter[int] = Counter()
    for offset in range(spec.draws):
        index = rng.randrange(size)
        multiplicity[index] += 1
        first_offset.setdefault(index, offset)
    distinct = sorted(first_offset, key=first_offset.get)
    return distinct, multiplicity, first_offset


# -- scalar reference path ---------------------------------------------------


def _run_shard_scalar(
    context: InjectContext,
    target: InjectTarget,
    spec: ShardSpec,
    fingerprint: str,
    result: ShardResult,
    stratum_key: int,
    phases: MetricsRegistry,
) -> None:
    # (scenario, draw multiplicity, offset of first draw) in shard order.
    trials: list[tuple[FaultScenario, int, int]]
    with phases.timer("materialize"):
        if spec.tier == TIER_EXHAUSTIVE:
            space = _space_of(context, target, fingerprint)
            trials = [
                (space.scenario(counts), 1, offset)
                for offset, counts in enumerate(
                    space.iter_range(spec.stratum, spec.lo, spec.hi)
                )
            ]
        elif spec.tier == TIER_STRATIFIED:
            space = _space_of(context, target, fingerprint)
            distinct, multiplicity, first_offset = _stratified_trials(
                space, spec
            )
            trials = [
                (
                    space.scenario(space.unrank(spec.stratum, index)),
                    multiplicity[index],
                    first_offset[index],
                )
                for index in distinct
            ]
        elif spec.tier == TIER_IMPORTANCE:
            trials = [
                (scenario, 1, offset)
                for offset, scenario in enumerate(
                    _importance_slice(context, target, fingerprint, spec)
                )
            ]
        else:  # pragma: no cover - ShardSpec validates tiers
            raise SimulationError(f"unknown shard tier {spec.tier!r}")

    for scenario, draws, offset in trials:
        result.scenarios += 1
        result.draws += draws
        with phases.timer("simulate"):
            violations = check_scenario(context.simulator, scenario)
        if not violations:
            continue
        with phases.timer("fold"):
            _fold_violations(
                result, violations, scenario, draws, offset, spec, stratum_key
            )


# -- batched hot path --------------------------------------------------------


def _run_shard_batched(
    context: InjectContext,
    target: InjectTarget,
    spec: ShardSpec,
    fingerprint: str,
    result: ShardResult,
    stratum_key: int,
    batch_size: int,
    phases: MetricsRegistry,
) -> None:
    """Stream the shard through the columnar kernel, block by block.

    Per block: materialize a count matrix, one ``run_batch`` call, one
    ``BatchChecker`` pass, then scalar re-classification of the (rare)
    violating columns so messages and exemplar orders match the scalar
    path exactly.
    """
    space = _space_of(context, target, fingerprint)
    batch = context.batch
    checker = context.checker
    ids = space.ids

    def replay_block(matrix, describe_column):
        """(matrix → masks → scalar re-check of violators) for one block."""
        with phases.timer("simulate"):
            replay = batch.run_batch(matrix, ids=ids)
        with phases.timer("classify"):
            report = checker.check(replay)
            columns = report.violating_columns()
        for j in columns:
            scenario, draws, offset = describe_column(int(j))
            with phases.timer("classify"):
                violations = check_scenario(context.simulator, scenario)
            if not violations:  # pragma: no cover - masks mirror the scalar
                continue
            with phases.timer("fold"):
                _fold_violations(
                    result, violations, scenario, draws, offset, spec,
                    stratum_key,
                )

    if spec.tier == TIER_EXHAUSTIVE:
        for lo in range(spec.lo, spec.hi, batch_size):
            hi = min(lo + batch_size, spec.hi)
            with phases.timer("materialize"):
                matrix = space.counts_range(spec.stratum, lo, hi)
            result.scenarios += hi - lo
            result.draws += hi - lo
            replay_block(
                matrix,
                lambda j, lo=lo, matrix=matrix: (
                    space.scenario(matrix[:, j]), 1, lo - spec.lo + j
                ),
            )
    elif spec.tier == TIER_STRATIFIED:
        with phases.timer("materialize"):
            distinct, multiplicity, first_offset = _stratified_trials(
                space, spec
            )
        for lo in range(0, len(distinct), batch_size):
            chunk = distinct[lo:lo + batch_size]
            with phases.timer("materialize"):
                matrix = space.sample_counts(spec.stratum, chunk)
            result.scenarios += len(chunk)
            result.draws += sum(multiplicity[index] for index in chunk)
            replay_block(
                matrix,
                lambda j, chunk=chunk, matrix=matrix: (
                    space.scenario(matrix[:, j]),
                    multiplicity[chunk[j]],
                    first_offset[chunk[j]],
                ),
            )
    elif spec.tier == TIER_IMPORTANCE:
        with phases.timer("materialize"):
            ranked = _importance_slice(context, target, fingerprint, spec)
        for lo in range(0, len(ranked), batch_size):
            chunk = ranked[lo:lo + batch_size]
            with phases.timer("materialize"):
                matrix = space.counts_matrix(chunk)
            result.scenarios += len(chunk)
            result.draws += len(chunk)
            replay_block(
                matrix,
                lambda j, lo=lo, chunk=chunk: (chunk[j], 1, lo + j),
            )
    else:  # pragma: no cover - ShardSpec validates tiers
        raise SimulationError(f"unknown shard tier {spec.tier!r}")
