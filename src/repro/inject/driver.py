"""Injection sweep driver: enqueue shards, attach workers, fold results.

Mirrors the experiment sweep driver (:mod:`repro.queue.driver`) but for
fault-injection shards, with one structural difference: shard results are
**folded as they land, in any order** — the streaming aggregate
(:class:`~repro.inject.aggregate.InjectAggregate`) is order-independent,
so there is no submission-order result list to reconstruct and no reason
to stall the fold behind a slow early shard.

Resume semantics match ``ftds sweep --resume``: each shard's durable
identity is :func:`~repro.inject.partition.shard_fingerprint` (target
fingerprint × shard coordinates).  Re-driving the same sweep against the
same broker folds ``done`` shards straight from their stored results
(checkpoint hits), leaves in-flight shards alone, grants dead shards a
fresh attempt budget, and refuses a broker holding shards of a
*different* sweep (orphan fingerprints) before mutating anything.

With ``broker=None`` the sweep runs inline — same plan, same shards,
same aggregate, no queue, no checkpointing — which is both the
no-dependency fallback and the reference the distributed path is tested
against.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro import obs
from repro.errors import ConfigurationError, QueueError
from repro.inject.aggregate import InjectAggregate
from repro.inject.partition import shard_fingerprint
from repro.inject.plan import SamplingPlan
from repro.inject.runner import DEFAULT_BATCH_SIZE, run_shard
from repro.inject.target import InjectTarget
from repro.obs.progress import ProgressReporter
from repro.queue.broker import (
    Broker,
    DEFAULT_MAX_ATTEMPTS,
    DONE,
    publish_queue_counts,
)
from repro.queue.driver import _spawn_local_workers
from repro.queue.worker import DEFAULT_LEASE_S


@dataclass
class InjectSweepStats:
    """Bookkeeping of one driven injection sweep."""

    total: int = 0
    enqueued: int = 0
    checkpoint_hits: int = 0  # shards already done at submission
    reset_dead: int = 0
    completed: int = 0  # shards folded this invocation (checkpoints included)
    dead: int = 0

    def summary(self) -> str:
        parts = [f"{self.completed}/{self.total} shards folded"]
        if self.checkpoint_hits:
            parts.append(f"{self.checkpoint_hits} from checkpoint")
        if self.reset_dead:
            parts.append(f"{self.reset_dead} dead shards retried")
        if self.dead:
            parts.append(f"{self.dead} dead-lettered")
        return ", ".join(parts)


@dataclass
class InjectSweepPlan:
    """The enqueue outcome: per-shard identities plus submission stats."""

    plan: SamplingPlan
    target_fingerprint: str
    fingerprints: list[str] = field(default_factory=list)
    stats: InjectSweepStats = field(default_factory=InjectSweepStats)


def enqueue_shards(
    target: InjectTarget,
    plan: SamplingPlan,
    broker: Broker,
    resume: bool = False,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
) -> InjectSweepPlan:
    """Submit every shard of ``plan`` idempotently (see module docstring)."""
    from repro.io.inject_codec import encode_shard_job

    if not resume and broker.pending().total > 0:
        raise ConfigurationError(
            "broker already holds jobs; pass resume=True (--resume) to "
            "continue that sweep, or point at a fresh broker path"
        )
    target_fp = target.fingerprint()
    sweep = InjectSweepPlan(plan=plan, target_fingerprint=target_fp)
    sweep.stats.total = len(plan.shards)
    sweep.fingerprints = [
        shard_fingerprint(target_fp, spec) for spec in plan.shards
    ]
    known = broker.states()
    orphans = set(known) - set(sweep.fingerprints)
    if orphans:
        # A changed target/budget/seed re-fingerprints every shard; abort
        # BEFORE enqueueing so the old sweep's shards don't silently keep
        # burning worker time next to the new ones.
        raise ConfigurationError(
            f"broker holds {len(orphans)} job(s) that are not part of this "
            "sweep; a resumed sweep must use the original target and "
            "parameters — point changed sweeps at a fresh broker path"
        )
    if resume:
        sweep.stats.reset_dead = broker.reset_dead()
    target_dict = target.to_dict()
    for fingerprint, spec in zip(sweep.fingerprints, plan.shards):
        state = known.get(fingerprint)
        if state is None:
            broker.enqueue(
                fingerprint, encode_shard_job(target_dict, spec), max_attempts
            )
            sweep.stats.enqueued += 1
        elif state == DONE:
            sweep.stats.checkpoint_hits += 1
    return sweep


def collect_shards(
    sweep: InjectSweepPlan,
    broker: Broker,
    aggregate: InjectAggregate,
    progress: Callable[[str], None] | None = None,
    poll_interval_s: float = 0.1,
    timeout_s: float | None = None,
    liveness: Callable[[], bool] | None = None,
) -> InjectSweepStats:
    """Fold every shard's result into ``aggregate`` as acks land."""
    from repro.io.inject_codec import decode_shard_result

    stats = sweep.stats
    waiting = dict(zip(sweep.fingerprints, sweep.plan.shards))
    total = len(sweep.fingerprints)
    deadline = None if timeout_s is None else time.monotonic() + timeout_s
    reporter = ProgressReporter(progress, total, metric="inject.results")
    while waiting:
        states = broker.states()
        landed = [fp for fp in waiting if states.get(fp) == DONE]
        for fingerprint in landed:
            spec = waiting.pop(fingerprint)
            result = decode_shard_result(broker.result(fingerprint))
            aggregate.fold(result)
            stats.completed += 1
            reporter.step(
                spec.describe(),
                note=(
                    f"{result.scenarios} scenarios, "
                    f"{result.violation_scenarios} violations, "
                    f"residual<={aggregate.residual_upper_bound():.2e}, "
                    f"{_phase_note(result)}"
                ),
            )
        if not waiting:
            break
        counts = publish_queue_counts(broker.pending())
        if counts.unfinished == 0:
            if broker.dead_letters():
                _raise_dead_letters(sweep, broker, stats)
            continue  # final ack raced the states() snapshot; re-poll
        if liveness is not None and not liveness():
            raise QueueError(
                f"all local workers exited with {len(waiting)} shard(s) "
                "unfinished and no remote workers attached"
            )
        if deadline is not None and time.monotonic() > deadline:
            raise QueueError(
                f"injection sweep timed out with {len(waiting)} of "
                f"{total} shard(s) unfinished"
            )
        time.sleep(poll_interval_s)
    return stats


def _phase_note(result) -> str:
    """Compact per-shard phase timing for progress lines."""
    return (
        f"mat {result.materialize_s:.2f}s/"
        f"sim {result.simulate_s:.2f}s/"
        f"cls {result.classify_s:.2f}s/"
        f"fold {result.fold_s:.2f}s"
    )


def run_inject_sweep(
    target: InjectTarget,
    plan: SamplingPlan,
    broker: Broker | None = None,
    resume: bool = False,
    local_workers: int = 0,
    alpha: float = 0.05,
    progress: Callable[[str], None] | None = None,
    lease_s: float = DEFAULT_LEASE_S,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    poll_interval_s: float = 0.1,
    timeout_s: float | None = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> tuple[InjectAggregate, InjectSweepStats]:
    """Drive one injection sweep and return its folded aggregate.

    ``broker=None`` executes every shard inline in this process (no
    checkpointing); otherwise shards flow through the broker and
    ``local_workers`` consumer loops are attached for the duration, the
    same way ``ftds sweep`` does it.  ``batch_size`` controls the inline
    columnar replay block width (0 = scalar reference path); queue
    workers always replay through the batch default.
    """
    aggregate = InjectAggregate(plan=plan, alpha=alpha)
    if broker is None:
        stats = InjectSweepStats(total=len(plan.shards))
        target_fp = target.fingerprint()
        reporter = ProgressReporter(
            progress, stats.total, metric="inject.results"
        )
        for spec in plan.shards:
            result = run_shard(target, spec, target_fp, batch_size=batch_size)
            aggregate.fold(result)
            stats.completed += 1
            reporter.step(
                spec.describe(),
                note=(
                    f"{result.scenarios} scenarios, "
                    f"{result.violation_scenarios} violations, "
                    f"{_phase_note(result)}"
                ),
            )
        aggregate.publish_metrics()
        return aggregate, stats

    with obs.span("enqueue") as sp:
        sweep = enqueue_shards(
            target, plan, broker, resume=resume, max_attempts=max_attempts
        )
        sp.set(
            total=sweep.stats.total,
            enqueued=sweep.stats.enqueued,
            checkpoint_hits=sweep.stats.checkpoint_hits,
        )
    if sweep.stats.checkpoint_hits:
        ProgressReporter(progress, sweep.stats.total).announce(
            f"resume: {sweep.stats.checkpoint_hits}/{sweep.stats.total} "
            "shard(s) already complete (checkpoint hits)"
        )
    workers = _spawn_local_workers(broker, local_workers, lease_s, None)
    try:
        liveness = None
        if workers:
            liveness = lambda: any(w.is_alive() for w in workers)
        stats = collect_shards(
            sweep,
            broker,
            aggregate,
            progress=progress,
            poll_interval_s=poll_interval_s,
            timeout_s=timeout_s,
            liveness=liveness,
        )
    except BaseException:
        for worker in workers:
            worker.join(timeout=1.0)
        raise
    for worker in workers:
        worker.join(timeout=lease_s + 30.0)
    aggregate.publish_metrics()
    return aggregate, stats


def _raise_dead_letters(
    sweep: InjectSweepPlan, broker: Broker, stats: InjectSweepStats
) -> None:
    """Report dead-lettered shards by coordinates instead of hanging."""
    by_fingerprint = dict(zip(sweep.fingerprints, sweep.plan.shards))
    letters = broker.dead_letters()
    stats.dead = len(letters)
    obs.get_registry().set("queue.depth.dead", len(letters))
    details = []
    for letter in letters[:10]:
        spec = by_fingerprint.get(letter.fingerprint)
        label = spec.describe() if spec else letter.fingerprint[:12]
        details.append(
            f"{label} (attempts {letter.attempts}): {letter.error}"
        )
    raise QueueError(
        f"injection sweep dead-lettered {len(letters)} shard(s) after "
        "bounded retries: " + "; ".join(details)
    )
