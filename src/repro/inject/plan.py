"""Sampling planner: compose tiers into an ordered shard list.

Given a scenario budget, the planner decides *where* simulation effort
goes and emits the shard waves the driver enqueues:

* **wave 0 — importance**: the directed adversary list of
  :mod:`repro.inject.importance`, sharded in rank order.  Always first:
  if the analysis is unsound, these scenarios are the cheapest way to
  find out (game-theoretic posture — play the adversary's best moves
  before rolling dice).
* **coverage waves — exhaustive or stratified**, one wave per
  fault-count stratum, ascending:

  - when the whole ≤k space fits the remaining budget (or the caller
    forces ``tier="exhaustive"``), every stratum is enumerated — the
    sweep is a *proof* over the space, no residual bound needed;
  - otherwise strata small enough to afford are enumerated outright and
    the rest are covered by stratified-random draws, allocated to the
    remaining strata proportionally to their size (each draw is an
    i.i.d. uniform pick within its stratum, which is what makes the
    per-stratum Clopper–Pearson bound of the aggregator valid).

Planning is a pure function of ``(space, importance_count, budget,
shard_size, seed, tier)`` — a resumed driver re-plans and lands on
byte-identical shard fingerprints.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.inject.partition import (
    ShardSpec,
    TIER_IMPORTANCE,
    partition_draws,
    partition_stratum,
)
from repro.inject.space import ScenarioSpace

#: Coverage-tier choices accepted by :func:`plan_sweep`.
PLAN_TIERS = ("auto", "exhaustive", "stratified", "importance")

#: Per-stratum coverage modes recorded in the plan (aggregation semantics).
MODE_EXHAUSTIVE = "exhaustive"
MODE_SAMPLED = "sampled"
MODE_NONE = "none"


@dataclass
class SamplingPlan:
    """The full shard list of one sweep plus its coverage semantics."""

    tier: str
    budget: int
    shard_size: int
    seed: int
    stratum_sizes: tuple[int, ...]
    importance_count: int
    shards: list[ShardSpec] = field(default_factory=list)
    #: stratum -> MODE_* (how the aggregator must interpret coverage).
    modes: dict[int, str] = field(default_factory=dict)

    @property
    def total_scenarios(self) -> int:
        """Scenario budget actually scheduled across all shards."""
        return sum(shard.scenario_budget for shard in self.shards)

    @property
    def space_size(self) -> int:
        return sum(self.stratum_sizes)

    def describe(self) -> str:
        waves = max((s.wave for s in self.shards), default=0) + 1
        return (
            f"{len(self.shards)} shard(s) in {waves} wave(s): "
            f"{self.importance_count} importance + "
            f"{self.total_scenarios - self.importance_count} coverage "
            f"scenarios over a {self.space_size}-scenario space "
            f"(k={len(self.stratum_sizes) - 1}, tier={self.tier})"
        )


def plan_sweep(
    space: ScenarioSpace,
    importance_count: int,
    budget: int,
    shard_size: int = 2000,
    seed: int = 0,
    tier: str = "auto",
) -> SamplingPlan:
    """Shard one sweep; see the module docstring for the tier policy."""
    if tier not in PLAN_TIERS:
        raise SimulationError(
            f"unknown sampling tier {tier!r} (choose from {PLAN_TIERS})"
        )
    if budget < 1:
        raise SimulationError(f"scenario budget must be >= 1, got {budget}")
    if shard_size < 1:
        raise SimulationError(f"shard size must be >= 1, got {shard_size}")

    sizes = tuple(space.stratum_size(t) for t in range(space.k + 1))
    plan = SamplingPlan(
        tier=tier,
        budget=budget,
        shard_size=shard_size,
        seed=seed,
        stratum_sizes=sizes,
        importance_count=min(importance_count, budget),
        modes={t: MODE_NONE for t in range(space.k + 1)},
    )

    # Wave 0: the importance list, in rank order.
    for lo in range(0, plan.importance_count, shard_size):
        hi = min(lo + shard_size, plan.importance_count)
        plan.shards.append(
            ShardSpec(
                tier=TIER_IMPORTANCE, wave=0, stratum=None,
                lo=lo, hi=hi, draws=hi - lo, seed=seed,
            )
        )
    if tier == "importance":
        return plan

    remaining = budget - plan.importance_count
    exhaustive = tier == "exhaustive" or (
        tier == "auto" and space.total <= remaining
    )

    if exhaustive:
        for t in range(space.k + 1):
            plan.modes[t] = MODE_EXHAUSTIVE
            plan.shards.extend(
                partition_stratum(sizes[t], shard_size, t, wave=1 + t,
                                  seed=seed)
            )
        return plan

    # Stratified coverage: enumerate strata that fit their fair share of
    # the pool (smallest first, so the fault-free stratum and thin
    # high-k strata become exact), sample the rest proportionally.
    order = sorted(range(space.k + 1), key=lambda t: (sizes[t], t))
    pool = remaining
    sampled: list[int] = []
    for position, t in enumerate(order):
        left = len(order) - position
        fair = pool // left if left else 0
        if sizes[t] <= fair:
            plan.modes[t] = MODE_EXHAUSTIVE
            plan.shards.extend(
                partition_stratum(sizes[t], shard_size, t, wave=1 + t,
                                  seed=seed)
            )
            pool -= sizes[t]
        else:
            sampled.append(t)
    sampled_total = sum(sizes[t] for t in sampled)
    for t in sorted(sampled):
        if pool <= 0 or sampled_total <= 0:
            break
        draws = max(1, pool * sizes[t] // sampled_total)
        draws = min(draws, pool)
        plan.modes[t] = MODE_SAMPLED
        plan.shards.extend(
            partition_draws(draws, shard_size, t, wave=1 + t, seed=seed)
        )
        pool -= draws
        sampled_total -= sizes[t]
    plan.shards.sort(key=lambda s: (s.wave, s.stratum or 0, s.lo))
    return plan
