"""Canonical indexing of the ≤k-fault scenario space.

A fault scenario over an FT graph is a vector ``(f_0 … f_{n-1})`` of
failed-attempt counts, one entry per instance in sorted-id order, with
``0 <= f_i <= cap_i`` (``cap_i = reexecutions + 1``, beyond which there is
nothing left to hit) — exactly the space
:func:`repro.sim.faults.enumerate_scenarios` walks.  This module gives
that space *random access*:

* the scenarios with exactly ``t`` total faults form **stratum** ``t``,
  whose size is computed exactly by a suffix-count DP;
* within a stratum, scenarios are ordered lexicographically by their
  count vector (the same order the recursive enumerator yields), and a
  rank/unrank bijection maps ``[0, size_t)`` onto them;
* any contiguous index range of a stratum can be materialized without
  touching the rest of the space (unrank the first index, then step a
  bounded-composition successor), which is what makes disjoint shards
  independently executable on any worker.

Everything here is a pure function of the sorted ``(instance id,
capacity)`` list, so two processes that agree on the FT graph agree on
every index — the foundation of the partitioner's determinism contract.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.model.ftgraph import FTGraph
from repro.sim.faults import FaultScenario


def scenario_key(failures: Mapping[str, int]) -> str:
    """Canonical text fingerprint of one failure map.

    Sorted ``iid:count`` pairs, zero counts dropped — two scenarios are
    the same iff their keys are equal, which is what the samplers dedupe
    on and the aggregator classifies exemplars by.
    """
    items = sorted((iid, n) for iid, n in failures.items() if n > 0)
    return ";".join(f"{iid}:{n}" for iid, n in items) or "-"


class ScenarioSpace:
    """Rank/unrank view of the ≤k-fault scenarios of one FT graph."""

    def __init__(self, capacities: Sequence[tuple[str, int]], k: int) -> None:
        if k < 0:
            raise SimulationError(f"fault budget k must be >= 0, got {k}")
        self.ids = tuple(iid for iid, _ in capacities)
        # Per-stratum counts never exceed k faults on one instance, so
        # capping keeps the DP small without changing any stratum.
        self.caps = tuple(min(cap, k) for _, cap in capacities)
        self.k = k
        # suffix[i][r]: number of ways to distribute exactly r faults
        # over instances i..n-1 within their capacities.
        n = len(self.caps)
        suffix = [[0] * (k + 1) for _ in range(n + 1)]
        suffix[n][0] = 1
        for i in range(n - 1, -1, -1):
            cap = self.caps[i]
            row = suffix[i]
            nxt = suffix[i + 1]
            for r in range(k + 1):
                total = 0
                for f in range(min(cap, r) + 1):
                    total += nxt[r - f]
                row[r] = total
        self._suffix = suffix

    @classmethod
    def of(cls, ft: FTGraph, k: int) -> "ScenarioSpace":
        """The space of ``ft``: sorted instance ids, ``reexec + 1`` caps."""
        capacities = [
            (iid, ft.instance(iid).reexecutions + 1)
            for iid in sorted(ft.instances)
        ]
        return cls(capacities, k)

    # -- sizes -------------------------------------------------------------

    def stratum_size(self, t: int) -> int:
        """Number of scenarios with exactly ``t`` total faults."""
        if not 0 <= t <= self.k:
            raise SimulationError(
                f"stratum {t} outside the fault model (k={self.k})"
            )
        return self._suffix[0][t]

    @property
    def total(self) -> int:
        """Number of scenarios with at most ``k`` total faults."""
        return sum(self._suffix[0][t] for t in range(self.k + 1))

    # -- rank/unrank -------------------------------------------------------

    def unrank(self, t: int, index: int) -> tuple[int, ...]:
        """The ``index``-th count vector of stratum ``t`` (lex order)."""
        size = self.stratum_size(t)
        if not 0 <= index < size:
            raise SimulationError(
                f"index {index} outside stratum {t} (size {size})"
            )
        suffix = self._suffix
        counts = []
        remaining = t
        m = index
        for i, cap in enumerate(self.caps):
            for f in range(min(cap, remaining) + 1):
                ways = suffix[i + 1][remaining - f]
                if m < ways:
                    counts.append(f)
                    remaining -= f
                    break
                m -= ways
            else:  # pragma: no cover - excluded by the bounds check above
                raise SimulationError("unrank fell off the capacity lattice")
        return tuple(counts)

    def rank(self, counts: Sequence[int]) -> tuple[int, int]:
        """Inverse of :meth:`unrank`: ``(stratum, index)`` of a vector."""
        if len(counts) != len(self.caps):
            raise SimulationError(
                f"count vector has {len(counts)} entries, "
                f"space has {len(self.caps)} instances"
            )
        t = sum(counts)
        if t > self.k:
            raise SimulationError(
                f"vector spends {t} faults, fault model allows {self.k}"
            )
        suffix = self._suffix
        index = 0
        remaining = t
        for i, (f, cap) in enumerate(zip(counts, self.caps)):
            if not 0 <= f <= cap:
                raise SimulationError(
                    f"count {f} outside capacity {cap} at position {i}"
                )
            for smaller in range(f):
                index += suffix[i + 1][remaining - smaller]
            remaining -= f
        return t, index

    # -- range materialization --------------------------------------------

    def iter_range(self, t: int, lo: int, hi: int) -> Iterator[tuple[int, ...]]:
        """Count vectors ``lo <= index < hi`` of stratum ``t``, in order.

        The first vector is unranked; the rest follow by the successor
        step, so a shard of ``m`` scenarios costs ``O(n·k + m·n)`` rather
        than ``m`` full unrankings.
        """
        size = self.stratum_size(t)
        if not 0 <= lo <= hi <= size:
            raise SimulationError(
                f"range [{lo}, {hi}) outside stratum {t} (size {size})"
            )
        if lo == hi:
            return
        counts = list(self.unrank(t, lo))
        yield tuple(counts)
        for _ in range(hi - lo - 1):
            self._advance(counts)
            yield tuple(counts)

    def _advance(self, counts: list[int]) -> None:
        """In-place lexicographic successor within the same stratum.

        Scanning right to left, move one unit of the tail budget onto the
        first position that can absorb it, then re-spread the remaining
        tail as far right as it fits (the lex-smallest completion).
        """
        caps = self.caps
        n = len(counts)
        tail = 0  # faults at positions > i
        for i in range(n - 1, -1, -1):
            if i < n - 1:
                tail += counts[i + 1]
            if tail >= 1 and counts[i] < caps[i]:
                # The remaining tail-1 always fits to the right of i:
                # tail-1 < tail <= capacity of positions > i (the current
                # vector is valid).  Re-spread it right-packed.
                counts[i] += 1
                rest = tail - 1
                for j in range(n - 1, i, -1):
                    take = min(caps[j], rest)
                    counts[j] = take
                    rest -= take
                if rest:  # pragma: no cover - tail-1 < tail_cap always fits
                    raise SimulationError("successor overflow (internal)")
                return
        raise SimulationError("advanced past the end of the stratum")

    # -- array-native materialization ---------------------------------------

    def counts_range(self, t: int, lo: int, hi: int) -> np.ndarray:
        """Stratum-``t`` count vectors ``lo..hi`` as an ``(n, hi-lo)`` matrix.

        Column ``j`` is the vector at index ``lo + j`` — the same order
        :meth:`iter_range` yields, produced by the same unrank-then-step
        walk, but written straight into an int64 matrix so the batched
        simulator's hot path allocates no per-scenario tuples or
        :class:`FaultScenario` objects.
        """
        size = self.stratum_size(t)
        if not 0 <= lo <= hi <= size:
            raise SimulationError(
                f"range [{lo}, {hi}) outside stratum {t} (size {size})"
            )
        # Built transposed — row writes from the successor walk are
        # contiguous — and returned as a view; run_batch's alignment
        # gather re-copies into layout order anyway.
        out = np.empty((hi - lo, len(self.caps)), dtype=np.int64)
        if lo == hi:
            return out.T
        counts = list(self.unrank(t, lo))
        out[0] = counts
        for j in range(1, hi - lo):
            self._advance(counts)
            out[j] = counts
        return out.T

    def sample_counts(self, t: int, indices: Sequence[int]) -> np.ndarray:
        """Arbitrary stratum-``t`` indices as an ``(n, len(indices))`` matrix.

        The stratified tier's draws are not contiguous, so each column is
        a full unranking; column ``j`` is ``unrank(t, indices[j])``.
        """
        out = np.empty((len(indices), len(self.caps)), dtype=np.int64)
        for j, index in enumerate(indices):
            out[j] = self.unrank(t, index)
        return out.T

    def counts_matrix(self, scenarios: Sequence[FaultScenario]) -> np.ndarray:
        """Explicit scenarios (e.g. the importance list) as a count matrix."""
        index_of = {iid: i for i, iid in enumerate(self.ids)}
        out = np.zeros((len(self.ids), len(scenarios)), dtype=np.int64)
        for j, scenario in enumerate(scenarios):
            for iid, count in scenario.failures.items():
                try:
                    out[index_of[iid], j] = count
                except KeyError:
                    raise SimulationError(
                        f"scenario names unknown instance {iid!r}"
                    ) from None
        return out

    # -- scenario construction --------------------------------------------

    def scenario(self, counts: Sequence[int]) -> FaultScenario:
        """Materialize a count vector as a :class:`FaultScenario`.

        Counts are coerced to Python ints so columns sliced from numpy
        matrices serialize and ``repr`` identically to the scalar path.
        """
        return FaultScenario(
            failures={
                iid: int(f) for iid, f in zip(self.ids, counts) if f > 0
            }
        )

    def counts_of(self, scenario: FaultScenario) -> tuple[int, ...]:
        """The count vector of a scenario (unknown ids are an error)."""
        index_of = {iid: i for i, iid in enumerate(self.ids)}
        counts = [0] * len(self.ids)
        for iid, f in scenario.failures.items():
            try:
                counts[index_of[iid]] = f
            except KeyError:
                raise SimulationError(
                    f"scenario names unknown instance {iid!r}"
                ) from None
        return tuple(counts)
