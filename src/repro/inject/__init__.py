"""Sharded fault-injection engine (ROADMAP item 4).

Scales the one-off validation sweeps of :mod:`repro.sim.validate` into a
first-class workload: the ≤k-fault scenario space of a synthesized
schedule is deterministically partitioned into disjoint, fingerprinted
shards (:mod:`repro.inject.partition`), a sampling planner composes
exhaustive / stratified-random / importance tiers into shard waves
(:mod:`repro.inject.plan`), shard jobs flow through the distributed
experiment queue as canonical JSON (:mod:`repro.io.inject_codec`,
``ftds worker`` executes them next to optimizer jobs), and a streaming
aggregator folds per-shard results into coverage counts, violation
exemplars and a Clopper–Pearson bound on the residual violation
probability (:mod:`repro.inject.aggregate`).
"""

from repro.inject.aggregate import InjectAggregate, ShardResult
from repro.inject.partition import ShardSpec, partition_stratum
from repro.inject.plan import SamplingPlan, plan_sweep
from repro.inject.space import ScenarioSpace
from repro.inject.target import InjectTarget

__all__ = [
    "InjectAggregate",
    "InjectTarget",
    "SamplingPlan",
    "ScenarioSpace",
    "ShardResult",
    "ShardSpec",
    "partition_stratum",
    "plan_sweep",
]
