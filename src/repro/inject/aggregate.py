"""Streaming aggregation of shard results.

The driver never materializes a scenario list: each acked shard folds
into running counters the moment it lands, in any order, and the final
aggregate is order-independent —

* **coverage** per fault-count stratum: scenarios enumerated (exhaustive
  strata) or i.i.d. draws taken (sampled strata) against the exact
  stratum size;
* **violation exemplars**: per violation class, the first failing
  scenario in the sweep's deterministic order ``(wave, stratum, shard
  lo, offset)`` — folding picks the minimum key, so a resumed sweep
  reports the same exemplar as an uninterrupted one.  Exemplars carry
  the failure map, replayable via ``SystemSimulator.from_record``;
* **residual violation bound**: per sampled stratum a one-sided
  Clopper–Pearson upper bound on the true violation fraction
  (:mod:`repro.inject.stats`), per exhaustive stratum the exact rate
  (uncovered scenarios count as potential violations until their shard
  lands), combined into one number weighted by stratum size.  The
  importance tier is *directed*, not uniform, so it reports its findings
  separately and never enters the probabilistic bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import SimulationError
from repro.inject.partition import (
    ShardSpec,
    TIER_EXHAUSTIVE,
    TIER_IMPORTANCE,
    TIER_STRATIFIED,
)
from repro.inject.plan import MODE_EXHAUSTIVE, MODE_NONE, MODE_SAMPLED, SamplingPlan
from repro.inject.stats import clopper_pearson_upper

#: Violation classes (mirrors repro.sim.validate.Violation kinds).
VIOLATION_CLASSES = (
    "starved",
    "dead_process",
    "wcf_exceeded",
    "completion_exceeded",
    "deadline_missed",
)


@dataclass(frozen=True)
class Exemplar:
    """First failing scenario of one violation class."""

    order: tuple[int, int, int, int]  # (wave, stratum|-1, shard lo, offset)
    failures: dict[str, int]
    subject: str
    detail: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "order": list(self.order),
            "failures": dict(sorted(self.failures.items())),
            "subject": self.subject,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Exemplar":
        return cls(
            order=tuple(data["order"]),
            failures=dict(data["failures"]),
            subject=data["subject"],
            detail=data["detail"],
        )


@dataclass
class ShardResult:
    """Everything one executed shard reports back (the queue's ack body)."""

    fingerprint: str
    spec: ShardSpec
    scenarios: int  # unique scenarios simulated
    draws: int  # Bernoulli trials (== scenarios except stratified dups)
    violation_draws: int
    violation_scenarios: int
    class_counts: dict[str, int] = field(default_factory=dict)
    exemplars: dict[str, Exemplar] = field(default_factory=dict)
    elapsed_s: float = 0.0
    # Per-phase worker seconds (sum <= elapsed_s; the remainder is
    # context/cache lookup overhead).  Zero-filled by pre-batching
    # payloads, so resumed sweeps fold old checkpoints unchanged.
    materialize_s: float = 0.0
    simulate_s: float = 0.0
    classify_s: float = 0.0
    fold_s: float = 0.0

    def phase_dict(self) -> dict[str, float]:
        return {
            "materialize": self.materialize_s,
            "simulate": self.simulate_s,
            "classify": self.classify_s,
            "fold": self.fold_s,
        }

    def to_dict(self) -> dict[str, Any]:
        return {
            "fingerprint": self.fingerprint,
            "spec": self.spec.to_dict(),
            "scenarios": self.scenarios,
            "draws": self.draws,
            "violation_draws": self.violation_draws,
            "violation_scenarios": self.violation_scenarios,
            "class_counts": dict(sorted(self.class_counts.items())),
            "exemplars": {
                name: exemplar.to_dict()
                for name, exemplar in sorted(self.exemplars.items())
            },
            "elapsed_s": self.elapsed_s,
            "phase_s": self.phase_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ShardResult":
        phases = data.get("phase_s", {})
        return cls(
            fingerprint=data["fingerprint"],
            spec=ShardSpec.from_dict(data["spec"]),
            scenarios=data["scenarios"],
            draws=data["draws"],
            violation_draws=data["violation_draws"],
            violation_scenarios=data["violation_scenarios"],
            class_counts=dict(data["class_counts"]),
            exemplars={
                name: Exemplar.from_dict(value)
                for name, value in data["exemplars"].items()
            },
            elapsed_s=data["elapsed_s"],
            materialize_s=phases.get("materialize", 0.0),
            simulate_s=phases.get("simulate", 0.0),
            classify_s=phases.get("classify", 0.0),
            fold_s=phases.get("fold", 0.0),
        )


@dataclass
class StratumCoverage:
    """Running counters of one fault-count stratum."""

    size: int
    mode: str  # MODE_EXHAUSTIVE / MODE_SAMPLED / MODE_NONE
    covered: int = 0  # scenarios enumerated (exhaustive)
    draws: int = 0  # trials taken (sampled)
    violation_draws: int = 0
    violation_scenarios: int = 0

    def upper_bound(self, alpha: float) -> float:
        """Upper bound on this stratum's true violation fraction."""
        if self.size == 0:
            return 0.0
        if self.mode == MODE_EXHAUSTIVE:
            # Uncovered scenarios stay pessimistic until their shard lands.
            return min(
                1.0,
                (self.violation_scenarios + (self.size - self.covered))
                / self.size,
            )
        if self.mode == MODE_SAMPLED:
            return clopper_pearson_upper(
                self.violation_draws, self.draws, alpha
            )
        return 1.0  # MODE_NONE: nothing is known about this stratum


@dataclass
class InjectAggregate:
    """Order-independent fold of shard results (the sweep's scoreboard)."""

    plan: SamplingPlan
    alpha: float = 0.05
    shards_folded: int = 0
    scenarios: int = 0
    draws: int = 0
    violation_draws: int = 0
    violation_scenarios: int = 0
    elapsed_s: float = 0.0  # summed worker compute time
    materialize_s: float = 0.0
    simulate_s: float = 0.0
    classify_s: float = 0.0
    fold_s: float = 0.0
    importance_scenarios: int = 0
    importance_violations: int = 0
    strata: dict[int, StratumCoverage] = field(default_factory=dict)
    class_counts: dict[str, int] = field(default_factory=dict)
    exemplars: dict[str, Exemplar] = field(default_factory=dict)
    _seen: set[str] = field(default_factory=set)

    def __post_init__(self) -> None:
        if not self.strata:
            self.strata = {
                t: StratumCoverage(size=size, mode=self.plan.modes[t])
                for t, size in enumerate(self.plan.stratum_sizes)
            }

    # -- folding -----------------------------------------------------------

    def fold(self, result: ShardResult) -> None:
        """Fold one shard exactly once (re-folds are rejected)."""
        if result.fingerprint in self._seen:
            raise SimulationError(
                f"shard {result.fingerprint[:12]} folded twice"
            )
        self._seen.add(result.fingerprint)
        spec = result.spec
        self.shards_folded += 1
        self.scenarios += result.scenarios
        self.draws += result.draws
        self.violation_draws += result.violation_draws
        self.violation_scenarios += result.violation_scenarios
        self.elapsed_s += result.elapsed_s
        self.materialize_s += result.materialize_s
        self.simulate_s += result.simulate_s
        self.classify_s += result.classify_s
        self.fold_s += result.fold_s

        if spec.tier == TIER_IMPORTANCE:
            self.importance_scenarios += result.scenarios
            self.importance_violations += result.violation_scenarios
        else:
            stratum = self.strata[spec.stratum]
            if spec.tier == TIER_EXHAUSTIVE:
                stratum.covered += result.scenarios
            elif spec.tier == TIER_STRATIFIED:
                stratum.draws += result.draws
            stratum.violation_draws += result.violation_draws
            stratum.violation_scenarios += result.violation_scenarios

        for name, count in result.class_counts.items():
            self.class_counts[name] = self.class_counts.get(name, 0) + count
        for name, exemplar in result.exemplars.items():
            current = self.exemplars.get(name)
            if current is None or exemplar.order < current.order:
                self.exemplars[name] = exemplar

    # -- derived reporting -------------------------------------------------

    @property
    def ok(self) -> bool:
        return self.violation_scenarios == 0 and self.importance_violations == 0

    @property
    def complete(self) -> bool:
        return self.shards_folded == len(self.plan.shards)

    def residual_upper_bound(self) -> float:
        """Upper bound on P[violation] for a uniform random ≤k scenario.

        Stratum bounds weighted by exact stratum sizes; the importance
        tier is excluded (directed, not uniform).  1.0 when nothing has
        been covered yet, the exact violation fraction once every
        stratum is exhaustively enumerated.
        """
        total = self.plan.space_size
        if total == 0:
            return 0.0
        weighted = 0.0
        for stratum in self.strata.values():
            weighted += stratum.size * stratum.upper_bound(self.alpha)
        return min(1.0, weighted / total)

    def scenarios_per_sec(self) -> float:
        return self.scenarios / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def publish_metrics(self, registry=None) -> None:
        """Mirror the folded totals into ``inject.*`` gauges.

        Gauges (not counters): the aggregate is already a sum over
        shards, and re-publishing after more folds should overwrite, not
        double-count.
        """
        if registry is None:
            from repro.obs.metrics import get_registry

            registry = get_registry()
        registry.set("inject.shards_folded", self.shards_folded)
        registry.set("inject.scenarios", self.scenarios)
        registry.set("inject.draws", self.draws)
        registry.set("inject.violation_scenarios", self.violation_scenarios)
        registry.set("inject.residual_upper_bound", self.residual_upper_bound())
        registry.set("inject.scenarios_per_sec", self.scenarios_per_sec())

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe summary (drives reporting and the bench artifact)."""
        return {
            "ok": self.ok,
            "complete": self.complete,
            "shards": self.shards_folded,
            "shards_planned": len(self.plan.shards),
            "scenarios": self.scenarios,
            "draws": self.draws,
            "violation_scenarios": self.violation_scenarios,
            "violation_draws": self.violation_draws,
            "importance": {
                "scenarios": self.importance_scenarios,
                "violations": self.importance_violations,
            },
            "strata": {
                str(t): {
                    "size": s.size,
                    "mode": s.mode,
                    "covered": s.covered,
                    "draws": s.draws,
                    "violations": s.violation_scenarios,
                    "upper_bound": s.upper_bound(self.alpha),
                }
                for t, s in sorted(self.strata.items())
            },
            "residual_upper_bound": self.residual_upper_bound(),
            "alpha": self.alpha,
            "elapsed_s": self.elapsed_s,
            "phase_s": {
                "materialize": self.materialize_s,
                "simulate": self.simulate_s,
                "classify": self.classify_s,
                "fold": self.fold_s,
            },
            "scenarios_per_sec": self.scenarios_per_sec(),
            "class_counts": dict(sorted(self.class_counts.items())),
            "exemplars": {
                name: exemplar.to_dict()
                for name, exemplar in sorted(self.exemplars.items())
            },
        }
