"""The unit under injection: a schedule record plus its model context.

A shard job must be executable by any worker on any machine, so the
target carries everything needed to rebuild the replay context — the
application, the fault model, the implementation (policies + mapping +
bus) and the synthesized :class:`~repro.schedule.record.ScheduleRecord` —
as canonical JSON, reusing the existing problem/solution codecs of
:mod:`repro.io.json_codec`.  The FT graph is *derived*, never shipped:
``build_ft_graph(merge_application(app), policies, mapping, faults)`` is
deterministic, so every worker reconstructs the identical graph (which is
what makes shard coordinates portable, see :mod:`repro.inject.space`).

The target's fingerprint (sha256 of its canonical JSON) names the sweep:
it participates in every shard fingerprint, so resuming against a broker
that holds a *different* target's shards is detected, not silently mixed.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

from repro.errors import SimulationError
from repro.io.json_codec import (
    application_from_dict,
    application_to_dict,
    fault_model_from_dict,
    fault_model_to_dict,
    implementation_from_dict,
    implementation_to_dict,
)
from repro.model.application import Application, ProcessGraph
from repro.model.fault import FaultModel
from repro.model.ftgraph import FTGraph, build_ft_graph
from repro.model.merge import merge_application
from repro.opt.implementation import Implementation
from repro.schedule.record import ScheduleRecord
from repro.sim.batch import BatchSimulator
from repro.sim.engine import SystemSimulator
from repro.sim.validate import BatchChecker


@dataclass(frozen=True)
class InjectContext:
    """Rebuilt replay context of one target (derived, worker-side).

    Carries both replay tiers: the scalar :class:`SystemSimulator`
    (exemplar detail, fallback) and the columnar :class:`BatchSimulator`
    plus its compiled :class:`BatchChecker` (the shard hot path) — all
    derived from the same record, compiled once per target.
    """

    merged: ProcessGraph
    ft: FTGraph
    simulator: SystemSimulator
    batch: BatchSimulator
    checker: BatchChecker


@dataclass(frozen=True)
class InjectTarget:
    """A validated-schedule candidate plus everything needed to replay it."""

    application: Application
    faults: FaultModel
    implementation: Implementation
    record: ScheduleRecord
    label: str = "target"

    def to_dict(self) -> dict[str, Any]:
        return {
            "application": application_to_dict(self.application),
            "faults": fault_model_to_dict(self.faults),
            "implementation": implementation_to_dict(self.implementation),
            "record": self.record.to_json_dict(),
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "InjectTarget":
        return cls(
            application=application_from_dict(data["application"]),
            faults=fault_model_from_dict(data["faults"]),
            implementation=implementation_from_dict(data["implementation"]),
            record=ScheduleRecord.from_json_dict(data["record"]),
            label=data.get("label", "target"),
        )

    def fingerprint(self) -> str:
        """sha256 of the canonical JSON form (names the whole sweep)."""
        text = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(text.encode()).hexdigest()

    def build_context(self) -> InjectContext:
        """Rebuild the deterministic replay context (merged graph, FT
        graph, simulator bound to the record)."""
        merged = merge_application(self.application)
        ft = build_ft_graph(
            merged,
            self.implementation.policies,
            self.implementation.mapping,
            self.faults,
        )
        simulator = SystemSimulator.from_record(
            self.record, merged, ft, self.faults, self.implementation.bus
        )
        batch = BatchSimulator(simulator)
        checker = BatchChecker(simulator.schedule, batch)
        return InjectContext(
            merged=merged, ft=ft, simulator=simulator,
            batch=batch, checker=checker,
        )


# -- worker-side context cache ------------------------------------------------

#: Rebuilt contexts keyed by target fingerprint.  A sweep's shards all
#: share one target, so a worker draining a queue rebuilds the (graph,
#: FT graph, simulator) context once, not once per shard.
_CONTEXT_CACHE: dict[str, InjectContext] = {}
_CONTEXT_CACHE_LIMIT = 4


def cached_context(target: InjectTarget, fingerprint: str) -> InjectContext:
    """The target's replay context, via the bounded worker-side LRU cache.

    Hits move the entry to the back of the insertion order, so eviction
    drops the *least recently used* fingerprint — a worker interleaving
    shards of more than ``_CONTEXT_CACHE_LIMIT`` targets never evicts
    the context it is actively replaying against.
    """
    context = _CONTEXT_CACHE.pop(fingerprint, None)
    if context is None:
        context = target.build_context()
        if len(_CONTEXT_CACHE) >= _CONTEXT_CACHE_LIMIT:
            _CONTEXT_CACHE.pop(next(iter(_CONTEXT_CACHE)))
    _CONTEXT_CACHE[fingerprint] = context
    return context


def target_from_optimization(result, application: Application) -> InjectTarget:
    """Wrap an :class:`~repro.opt.strategy.OptimizationResult` winner.

    Raises when the optimizer produced no record (nothing to inject).
    """
    if result.record is None:
        raise SimulationError(
            "optimization result carries no schedule record to inject"
        )
    return InjectTarget(
        application=application,
        faults=result.faults,
        implementation=result.implementation,
        record=result.record,
        label=getattr(result, "variant", "target"),
    )
