"""Hyper-period merging of multi-rate applications (paper §3 and §5.1).

Graphs of different periods are combined into one merged graph ``Γ`` whose
period is the least common multiple of all constituent periods.  Each graph
``G_i`` contributes ``LCM / T_i`` *occurrences*; occurrence ``o`` of process
``P`` is released at ``o * T_i + release(P)`` and must finish by
``o * T_i + D_i`` (applied at the occurrence's sinks — every vertex of a DAG
precedes some sink, so sink deadlines bound the whole occurrence).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ModelError
from repro.model.application import Application, Message, ProcessGraph


@dataclass(frozen=True)
class MergedOrigin:
    """Where a merged process came from."""

    graph: str
    process: str
    occurrence: int


class MergedGraph(ProcessGraph):
    """The merged application graph ``Γ`` plus provenance metadata."""

    def __init__(self, name: str, period: float | None) -> None:
        super().__init__(name=name, period=period, deadline=None)
        self.origin: dict[str, MergedOrigin] = {}
        #: (graph name, occurrence) -> (absolute deadline, sink names)
        self.occurrence_deadlines: dict[tuple[str, int], tuple[float, list[str]]] = {}

    def deadline_of(self, merged_name: str) -> float | None:
        """The individual absolute deadline of a merged process, if any."""
        return self.process(merged_name).deadline


def merged_name(process: str, occurrence: int, occurrences: int) -> str:
    """Merged vertex name: plain for single-rate graphs, ``P@o`` otherwise."""
    if occurrences == 1:
        return process
    return f"{process}@{occurrence}"


def merge_application(application: Application) -> MergedGraph:
    """Merge all graphs of ``application`` into one :class:`MergedGraph`.

    Graphs without a period contribute exactly one occurrence.  Deadlines and
    releases are converted to absolute times within the hyper-period.
    """
    application.validate()
    hyper = application.hyperperiod()
    merged = MergedGraph(name=f"{application.name}::merged", period=hyper)

    for graph in application.graphs:
        occurrences = 1
        if graph.period is not None and hyper is not None:
            ratio = hyper / graph.period
            occurrences = round(ratio)
            if abs(ratio - occurrences) > 1e-9:
                raise ModelError(
                    f"hyperperiod {hyper} is not an integer multiple of "
                    f"period {graph.period} of graph {graph.name!r}"
                )
        for occ in range(occurrences):
            offset = (graph.period or 0.0) * occ
            _merge_occurrence(merged, graph, occ, occurrences, offset)
    merged.validate()
    return merged


def _merge_occurrence(
    merged: MergedGraph,
    graph: ProcessGraph,
    occ: int,
    occurrences: int,
    offset: float,
) -> None:
    """Copy one occurrence of ``graph`` (shifted by ``offset``) into ``merged``."""
    sinks = graph.sinks()
    for name, process in graph.processes.items():
        new_name = merged_name(name, occ, occurrences)
        deadline = process.deadline
        if deadline is None and graph.deadline is not None and name in sinks:
            deadline = graph.deadline
        merged.add_process(
            replace(
                process,
                name=new_name,
                release=process.release + offset,
                deadline=None if deadline is None else deadline + offset,
            )
        )
        merged.origin[new_name] = MergedOrigin(graph.name, name, occ)
    for message in graph.messages.values():
        merged.add_message(
            Message(
                name=(
                    message.name
                    if occurrences == 1
                    else f"{message.name}@{occ}"
                ),
                src=merged_name(message.src, occ, occurrences),
                dst=merged_name(message.dst, occ, occurrences),
                size=message.size,
            )
        )
    if graph.deadline is not None:
        merged.occurrence_deadlines[(graph.name, occ)] = (
            graph.deadline + offset,
            [merged_name(s, occ, occurrences) for s in sinks],
        )
