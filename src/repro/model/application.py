"""Application model: processes, messages and process graphs (paper §3).

An application is a set of directed, acyclic process graphs.  Each vertex is
a :class:`Process`; an edge carries a :class:`Message` whose output feeds the
successor.  Communication between processes mapped on the same node is part
of the sender's worst-case execution time and is not modelled explicitly;
communication between nodes becomes a frame on the TTP bus (``repro.ttp``).

Times are milliseconds (floats); message sizes are bytes (ints).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

import networkx as nx

from repro.errors import ModelError


@dataclass(frozen=True)
class Process:
    """One process (graph vertex).

    Parameters
    ----------
    name:
        Unique identifier within the application.
    wcet:
        Worst-case execution time in ms for every node the process *may* be
        mapped on (the set ``N_Pi`` of the paper).  A node absent from this
        mapping is not a legal mapping target.
    release:
        Earliest start time relative to the activation of the graph.
    deadline:
        Individual deadline relative to the activation of the graph, or
        ``None`` if only the graph deadline applies.
    fixed_node:
        If not ``None`` the process belongs to the paper's set ``P_M`` of
        already-mapped processes (e.g. it must sit next to a sensor) and the
        optimizer will never move it.
    fixed_policy:
        ``"reexecution"`` (set ``P_X``), ``"replication"`` (set ``P_R``) or
        ``None`` (set ``P+``, policy decided by the optimizer).
    """

    name: str
    wcet: Mapping[str, float]
    release: float = 0.0
    deadline: float | None = None
    fixed_node: str | None = None
    fixed_policy: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("process name must be a non-empty string")
        if not self.wcet:
            raise ModelError(f"process {self.name!r} has no candidate node")
        for node, cost in self.wcet.items():
            if cost <= 0:
                raise ModelError(
                    f"process {self.name!r} has non-positive WCET {cost} on {node!r}"
                )
        if self.release < 0:
            raise ModelError(f"process {self.name!r} has negative release time")
        if self.deadline is not None and self.deadline <= self.release:
            raise ModelError(
                f"process {self.name!r} deadline {self.deadline} not after "
                f"release {self.release}"
            )
        if self.fixed_node is not None and self.fixed_node not in self.wcet:
            raise ModelError(
                f"process {self.name!r} is pre-mapped to {self.fixed_node!r} "
                "which is not in its WCET table"
            )
        if self.fixed_policy not in (None, "reexecution", "replication"):
            raise ModelError(
                f"process {self.name!r} has unknown fixed policy "
                f"{self.fixed_policy!r}"
            )
        # Freeze the WCET table so the dataclass is truly immutable/hashable.
        object.__setattr__(self, "wcet", dict(self.wcet))

    @property
    def allowed_nodes(self) -> tuple[str, ...]:
        """Nodes this process may execute on, in deterministic order."""
        if self.fixed_node is not None:
            return (self.fixed_node,)
        return tuple(sorted(self.wcet))

    def wcet_on(self, node: str) -> float:
        """WCET of this process on ``node``; raises if the node is illegal."""
        try:
            return self.wcet[node]
        except KeyError:
            raise ModelError(
                f"process {self.name!r} cannot be mapped on node {node!r}"
            ) from None

    def __hash__(self) -> int:
        return hash(self.name)


@dataclass(frozen=True)
class Message:
    """A message on a graph edge (``e_ij`` of the paper).

    ``size`` is the payload length in bytes (the paper uses 1–4 byte
    messages); the TTP layer converts bytes to bus time.
    """

    name: str
    src: str
    dst: str
    size: int = 1

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ModelError(f"message {self.name!r} has non-positive size")
        if self.src == self.dst:
            raise ModelError(f"message {self.name!r} is a self-loop on {self.src!r}")


class ProcessGraph:
    """A directed acyclic process graph with a period and a deadline.

    The graph does not have to be polar (single source/sink); any DAG is
    accepted, matching the randomly generated structures of the paper's
    evaluation (§6).
    """

    def __init__(
        self,
        name: str,
        period: float | None = None,
        deadline: float | None = None,
    ) -> None:
        if period is not None and period <= 0:
            raise ModelError(f"graph {name!r} has non-positive period")
        if deadline is not None and deadline <= 0:
            raise ModelError(f"graph {name!r} has non-positive deadline")
        if deadline is not None and period is not None and deadline > period:
            raise ModelError(
                f"graph {name!r}: deadline {deadline} exceeds period {period}"
            )
        self.name = name
        self.period = period
        self.deadline = deadline
        self._graph = nx.DiGraph()
        self._messages: dict[str, Message] = {}
        # Memoized topology views.  The merged graph is evaluated thousands
        # of times per optimization run while its structure never changes,
        # so the per-process message lists must not be rebuilt from the
        # underlying graph on every candidate evaluation.
        self._processes_cache: dict[str, Process] | None = None
        self._in_cache: dict[str, list[Message]] | None = None
        self._out_cache: dict[str, list[Message]] | None = None

    def _invalidate_caches(self) -> None:
        self._processes_cache = None
        self._in_cache = None
        self._out_cache = None

    # -- construction -----------------------------------------------------

    def add_process(self, process: Process) -> Process:
        """Insert ``process`` as a vertex; names must be unique."""
        if process.name in self._graph:
            raise ModelError(f"duplicate process {process.name!r} in {self.name!r}")
        self._graph.add_node(process.name, process=process)
        self._invalidate_caches()
        return process

    def add_message(self, message: Message) -> Message:
        """Insert the edge ``message.src -> message.dst`` carrying ``message``."""
        for endpoint in (message.src, message.dst):
            if endpoint not in self._graph:
                raise ModelError(
                    f"message {message.name!r} references unknown process "
                    f"{endpoint!r}"
                )
        if message.name in self._messages:
            raise ModelError(f"duplicate message {message.name!r} in {self.name!r}")
        if self._graph.has_edge(message.src, message.dst):
            raise ModelError(
                f"duplicate edge {message.src!r} -> {message.dst!r} in {self.name!r}"
            )
        self._graph.add_edge(message.src, message.dst, message=message)
        self._messages[message.name] = message
        self._invalidate_caches()
        return message

    def connect(self, src: str, dst: str, size: int = 1, name: str | None = None) -> Message:
        """Convenience wrapper for :meth:`add_message` with an auto name."""
        if name is None:
            name = f"m_{src}_{dst}"
        return self.add_message(Message(name=name, src=src, dst=dst, size=size))

    # -- queries -----------------------------------------------------------

    @property
    def processes(self) -> dict[str, Process]:
        """All processes keyed by name (insertion order preserved).

        Returns a fresh dict (callers may mutate it freely); the memoized
        view behind it avoids rebuilding from the graph on the hot path.
        """
        if self._processes_cache is None:
            self._processes_cache = {
                n: d["process"] for n, d in self._graph.nodes(data=True)
            }
        return dict(self._processes_cache)

    @property
    def messages(self) -> dict[str, Message]:
        """All messages keyed by name."""
        return dict(self._messages)

    def process(self, name: str) -> Process:
        try:
            return self._graph.nodes[name]["process"]
        except KeyError:
            raise ModelError(f"unknown process {name!r} in {self.name!r}") from None

    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    def __contains__(self, name: str) -> bool:
        return name in self._graph

    def __iter__(self) -> Iterator[str]:
        return iter(self._graph.nodes)

    def predecessors(self, name: str) -> list[str]:
        return sorted(self._graph.predecessors(name))

    def successors(self, name: str) -> list[str]:
        return sorted(self._graph.successors(name))

    def in_messages(self, name: str) -> list[Message]:
        """Messages feeding ``name``, ordered by sender name."""
        if self._in_cache is None:
            self._in_cache = {
                n: [
                    self._graph.edges[p, n]["message"]
                    for p in self.predecessors(n)
                ]
                for n in self._graph
            }
        return list(self._in_cache[name])

    def out_messages(self, name: str) -> list[Message]:
        """Messages produced by ``name``, ordered by receiver name."""
        if self._out_cache is None:
            self._out_cache = {
                n: [
                    self._graph.edges[n, s]["message"]
                    for s in self.successors(n)
                ]
                for n in self._graph
            }
        return list(self._out_cache[name])

    def edge_message(self, src: str, dst: str) -> Message:
        try:
            return self._graph.edges[src, dst]["message"]
        except KeyError:
            raise ModelError(f"no edge {src!r} -> {dst!r} in {self.name!r}") from None

    def sources(self) -> list[str]:
        """Processes without predecessors."""
        return sorted(n for n in self._graph if self._graph.in_degree(n) == 0)

    def sinks(self) -> list[str]:
        """Processes without successors."""
        return sorted(n for n in self._graph if self._graph.out_degree(n) == 0)

    def topological_order(self) -> list[str]:
        """A deterministic topological order of the process names."""
        return list(nx.lexicographical_topological_sort(self._graph))

    def to_networkx(self) -> nx.DiGraph:
        """A *copy* of the underlying directed graph."""
        return self._graph.copy()

    def validate(self) -> None:
        """Raise :class:`ModelError` unless the graph is a non-empty DAG."""
        if len(self) == 0:
            raise ModelError(f"graph {self.name!r} is empty")
        if not nx.is_directed_acyclic_graph(self._graph):
            cycle = nx.find_cycle(self._graph)
            raise ModelError(f"graph {self.name!r} has a cycle: {cycle}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ProcessGraph({self.name!r}, processes={len(self)}, "
            f"messages={len(self._messages)}, period={self.period}, "
            f"deadline={self.deadline})"
        )


@dataclass
class Application:
    """A set of process graphs implemented together on one architecture."""

    graphs: list[ProcessGraph] = field(default_factory=list)
    name: str = "application"

    def add_graph(self, graph: ProcessGraph) -> ProcessGraph:
        if any(g.name == graph.name for g in self.graphs):
            raise ModelError(f"duplicate graph {graph.name!r} in application")
        self.graphs.append(graph)
        return graph

    @property
    def processes(self) -> dict[str, Process]:
        """Union of all graph processes; names must be globally unique."""
        merged: dict[str, Process] = {}
        for graph in self.graphs:
            for name, process in graph.processes.items():
                if name in merged:
                    raise ModelError(f"process {name!r} appears in two graphs")
                merged[name] = process
        return merged

    def validate(self) -> None:
        """Validate every graph plus the global name-uniqueness invariant."""
        if not self.graphs:
            raise ModelError("application has no process graphs")
        for graph in self.graphs:
            graph.validate()
        self.processes  # raises on duplicates

    def hyperperiod(self) -> float | None:
        """Least common multiple of all graph periods (ms), or ``None``.

        Periods are interpreted at 1 µs resolution when computing the LCM so
        float periods such as 2.5 ms behave predictably.
        """
        periods = [g.period for g in self.graphs if g.period is not None]
        if not periods:
            return None
        scale = 1000  # 1 us resolution
        ticks = [round(p * scale) for p in periods]
        if any(t <= 0 for t in ticks):
            raise ModelError("periods must be >= 1 us")
        lcm = ticks[0]
        for t in ticks[1:]:
            lcm = _lcm(lcm, t)
        return lcm / scale

    def largest_message_size(self) -> int:
        """Size in bytes of the largest message in the application (min 1)."""
        sizes = [m.size for g in self.graphs for m in g.messages.values()]
        return max(sizes, default=1)


def _lcm(a: int, b: int) -> int:
    import math

    return a * b // math.gcd(a, b)


def chain(
    names: Iterable[str],
    wcet: Mapping[str, float],
    graph: ProcessGraph,
    size: int = 1,
) -> list[Process]:
    """Helper used by tests/examples: add ``names`` as a chain to ``graph``."""
    created = [graph.add_process(Process(n, dict(wcet))) for n in names]
    for src, dst in zip(created, created[1:]):
        graph.connect(src.name, dst.name, size=size)
    return created
