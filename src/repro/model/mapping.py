"""Mapping of processes (and their replicas) to architecture nodes (paper §4).

The paper's mapping function is ``M: V ∪ V_R -> N``: every replica of every
process gets a node.  We key the mapping by process name and store one node
per replica, index 0 being the *primary* replica.  Replicas are placed on
distinct nodes whenever possible, but co-location is legal because ``k`` may
exceed the number of nodes (§4, footnote 1) — co-located replicas are simply
serialized in that node's schedule.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.errors import ModelError
from repro.model.policy import PolicyAssignment


class ReplicaMapping:
    """Maps each process to the tuple of nodes hosting its replicas."""

    def __init__(self, assignment: Mapping[str, tuple[str, ...]] | None = None) -> None:
        self._nodes: dict[str, tuple[str, ...]] = {
            p: tuple(nodes) for p, nodes in (assignment or {}).items()
        }

    # -- mutation ----------------------------------------------------------

    def assign(self, process: str, nodes: tuple[str, ...] | list[str] | str) -> None:
        """Assign replica nodes; a bare string means a single primary replica."""
        if isinstance(nodes, str):
            nodes = (nodes,)
        nodes = tuple(nodes)
        if not nodes:
            raise ModelError(f"process {process!r} mapped to an empty node tuple")
        self._nodes[process] = nodes

    # -- queries -----------------------------------------------------------

    def __getitem__(self, process: str) -> tuple[str, ...]:
        try:
            return self._nodes[process]
        except KeyError:
            raise ModelError(f"process {process!r} is not mapped") from None

    def __contains__(self, process: str) -> bool:
        return process in self._nodes

    def __iter__(self) -> Iterator[str]:
        return iter(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def items(self) -> Iterator[tuple[str, tuple[str, ...]]]:
        return iter(self._nodes.items())

    def primary(self, process: str) -> str:
        """Node of the primary replica (replica 0)."""
        return self[process][0]

    def replica_node(self, process: str, replica: int) -> str:
        nodes = self[process]
        try:
            return nodes[replica]
        except IndexError:
            raise ModelError(
                f"process {process!r} has {len(nodes)} replicas, "
                f"index {replica} out of range"
            ) from None

    def copy(self) -> "ReplicaMapping":
        return ReplicaMapping(self._nodes)

    def node_load(self, wcets: Mapping[str, Mapping[str, float]]) -> dict[str, float]:
        """Total WCET placed on every node (used for balancing heuristics)."""
        load: dict[str, float] = {}
        for process, nodes in self._nodes.items():
            for node in nodes:
                load[node] = load.get(node, 0.0) + wcets[process][node]
        return load

    def validate_for(
        self,
        policies: PolicyAssignment,
        allowed_nodes: Mapping[str, tuple[str, ...]],
    ) -> None:
        """Check replica counts match policies and nodes are legal targets."""
        for process in policies:
            nodes = self[process]
            expected = policies[process].n_replicas
            if len(nodes) != expected:
                raise ModelError(
                    f"process {process!r}: mapping has {len(nodes)} replica "
                    f"nodes but policy expects {expected}"
                )
            legal = set(allowed_nodes[process])
            for node in nodes:
                if node not in legal:
                    raise ModelError(
                        f"process {process!r} replica mapped on illegal node "
                        f"{node!r} (allowed: {sorted(legal)})"
                    )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{p}->{nodes}" for p, nodes in self._nodes.items())
        return f"ReplicaMapping({inner})"
