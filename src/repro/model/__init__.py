"""Application, architecture and fault models (paper sections 2 and 3)."""

from repro.model.application import Application, Message, Process, ProcessGraph
from repro.model.architecture import Architecture, Node
from repro.model.fault import FaultModel
from repro.model.mapping import ReplicaMapping
from repro.model.merge import merge_application
from repro.model.policy import Policy, PolicyAssignment

__all__ = [
    "Application",
    "Architecture",
    "FaultModel",
    "Message",
    "Node",
    "Policy",
    "PolicyAssignment",
    "Process",
    "ProcessGraph",
    "ReplicaMapping",
    "merge_application",
]
