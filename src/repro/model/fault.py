"""Transient fault model (paper §2.1).

At most ``k`` transient faults occur anywhere in the system during one
operation cycle of the application; several may hit the same node, and ``k``
may exceed the number of nodes.  Each fault is confined to a single process
execution and costs ``mu`` milliseconds from detection until the system is
back to normal operation (after which a re-execution may start).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError


@dataclass(frozen=True)
class FaultModel:
    """The pair *(k, µ)* that drives every analysis in this library.

    ``checkpoint_overhead`` (extension, see
    :meth:`repro.model.policy.Policy.checkpointing`) is the time in ms spent
    establishing one checkpoint; it inflates the fault-free WCET of a
    checkpointed process by ``segments * checkpoint_overhead``.
    """

    k: int
    mu: float = 0.0
    checkpoint_overhead: float = 0.0

    def __post_init__(self) -> None:
        if self.k < 0:
            raise ModelError(f"fault count k must be >= 0, got {self.k}")
        if self.mu < 0:
            raise ModelError(f"fault duration mu must be >= 0, got {self.mu}")
        if self.checkpoint_overhead < 0:
            raise ModelError("checkpoint overhead must be >= 0")
        if self.k == 0 and self.mu != 0:
            # Harmless but almost certainly a configuration mistake.
            raise ModelError("mu must be 0 when k is 0 (no faults to recover from)")

    @property
    def fault_free(self) -> bool:
        """True when this model describes a non-fault-tolerant system."""
        return self.k == 0

    def recovery_time(self, wcet: float, reexecutions: int) -> float:
        """Extra time ``reexecutions`` re-runs of a ``wcet`` process may cost.

        One re-execution costs ``mu`` (detection + recovery) plus another run
        of the process, as in Fig. 2a of the paper (C=30, k=2, µ=10 gives a
        worst-case finish of 30 + 2*(30+10) = 110 ms).
        """
        if reexecutions < 0:
            raise ModelError("reexecutions must be >= 0")
        return reexecutions * (wcet + self.mu)


NO_FAULTS = FaultModel(k=0, mu=0.0)
"""Shared constant for non-fault-tolerant (NFT) scheduling."""
