"""Hardware architecture model (paper §2.1).

The architecture is a set of nodes sharing a broadcast TTP bus.  Every node
consists of a CPU (which executes the static schedule table produced by
``repro.schedule``) and a communication controller (which executes the MEDL
produced by ``repro.ttp``).  Per-process WCETs are attached to processes, not
nodes, because the paper specifies ``C_Pi^Nk`` tables per process.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ModelError
from repro.ttp.bus import BusConfig


@dataclass(frozen=True)
class Node:
    """One computation node ``N_i`` (CPU + TTP communication controller)."""

    name: str
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("node name must be a non-empty string")


@dataclass
class Architecture:
    """A set of nodes and the TTP bus connecting them."""

    nodes: list[Node]
    bus: BusConfig | None = None
    name: str = "architecture"
    _index: dict[str, Node] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ModelError("architecture needs at least one node")
        index: dict[str, Node] = {}
        for node in self.nodes:
            if node.name in index:
                raise ModelError(f"duplicate node {node.name!r}")
            index[node.name] = node
        self._index = index
        if self.bus is not None:
            self.bus.validate_for(self.node_names)

    @property
    def node_names(self) -> tuple[str, ...]:
        """Node names in declaration order (slot order by default)."""
        return tuple(node.name for node in self.nodes)

    def node(self, name: str) -> Node:
        try:
            return self._index[name]
        except KeyError:
            raise ModelError(f"unknown node {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __len__(self) -> int:
        return len(self.nodes)


def homogeneous_architecture(n_nodes: int, prefix: str = "N") -> Architecture:
    """Build an ``n_nodes``-node architecture named ``N1..Nn`` (no bus yet)."""
    if n_nodes <= 0:
        raise ModelError("need at least one node")
    return Architecture(nodes=[Node(f"{prefix}{i + 1}") for i in range(n_nodes)])
