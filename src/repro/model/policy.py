"""Fault-tolerance policies (paper §2.2 and §4, Fig. 2).

A policy for a process is the pair of the paper's functions ``F_R`` (how many
active replicas) and ``F_X`` (how many re-executions each replica gets).  We
represent it as ``n_replicas`` plus a per-replica re-execution vector.

Validity rule
-------------
An adversary must spend ``1 + e_j`` faults to terminally kill replica ``j``
(one for the original execution plus one per re-execution).  The process
survives every scenario of at most ``k`` faults iff killing *all* replicas
costs more than ``k`` faults::

    n_replicas + sum(e_j)  >=  k + 1        (total executions >= k + 1)

The canonical policies of Fig. 2 are:

* re-execution only  (Fig. 2a): ``Policy.reexecution(k)``  -> r=1, e=(k,)
* replication only   (Fig. 2b): ``Policy.replication(k)``  -> r=k+1, e=0...
* re-executed replicas (Fig. 2c): ``Policy.combined(2, k=2)`` -> r=2, e=(1,0)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.errors import ModelError


@dataclass(frozen=True)
class Policy:
    """Fault-tolerance policy of a single process.

    ``checkpoints`` is an *extension* beyond the DATE 2005 paper (which
    names checkpointing in §1 but does not evaluate it): with ``s > 0``
    equidistant checkpoints, a re-execution only re-runs the failed segment
    (``C/s`` instead of ``C``), at the price of a per-checkpoint overhead
    (see :class:`repro.model.fault.FaultModel.checkpoint_overhead`).
    """

    n_replicas: int
    reexecutions: tuple[int, ...]
    checkpoints: int = 0

    def __post_init__(self) -> None:
        if self.n_replicas < 1:
            raise ModelError("a process needs at least one replica (itself)")
        if len(self.reexecutions) != self.n_replicas:
            raise ModelError(
                f"re-execution vector {self.reexecutions} does not match "
                f"{self.n_replicas} replicas"
            )
        if any(e < 0 for e in self.reexecutions):
            raise ModelError("re-execution counts must be >= 0")
        if self.checkpoints < 0:
            raise ModelError("checkpoint count must be >= 0")
        if self.checkpoints == 1:
            raise ModelError(
                "one checkpoint is meaningless: use 0 (none) or >= 2 segments"
            )

    # -- constructors ------------------------------------------------------

    @classmethod
    def reexecution(cls, k: int) -> "Policy":
        """Pure time redundancy: one replica re-executed ``k`` times."""
        return cls(n_replicas=1, reexecutions=(k,))

    @classmethod
    def replication(cls, k: int) -> "Policy":
        """Pure space redundancy: ``k + 1`` replicas, no re-execution."""
        return cls(n_replicas=k + 1, reexecutions=(0,) * (k + 1))

    @classmethod
    def combined(cls, n_replicas: int, k: int) -> "Policy":
        """``n_replicas`` replicas sharing ``k + 1 - n_replicas`` re-executions.

        Re-executions are distributed as evenly as possible with the extras
        given to lower-index replicas, so ``combined(2, k=2)`` reproduces the
        paper's Fig. 2c: replicas with re-execution vector ``(1, 0)``.
        ``combined(1, k)`` equals :meth:`reexecution`; ``combined(k+1, k)``
        equals :meth:`replication`.
        """
        if n_replicas < 1:
            raise ModelError("n_replicas must be >= 1")
        if n_replicas > k + 1:
            raise ModelError(
                f"{n_replicas} replicas exceed the k+1={k + 1} executions "
                "needed; extra replicas would never be used"
            )
        spare = (k + 1) - n_replicas
        base, extra = divmod(spare, n_replicas)
        vector = tuple(base + (1 if j < extra else 0) for j in range(n_replicas))
        return cls(n_replicas=n_replicas, reexecutions=vector)

    @classmethod
    def checkpointing(cls, k: int, segments: int) -> "Policy":
        """Extension: one replica, ``k`` re-executions, segment recovery."""
        return cls(n_replicas=1, reexecutions=(k,), checkpoints=segments)

    # -- queries -----------------------------------------------------------

    @property
    def total_executions(self) -> int:
        """Replicas plus all their re-executions."""
        return self.n_replicas + sum(self.reexecutions)

    @property
    def is_pure_reexecution(self) -> bool:
        return self.n_replicas == 1

    @property
    def is_pure_replication(self) -> bool:
        return all(e == 0 for e in self.reexecutions) and self.n_replicas > 1

    def kill_cost(self, replica: int) -> int:
        """Faults an adversary must spend to terminally kill ``replica``."""
        return 1 + self.reexecutions[replica]

    def tolerates(self, k: int) -> bool:
        """True iff every scenario of at most ``k`` faults is survived."""
        return self.total_executions >= k + 1

    def validate_for(self, k: int) -> None:
        if not self.tolerates(k):
            raise ModelError(
                f"policy {self} provides {self.total_executions} executions "
                f"but k={k} faults require at least {k + 1}"
            )

    def describe(self) -> str:
        """Short human-readable form, e.g. ``XR(r=2,e=(1,0))``."""
        suffix = f",s={self.checkpoints}" if self.checkpoints else ""
        if self.is_pure_reexecution:
            return f"X(e={self.reexecutions[0]}{suffix})"
        if self.is_pure_replication:
            return f"R(r={self.n_replicas}{suffix})"
        return f"XR(r={self.n_replicas},e={self.reexecutions}{suffix})"


class PolicyAssignment:
    """The function ``F = <F_R, F_X>`` mapping every process to its policy."""

    def __init__(self, policies: Mapping[str, Policy] | None = None) -> None:
        self._policies: dict[str, Policy] = dict(policies or {})

    def __getitem__(self, process: str) -> Policy:
        try:
            return self._policies[process]
        except KeyError:
            raise ModelError(f"no policy assigned to process {process!r}") from None

    def __setitem__(self, process: str, policy: Policy) -> None:
        self._policies[process] = policy

    def __contains__(self, process: str) -> bool:
        return process in self._policies

    def __iter__(self) -> Iterator[str]:
        return iter(self._policies)

    def __len__(self) -> int:
        return len(self._policies)

    def items(self) -> Iterator[tuple[str, Policy]]:
        return iter(self._policies.items())

    def copy(self) -> "PolicyAssignment":
        return PolicyAssignment(self._policies)

    def validate_for(self, k: int, processes: Iterator[str] | None = None) -> None:
        """Check every (or the given) process tolerates ``k`` faults."""
        names = list(processes) if processes is not None else list(self._policies)
        for name in names:
            self[name].validate_for(k)

    @classmethod
    def uniform(cls, processes: Iterator[str], policy: Policy) -> "PolicyAssignment":
        """Assign the same ``policy`` to every process in ``processes``."""
        return cls({name: policy for name in processes})

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{p}:{pol.describe()}" for p, pol in self._policies.items())
        return f"PolicyAssignment({inner})"
