"""FT-extended execution graph (paper §3, functions ``F_R``/``F_X``).

Given the merged application graph, a policy assignment and a replica
mapping, this module expands every process into its replica *instances* and
every edge into per-replica message instances.  The result is the structure
the list scheduler and the worst-case analysis operate on:

* each :class:`Instance` is one replica of one process, carrying the number
  of re-executions its recovery slack must cover;
* each receiver instance owns one :class:`InputGroup` per original in-edge —
  the group lists all sender replicas, because the receiver may start as
  soon as the *first valid* message from the group arrives (§2.2);
* a sender instance produces one broadcast bus message per original edge iff
  at least one receiver replica lives on a different node (TTP is a
  broadcast bus, so a single frame serves every remote reader).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from functools import cached_property

import networkx as nx

from repro.errors import ModelError
from repro.model.application import Message, ProcessGraph
from repro.model.fault import FaultModel
from repro.model.mapping import ReplicaMapping
from repro.model.policy import PolicyAssignment


def instance_id(process: str, replica: int) -> str:
    """Identifier of replica ``replica`` (0-based) of ``process``."""
    return f"{process}:r{replica}"




@dataclass(frozen=True, slots=True)
class Instance:
    """One replica of one process, bound to a node."""

    id: str
    process: str
    replica: int
    node: str
    wcet: float
    reexecutions: int
    release: float = 0.0
    deadline: float | None = None
    checkpoints: int = 0  # extension: segment-level recovery

    @property
    def kill_cost(self) -> int:
        """Faults an adversary must spend to terminally kill this replica."""
        return 1 + self.reexecutions

    @property
    def recovery_unit(self) -> float:
        """Time one re-execution re-runs: the whole WCET, or one segment."""
        if self.checkpoints > 0:
            return self.wcet / self.checkpoints
        return self.wcet


@dataclass(frozen=True)
class InputGroup:
    """All sender replicas feeding one receiver instance via one message."""

    message: Message
    sources: tuple[str, ...]  # sender instance ids, replica order

    @cached_property
    def frame_ids(self) -> tuple[tuple[str, str, str], ...]:
        """``(src_iid, fast_frame_id, guaranteed_frame_id)`` per source.

        The frame id strings depend only on the message name and the sender
        instance ids, both frozen — and groups are shared by reference
        between a base FT graph and its move overlays
        (:func:`ft_graph_with_move`), so the release-row hot path formats
        each id once per group lifetime instead of once per lookup.
        """
        name = self.message.name
        return tuple(
            (src, f"{name}[{src}]", f"{name}[{src}]#g")
            for src in self.sources
        )


@dataclass(frozen=True, slots=True)
class BusMessage:
    """A broadcast frame payload: one sender instance, one original message.

    ``kind`` selects the transmission discipline (paper §4.1/§5.1):

    * ``"masked"`` — the sender is the only replica; recovery must stay
      transparent, so the slot lies after the sender's worst-case finish
      (Fig. 4a: m2 departs only after C1 + µ);
    * ``"fast"`` — the sender is one of several replicas; the slot follows
      the fault-free finish (Fig. 4b: replica outputs are not delayed), and
      receivers account for the scenarios that invalidate the frame;
    * ``"guaranteed"`` — second frame of a replica, scheduled after its
      worst-case finish so the group still delivers when fast frames are
      missed (for re-executed replicas this is the combined policy of
      Fig. 2c; for pure replicas it is the fallback that keeps the
      receiver-side worst case sound under correlated upstream delays).
    """

    sender: str  # instance id
    message: Message
    kind: str = "masked"
    id: str = field(init=False)  # derived key, precomputed once

    def __post_init__(self) -> None:
        suffix = "#g" if self.kind == "guaranteed" else ""
        object.__setattr__(
            self, "id", f"{self.message.name}[{self.sender}]{suffix}"
        )


class FTGraph:
    """The expanded instance graph plus group/bus metadata."""

    def __init__(self) -> None:
        self.instances: dict[str, Instance] = {}
        self.group_of: dict[str, tuple[str, ...]] = {}  # process -> instance ids
        self.inputs: dict[str, tuple[InputGroup, ...]] = {}
        self.bus_messages: dict[str, BusMessage] = {}  # keyed by BusMessage.id
        self._out_bus: dict[str, list[BusMessage]] = {}  # sender instance -> frames
        # Plain adjacency dicts: the FT graph is rebuilt for every candidate
        # implementation, so edge bookkeeping sits on the optimizer's hot
        # path and must not pay generic-graph-library overhead.
        self._succ: dict[str, list[str]] = {}
        self._pred: dict[str, list[str]] = {}
        self._edges: set[tuple[str, str]] = set()

    def _add_node(self, iid: str) -> None:
        self._succ.setdefault(iid, [])
        self._pred.setdefault(iid, [])

    def _add_edge(self, src: str, dst: str) -> None:
        if (src, dst) in self._edges:
            return
        self._edges.add((src, dst))
        self._succ[src].append(dst)
        self._pred[dst].append(src)

    # -- queries -----------------------------------------------------------

    def instance(self, iid: str) -> Instance:
        try:
            return self.instances[iid]
        except KeyError:
            raise ModelError(f"unknown instance {iid!r}") from None

    def replicas(self, process: str) -> tuple[str, ...]:
        try:
            return self.group_of[process]
        except KeyError:
            raise ModelError(f"unknown process {process!r}") from None

    def inputs_of(self, iid: str) -> tuple[InputGroup, ...]:
        return self.inputs.get(iid, ())

    def outgoing_bus_messages(self, iid: str) -> list[BusMessage]:
        """Bus frames instance ``iid`` must transmit (possibly empty).

        A non-empty result is the internal list (hot path); callers must
        not mutate it.
        """
        messages = self._out_bus.get(iid)
        return messages if messages is not None else []

    def topological_order(self) -> list[str]:
        """Deterministic (lexicographic) topological order over instance ids."""
        remaining = {iid: len(preds) for iid, preds in self._pred.items()}
        ready = [iid for iid, count in remaining.items() if count == 0]
        heapq.heapify(ready)
        order: list[str] = []
        while ready:
            iid = heapq.heappop(ready)
            order.append(iid)
            for succ in self._succ[iid]:
                remaining[succ] -= 1
                if remaining[succ] == 0:
                    heapq.heappush(ready, succ)
        if len(order) != len(self._succ):
            raise ModelError("FT graph contains a cycle")
        return order

    def to_networkx(self) -> nx.DiGraph:
        digraph = nx.DiGraph()
        digraph.add_nodes_from(self._succ)
        digraph.add_edges_from(self._edges)
        return digraph

    def predecessors(self, iid: str) -> list[str]:
        return sorted(self._pred[iid])

    def successors(self, iid: str) -> list[str]:
        return sorted(self._succ[iid])

    def __len__(self) -> int:
        return len(self.instances)

    def __iter__(self):
        return iter(self.instances)


def build_ft_graph(
    graph: ProcessGraph,
    policies: PolicyAssignment,
    mapping: ReplicaMapping,
    faults: FaultModel,
) -> FTGraph:
    """Expand ``graph`` according to ``policies`` and ``mapping``.

    Raises :class:`ModelError` if a policy does not tolerate ``faults.k``
    faults or the mapping disagrees with the policy's replica count.
    """
    ft = FTGraph()
    for name, process in graph.processes.items():
        policy = policies[name]
        policy.validate_for(faults.k)
        nodes = mapping[name]
        if len(nodes) != policy.n_replicas:
            raise ModelError(
                f"process {name!r}: {len(nodes)} mapped replicas but policy "
                f"has {policy.n_replicas}"
            )
        ids = []
        for replica, node in enumerate(nodes):
            iid = instance_id(name, replica)
            wcet = process.wcet_on(node)
            if policy.checkpoints > 0:
                wcet += policy.checkpoints * faults.checkpoint_overhead
            inst = Instance(
                id=iid,
                process=name,
                replica=replica,
                node=node,
                wcet=wcet,
                reexecutions=policy.reexecutions[replica],
                release=process.release,
                deadline=process.deadline,
                checkpoints=policy.checkpoints,
            )
            ft.instances[iid] = inst
            ft._add_node(iid)
            ids.append(iid)
        ft.group_of[name] = tuple(ids)

    for name in graph:
        receivers = ft.group_of[name]
        groups: list[InputGroup] = []
        for message in graph.in_messages(name):
            sources = ft.group_of[message.src]
            groups.append(InputGroup(message=message, sources=sources))
            for src_iid in sources:
                for dst_iid in receivers:
                    ft._add_edge(src_iid, dst_iid)
        for dst_iid in receivers:
            ft.inputs[dst_iid] = tuple(groups)

    _collect_bus_messages(graph, ft, faults.k)
    return ft


def ft_graph_with_move(
    base: FTGraph,
    graph: ProcessGraph,
    policies: PolicyAssignment,
    mapping: ReplicaMapping,
    faults: FaultModel,
    process: str,
) -> FTGraph:
    """Overlay clone of ``base`` for a single-process design change.

    ``policies``/``mapping`` are the *moved* assignment (they must differ
    from ``base`` only in ``process``).  Equivalent to
    ``build_ft_graph(graph, policies, mapping, faults)`` but rebuilt only
    where the move can reach:

    * ``process``'s own instances (node, WCET, re-executions, group size),
    * adjacency and input groups touching those instances (predecessor and
      successor processes of ``process`` in the application graph),
    * bus frames transmitted by ``process`` (sender node/kinds changed) and
      by its predecessor processes (their frames' *receiver* node sets
      include ``process``'s new nodes, which decides whether a frame is
      needed at all).

    Everything else — instances, input-group objects, adjacency lists, bus
    frames — is shared by reference with ``base``, which both keeps the
    overlay cheap (O(cone), not O(graph)) and lets the delta kernel test
    "unchanged" with identity checks.  The base graph is never mutated:
    every container that differs is a fresh copy.
    """
    policy = policies[process]
    policy.validate_for(faults.k)
    nodes = mapping[process]
    if len(nodes) != policy.n_replicas:
        raise ModelError(
            f"process {process!r}: {len(nodes)} mapped replicas but policy "
            f"has {policy.n_replicas}"
        )
    proc = graph.processes[process]
    old_ids = base.group_of[process]

    ft = FTGraph()
    ft.instances = dict(base.instances)
    ft.group_of = dict(base.group_of)
    ft.inputs = dict(base.inputs)
    ft.bus_messages = dict(base.bus_messages)
    ft._out_bus = dict(base._out_bus)
    ft._succ = dict(base._succ)
    ft._pred = dict(base._pred)
    ft._edges = base._edges  # reconciled below iff the edge set changed

    for iid in old_ids:
        del ft.instances[iid]
        del ft.inputs[iid]
    new_ids = []
    for replica, node in enumerate(nodes):
        iid = instance_id(process, replica)
        wcet = proc.wcet_on(node)
        if policy.checkpoints > 0:
            wcet += policy.checkpoints * faults.checkpoint_overhead
        ft.instances[iid] = Instance(
            id=iid,
            process=process,
            replica=replica,
            node=node,
            wcet=wcet,
            reexecutions=policy.reexecutions[replica],
            release=proc.release,
            deadline=proc.deadline,
            checkpoints=policy.checkpoints,
        )
        new_ids.append(iid)
    new_group = tuple(new_ids)
    ft.group_of[process] = new_group

    # Input groups: the moved process keeps its base groups verbatim (its
    # senders did not change); each successor's group over ``process`` is
    # re-pointed at the new replica tuple, other groups stay shared.
    base_inputs = base.inputs.get(old_ids[0], ())
    for iid in new_ids:
        ft.inputs[iid] = base_inputs
    succ_processes = sorted({m.dst for m in graph.out_messages(process)})
    pred_processes = sorted({m.src for m in graph.in_messages(process)})
    for succ_name in succ_processes:
        rewired = tuple(
            InputGroup(message=g.message, sources=new_group)
            if g.message.src == process
            else g
            for g in base.inputs[base.group_of[succ_name][0]]
        )
        for iid in ft.group_of[succ_name]:
            ft.inputs[iid] = rewired

    # Adjacency: rebuild the out-lists of senders into the move cone and the
    # in-lists of receivers inside it; every other list is shared.  The two
    # sides stay consistent because every rebuilt edge has either its sender
    # or both endpoints rebuilt (the application DAG is bipartite around
    # ``process``: senders are its predecessors, receivers its successors).
    sender_processes = [*pred_processes, process]
    receiver_processes = [process, *succ_processes]
    for name in sender_processes:
        out_groups = [
            ft.group_of[m.dst] for m in graph.out_messages(name)
        ]
        for iid in ft.group_of[name]:
            seen: set[str] = set()
            succs: list[str] = []
            for receivers in out_groups:
                for dst_iid in receivers:
                    if dst_iid not in seen:
                        seen.add(dst_iid)
                        succs.append(dst_iid)
            ft._succ[iid] = succs
    for name in receiver_processes:
        in_groups = [ft.group_of[m.src] for m in graph.in_messages(name)]
        for iid in ft.group_of[name]:
            seen = set()
            preds: list[str] = []
            for senders in in_groups:
                for src_iid in senders:
                    if src_iid not in seen:
                        seen.add(src_iid)
                        preds.append(src_iid)
            ft._pred[iid] = preds
    for iid in old_ids[len(new_ids):]:
        del ft._succ[iid]
        del ft._pred[iid]
    if len(new_ids) != len(old_ids):
        ft._edges = {
            (src, dst) for src, succs in ft._succ.items() for dst in succs
        }

    # Bus frames: senders in the cone get their frame lists rebuilt with the
    # same per-sender ordering as :func:`_collect_bus_messages` (the list
    # scheduler packs a sender's frames in list order, so the order is part
    # of byte-level schedule identity).
    rebuilt_senders = {
        iid for name in sender_processes for iid in ft.group_of[name]
    } | set(old_ids)
    ft.bus_messages = {
        bid: m
        for bid, m in ft.bus_messages.items()
        if m.sender not in rebuilt_senders
    }
    for iid in rebuilt_senders:
        ft._out_bus.pop(iid, None)
    for name in sender_processes:
        group = ft.group_of[name]
        backed = _guaranteed_backed(ft, group, faults.k)
        for message in graph.out_messages(name):
            receiver_nodes = {
                ft.instances[iid].node for iid in ft.group_of[message.dst]
            }
            for src_iid in group:
                sender = ft.instances[src_iid]
                if not receiver_nodes - {sender.node}:
                    continue
                if len(group) == 1:
                    kinds = ("masked",)
                elif src_iid in backed:
                    kinds = ("fast", "guaranteed")
                else:
                    kinds = ("fast",)
                for kind in kinds:
                    bus_msg = BusMessage(
                        sender=src_iid, message=message, kind=kind
                    )
                    ft.bus_messages[bus_msg.id] = bus_msg
                    ft._out_bus.setdefault(src_iid, []).append(bus_msg)
    return ft


def _guaranteed_backed(ft: FTGraph, group: tuple[str, ...], k: int) -> set[str]:
    """Replicas of ``group`` that must own a guaranteed frame (see below)."""
    backed = {
        iid for iid in group if ft.instances[iid].reexecutions > 0
    }
    price = sum(ft.instances[iid].kill_cost for iid in backed)
    for iid in group:
        if price >= k:
            break
        if iid not in backed:
            backed.add(iid)
            price += ft.instances[iid].kill_cost
    return backed


def _collect_bus_messages(graph: ProcessGraph, ft: FTGraph, k: int) -> None:
    """Create the broadcast frames every sender instance must transmit.

    A frame is needed whenever at least one receiver replica lives on a
    different node.  Sole replicas send one transparently-masked frame;
    replicas of a replicated process send a fast frame, and enough of them
    additionally send a *guaranteed* frame (slot after the sender's WCF)
    to keep the receiver-side worst case sound: fast frames of a whole
    replica group can be invalidated together by one upstream fault that
    delays every replica past its slot (replicas share predecessors), so
    the group must retain delay-immune deliveries the adversary cannot
    also kill.  Backing replicas whose combined kill price reaches ``k``
    suffices — once the adversary spends ``d >= 1`` faults on delays it
    has at most ``k - 1`` kills left, and at ``d = 0`` every fast frame
    is still valid while the group's total price exceeds ``k``.
    Re-executed replicas carry a guaranteed frame anyway (the combined
    policy of Fig. 2c), so they are backed for free; 0-re-execution
    replicas are added in replica order only until the price is met.
    """
    for name in graph:
        group = ft.group_of[name]
        backed = _guaranteed_backed(ft, group, k)
        for message in graph.out_messages(name):
            receiver_nodes = {
                ft.instances[iid].node for iid in ft.group_of[message.dst]
            }
            for src_iid in group:
                sender = ft.instances[src_iid]
                if not receiver_nodes - {sender.node}:
                    continue
                if len(group) == 1:
                    kinds = ("masked",)
                elif src_iid in backed:
                    kinds = ("fast", "guaranteed")
                else:
                    kinds = ("fast",)
                for kind in kinds:
                    bus_msg = BusMessage(sender=src_iid, message=message, kind=kind)
                    ft.bus_messages[bus_msg.id] = bus_msg
                    ft._out_bus.setdefault(src_iid, []).append(bus_msg)
