"""Figure 10: quality of MXR versus MX, MR and SFX (paper §6).

For every application size the figure reports the average percentage
deviation of each single-policy/straightforward strategy from MXR::

    deviation(V) = 100 * (δ_V − δ_MXR) / δ_MXR

The paper's qualitative findings this reproduces: MR is by far the worst
(worse than even the straightforward SFX), SFX is much worse than MXR
(mapping must be fault-tolerance aware), and MX trails MXR by a margin that
peaks around mid-size applications.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.experiments.parallel import run_case_jobs, sweep_jobs
from repro.gen.suite import TABLE1A_DIMENSIONS
from repro.opt.strategy import OptimizationConfig


@dataclass(frozen=True)
class Figure10Row:
    """Average % deviation from MXR for one application size."""

    n_processes: int
    n_cases: int
    mx: float
    mr: float
    sfx: float

    def series(self) -> dict[str, float]:
        return {"MX": self.mx, "MR": self.mr, "SFX": self.sfx}


def figure10(
    seeds: Sequence[int] = (0, 1, 2),
    dimensions: Sequence[tuple[int, int, int]] = TABLE1A_DIMENSIONS,
    mu: float = 5.0,
    time_scale: float = 1.0,
    progress: Callable[[str], None] | None = None,
    jobs: int = 1,
    config: OptimizationConfig | None = None,
    broker=None,
    resume: bool = False,
) -> list[Figure10Row]:
    """Regenerate the Figure 10 series."""
    job_list = sweep_jobs(
        dimensions,
        seeds,
        ("MXR", "MX", "MR", "SFX"),
        mu,
        time_scale,
        config,
        tag="figure10",
    )
    results = run_case_jobs(
        job_list, n_jobs=jobs, progress=progress, broker=broker,
        resume=resume,
    )

    rows: list[Figure10Row] = []
    index = 0
    for n_processes, _, _ in dimensions:
        deviations: dict[str, list[float]] = {"MX": [], "MR": [], "SFX": []}
        for _ in seeds:
            runs = results[index]
            index += 1
            mxr = runs["MXR"].makespan
            for variant in ("MX", "MR", "SFX"):
                deviation = 100.0 * (runs[variant].makespan - mxr) / mxr
                deviations[variant].append(deviation)
        rows.append(
            Figure10Row(
                n_processes=n_processes,
                n_cases=len(seeds),
                mx=sum(deviations["MX"]) / len(seeds),
                mr=sum(deviations["MR"]) / len(seeds),
                sfx=sum(deviations["SFX"]) / len(seeds),
            )
        )
    return rows
