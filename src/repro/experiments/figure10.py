"""Figure 10: quality of MXR versus MX, MR and SFX (paper §6).

For every application size the figure reports the average percentage
deviation of each single-policy/straightforward strategy from MXR::

    deviation(V) = 100 * (δ_V − δ_MXR) / δ_MXR

The paper's qualitative findings this reproduces: MR is by far the worst
(worse than even the straightforward SFX), SFX is much worse than MXR
(mapping must be fault-tolerance aware), and MX trails MXR by a margin that
peaks around mid-size applications.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.experiments.runner import run_variants
from repro.gen.suite import TABLE1A_DIMENSIONS, generate_case


@dataclass(frozen=True)
class Figure10Row:
    """Average % deviation from MXR for one application size."""

    n_processes: int
    n_cases: int
    mx: float
    mr: float
    sfx: float

    def series(self) -> dict[str, float]:
        return {"MX": self.mx, "MR": self.mr, "SFX": self.sfx}


def figure10(
    seeds: Sequence[int] = (0, 1, 2),
    dimensions: Sequence[tuple[int, int, int]] = TABLE1A_DIMENSIONS,
    mu: float = 5.0,
    time_scale: float = 1.0,
    progress: Callable[[str], None] | None = None,
) -> list[Figure10Row]:
    """Regenerate the Figure 10 series."""
    rows: list[Figure10Row] = []
    for n_processes, n_nodes, k in dimensions:
        deviations: dict[str, list[float]] = {"MX": [], "MR": [], "SFX": []}
        for seed in seeds:
            case = generate_case(n_processes, n_nodes, k, mu=mu, seed=seed)
            runs = run_variants(
                case, ("MXR", "MX", "MR", "SFX"), time_scale=time_scale
            )
            mxr = runs["MXR"].makespan
            for variant in ("MX", "MR", "SFX"):
                deviation = 100.0 * (runs[variant].makespan - mxr) / mxr
                deviations[variant].append(deviation)
            if progress is not None:
                progress(
                    f"figure10 {n_processes}p seed {seed}: "
                    + " ".join(
                        f"{v}={deviations[v][-1]:.1f}%" for v in ("MX", "MR", "SFX")
                    )
                )
        rows.append(
            Figure10Row(
                n_processes=n_processes,
                n_cases=len(seeds),
                mx=sum(deviations["MX"]) / len(seeds),
                mr=sum(deviations["MR"]) / len(seeds),
                sfx=sum(deviations["SFX"]) / len(seeds),
            )
        )
    return rows
