"""Plain-text rendering of experiment results, mirroring the paper's layout."""

from __future__ import annotations

from typing import Sequence

from repro.experiments.cruise import CruiseResult
from repro.experiments.figure10 import Figure10Row
from repro.experiments.table1 import Table1Row


def format_table1(rows: Sequence[Table1Row], title: str) -> str:
    """Render one Table 1 block (max/avg/min % overhead)."""
    lines = [title, f"{'dimension':<14} {'%max':>8} {'%avg':>8} {'%min':>8}  (n)"]
    for row in rows:
        lines.append(
            f"{row.label:<14} {row.max_overhead:8.2f} {row.avg_overhead:8.2f} "
            f"{row.min_overhead:8.2f}  ({row.n_cases})"
        )
    return "\n".join(lines)


def format_figure10(rows: Sequence[Figure10Row]) -> str:
    """Render the Figure 10 series (avg % deviation from MXR)."""
    lines = [
        "Figure 10: average % deviation from MXR",
        f"{'processes':<10} {'MX':>8} {'MR':>8} {'SFX':>8}  (n)",
    ]
    for row in rows:
        lines.append(
            f"{row.n_processes:<10} {row.mx:8.2f} {row.mr:8.2f} {row.sfx:8.2f}"
            f"  ({row.n_cases})"
        )
    return "\n".join(lines)


def format_cruise(result: CruiseResult) -> str:
    """Render the CC experiment verdicts."""
    lines = [
        f"Cruise controller (deadline {result.deadline:.0f} ms, k=2, mu=2 ms)",
        f"{'variant':<8} {'delay [ms]':>12}  verdict",
    ]
    for variant, makespan in result.makespans.items():
        verdict = "meets deadline" if result.meets_deadline(variant) else "MISSED"
        lines.append(f"{variant:<8} {makespan:12.1f}  {verdict}")
    if "NFT" in result.makespans and "MXR" in result.makespans:
        lines.append(f"MXR overhead vs NFT: {result.overhead_pct('MXR'):.1f}%")
    return "\n".join(lines)


def format_inject(summary: dict) -> str:
    """Render one fault-injection sweep aggregate (``InjectAggregate.to_dict``)."""
    verdict = "PASS" if summary["ok"] else "FAIL"
    coverage = "complete" if summary["complete"] else "partial"
    lines = [
        f"Fault injection: {verdict} ({coverage} sweep, "
        f"{summary['shards']}/{summary['shards_planned']} shards)",
        f"  scenarios simulated  {summary['scenarios']:>12}",
        f"  trials (draws)       {summary['draws']:>12}",
        f"  violations           {summary['violation_scenarios']:>12}",
        f"  importance tier      {summary['importance']['scenarios']:>12} "
        f"scenarios, {summary['importance']['violations']} violations",
        f"  residual P[violation] <= {summary['residual_upper_bound']:.3e} "
        f"(confidence {1 - summary['alpha']:.0%}, uniform over the <=k space)",
        f"  throughput           {summary['scenarios_per_sec']:>12.0f} scenarios/s",
    ]
    lines.append("  per-stratum coverage:")
    for stratum, entry in summary["strata"].items():
        if entry["mode"] == "exhaustive":
            detail = f"{entry['covered']}/{entry['size']} enumerated"
        elif entry["mode"] == "sampled":
            detail = f"{entry['draws']} draws of {entry['size']}"
        else:
            detail = f"uncovered ({entry['size']} scenarios)"
        lines.append(
            f"    {stratum} faults: {detail}, {entry['violations']} violations, "
            f"bound {entry['upper_bound']:.3e}"
        )
    for name, exemplar in summary["exemplars"].items():
        faults = ", ".join(
            f"{iid}x{count}" for iid, count in exemplar["failures"].items()
        ) or "fault-free"
        lines.append(f"  !! {name}: [{faults}] {exemplar['detail']}")
    return "\n".join(lines)
