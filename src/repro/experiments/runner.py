"""Shared experiment machinery: per-size budgets and variant sweeps.

The paper derived "the shortest schedule within an imposed time limit: 10
minutes for 20 processes, 20 for 40, 1 hour for 60, 2 hours and 20 min. for
80 and 5 hours and 30 min. for 100 processes" on 2005 hardware.  This
reproduction scales the budget with application size in the same spirit but
at laptop scale; ``time_scale`` multiplies every limit (use ``--full`` /
``time_scale >= 10`` to approach paper-quality search).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.gen.suite import GeneratedCase
from repro.opt.strategy import OptimizationConfig, OptimizationResult, optimize
from repro.schedule.record import ScheduleRecord

#: Seconds of search per variant, keyed by application size (paper: minutes
#: to hours; scaled down ~100x for laptop runs).
DEFAULT_TIME_LIMITS: dict[int, float] = {20: 4.0, 40: 10.0, 60: 18.0, 80: 30.0, 100: 45.0}


def budget_for(n_processes: int, time_scale: float = 1.0) -> OptimizationConfig:
    """Optimization budget for one application of ``n_processes`` processes."""
    limit = None
    for size in sorted(DEFAULT_TIME_LIMITS):
        if n_processes <= size:
            limit = DEFAULT_TIME_LIMITS[size]
            break
    if limit is None:
        limit = DEFAULT_TIME_LIMITS[100] * (n_processes / 100.0)
    return OptimizationConfig(
        minimize=True,
        rounds=3,
        greedy_max_iterations=40,
        tabu_max_iterations=30,
        time_limit_s=limit * time_scale,
    )


@dataclass(frozen=True)
class VariantRun:
    """Outcome of one (case, variant) optimization.

    ``record`` is the winning schedule's compact IR: flat, cycle-free
    tuples that pickle cheaply, so parallel experiment workers ship the
    *full* synthesized schedule back to the parent — not just the summary
    scalars — and the parent (or a future distributed-queue backend) can
    re-render tables, validate, or archive it without re-optimizing.
    """

    variant: str
    makespan: float
    schedulable: bool
    seconds: float
    evaluations: int
    record: ScheduleRecord | None = None

    def overhead_vs(self, reference: "VariantRun") -> float:
        """Percent overhead of this run versus ``reference`` (usually NFT)."""
        return 100.0 * (self.makespan - reference.makespan) / reference.makespan


def run_variants(
    case: GeneratedCase,
    variants: tuple[str, ...] = ("NFT", "MXR"),
    time_scale: float = 1.0,
    config: OptimizationConfig | None = None,
    validate_samples: int | None = None,
) -> dict[str, VariantRun]:
    """Optimize ``case`` under every requested variant.

    With ``validate_samples`` set, every winning schedule is fault-injected
    through :func:`repro.sim.validate.validate_record` before it is
    reported (the distributed-queue workers do this so no unvalidated
    schedule is ever acked back to a driver); a violated schedule raises
    :class:`~repro.errors.FaultToleranceViolation`.
    """
    runs: dict[str, VariantRun] = {}
    for variant in variants:
        cfg = config or budget_for(case.n_processes, time_scale)
        started = time.monotonic()
        result: OptimizationResult = optimize(
            case.application, case.architecture, case.faults, variant, cfg
        )
        if validate_samples is not None:
            _validate_result(result, validate_samples)
        runs[variant] = VariantRun(
            variant=variant,
            makespan=result.makespan,
            schedulable=result.is_schedulable,
            seconds=time.monotonic() - started,
            evaluations=result.evaluations,
            record=result.record,
        )
    return runs


def _validate_result(result: OptimizationResult, samples: int) -> None:
    """Fault-inject one optimization winner; raise on any violation."""
    from repro.errors import FaultToleranceViolation
    from repro.model.ftgraph import build_ft_graph
    from repro.sim.validate import validate_record

    implementation = result.implementation
    ft = build_ft_graph(
        result.merged,
        implementation.policies,
        implementation.mapping,
        result.faults,
    )
    report = validate_record(
        result.record,
        result.merged,
        ft,
        result.faults,
        implementation.bus,
        samples=samples,
    )
    if not report.ok:
        preview = "; ".join(report.violations[:5])
        raise FaultToleranceViolation(
            f"{result.variant} schedule failed fault injection "
            f"({len(report.violations)} violations): {preview}"
        )
