"""The cruise-controller experiment (paper §6, last paragraph).

Paper setting: CC with 32 processes on ETM/ABS/TCM, deadline 250 ms, k = 2,
µ = 2 ms.  Paper outcome: MXR produces a schedulable implementation with a
worst-case system delay of 229 ms (65% overhead over NFT) while MX (253 ms)
and MR (301 ms) both miss the deadline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.cruise_control import CC_DEADLINE_MS, cruise_control_case
from repro.opt.strategy import OptimizationConfig, optimize


@dataclass(frozen=True)
class CruiseResult:
    """Makespans and verdicts for every strategy variant on the CC."""

    deadline: float
    makespans: dict[str, float] = field(default_factory=dict)

    def meets_deadline(self, variant: str) -> bool:
        return self.makespans[variant] <= self.deadline + 1e-9

    def overhead_pct(self, variant: str = "MXR") -> float:
        nft = self.makespans["NFT"]
        return 100.0 * (self.makespans[variant] - nft) / nft


def cruise_config() -> OptimizationConfig:
    """The budget used for the CC experiment (a single, richer run)."""
    return OptimizationConfig(
        minimize=True,
        ms_per_byte=2.0,
        rounds=4,
        tabu_max_iterations=40,
        greedy_max_iterations=40,
    )


def run_cruise_experiment(
    variants: tuple[str, ...] = ("NFT", "MXR", "MX", "MR", "SFX"),
    config: OptimizationConfig | None = None,
) -> CruiseResult:
    """Optimize the CC under every variant and report worst-case delays."""
    application, architecture, faults = cruise_control_case()
    config = config or cruise_config()
    makespans: dict[str, float] = {}
    for variant in variants:
        result = optimize(application, architecture, faults, variant, config)
        makespans[variant] = result.makespan
    return CruiseResult(deadline=CC_DEADLINE_MS, makespans=makespans)
