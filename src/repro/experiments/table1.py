"""Table 1: fault-tolerance overheads of MXR versus NFT (paper §6).

Three sweeps share one measurement: the percent overhead
``100 * (δ_MXR − δ_NFT) / δ_NFT`` aggregated as max/avg/min over the random
applications of one dimension.

* Table 1a — application size sweep (20..100 processes on 2..6 nodes,
  k = 3..7, µ = 5 ms);
* Table 1b — fault count sweep (60 processes, 4 nodes, k ∈ {2,4,6,8,10});
* Table 1c — fault duration sweep (20 processes, 2 nodes, k = 3,
  µ ∈ {1,5,10,15,20} ms).

Every sweep expands into independent ``(case, variant, seed)`` jobs executed
by :func:`repro.experiments.parallel.run_case_jobs`; ``jobs=1`` preserves
the serial path, ``jobs=N`` fans out over N processes with identical result
aggregation (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.experiments.parallel import CaseJob, run_case_jobs, sweep_jobs
from repro.gen.suite import TABLE1A_DIMENSIONS
from repro.opt.strategy import OptimizationConfig


@dataclass(frozen=True)
class Table1Row:
    """One aggregated row: max/avg/min overhead (in %) of MXR over NFT."""

    label: str
    n_cases: int
    max_overhead: float
    avg_overhead: float
    min_overhead: float

    @classmethod
    def from_overheads(cls, label: str, overheads: Sequence[float]) -> "Table1Row":
        if not overheads:
            raise ValueError(f"row {label!r} has no measurements")
        return cls(
            label=label,
            n_cases=len(overheads),
            max_overhead=max(overheads),
            avg_overhead=sum(overheads) / len(overheads),
            min_overhead=min(overheads),
        )


def table1a(
    seeds: Sequence[int] = (0, 1, 2),
    dimensions: Sequence[tuple[int, int, int]] = TABLE1A_DIMENSIONS,
    mu: float = 5.0,
    time_scale: float = 1.0,
    progress: Callable[[str], None] | None = None,
    jobs: int = 1,
    config: OptimizationConfig | None = None,
    broker=None,
    resume: bool = False,
) -> list[Table1Row]:
    """Overhead versus application size (paper Table 1a)."""
    job_list = sweep_jobs(
        dimensions, seeds, ("NFT", "MXR"), mu, time_scale, config, tag="table1a"
    )
    results = run_case_jobs(
        job_list, n_jobs=jobs, progress=progress, broker=broker,
        resume=resume,
    )

    rows: list[Table1Row] = []
    index = 0
    for n_processes, _, _ in dimensions:
        overheads: list[float] = []
        for _ in seeds:
            runs = results[index]
            index += 1
            overheads.append(runs["MXR"].overhead_vs(runs["NFT"]))
        rows.append(Table1Row.from_overheads(f"{n_processes} procs", overheads))
    return rows


def _reference_jobs(
    seeds: Sequence[int],
    n_processes: int,
    n_nodes: int,
    k: int,
    mu: float,
    time_scale: float,
    config: OptimizationConfig | None,
    tag: str,
) -> list[CaseJob]:
    """NFT reference jobs (the baseline does not depend on the swept axis)."""
    return [
        CaseJob(
            n_processes=n_processes,
            n_nodes=n_nodes,
            k=k,
            mu=mu,
            seed=seed,
            variants=("NFT",),
            time_scale=time_scale,
            config=config,
            label=f"{tag} NFT reference seed {seed}",
        )
        for seed in seeds
    ]


def table1b(
    seeds: Sequence[int] = (0, 1, 2),
    fault_counts: Sequence[int] = (2, 4, 6, 8, 10),
    n_processes: int = 60,
    n_nodes: int = 4,
    mu: float = 5.0,
    time_scale: float = 1.0,
    progress: Callable[[str], None] | None = None,
    jobs: int = 1,
    config: OptimizationConfig | None = None,
    broker=None,
    resume: bool = False,
) -> list[Table1Row]:
    """Overhead versus number of faults k (paper Table 1b).

    NFT does not depend on k, so its schedule is derived once per seed; the
    reference jobs fan out together with the MXR sweep jobs.
    """
    ref_jobs = _reference_jobs(
        seeds, n_processes, n_nodes, 1, mu, time_scale, config, "table1b"
    )
    mxr_jobs = [
        CaseJob(
            n_processes=n_processes,
            n_nodes=n_nodes,
            k=k,
            mu=mu,
            seed=seed,
            variants=("MXR",),
            time_scale=time_scale,
            config=config,
            label=f"table1b k={k} seed {seed}",
        )
        for k in fault_counts
        for seed in seeds
    ]
    results = run_case_jobs(
        ref_jobs + mxr_jobs, n_jobs=jobs, progress=progress, broker=broker,
        resume=resume,
    )
    reference = {
        seed: results[i]["NFT"].makespan for i, seed in enumerate(seeds)
    }

    rows: list[Table1Row] = []
    index = len(seeds)
    for k in fault_counts:
        overheads: list[float] = []
        for seed in seeds:
            makespan = results[index]["MXR"].makespan
            index += 1
            overhead = 100.0 * (makespan - reference[seed]) / reference[seed]
            overheads.append(overhead)
        rows.append(Table1Row.from_overheads(f"k = {k}", overheads))
    return rows


def table1c(
    seeds: Sequence[int] = (0, 1, 2),
    fault_durations: Sequence[float] = (1.0, 5.0, 10.0, 15.0, 20.0),
    n_processes: int = 20,
    n_nodes: int = 2,
    k: int = 3,
    time_scale: float = 1.0,
    progress: Callable[[str], None] | None = None,
    jobs: int = 1,
    config: OptimizationConfig | None = None,
    broker=None,
    resume: bool = False,
) -> list[Table1Row]:
    """Overhead versus fault duration µ (paper Table 1c)."""
    ref_jobs = _reference_jobs(
        seeds, n_processes, n_nodes, k, 5.0, time_scale, config, "table1c"
    )
    mxr_jobs = [
        CaseJob(
            n_processes=n_processes,
            n_nodes=n_nodes,
            k=k,
            mu=mu,
            seed=seed,
            variants=("MXR",),
            time_scale=time_scale,
            config=config,
            label=f"table1c mu={mu:g} seed {seed}",
        )
        for mu in fault_durations
        for seed in seeds
    ]
    results = run_case_jobs(
        ref_jobs + mxr_jobs, n_jobs=jobs, progress=progress, broker=broker,
        resume=resume,
    )
    reference = {
        seed: results[i]["NFT"].makespan for i, seed in enumerate(seeds)
    }

    rows: list[Table1Row] = []
    index = len(seeds)
    for mu in fault_durations:
        overheads: list[float] = []
        for seed in seeds:
            makespan = results[index]["MXR"].makespan
            index += 1
            overhead = 100.0 * (makespan - reference[seed]) / reference[seed]
            overheads.append(overhead)
        rows.append(Table1Row.from_overheads(f"mu = {mu:g} ms", overheads))
    return rows
