"""Table 1: fault-tolerance overheads of MXR versus NFT (paper §6).

Three sweeps share one measurement: the percent overhead
``100 * (δ_MXR − δ_NFT) / δ_NFT`` aggregated as max/avg/min over the random
applications of one dimension.

* Table 1a — application size sweep (20..100 processes on 2..6 nodes,
  k = 3..7, µ = 5 ms);
* Table 1b — fault count sweep (60 processes, 4 nodes, k ∈ {2,4,6,8,10});
* Table 1c — fault duration sweep (20 processes, 2 nodes, k = 3,
  µ ∈ {1,5,10,15,20} ms).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.gen.suite import TABLE1A_DIMENSIONS, generate_case
from repro.experiments.runner import budget_for, run_variants


@dataclass(frozen=True)
class Table1Row:
    """One aggregated row: max/avg/min overhead (in %) of MXR over NFT."""

    label: str
    n_cases: int
    max_overhead: float
    avg_overhead: float
    min_overhead: float

    @classmethod
    def from_overheads(cls, label: str, overheads: Sequence[float]) -> "Table1Row":
        if not overheads:
            raise ValueError(f"row {label!r} has no measurements")
        return cls(
            label=label,
            n_cases=len(overheads),
            max_overhead=max(overheads),
            avg_overhead=sum(overheads) / len(overheads),
            min_overhead=min(overheads),
        )


def table1a(
    seeds: Sequence[int] = (0, 1, 2),
    dimensions: Sequence[tuple[int, int, int]] = TABLE1A_DIMENSIONS,
    mu: float = 5.0,
    time_scale: float = 1.0,
    progress: Callable[[str], None] | None = None,
) -> list[Table1Row]:
    """Overhead versus application size (paper Table 1a)."""
    rows: list[Table1Row] = []
    for n_processes, n_nodes, k in dimensions:
        overheads: list[float] = []
        for seed in seeds:
            case = generate_case(n_processes, n_nodes, k, mu=mu, seed=seed)
            runs = run_variants(case, ("NFT", "MXR"), time_scale=time_scale)
            overheads.append(runs["MXR"].overhead_vs(runs["NFT"]))
            if progress is not None:
                progress(
                    f"table1a {n_processes}p seed {seed}: "
                    f"overhead {overheads[-1]:.1f}%"
                )
        rows.append(Table1Row.from_overheads(f"{n_processes} procs", overheads))
    return rows


def table1b(
    seeds: Sequence[int] = (0, 1, 2),
    fault_counts: Sequence[int] = (2, 4, 6, 8, 10),
    n_processes: int = 60,
    n_nodes: int = 4,
    mu: float = 5.0,
    time_scale: float = 1.0,
    progress: Callable[[str], None] | None = None,
) -> list[Table1Row]:
    """Overhead versus number of faults k (paper Table 1b).

    NFT does not depend on k, so its schedule is derived once per seed.
    """
    reference: dict[int, float] = {}
    for seed in seeds:
        case = generate_case(n_processes, n_nodes, k=1, mu=mu, seed=seed)
        runs = run_variants(case, ("NFT",), time_scale=time_scale)
        reference[seed] = runs["NFT"].makespan

    rows: list[Table1Row] = []
    for k in fault_counts:
        overheads: list[float] = []
        for seed in seeds:
            case = generate_case(n_processes, n_nodes, k=k, mu=mu, seed=seed)
            runs = run_variants(case, ("MXR",), time_scale=time_scale)
            overhead = 100.0 * (runs["MXR"].makespan - reference[seed]) / reference[seed]
            overheads.append(overhead)
            if progress is not None:
                progress(f"table1b k={k} seed {seed}: overhead {overhead:.1f}%")
        rows.append(Table1Row.from_overheads(f"k = {k}", overheads))
    return rows


def table1c(
    seeds: Sequence[int] = (0, 1, 2),
    fault_durations: Sequence[float] = (1.0, 5.0, 10.0, 15.0, 20.0),
    n_processes: int = 20,
    n_nodes: int = 2,
    k: int = 3,
    time_scale: float = 1.0,
    progress: Callable[[str], None] | None = None,
) -> list[Table1Row]:
    """Overhead versus fault duration µ (paper Table 1c)."""
    reference: dict[int, float] = {}
    for seed in seeds:
        case = generate_case(n_processes, n_nodes, k=k, mu=5.0, seed=seed)
        runs = run_variants(case, ("NFT",), time_scale=time_scale)
        reference[seed] = runs["NFT"].makespan

    rows: list[Table1Row] = []
    for mu in fault_durations:
        overheads: list[float] = []
        for seed in seeds:
            case = generate_case(n_processes, n_nodes, k=k, mu=mu, seed=seed)
            runs = run_variants(case, ("MXR",), time_scale=time_scale)
            overhead = 100.0 * (runs["MXR"].makespan - reference[seed]) / reference[seed]
            overheads.append(overhead)
            if progress is not None:
                progress(f"table1c mu={mu} seed {seed}: overhead {overhead:.1f}%")
        rows.append(Table1Row.from_overheads(f"mu = {mu:g} ms", overheads))
    return rows
