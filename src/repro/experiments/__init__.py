"""Experiment runners regenerating every table and figure of the paper (§6)."""

from repro.experiments.cruise import CruiseResult, run_cruise_experiment
from repro.experiments.figure10 import Figure10Row, figure10
from repro.experiments.parallel import CaseJob, run_case_job, run_case_jobs
from repro.experiments.runner import VariantRun, budget_for, run_variants
from repro.experiments.table1 import Table1Row, table1a, table1b, table1c

__all__ = [
    "CaseJob",
    "CruiseResult",
    "Figure10Row",
    "Table1Row",
    "VariantRun",
    "budget_for",
    "figure10",
    "run_case_job",
    "run_case_jobs",
    "run_cruise_experiment",
    "run_variants",
    "table1a",
    "table1b",
    "table1c",
]
