"""Parallel experiment fan-out over ``(case, variant, seed)`` jobs.

The Table 1 and Figure 10 sweeps optimize dozens of independent random
applications; nothing couples the jobs, so they fan out over a
:class:`~concurrent.futures.ProcessPoolExecutor`.  Jobs are described by
their *generation parameters* (not by the generated objects): each worker
regenerates its case from the deterministic seed, which keeps the job
payloads trivially picklable and guarantees the worker sees exactly the
case the serial path would have built.

Result ordering is deterministic: :func:`run_case_jobs` returns results in
submission order regardless of completion order, so aggregation code is
shared between the serial (``n_jobs == 1``) and parallel paths and both
produce identical tables (identical up to search-budget wall-clock effects;
pass a config without ``time_limit_s`` for bit-identical runs).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro import obs
from repro.errors import ConfigurationError, ExperimentJobError
from repro.experiments.runner import VariantRun, run_variants
from repro.obs.progress import ProgressReporter
from repro.gen.suite import generate_case
from repro.opt.strategy import OptimizationConfig


@dataclass(frozen=True)
class CaseJob:
    """One experiment job: optimize one generated case under some variants."""

    n_processes: int
    n_nodes: int
    k: int
    mu: float
    seed: int
    variants: tuple[str, ...]
    time_scale: float = 1.0
    config: OptimizationConfig | None = None
    label: str = ""

    def describe(self) -> str:
        if self.label:
            return self.label
        return (
            f"{self.n_processes}p/{self.n_nodes}n k={self.k} mu={self.mu:g} "
            f"seed {self.seed} [{','.join(self.variants)}]"
        )


def resolve_jobs(n_jobs: int) -> int:
    """Validate a ``--jobs`` worker count; ``-1`` means all CPUs.

    Raises :class:`ConfigurationError` for 0 and for negatives other than
    the all-CPUs sentinel, so both the CLI and programmatic callers reject
    nonsensical fan-outs before any work is submitted.
    """
    if n_jobs == -1:
        return os.cpu_count() or 1
    if n_jobs < 1:
        raise ConfigurationError(
            f"n_jobs must be >= 1 (or -1 for all CPUs), got {n_jobs}"
        )
    return n_jobs


def run_case_job(
    job: CaseJob, validate_samples: int | None = None
) -> dict[str, VariantRun]:
    """Regenerate and optimize one job's case (executed in the worker)."""
    case = generate_case(
        job.n_processes, job.n_nodes, job.k, mu=job.mu, seed=job.seed
    )
    return run_variants(
        case,
        job.variants,
        time_scale=job.time_scale,
        config=job.config,
        validate_samples=validate_samples,
    )


def _timed_case_job(job: CaseJob) -> tuple[dict[str, VariantRun], float]:
    """Pool entry point: run one job and report its wall-clock alongside."""
    started = time.monotonic()
    result = run_case_job(job)
    return result, time.monotonic() - started


def run_case_jobs(
    jobs: Iterable[CaseJob],
    n_jobs: int = 1,
    progress: Callable[[str], None] | None = None,
    broker=None,
    resume: bool = False,
) -> list[dict[str, VariantRun]]:
    """Run every job and return results in submission order.

    ``n_jobs == 1`` executes in-process (the serial path of the CLI);
    ``n_jobs > 1`` fans out over a process pool; ``n_jobs == -1`` uses one
    worker per CPU.  Either way the result list aligns index-for-index with
    the input job list, and every :class:`VariantRun` carries the winning
    schedule's compact :class:`~repro.schedule.record.ScheduleRecord` —
    the IR is what makes the worker results cheap to pickle back.

    With ``broker`` set the sweep is driven through the distributed work
    queue instead of a process pool: jobs are enqueued as durable JSON
    payloads, ``n_jobs`` local worker processes (or threads, for the
    in-memory broker) are attached, and more workers may join from other
    machines via ``ftds worker --broker PATH``.  ``resume=True`` skips
    jobs the broker has already completed (see
    :func:`repro.queue.driver.run_sweep`).
    """
    job_list = list(jobs)
    n_jobs = resolve_jobs(n_jobs)
    if broker is not None:
        from repro.queue.driver import run_sweep

        results, _ = run_sweep(
            job_list,
            broker,
            resume=resume,
            local_workers=n_jobs,
            progress=progress,
        )
        return results
    if n_jobs == 1 or len(job_list) <= 1:
        results: list[dict[str, VariantRun]] = []
        reporter = ProgressReporter(
            progress, len(job_list), metric="experiments.jobs"
        )
        for job in job_list:
            started = time.monotonic()
            with obs.span("case", label=job.describe()):
                results.append(run_case_job(job))
            reporter.step(
                job.describe(), elapsed_s=time.monotonic() - started
            )
        return results

    slots: list[dict[str, VariantRun] | None] = [None] * len(job_list)
    reporter = ProgressReporter(
        progress, len(job_list), metric="experiments.jobs"
    )
    workers = min(n_jobs, len(job_list))
    done = 0
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = {
            pool.submit(_timed_case_job, job): index
            for index, job in enumerate(job_list)
        }
        for future in as_completed(futures):
            index = futures[future]
            try:
                slots[index], elapsed = future.result()
            except Exception as error:
                raise ExperimentJobError(
                    f"experiment job failed: {job_list[index].describe()}"
                ) from error
            done += 1
            reporter.step(job_list[index].describe(), elapsed_s=elapsed)
    # Aggregators consume results positionally: fail loudly rather than
    # silently shifting rows if a slot were ever left unfilled.
    missing = [i for i, result in enumerate(slots) if result is None]
    if missing:
        raise RuntimeError(f"jobs {missing} completed without a result")
    return slots  # type: ignore[return-value]


def sweep_jobs(
    dimensions: Sequence[tuple[int, int, int]],
    seeds: Sequence[int],
    variants: tuple[str, ...],
    mu: float,
    time_scale: float,
    config: OptimizationConfig | None = None,
    tag: str = "",
) -> list[CaseJob]:
    """The job list of one ``(dimensions x seeds)`` sweep, one job per case."""
    return [
        CaseJob(
            n_processes=n_processes,
            n_nodes=n_nodes,
            k=k,
            mu=mu,
            seed=seed,
            variants=variants,
            time_scale=time_scale,
            config=config,
            label=f"{tag} {n_processes}p seed {seed}".strip(),
        )
        for n_processes, n_nodes, k in dimensions
        for seed in seeds
    ]
