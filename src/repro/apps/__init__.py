"""Real-life application models used in the paper's evaluation (§6)."""

from repro.apps.cruise_control import (
    CC_DEADLINE_MS,
    CC_FAULTS,
    cruise_control_application,
    cruise_control_architecture,
    cruise_control_case,
)

__all__ = [
    "CC_DEADLINE_MS",
    "CC_FAULTS",
    "cruise_control_application",
    "cruise_control_architecture",
    "cruise_control_case",
]
