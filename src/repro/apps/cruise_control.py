"""Vehicle cruise controller case study (paper §6, model from [18]).

The paper's CC application has 32 processes mapped on three nodes — the
Electronic Throttle Module (ETM), the Anti-lock Braking System (ABS) and the
Transmission Control Module (TCM) — with a deadline of 250 ms and a fault
model of k = 2, µ = 2 ms.

The original process graph lives in Pop's PhD thesis [18], which is not
reproduced in the paper; this module rebuilds a structurally faithful CC:
wheel-speed/driver sensing on the ABS and ETM, filtering and fusion, the
cruise control law, gear/throttle actuation and a diagnostic branch — 32
processes in sensor → filter → fusion → control → actuation chains with the
sensor/actuator processes pinned to their host units (the paper's set
``P_M``).  WCETs are scaled so the non-fault-tolerant makespan lands near
the paper's implied ~139 ms (229 ms at 65% overhead), preserving the
qualitative result: MXR meets the deadline while MX and MR miss it.
"""

from __future__ import annotations

from repro.model.application import Application, Process, ProcessGraph
from repro.model.architecture import Architecture, Node
from repro.model.fault import FaultModel

CC_DEADLINE_MS = 250.0
CC_FAULTS = FaultModel(k=2, mu=2.0)

ETM = "ETM"
ABS = "ABS"
TCM = "TCM"


def cruise_control_architecture() -> Architecture:
    """ETM + ABS + TCM sharing one TTP bus."""
    return Architecture(
        nodes=[
            Node(ETM, description="Electronic Throttle Module"),
            Node(ABS, description="Anti-lock Braking System"),
            Node(TCM, description="Transmission Control Module"),
        ],
        name="cruise-control",
    )


def _wcet(etm: float, abs_: float, tcm: float) -> dict[str, float]:
    return {ETM: etm, ABS: abs_, TCM: tcm}


def cruise_control_application(deadline: float = CC_DEADLINE_MS) -> Application:
    """The 32-process cruise controller graph."""
    graph = ProcessGraph("cruise_control", deadline=deadline)

    def sensor(name: str, node: str, wcet: float) -> None:
        graph.add_process(
            Process(name=name, wcet={node: wcet}, fixed_node=node)
        )

    def proc(name: str, etm: float, abs_: float, tcm: float) -> None:
        graph.add_process(Process(name=name, wcet=_wcet(etm, abs_, tcm)))

    def actuator(name: str, node: str, wcet: float) -> None:
        graph.add_process(
            Process(name=name, wcet={node: wcet}, fixed_node=node)
        )

    # --- sensing (pinned to the unit owning the transducer) -------------
    sensor("s_wheel_fl", ABS, 6.0)
    sensor("s_wheel_fr", ABS, 6.0)
    sensor("s_wheel_rl", ABS, 6.0)
    sensor("s_wheel_rr", ABS, 6.0)
    sensor("s_brake_pedal", ABS, 5.0)
    sensor("s_throttle_pos", ETM, 6.0)
    sensor("s_accel_pedal", ETM, 6.0)
    sensor("s_cc_buttons", ETM, 5.0)
    sensor("s_engine_rpm", TCM, 6.0)
    sensor("s_gear_pos", TCM, 5.0)

    # --- filtering / preprocessing (free to map) -------------------------
    proc("f_throttle", 9.0, 12.0, 12.0)
    proc("f_pedal", 9.0, 12.0, 12.0)
    proc("f_rpm", 12.0, 12.0, 9.0)
    proc("f_buttons", 8.0, 10.0, 10.0)

    # --- wheel filtering and state estimation ----------------------------
    # These stages consume ABS-owned wheel data and are markedly cheaper
    # there (the thesis model keeps sensor fusion close to its data).
    proc("f_wheel_front", 20.16, 11.76, 18.48)
    proc("f_wheel_rear", 20.16, 11.76, 18.48)
    proc("vehicle_speed", 23.52, 13.72, 21.56)
    proc("accel_estimate", 20.16, 11.76, 18.48)
    proc("brake_monitor", 16.8, 9.8, 15.4)

    # --- control laws ------------------------------------------------------
    # The control stage drives the throttle and is cheapest on the ETM,
    # which forces the critical path to cross the bus mid-chain — the
    # situation where combining replication with re-execution pays off.
    proc("target_speed", 12.74, 21.84, 20.02)
    proc("cc_mode_logic", 9.8, 16.8, 15.4)
    proc("pi_controller", 14.7, 25.2, 23.1)
    proc("feedforward", 13.72, 23.52, 21.56)
    proc("throttle_setpoint", 12.74, 21.84, 20.02)
    proc("gear_supervisor", 13.0, 13.0, 10.0)
    proc("limit_checker", 10.78, 18.48, 16.94)

    # --- actuation / output (pinned) --------------------------------------
    actuator("a_throttle", ETM, 8.0)
    actuator("a_gear_shift", TCM, 8.0)
    actuator("a_display", ETM, 6.0)

    # --- diagnostics --------------------------------------------------------
    proc("watchdog", 7.0, 7.0, 7.0)
    proc("fault_logger", 8.0, 8.0, 8.0)
    proc("diag_report", 9.0, 9.0, 9.0)

    # --- data flow -----------------------------------------------------------
    connect = graph.connect
    connect("s_wheel_fl", "f_wheel_front", size=2)
    connect("s_wheel_fr", "f_wheel_front", size=2)
    connect("s_wheel_rl", "f_wheel_rear", size=2)
    connect("s_wheel_rr", "f_wheel_rear", size=2)
    connect("f_wheel_front", "vehicle_speed", size=2)
    connect("f_wheel_rear", "vehicle_speed", size=2)
    connect("s_throttle_pos", "f_throttle", size=2)
    connect("s_accel_pedal", "f_pedal", size=2)
    connect("s_engine_rpm", "f_rpm", size=2)
    connect("s_cc_buttons", "f_buttons", size=1)
    connect("vehicle_speed", "accel_estimate", size=2)
    connect("f_buttons", "target_speed", size=1)
    connect("vehicle_speed", "target_speed", size=2)
    connect("s_brake_pedal", "brake_monitor", size=1)
    connect("brake_monitor", "cc_mode_logic", size=1)
    connect("f_pedal", "cc_mode_logic", size=2)
    connect("target_speed", "pi_controller", size=2)
    connect("accel_estimate", "pi_controller", size=2)
    connect("cc_mode_logic", "pi_controller", size=1)
    connect("f_rpm", "feedforward", size=2)
    connect("s_gear_pos", "feedforward", size=1)
    connect("pi_controller", "throttle_setpoint", size=2)
    connect("feedforward", "throttle_setpoint", size=2)
    connect("f_throttle", "throttle_setpoint", size=2)
    connect("f_rpm", "gear_supervisor", size=2)
    connect("vehicle_speed", "gear_supervisor", size=2)
    connect("throttle_setpoint", "limit_checker", size=2)
    connect("limit_checker", "a_throttle", size=2)
    connect("gear_supervisor", "a_gear_shift", size=2)
    connect("cc_mode_logic", "a_display", size=1)
    connect("limit_checker", "a_display", size=1)
    connect("s_brake_pedal", "watchdog", size=1)
    connect("watchdog", "fault_logger", size=1)
    connect("limit_checker", "fault_logger", size=1)
    connect("fault_logger", "diag_report", size=1)

    application = Application([graph], name="cruise_control")
    application.validate()
    if len(graph) != 32:
        raise AssertionError(f"CC must have 32 processes, has {len(graph)}")
    return application


def cruise_control_case(
    deadline: float = CC_DEADLINE_MS,
) -> tuple[Application, Architecture, FaultModel]:
    """Application, architecture and fault model of the CC experiment."""
    return (
        cruise_control_application(deadline),
        cruise_control_architecture(),
        CC_FAULTS,
    )
