#!/usr/bin/env python3
"""Re-execution vs replication vs combining — the paper's Figures 2-4.

This example schedules the same workloads under different fault-tolerance
policies with *fixed* mappings, so the timing effects are directly visible:

* Fig. 2 — worst-case completion of one process under the three policies;
* Fig. 3 — neither policy dominates: it depends on the application;
* Fig. 4 — combining both policies beats either one alone.

Run:  python examples/policy_tradeoffs.py
"""

from repro import FaultModel, Policy
from repro.model.application import Application, Process, ProcessGraph
from repro.model.mapping import ReplicaMapping
from repro.model.merge import merge_application
from repro.model.policy import PolicyAssignment
from repro.schedule.list_scheduler import list_schedule
from repro.ttp.bus import BusConfig

BUS2 = BusConfig(("N1", "N2"), {"N1": 10.0, "N2": 10.0}, ms_per_byte=5.0)
BUS3 = BusConfig.minimal(("N1", "N2", "N3"), 4)


def schedule(graph, faults, policies, mapping, bus):
    merged = merge_application(Application([graph]))
    replica_mapping = ReplicaMapping()
    for name, nodes in mapping.items():
        replica_mapping.assign(name, nodes)
    return list_schedule(
        merged, faults, PolicyAssignment(policies), replica_mapping, bus
    )


def figure2() -> None:
    print("=== Fig. 2: one process (C=30), k=2, mu=10 ===")
    faults = FaultModel(k=2, mu=10.0)

    def one_process():
        g = ProcessGraph("fig2")
        g.add_process(Process("P1", {"N1": 30.0, "N2": 30.0, "N3": 30.0}))
        return g

    cases = [
        ("re-execution (a)", Policy.reexecution(2), ("N1",)),
        ("replication (b)", Policy.replication(2), ("N1", "N2", "N3")),
        ("re-executed replicas (c)", Policy.combined(2, 2), ("N1", "N2")),
    ]
    for label, policy, nodes in cases:
        s = schedule(one_process(), faults, {"P1": policy}, {"P1": nodes}, BUS3)
        print(f"  {label:<26} worst-case completion {s.completions['P1']:6.1f} ms")
    print()


def figure3() -> None:
    print("=== Fig. 3: the best policy depends on the application ===")
    faults = FaultModel(k=1, mu=10.0)

    # A1: parallel load, N2 much slower -> re-execution wins.
    def a1():
        g = ProcessGraph("a1")
        for name in ("P1", "P2"):
            g.add_process(Process(name, {"N1": 40.0, "N2": 110.0}))
        g.add_process(Process("P3", {"N1": 50.0, "N2": 140.0}))
        g.connect("P1", "P3")
        g.connect("P2", "P3")
        return g

    rex = schedule(
        a1(), faults,
        {n: Policy.reexecution(1) for n in ("P1", "P2", "P3")},
        {"P1": ("N1",), "P2": ("N1",), "P3": ("N1",)}, BUS2,
    )
    rep = schedule(
        a1(), faults,
        {n: Policy.replication(1) for n in ("P1", "P2", "P3")},
        {"P1": ("N1", "N2"), "P2": ("N1", "N2"), "P3": ("N1", "N2")}, BUS2,
    )
    print(f"  A1: re-execution {rex.makespan:6.1f} ms  <  replication {rep.makespan:6.1f} ms")

    # A2: chain forced across nodes -> replication wins (k=2 amplifies).
    k2 = FaultModel(k=2, mu=10.0)

    def a2():
        g = ProcessGraph("a2")
        g.add_process(Process("P1", {"N1": 40.0, "N2": 40.0}))
        g.add_process(Process("P2", {"N1": 40.0, "N2": 40.0}))
        g.connect("P1", "P2")
        return g

    rex = schedule(
        a2(), k2,
        {"P1": Policy.reexecution(2), "P2": Policy.reexecution(2)},
        {"P1": ("N1",), "P2": ("N2",)}, BUS2,
    )
    rep = schedule(
        a2(), k2,
        {"P1": Policy.replication(2), "P2": Policy.reexecution(2)},
        {"P1": ("N1", "N2", "N1"), "P2": ("N2",)}, BUS2,
    )
    print(f"  A2: replication  {rep.makespan:6.1f} ms  <  re-execution {rex.makespan:6.1f} ms")
    print()


def figure4() -> None:
    print("=== Fig. 4: combining re-execution and replication ===")
    faults = FaultModel(k=1, mu=10.0)

    def graph():
        g = ProcessGraph("fig4")
        g.add_process(Process("P1", {"N1": 40.0, "N2": 50.0}))
        g.add_process(Process("P2", {"N1": 60.0, "N2": 60.0}))
        g.add_process(Process("P3", {"N1": 80.0, "N2": 80.0}))
        g.add_process(Process("P4", {"N1": 40.0, "N2": 50.0}))
        g.connect("P1", "P2")
        g.connect("P1", "P3")
        g.connect("P2", "P4")
        return g

    rex = schedule(
        graph(), faults,
        {n: Policy.reexecution(1) for n in ("P1", "P2", "P3", "P4")},
        {"P1": ("N2",), "P2": ("N1",), "P3": ("N2",), "P4": ("N1",)}, BUS2,
    )
    mix = schedule(
        graph(), faults,
        {
            "P1": Policy.replication(1),
            "P2": Policy.reexecution(1),
            "P3": Policy.reexecution(1),
            "P4": Policy.reexecution(1),
        },
        {"P1": ("N1", "N2"), "P2": ("N1",), "P3": ("N2",), "P4": ("N1",)}, BUS2,
    )
    print(f"  all re-executed:   {rex.makespan:6.1f} ms")
    print(f"  P1 replicated:     {mix.makespan:6.1f} ms   (combining wins)")
    print()


if __name__ == "__main__":
    figure2()
    figure3()
    figure4()
