#!/usr/bin/env python3
"""Sweep the fault model: how do k and µ shape the fault-tolerance cost?

Reproduces the trends of Tables 1b and 1c on a single 20-process
application: the overhead of the optimized fault-tolerant implementation
(MXR vs NFT) grows steeply with the number of faults k and gently with the
fault duration µ.  Prints a small ASCII chart per sweep.

Run:  python examples/design_space_sweep.py
"""

from repro.gen.suite import generate_case
from repro.opt.strategy import OptimizationConfig, optimize

CONFIG = OptimizationConfig(minimize=True, rounds=2, tabu_max_iterations=12)


def overhead_for(k: int, mu: float, seed: int = 2) -> float:
    case = generate_case(20, 2, k, mu=mu, seed=seed)
    nft = optimize(case.application, case.architecture, case.faults, "NFT", CONFIG)
    mxr = optimize(case.application, case.architecture, case.faults, "MXR", CONFIG)
    return 100.0 * (mxr.makespan - nft.makespan) / nft.makespan


def bar(value: float, scale: float = 2.5) -> str:
    return "#" * max(1, round(value / scale))


def main() -> None:
    print("sweep 1: overhead vs number of faults k (mu = 5 ms)")
    for k in (1, 2, 3, 4, 5):
        overhead = overhead_for(k, mu=5.0)
        print(f"  k={k}:  {overhead:6.1f}%  {bar(overhead)}")

    print("\nsweep 2: overhead vs fault duration mu (k = 2)")
    for mu in (1.0, 5.0, 10.0, 15.0, 20.0):
        overhead = overhead_for(2, mu=mu)
        print(f"  mu={mu:4.0f}: {overhead:6.1f}%  {bar(overhead)}")

    print(
        "\npaper: overhead rises sharply with k (Table 1b: 33% -> 220%)"
        "\n       and gently with mu (Table 1c: 57% -> 125%)"
    )


if __name__ == "__main__":
    main()
