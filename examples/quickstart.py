#!/usr/bin/env python3
"""Quickstart: build a small application, optimize it, inspect the schedule.

A four-process signal chain is mapped on two nodes connected by a TTP bus.
The optimizer decides mapping and fault-tolerance policies so that k = 1
transient fault (µ = 5 ms recovery) is tolerated and the 400 ms deadline is
guaranteed in the worst case.

Run:  python examples/quickstart.py
"""

from repro import (
    Application,
    Architecture,
    FaultModel,
    Node,
    Process,
    ProcessGraph,
    optimize,
    validate_schedule,
)


def build_application() -> Application:
    graph = ProcessGraph("sensor_chain", deadline=400.0)
    graph.add_process(Process("sample", {"N1": 40.0, "N2": 50.0}))
    graph.add_process(Process("filter", {"N1": 60.0, "N2": 75.0}))
    graph.add_process(Process("control", {"N1": 55.0, "N2": 60.0}))
    graph.add_process(Process("actuate", {"N1": 30.0, "N2": 35.0}))
    graph.connect("sample", "filter", size=2)
    graph.connect("filter", "control", size=2)
    graph.connect("control", "actuate", size=1)
    return Application([graph])


def main() -> None:
    application = build_application()
    architecture = Architecture([Node("N1"), Node("N2")])
    faults = FaultModel(k=1, mu=5.0)

    result = optimize(application, architecture, faults, variant="MXR")

    print(f"schedulable: {result.is_schedulable}")
    print(f"worst-case schedule length: {result.makespan:.1f} ms\n")
    print("policies:")
    for process, policy in result.implementation.policies.items():
        nodes = result.implementation.mapping[process]
        print(f"  {process:<10} {policy.describe():<14} on {', '.join(nodes)}")
    print()
    print(result.schedule.format_tables())

    # Check the synthesized schedule by exhaustive fault injection.
    report = validate_schedule(result.schedule)
    print(f"\nfault injection: {report.summary()}")


if __name__ == "__main__":
    main()
