#!/usr/bin/env python3
"""Watch a synthesized schedule execute under injected transient faults.

The script optimizes a random 12-process application (k = 2, µ = 5 ms),
then replays one operation cycle under a few hand-picked fault scenarios,
printing what each node kernel actually did — re-executions sliding into
recovery slack, replicas failing over, frames missing their TDMA slots —
and finally validates the schedule against every scenario of up to k
faults.

Run:  python examples/fault_injection.py
"""

from repro.gen.suite import generate_case
from repro.opt.strategy import OptimizationConfig, optimize
from repro.sim.engine import SystemSimulator
from repro.sim.faults import FAULT_FREE, FaultScenario, adversarial_scenarios
from repro.sim.validate import validate_schedule


def describe_run(simulator, scenario) -> None:
    result = simulator.run(scenario)
    print(f"--- scenario: {scenario.describe()} ---")
    for iid in simulator.schedule.order:
        record = result.executions.get(iid)
        if record is None:
            print(f"  {iid:<12} STARVED")
            continue
        placed = simulator.schedule.placements[iid]
        status = "ok" if record.produced else "DEAD"
        shift = record.finish - placed.root_finish
        note = f"  (+{shift:.0f} ms vs fault-free)" if shift > 1e-6 else ""
        print(
            f"  {iid:<12} start {record.start:7.1f}  finish {record.finish:7.1f}"
            f"  attempts {record.attempts}  {status}{note}"
        )
    worst = max(result.completions.values())
    bound = simulator.schedule.makespan
    print(f"  cycle completed at {worst:.1f} ms (analytical bound {bound:.1f} ms)\n")


def main() -> None:
    case = generate_case(12, 2, 2, mu=5.0, seed=11)
    config = OptimizationConfig(minimize=True, rounds=2, tabu_max_iterations=10)
    result = optimize(case.application, case.architecture, case.faults, "MXR", config)
    print(
        f"optimized 12 processes / 2 nodes, k=2, mu=5 ms -> "
        f"schedule length {result.makespan:.1f} ms\n"
    )

    simulator = SystemSimulator(result.schedule)
    describe_run(simulator, FAULT_FREE)

    # Hit the process with the largest WCET twice (worst time redundancy).
    heaviest = max(
        result.schedule.placements.values(), key=lambda p: p.root_finish - p.root_start
    )
    describe_run(simulator, FaultScenario({heaviest.instance_id: 2}))

    # A directed adversarial scenario from the generator.
    for scenario in adversarial_scenarios(result.schedule.ft, 2)[:2]:
        if scenario.total_faults:
            describe_run(simulator, scenario)
            break

    report = validate_schedule(result.schedule, samples=300)
    print(f"validation across scenarios: {report.summary()}")


if __name__ == "__main__":
    main()
