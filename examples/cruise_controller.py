#!/usr/bin/env python3
"""The paper's real-life example: a vehicle cruise controller (§6).

32 processes on three automotive units (ETM, ABS, TCM), deadline 250 ms,
fault model k = 2, µ = 2 ms.  The script optimizes the CC under all five
strategy variants and prints the verdict table of the paper's last
experiment: only the combined strategy (MXR) meets the deadline.

Run:  python examples/cruise_controller.py          (full experiment, ~30 s)
      python examples/cruise_controller.py --fast   (reduced search budget)
"""

import sys

from repro.apps.cruise_control import cruise_control_case
from repro.experiments.cruise import cruise_config, run_cruise_experiment
from repro.experiments.reporting import format_cruise
from repro.opt.strategy import OptimizationConfig, optimize
from repro.sim.validate import validate_schedule


def main() -> None:
    fast = "--fast" in sys.argv

    config = cruise_config()
    if fast:
        config = OptimizationConfig(
            minimize=True, ms_per_byte=2.0, rounds=2, tabu_max_iterations=10
        )

    result = run_cruise_experiment(config=config)
    print(format_cruise(result))
    print(
        "\npaper reference: MXR 229 ms (meets, 65% overhead), "
        "MX 253 ms and MR 301 ms (both miss)"
    )

    # Re-derive the MXR implementation and fault-inject it.
    application, architecture, faults = cruise_control_case()
    mxr = optimize(application, architecture, faults, "MXR", config)
    report = validate_schedule(mxr.schedule, samples=150)
    print(f"\nMXR schedule under fault injection: {report.summary()}")

    print("\nMXR policy assignment (replicated processes):")
    for process, policy in mxr.implementation.policies.items():
        if policy.n_replicas > 1:
            nodes = mxr.implementation.mapping[process]
            print(f"  {process:<18} {policy.describe():<14} on {', '.join(nodes)}")


if __name__ == "__main__":
    main()
