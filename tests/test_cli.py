"""Smoke tests for the ftds command-line interface."""

import argparse
import os

import pytest

from repro.cli import _jobs_arg, main


class TestCLI:
    def test_requires_subcommand(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_validate_small_case(self, capsys):
        code = main(
            [
                "validate",
                "--processes", "8",
                "--nodes", "2",
                "--k", "2",
                "--samples", "30",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "schedule length" in out
        assert "PASS" in out

    def test_help_lists_subcommands(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        for sub in (
            "table1a",
            "table1b",
            "table1c",
            "figure10",
            "cc",
            "validate",
            "gantt",
            "export",
        ):
            assert sub in out

    def test_gantt_small_case(self, capsys):
        code = main(["gantt", "--processes", "6", "--nodes", "2", "--k", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "schedule length" in out
        assert "N1" in out

    def test_jobs_zero_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["table1a", "--jobs", "0"])
        assert excinfo.value.code == 2  # argparse usage error
        assert "-1 for all CPUs" in capsys.readouterr().err

    def test_jobs_negative_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["figure10", "--jobs", "-3"])
        assert excinfo.value.code == 2
        assert "n_jobs" in capsys.readouterr().err

    def test_jobs_non_integer_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["table1a", "--jobs", "many"])
        assert "invalid" in capsys.readouterr().err

    def test_jobs_minus_one_resolves_to_all_cpus(self):
        assert _jobs_arg("-1") == (os.cpu_count() or 1)
        assert _jobs_arg("4") == 4
        with pytest.raises(argparse.ArgumentTypeError):
            _jobs_arg("0")

    def test_export_round_trips(self, tmp_path, capsys):
        target = tmp_path / "case.json"
        code = main(
            ["export", str(target), "--processes", "6", "--nodes", "2", "--k", "1"]
        )
        assert code == 0
        from repro.io.json_codec import load_case

        app, arch, faults, impl = load_case(target)
        assert impl is not None
        assert len(app.graphs[0]) == 6
