"""Unit and property tests for the workload generators (paper §6)."""

import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.gen.chains import chain_groups_structure
from repro.gen.params import assign_message_sizes, assign_wcets
from repro.gen.random_dag import random_structure
from repro.gen.suite import TABLE1A_DIMENSIONS, generate_case, paper_suite
from repro.gen.trees import tree_structure


def _as_digraph(n, edges):
    g = nx.DiGraph()
    g.add_nodes_from(range(n))
    g.add_edges_from(edges)
    return g


@given(
    n=st.integers(min_value=1, max_value=60),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=40)
def test_random_structure_is_acyclic(n, seed):
    edges = random_structure(n, random.Random(seed))
    g = _as_digraph(n, edges)
    assert nx.is_directed_acyclic_graph(g)
    assert all(src < n and dst < n for src, dst in edges)


@given(
    n=st.integers(min_value=2, max_value=60),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=40)
def test_random_structure_every_nonroot_reachable(n, seed):
    edges = random_structure(n, random.Random(seed))
    g = _as_digraph(n, edges)
    roots = [v for v in g if g.in_degree(v) == 0]
    reachable = set(roots)
    for root in roots:
        reachable |= nx.descendants(g, root)
    assert reachable == set(range(n))


@given(
    n=st.integers(min_value=1, max_value=60),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=40)
def test_tree_structure_is_a_tree(n, seed):
    edges = tree_structure(n, random.Random(seed))
    g = _as_digraph(n, edges)
    assert nx.is_directed_acyclic_graph(g)
    assert g.number_of_edges() == n - 1
    # every non-root has exactly one parent
    assert all(g.in_degree(v) == 1 for v in range(1, n))


@given(
    n=st.integers(min_value=1, max_value=60),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=40)
def test_chain_groups_acyclic_and_bounded(n, seed):
    edges = chain_groups_structure(n, random.Random(seed))
    g = _as_digraph(n, edges)
    assert nx.is_directed_acyclic_graph(g)
    assert set(g) == set(range(n))


class TestParams:
    def test_wcets_within_range(self):
        rng = random.Random(0)
        for dist in ("uniform", "exponential"):
            tables = assign_wcets(50, ("N1", "N2"), rng, dist)
            for table in tables:
                for value in table.values():
                    assert 10.0 <= value <= 100.0

    def test_unknown_distribution_rejected(self):
        with pytest.raises(ModelError):
            assign_wcets(1, ("N1",), random.Random(0), "gaussian")

    def test_message_sizes_in_range(self):
        rng = random.Random(0)
        sizes = assign_message_sizes([(0, 1), (1, 2)], rng)
        assert all(1 <= s <= 4 for s in sizes.values())

    def test_invalid_ranges_rejected(self):
        with pytest.raises(ModelError):
            assign_wcets(1, ("N1",), random.Random(0), "uniform", (0.0, 5.0))
        with pytest.raises(ModelError):
            assign_message_sizes([(0, 1)], random.Random(0), (0, 3))


class TestGenerateCase:
    def test_paper_dimension_shape(self):
        case = generate_case(20, 2, 3, mu=5.0, seed=0)
        case.application.validate()
        assert case.n_processes == 20
        assert len(case.architecture) == 2
        assert case.faults.k == 3
        assert case.faults.mu == 5.0

    def test_deterministic_per_seed(self):
        a = generate_case(20, 2, 3, seed=4)
        b = generate_case(20, 2, 3, seed=4)
        ga, gb = a.application.graphs[0], b.application.graphs[0]
        assert {n: p.wcet for n, p in ga.processes.items()} == {
            n: p.wcet for n, p in gb.processes.items()
        }

    def test_workload_independent_of_fault_model(self):
        """Crucial for Table 1b/1c: k and mu must not change the graphs."""
        a = generate_case(20, 2, 2, mu=1.0, seed=4)
        b = generate_case(20, 2, 8, mu=20.0, seed=4)
        ga, gb = a.application.graphs[0], b.application.graphs[0]
        assert sorted(ga.messages) == sorted(gb.messages)
        assert {n: p.wcet for n, p in ga.processes.items()} == {
            n: p.wcet for n, p in gb.processes.items()
        }

    def test_structure_and_distribution_mix_over_seeds(self):
        structures = {generate_case(20, 2, 3, seed=s).structure for s in range(6)}
        assert structures == {"random", "tree", "chains"}
        distributions = {
            generate_case(20, 2, 3, seed=s).distribution for s in range(6)
        }
        assert distributions == {"uniform", "exponential"}

    def test_explicit_structure_respected(self):
        case = generate_case(15, 2, 3, seed=0, structure="tree")
        assert case.structure == "tree"
        graph = case.application.graphs[0]
        assert len(graph.messages) == 14  # tree: n-1 edges

    def test_paper_suite_dimensions(self):
        cases = list(paper_suite(seeds=(0,)))
        assert len(cases) == len(TABLE1A_DIMENSIONS)
        sizes = [c.n_processes for c in cases]
        assert sizes == [20, 40, 60, 80, 100]
