"""Unit and property tests for fault-tolerance policies (paper Fig. 2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.model.policy import Policy, PolicyAssignment


class TestPolicyConstructors:
    def test_reexecution_fig2a(self):
        p = Policy.reexecution(2)
        assert p.n_replicas == 1
        assert p.reexecutions == (2,)
        assert p.is_pure_reexecution
        assert not p.is_pure_replication
        assert p.total_executions == 3

    def test_replication_fig2b(self):
        p = Policy.replication(2)
        assert p.n_replicas == 3
        assert p.reexecutions == (0, 0, 0)
        assert p.is_pure_replication
        assert p.total_executions == 3

    def test_combined_fig2c(self):
        p = Policy.combined(2, k=2)
        assert p.n_replicas == 2
        assert p.reexecutions == (1, 0)  # P1/1 re-executed once, P1/2 plain
        assert not p.is_pure_reexecution
        assert not p.is_pure_replication

    def test_combined_degenerates_to_reexecution(self):
        assert Policy.combined(1, k=3) == Policy.reexecution(3)

    def test_combined_degenerates_to_replication(self):
        assert Policy.combined(4, k=3) == Policy.replication(3)

    def test_combined_rejects_too_many_replicas(self):
        with pytest.raises(ModelError):
            Policy.combined(5, k=3)

    def test_zero_replicas_rejected(self):
        with pytest.raises(ModelError):
            Policy(n_replicas=0, reexecutions=())

    def test_vector_length_mismatch_rejected(self):
        with pytest.raises(ModelError):
            Policy(n_replicas=2, reexecutions=(1,))

    def test_negative_reexecutions_rejected(self):
        with pytest.raises(ModelError):
            Policy(n_replicas=1, reexecutions=(-1,))


class TestPolicySemantics:
    def test_kill_cost(self):
        p = Policy.combined(2, k=2)
        assert p.kill_cost(0) == 2  # one re-execution + the original
        assert p.kill_cost(1) == 1

    def test_tolerates(self):
        assert Policy.reexecution(3).tolerates(3)
        assert not Policy.reexecution(2).tolerates(3)

    def test_validate_for_raises_on_insufficient(self):
        with pytest.raises(ModelError):
            Policy.reexecution(1).validate_for(2)

    def test_describe(self):
        assert Policy.reexecution(2).describe() == "X(e=2)"
        assert Policy.replication(2).describe() == "R(r=3)"
        assert Policy.combined(2, 2).describe().startswith("XR(")


@given(k=st.integers(min_value=0, max_value=12))
def test_reexecution_always_tolerates_k(k):
    Policy.reexecution(k).validate_for(k)


@given(k=st.integers(min_value=0, max_value=12))
def test_replication_always_tolerates_k(k):
    Policy.replication(k).validate_for(k)


@given(
    k=st.integers(min_value=0, max_value=12),
    data=st.data(),
)
def test_combined_exactly_k_plus_one_executions(k, data):
    """Every combined policy uses the minimal k+1 executions (no waste)."""
    r = data.draw(st.integers(min_value=1, max_value=k + 1))
    policy = Policy.combined(r, k)
    assert policy.total_executions == k + 1
    policy.validate_for(k)
    # Even distribution: counts differ by at most one.
    assert max(policy.reexecutions) - min(policy.reexecutions) <= 1


@given(
    k=st.integers(min_value=1, max_value=10),
    data=st.data(),
)
def test_kill_costs_price_the_whole_group_above_k(k, data):
    """An adversary can never kill every replica with only k faults."""
    r = data.draw(st.integers(min_value=1, max_value=k + 1))
    policy = Policy.combined(r, k)
    total_kill_cost = sum(policy.kill_cost(j) for j in range(policy.n_replicas))
    assert total_kill_cost > k


class TestPolicyAssignment:
    def test_get_set(self):
        pa = PolicyAssignment()
        pa["P1"] = Policy.reexecution(2)
        assert pa["P1"].is_pure_reexecution
        assert "P1" in pa
        assert len(pa) == 1

    def test_missing_process_raises(self):
        with pytest.raises(ModelError):
            PolicyAssignment()["nope"]

    def test_copy_is_independent(self):
        pa = PolicyAssignment({"P1": Policy.reexecution(1)})
        clone = pa.copy()
        clone["P1"] = Policy.replication(1)
        assert pa["P1"].is_pure_reexecution

    def test_uniform(self):
        pa = PolicyAssignment.uniform(iter(["A", "B"]), Policy.reexecution(1))
        assert len(pa) == 2

    def test_validate_for(self):
        pa = PolicyAssignment({"P1": Policy.reexecution(1)})
        with pytest.raises(ModelError):
            pa.validate_for(3)
