"""Unit tests for the FT-extended execution graph."""

import pytest

from repro.errors import ModelError
from repro.model.application import Application, Process, ProcessGraph
from repro.model.fault import FaultModel
from repro.model.ftgraph import build_ft_graph, instance_id
from repro.model.mapping import ReplicaMapping
from repro.model.merge import merge_application
from repro.model.policy import Policy, PolicyAssignment


def _merged_chain():
    g = ProcessGraph("g")
    g.add_process(Process("A", {"N1": 10.0, "N2": 12.0}))
    g.add_process(Process("B", {"N1": 20.0, "N2": 22.0}))
    g.connect("A", "B", size=2)
    return merge_application(Application([g]))


FAULTS = FaultModel(k=2, mu=5.0)


def test_instance_id_format():
    assert instance_id("P1", 0) == "P1:r0"


def test_reexecution_explodes_to_one_instance_each():
    merged = _merged_chain()
    policies = PolicyAssignment.uniform(iter(["A", "B"]), Policy.reexecution(2))
    mapping = ReplicaMapping({"A": ("N1",), "B": ("N2",)})
    ft = build_ft_graph(merged, policies, mapping, FAULTS)
    assert len(ft) == 2
    assert ft.replicas("A") == ("A:r0",)
    assert ft.instance("A:r0").reexecutions == 2
    assert ft.instance("A:r0").kill_cost == 3


def test_replication_explodes_to_k_plus_one_instances():
    merged = _merged_chain()
    policies = PolicyAssignment(
        {"A": Policy.replication(2), "B": Policy.reexecution(2)}
    )
    mapping = ReplicaMapping({"A": ("N1", "N2", "N1"), "B": ("N2",)})
    ft = build_ft_graph(merged, policies, mapping, FAULTS)
    assert ft.replicas("A") == ("A:r0", "A:r1", "A:r2")
    assert all(ft.instance(i).reexecutions == 0 for i in ft.replicas("A"))


def test_input_groups_list_all_sender_replicas():
    merged = _merged_chain()
    policies = PolicyAssignment(
        {"A": Policy.replication(2), "B": Policy.reexecution(2)}
    )
    mapping = ReplicaMapping({"A": ("N1", "N2", "N1"), "B": ("N2",)})
    ft = build_ft_graph(merged, policies, mapping, FAULTS)
    groups = ft.inputs_of("B:r0")
    assert len(groups) == 1
    assert groups[0].sources == ("A:r0", "A:r1", "A:r2")


def test_bus_messages_masked_for_sole_replica():
    merged = _merged_chain()
    policies = PolicyAssignment.uniform(iter(["A", "B"]), Policy.reexecution(2))
    mapping = ReplicaMapping({"A": ("N1",), "B": ("N2",)})
    ft = build_ft_graph(merged, policies, mapping, FAULTS)
    out = ft.outgoing_bus_messages("A:r0")
    assert [m.kind for m in out] == ["masked"]
    assert out[0].id == "m_A_B[A:r0]"


def test_plain_replicas_backed_by_guaranteed_frames_up_to_k():
    """One upstream fault can delay a whole replica group past its fast
    slots simultaneously, so enough replicas must own a guaranteed
    (post-WCF) frame that their combined kill price reaches k — without
    that backing a group of pure replicas has no delivery the worst-case
    analysis may rely on.  Replicas beyond the required price stay
    fast-only (no wasted bus slots)."""
    merged = _merged_chain()
    policies = PolicyAssignment(
        {"A": Policy.replication(2), "B": Policy.reexecution(2)}
    )
    mapping = ReplicaMapping({"A": ("N1", "N2", "N1"), "B": ("N2",)})
    ft = build_ft_graph(merged, policies, mapping, FAULTS)
    senders = [i for i in ft.replicas("A") if ft.outgoing_bus_messages(i)]
    assert senders  # co-located replicas (A:r1 on B's node) send nothing
    for i in senders:
        assert "fast" in {m.kind for m in ft.outgoing_bus_messages(i)}
    # Every receiver must see delay-immune deliveries whose combined kill
    # price reaches k: a sender co-located with the receiver is immune via
    # its local finish, a remote one via its guaranteed frame.
    for receiver in ft.replicas("B"):
        receiver_node = ft.instances[receiver].node
        immune_price = sum(
            ft.instances[i].kill_cost
            for i in ft.replicas("A")
            if ft.instances[i].node == receiver_node
            or "guaranteed" in {m.kind for m in ft.outgoing_bus_messages(i)}
        )
        assert immune_price >= FAULTS.k


def test_bus_messages_fast_plus_guaranteed_for_reexecuted_replicas():
    merged = _merged_chain()
    policies = PolicyAssignment(
        {"A": Policy.combined(2, 2), "B": Policy.reexecution(2)}
    )
    mapping = ReplicaMapping({"A": ("N1", "N2"), "B": ("N2",)})
    ft = build_ft_graph(merged, policies, mapping, FAULTS)
    kinds_r0 = sorted(m.kind for m in ft.outgoing_bus_messages("A:r0"))
    kinds_r1 = sorted(m.kind for m in ft.outgoing_bus_messages("A:r1"))
    # r0 carries the re-execution (e=(1,0)): fast + guaranteed frames.
    assert kinds_r0 == ["fast", "guaranteed"]
    # r1 is co-located with B's node? (N2) -> no remote receiver, no frames,
    # unless B has replicas elsewhere; B lives on N2 only, so r1 sends none.
    assert kinds_r1 == []


def test_no_bus_message_when_colocated():
    merged = _merged_chain()
    policies = PolicyAssignment.uniform(iter(["A", "B"]), Policy.reexecution(2))
    mapping = ReplicaMapping({"A": ("N1",), "B": ("N1",)})
    ft = build_ft_graph(merged, policies, mapping, FAULTS)
    assert ft.outgoing_bus_messages("A:r0") == []


def test_policy_not_tolerating_k_rejected():
    merged = _merged_chain()
    policies = PolicyAssignment.uniform(iter(["A", "B"]), Policy.reexecution(1))
    mapping = ReplicaMapping({"A": ("N1",), "B": ("N2",)})
    with pytest.raises(ModelError):
        build_ft_graph(merged, policies, mapping, FAULTS)


def test_mapping_policy_mismatch_rejected():
    merged = _merged_chain()
    policies = PolicyAssignment(
        {"A": Policy.replication(2), "B": Policy.reexecution(2)}
    )
    mapping = ReplicaMapping({"A": ("N1",), "B": ("N2",)})
    with pytest.raises(ModelError):
        build_ft_graph(merged, policies, mapping, FAULTS)


def test_topological_order_respects_dependencies():
    merged = _merged_chain()
    policies = PolicyAssignment(
        {"A": Policy.replication(2), "B": Policy.reexecution(2)}
    )
    mapping = ReplicaMapping({"A": ("N1", "N2", "N1"), "B": ("N2",)})
    ft = build_ft_graph(merged, policies, mapping, FAULTS)
    order = ft.topological_order()
    for a_replica in ft.replicas("A"):
        assert order.index(a_replica) < order.index("B:r0")


def test_unknown_instance_raises():
    merged = _merged_chain()
    policies = PolicyAssignment.uniform(iter(["A", "B"]), Policy.reexecution(2))
    mapping = ReplicaMapping({"A": ("N1",), "B": ("N2",)})
    ft = build_ft_graph(merged, policies, mapping, FAULTS)
    with pytest.raises(ModelError):
        ft.instance("nope:r0")
    with pytest.raises(ModelError):
        ft.replicas("nope")
