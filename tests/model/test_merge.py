"""Unit tests for hyper-period merging (paper §3)."""

import pytest

from repro.errors import ModelError
from repro.model.application import Application, Process, ProcessGraph
from repro.model.merge import merge_application, merged_name


def _periodic_graph(name: str, period: float, deadline: float) -> ProcessGraph:
    g = ProcessGraph(name, period=period, deadline=deadline)
    g.add_process(Process(f"{name}_src", {"N1": 5.0}))
    g.add_process(Process(f"{name}_dst", {"N1": 5.0}))
    g.connect(f"{name}_src", f"{name}_dst")
    return g


class TestMergedName:
    def test_single_occurrence_keeps_name(self):
        assert merged_name("P1", 0, 1) == "P1"

    def test_multi_occurrence_suffixes(self):
        assert merged_name("P1", 2, 3) == "P1@2"


class TestMerge:
    def test_single_graph_passthrough(self):
        g = _periodic_graph("a", 20.0, 20.0)
        merged = merge_application(Application([g]))
        assert sorted(merged) == ["a_dst", "a_src"]
        assert merged.period == 20.0

    def test_occurrence_counts_follow_lcm(self):
        app = Application(
            [_periodic_graph("a", 20.0, 20.0), _periodic_graph("b", 30.0, 30.0)]
        )
        merged = merge_application(app)
        assert merged.period == 60.0
        a_names = [n for n in merged if n.startswith("a_src")]
        b_names = [n for n in merged if n.startswith("b_src")]
        assert len(a_names) == 3  # 60 / 20
        assert len(b_names) == 2  # 60 / 30

    def test_releases_shifted_by_period(self):
        app = Application(
            [_periodic_graph("a", 20.0, 20.0), _periodic_graph("b", 30.0, 30.0)]
        )
        merged = merge_application(app)
        assert merged.process("a_src@1").release == 20.0
        assert merged.process("a_src@2").release == 40.0

    def test_deadlines_attached_to_sinks(self):
        app = Application([_periodic_graph("a", 20.0, 15.0)])
        merged = merge_application(app)
        # Sink carries the graph deadline; the source does not.
        assert merged.process("a_dst").deadline == 15.0
        assert merged.process("a_src").deadline is None

    def test_deadlines_shifted_per_occurrence(self):
        app = Application(
            [_periodic_graph("a", 20.0, 15.0), _periodic_graph("b", 40.0, 40.0)]
        )
        merged = merge_application(app)
        assert merged.process("a_dst@1").deadline == 35.0

    def test_origin_metadata(self):
        app = Application(
            [_periodic_graph("a", 20.0, 20.0), _periodic_graph("b", 40.0, 40.0)]
        )
        merged = merge_application(app)
        origin = merged.origin["a_dst@1"]
        assert origin.graph == "a"
        assert origin.process == "a_dst"
        assert origin.occurrence == 1

    def test_messages_duplicated_per_occurrence(self):
        app = Application(
            [_periodic_graph("a", 20.0, 20.0), _periodic_graph("b", 40.0, 40.0)]
        )
        merged = merge_application(app)
        assert "m_a_src_a_dst@0" in merged.messages
        assert "m_a_src_a_dst@1" in merged.messages

    def test_non_divisible_periods_rejected(self):
        # LCM at 1 us resolution exists, but a period that does not divide
        # the hyperperiod cleanly must be caught.
        g1 = _periodic_graph("a", 20.0, 20.0)
        g2 = _periodic_graph("b", 30.0, 30.0)
        app = Application([g1, g2])
        merged = merge_application(app)  # fine: LCM = 60
        assert merged.period == 60.0

    def test_individual_deadline_preserved(self):
        g = ProcessGraph("g", period=20.0, deadline=20.0)
        g.add_process(Process("A", {"N1": 5.0}, deadline=12.0))
        app = Application([g])
        merged = merge_application(app)
        assert merged.process("A").deadline == 12.0

    def test_invalid_application_rejected(self):
        with pytest.raises(ModelError):
            merge_application(Application([]))
