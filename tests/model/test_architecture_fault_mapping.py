"""Unit tests for architecture, fault model and replica mapping."""

import pytest

from repro.errors import ModelError
from repro.model.architecture import Architecture, Node, homogeneous_architecture
from repro.model.fault import NO_FAULTS, FaultModel
from repro.model.mapping import ReplicaMapping
from repro.model.policy import Policy, PolicyAssignment
from repro.ttp.bus import BusConfig


class TestArchitecture:
    def test_node_lookup(self):
        arch = Architecture([Node("A"), Node("B")])
        assert arch.node("A").name == "A"
        assert "B" in arch
        assert len(arch) == 2
        assert arch.node_names == ("A", "B")

    def test_duplicate_node_rejected(self):
        with pytest.raises(ModelError):
            Architecture([Node("A"), Node("A")])

    def test_empty_architecture_rejected(self):
        with pytest.raises(ModelError):
            Architecture([])

    def test_unknown_node_raises(self):
        arch = Architecture([Node("A")])
        with pytest.raises(ModelError):
            arch.node("Z")

    def test_homogeneous_helper(self):
        arch = homogeneous_architecture(4)
        assert arch.node_names == ("N1", "N2", "N3", "N4")

    def test_bus_must_match_nodes(self):
        bus = BusConfig.minimal(("A", "B"), 4)
        with pytest.raises(Exception):
            Architecture([Node("A")], bus=bus)

    def test_bus_accepted_when_matching(self):
        bus = BusConfig.minimal(("A",), 4)
        arch = Architecture([Node("A")], bus=bus)
        assert arch.bus is bus


class TestFaultModel:
    def test_recovery_time_fig2a(self):
        fm = FaultModel(k=2, mu=10.0)
        # C=30: two re-executions cost 2 * (30 + 10) = 80 extra ms.
        assert fm.recovery_time(30.0, 2) == 80.0

    def test_negative_k_rejected(self):
        with pytest.raises(ModelError):
            FaultModel(k=-1)

    def test_negative_mu_rejected(self):
        with pytest.raises(ModelError):
            FaultModel(k=1, mu=-1.0)

    def test_mu_with_zero_k_rejected(self):
        with pytest.raises(ModelError):
            FaultModel(k=0, mu=5.0)

    def test_fault_free(self):
        assert NO_FAULTS.fault_free
        assert not FaultModel(k=1, mu=0.0).fault_free

    def test_negative_reexecutions_rejected(self):
        with pytest.raises(ModelError):
            FaultModel(k=1, mu=1.0).recovery_time(10.0, -1)


class TestReplicaMapping:
    def test_assign_string_becomes_tuple(self):
        m = ReplicaMapping()
        m.assign("P1", "N1")
        assert m["P1"] == ("N1",)
        assert m.primary("P1") == "N1"

    def test_replica_node_lookup(self):
        m = ReplicaMapping({"P1": ("N1", "N2")})
        assert m.replica_node("P1", 1) == "N2"
        with pytest.raises(ModelError):
            m.replica_node("P1", 5)

    def test_unmapped_process_raises(self):
        with pytest.raises(ModelError):
            ReplicaMapping()["P1"]

    def test_empty_tuple_rejected(self):
        m = ReplicaMapping()
        with pytest.raises(ModelError):
            m.assign("P1", ())

    def test_copy_is_independent(self):
        m = ReplicaMapping({"P1": ("N1",)})
        clone = m.copy()
        clone.assign("P1", ("N2",))
        assert m["P1"] == ("N1",)

    def test_node_load(self):
        m = ReplicaMapping({"P1": ("N1", "N2"), "P2": ("N1",)})
        wcets = {"P1": {"N1": 10.0, "N2": 20.0}, "P2": {"N1": 5.0}}
        load = m.node_load(wcets)
        assert load == {"N1": 15.0, "N2": 20.0}

    def test_validate_replica_count_mismatch(self):
        m = ReplicaMapping({"P1": ("N1",)})
        policies = PolicyAssignment({"P1": Policy.replication(1)})
        with pytest.raises(ModelError):
            m.validate_for(policies, {"P1": ("N1", "N2")})

    def test_validate_illegal_node(self):
        m = ReplicaMapping({"P1": ("N3",)})
        policies = PolicyAssignment({"P1": Policy.reexecution(1)})
        with pytest.raises(ModelError):
            m.validate_for(policies, {"P1": ("N1", "N2")})

    def test_validate_passes(self):
        m = ReplicaMapping({"P1": ("N1", "N2")})
        policies = PolicyAssignment({"P1": Policy.combined(2, 2)})
        m.validate_for(policies, {"P1": ("N1", "N2")})
