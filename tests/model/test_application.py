"""Unit tests for the application model."""

import pytest

from repro.errors import ModelError
from repro.model.application import Application, Message, Process, ProcessGraph, chain


class TestProcess:
    def test_basic_construction(self):
        p = Process("P1", {"N1": 10.0, "N2": 20.0})
        assert p.allowed_nodes == ("N1", "N2")
        assert p.wcet_on("N1") == 10.0

    def test_empty_name_rejected(self):
        with pytest.raises(ModelError):
            Process("", {"N1": 1.0})

    def test_empty_wcet_rejected(self):
        with pytest.raises(ModelError):
            Process("P1", {})

    def test_non_positive_wcet_rejected(self):
        with pytest.raises(ModelError):
            Process("P1", {"N1": 0.0})
        with pytest.raises(ModelError):
            Process("P1", {"N1": -5.0})

    def test_negative_release_rejected(self):
        with pytest.raises(ModelError):
            Process("P1", {"N1": 1.0}, release=-1.0)

    def test_deadline_before_release_rejected(self):
        with pytest.raises(ModelError):
            Process("P1", {"N1": 1.0}, release=10.0, deadline=5.0)

    def test_fixed_node_must_be_legal(self):
        with pytest.raises(ModelError):
            Process("P1", {"N1": 1.0}, fixed_node="N9")

    def test_fixed_node_restricts_allowed(self):
        p = Process("P1", {"N1": 1.0, "N2": 2.0}, fixed_node="N2")
        assert p.allowed_nodes == ("N2",)

    def test_unknown_fixed_policy_rejected(self):
        with pytest.raises(ModelError):
            Process("P1", {"N1": 1.0}, fixed_policy="checkpointing")

    def test_wcet_on_illegal_node_raises(self):
        p = Process("P1", {"N1": 1.0})
        with pytest.raises(ModelError):
            p.wcet_on("N2")


class TestMessage:
    def test_defaults(self):
        m = Message("m1", "P1", "P2")
        assert m.size == 1

    def test_non_positive_size_rejected(self):
        with pytest.raises(ModelError):
            Message("m1", "P1", "P2", size=0)

    def test_self_loop_rejected(self):
        with pytest.raises(ModelError):
            Message("m1", "P1", "P1")


class TestProcessGraph:
    def _graph(self) -> ProcessGraph:
        g = ProcessGraph("g")
        g.add_process(Process("A", {"N1": 1.0}))
        g.add_process(Process("B", {"N1": 2.0}))
        g.add_process(Process("C", {"N1": 3.0}))
        g.connect("A", "B", size=2)
        g.connect("B", "C")
        return g

    def test_duplicate_process_rejected(self):
        g = self._graph()
        with pytest.raises(ModelError):
            g.add_process(Process("A", {"N1": 1.0}))

    def test_duplicate_edge_rejected(self):
        g = self._graph()
        with pytest.raises(ModelError):
            g.connect("A", "B")

    def test_message_to_unknown_process_rejected(self):
        g = self._graph()
        with pytest.raises(ModelError):
            g.add_message(Message("mx", "A", "Z"))

    def test_sources_and_sinks(self):
        g = self._graph()
        assert g.sources() == ["A"]
        assert g.sinks() == ["C"]

    def test_topological_order_respects_edges(self):
        g = self._graph()
        order = g.topological_order()
        assert order.index("A") < order.index("B") < order.index("C")

    def test_in_out_messages(self):
        g = self._graph()
        assert [m.name for m in g.in_messages("B")] == ["m_A_B"]
        assert [m.name for m in g.out_messages("B")] == ["m_B_C"]
        assert g.edge_message("A", "B").size == 2

    def test_validate_rejects_cycle(self):
        g = self._graph()
        g.connect("C", "A")  # creates a cycle
        with pytest.raises(ModelError):
            g.validate()

    def test_validate_rejects_empty(self):
        with pytest.raises(ModelError):
            ProcessGraph("empty").validate()

    def test_deadline_exceeding_period_rejected(self):
        with pytest.raises(ModelError):
            ProcessGraph("g", period=10.0, deadline=20.0)

    def test_chain_helper(self):
        g = ProcessGraph("g")
        procs = chain(["X", "Y", "Z"], {"N1": 1.0}, g)
        assert len(procs) == 3
        assert g.successors("X") == ["Y"]


class TestApplication:
    def test_hyperperiod_lcm(self):
        g1 = ProcessGraph("g1", period=20.0)
        g1.add_process(Process("A", {"N1": 1.0}))
        g2 = ProcessGraph("g2", period=30.0)
        g2.add_process(Process("B", {"N1": 1.0}))
        app = Application([g1, g2])
        assert app.hyperperiod() == 60.0

    def test_hyperperiod_none_without_periods(self):
        g = ProcessGraph("g")
        g.add_process(Process("A", {"N1": 1.0}))
        assert Application([g]).hyperperiod() is None

    def test_duplicate_graph_rejected(self):
        g = ProcessGraph("g")
        g.add_process(Process("A", {"N1": 1.0}))
        app = Application([g])
        with pytest.raises(ModelError):
            app.add_graph(ProcessGraph("g"))

    def test_duplicate_process_across_graphs_rejected(self):
        g1 = ProcessGraph("g1")
        g1.add_process(Process("A", {"N1": 1.0}))
        g2 = ProcessGraph("g2")
        g2.add_process(Process("A", {"N1": 1.0}))
        with pytest.raises(ModelError):
            Application([g1, g2]).validate()

    def test_largest_message_size(self):
        g = ProcessGraph("g")
        g.add_process(Process("A", {"N1": 1.0}))
        g.add_process(Process("B", {"N1": 1.0}))
        g.connect("A", "B", size=3)
        assert Application([g]).largest_message_size() == 3

    def test_largest_message_size_defaults_to_one(self):
        g = ProcessGraph("g")
        g.add_process(Process("A", {"N1": 1.0}))
        assert Application([g]).largest_message_size() == 1

    def test_empty_application_rejected(self):
        with pytest.raises(ModelError):
            Application([]).validate()
