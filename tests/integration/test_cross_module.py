"""Cross-module integration: gantt/metrics/trace/io against optimized systems."""

import json

from repro.gen.suite import generate_case
from repro.io.json_codec import implementation_from_dict, implementation_to_dict
from repro.opt.strategy import OptimizationConfig, optimize
from repro.schedule.contingency import synthesize_contingency_schedules
from repro.schedule.gantt import render_gantt
from repro.schedule.list_scheduler import list_schedule
from repro.schedule.metrics import compute_metrics
from repro.sim.engine import SystemSimulator, simulate
from repro.sim.faults import FAULT_FREE
from repro.sim.trace import build_trace, trace_to_csv, trace_to_json

FAST = OptimizationConfig(
    minimize=True, rounds=2, greedy_max_iterations=8, tabu_max_iterations=5
)


def _optimized(n=12, nodes=2, k=2, seed=5, variant="MXR"):
    case = generate_case(n, nodes, k, mu=5.0, seed=seed)
    result = optimize(case.application, case.architecture, case.faults, variant, FAST)
    return case, result


class TestRenderingPipeline:
    def test_gantt_renders_optimized_schedule(self):
        _, result = _optimized()
        text = render_gantt(result.schedule)
        assert "schedule length" in text
        # Every node appears as a row.
        for node in result.schedule.node_chains:
            assert node in text

    def test_metrics_consistent_with_schedule(self):
        _, result = _optimized()
        metrics = compute_metrics(result.schedule)
        assert metrics.makespan == result.makespan
        total_instances = sum(m.instances for m in metrics.nodes.values())
        assert total_instances == len(result.schedule.placements)

    def test_trace_covers_all_instances(self):
        _, result = _optimized()
        sim_result = simulate(result.schedule, FAULT_FREE)
        events = build_trace(result.schedule, sim_result)
        started = {e.subject for e in events if e.kind == "start"}
        assert started == set(result.schedule.placements)
        json.loads(trace_to_json(events))
        assert trace_to_csv(events).startswith("time,")


class TestSolutionPersistence:
    def test_optimized_solution_round_trips_and_reschedules(self):
        case, result = _optimized(variant="MXR")
        payload = json.dumps(implementation_to_dict(result.implementation))
        restored = implementation_from_dict(json.loads(payload))
        schedule = list_schedule(
            result.merged,
            result.faults,
            restored.policies,
            restored.mapping,
            restored.bus,
        )
        assert schedule.makespan == result.makespan


class TestContingencyOnOptimized:
    def test_all_single_fault_contingencies_within_bounds(self):
        _, result = _optimized(k=2)
        contingencies = synthesize_contingency_schedules(result.schedule)
        assert len(contingencies) == len(result.schedule.placements)
        for contingency in contingencies:
            for entries in contingency.tables.values():
                for entry in entries:
                    if not entry.produced:
                        continue  # dead replicas only bound CPU occupancy
                    bound = result.schedule.placements[entry.instance_id].wcf
                    assert entry.finish <= bound + 1e-6

    def test_simulator_reusable_across_scenarios(self):
        _, result = _optimized(k=2)
        simulator = SystemSimulator(result.schedule)
        a = simulator.run(FAULT_FREE)
        b = simulator.run(FAULT_FREE)
        assert a.completions == b.completions
