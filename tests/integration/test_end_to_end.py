"""End-to-end integration: generate -> optimize -> schedule -> fault-inject.

This is the load-bearing test of the whole reproduction: for a spread of
dimensions and strategy variants, the synthesized schedule must survive
fault injection (liveness + analytical bounds + deadlines).
"""

import pytest

from repro.gen.suite import generate_case
from repro.opt.strategy import OptimizationConfig, optimize
from repro.sim.validate import validate_schedule

FAST = OptimizationConfig(
    minimize=True, rounds=2, greedy_max_iterations=10, tabu_max_iterations=6
)


@pytest.mark.parametrize(
    "n,nodes,k,variant",
    [
        (8, 2, 1, "MXR"),
        (12, 2, 2, "MXR"),
        (12, 3, 3, "MX"),
        (12, 3, 3, "MR"),
        (16, 3, 2, "SFX"),
        (16, 4, 4, "MXR"),
        (20, 2, 5, "MR"),  # heavy co-location: k+1 replicas on 2 nodes
    ],
)
def test_optimized_schedules_tolerate_k_faults(n, nodes, k, variant):
    case = generate_case(n, nodes, k, mu=5.0, seed=7)
    result = optimize(case.application, case.architecture, case.faults, variant, FAST)
    report = validate_schedule(result.schedule, samples=120)
    assert report.ok, report.violations[:5]


def test_nft_schedule_valid_without_faults():
    case = generate_case(12, 2, 2, mu=5.0, seed=1)
    result = optimize(case.application, case.architecture, case.faults, "NFT", FAST)
    report = validate_schedule(result.schedule)
    assert report.ok
    assert report.scenarios_checked == 1  # only the fault-free scenario


def test_variant_quality_ordering_holds_on_average():
    """MXR <= MX and MXR <= MR and MXR <= SFX, averaged over seeds."""
    totals = {"MXR": 0.0, "MX": 0.0, "MR": 0.0, "SFX": 0.0}
    for seed in (0, 1):
        case = generate_case(14, 2, 2, mu=5.0, seed=seed)
        for variant in totals:
            result = optimize(
                case.application, case.architecture, case.faults, variant, FAST
            )
            totals[variant] += result.makespan
    assert totals["MXR"] <= totals["MX"] + 1e-6
    assert totals["MXR"] <= totals["MR"] + 1e-6
    assert totals["MXR"] <= totals["SFX"] + 1e-6


def test_deadline_mode_end_to_end():
    """With a generous deadline the optimizer stops early and validates."""
    case = generate_case(10, 2, 2, mu=5.0, seed=2, deadline=100_000.0)
    result = optimize(case.application, case.architecture, case.faults, "MXR")
    assert result.is_schedulable
    report = validate_schedule(result.schedule, samples=80)
    assert report.ok


def test_multirate_application_end_to_end():
    """Two graphs with different periods merge and schedule correctly."""
    from repro.model.application import Application, Process, ProcessGraph
    from repro.model.architecture import homogeneous_architecture
    from repro.model.fault import FaultModel

    g1 = ProcessGraph("fast", period=100.0, deadline=100.0)
    g1.add_process(Process("F1", {"N1": 10.0, "N2": 10.0}))
    g1.add_process(Process("F2", {"N1": 10.0, "N2": 10.0}))
    g1.connect("F1", "F2")
    g2 = ProcessGraph("slow", period=200.0, deadline=200.0)
    g2.add_process(Process("S1", {"N1": 15.0, "N2": 15.0}))
    app = Application([g1, g2])
    arch = homogeneous_architecture(2)
    result = optimize(app, arch, FaultModel(k=1, mu=2.0), "MXR", FAST)
    merged_names = set(result.merged)
    assert {"F1@0", "F1@1", "S1"} <= merged_names
    report = validate_schedule(result.schedule, samples=100)
    assert report.ok
