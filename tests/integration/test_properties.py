"""Property-based integration tests on randomly generated applications.

The central invariant of the whole library: for any generated application,
mapping and policy assignment, the simulated finish times under any <= k
fault scenario never exceed the analytical worst-case bounds.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.gen.suite import generate_case
from repro.model.merge import merge_application
from repro.opt.evaluator import Evaluator
from repro.opt.initial import initial_bus_access, initial_mpa
from repro.model.policy import Policy
from repro.sim.faults import sample_scenarios
from repro.sim.engine import SystemSimulator
from repro.schedule.list_scheduler import list_schedule

_SLOW = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(
    n=st.integers(min_value=4, max_value=16),
    nodes=st.integers(min_value=1, max_value=4),
    k=st.integers(min_value=0, max_value=3),
    seed=st.integers(min_value=0, max_value=50),
    replicate_some=st.booleans(),
)
@_SLOW
def test_simulation_never_exceeds_analysis(n, nodes, k, seed, replicate_some):
    mu = 5.0 if k else 0.0
    case = generate_case(n, nodes, k, mu=mu, seed=seed)
    merged = merge_application(case.application)
    bus = initial_bus_access(case.application, case.architecture)
    impl = initial_mpa(merged, case.architecture, case.faults, bus)
    if replicate_some and k >= 1:
        # Upgrade a few processes to combined/replicated policies.
        rng = random.Random(seed)
        names = sorted(merged)
        for name in names[:: max(1, len(names) // 3)]:
            r = rng.randint(1, k + 1)
            impl.policies[name] = Policy.combined(r, k)
            from repro.opt.initial import place_replicas

            impl.mapping.assign(
                name,
                place_replicas(
                    merged.process(name), r, impl.mapping.primary(name), {}
                ),
            )
    schedule = list_schedule(merged, case.faults, impl.policies, impl.mapping, bus)
    simulator = SystemSimulator(schedule)
    rng = random.Random(seed + 1)
    scenarios = sample_scenarios(schedule.ft, k, rng, count=25)
    scenarios += sample_scenarios(
        schedule.ft, k, rng, count=10, always_max_faults=True
    )
    for scenario in scenarios:
        result = simulator.run(scenario)
        assert result.ok, (scenario.describe(), result.starved, result.dead_processes)
        for iid, record in result.executions.items():
            if record.produced:
                bound = schedule.placements[iid].wcf
                assert record.finish <= bound + 1e-6, (iid, scenario.describe())
        for process, completion in result.completions.items():
            assert completion <= schedule.completions[process] + 1e-6


@given(
    n=st.integers(min_value=4, max_value=14),
    seed=st.integers(min_value=0, max_value=30),
    k=st.integers(min_value=1, max_value=3),
)
@_SLOW
def test_makespan_monotone_in_k(n, seed, k):
    """With identical workload, mapping, and all-re-execution policies, a
    larger k never shortens the schedule."""
    case_small = generate_case(n, 2, k, mu=5.0, seed=seed)
    case_large = generate_case(n, 2, k + 1, mu=5.0, seed=seed)
    merged = merge_application(case_small.application)
    bus = initial_bus_access(case_small.application, case_small.architecture)
    # One mapping for both runs (the balancing heuristic depends on k).
    impl = initial_mpa(merged, case_small.architecture, case_small.faults, bus)
    lengths = []
    for case in (case_small, case_large):
        policies = impl.policies.copy()
        for name in merged:
            policies[name] = Policy.reexecution(case.faults.k)
        schedule = list_schedule(
            merged, case.faults, policies, impl.mapping, bus
        )
        lengths.append(schedule.makespan)
    assert lengths[0] <= lengths[1] + 1e-6


@given(
    n=st.integers(min_value=4, max_value=14),
    seed=st.integers(min_value=0, max_value=30),
)
@_SLOW
def test_evaluator_cost_deterministic(n, seed):
    case = generate_case(n, 2, 2, mu=5.0, seed=seed)
    merged = merge_application(case.application)
    bus = initial_bus_access(case.application, case.architecture)
    impl = initial_mpa(merged, case.architecture, case.faults, bus)
    a = Evaluator(merged, case.faults, cache=False).evaluate(impl)
    b = Evaluator(merged, case.faults, cache=False).evaluate(impl)
    assert a == b
