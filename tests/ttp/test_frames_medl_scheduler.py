"""Unit tests for frames, the MEDL and the bus scheduler."""

import pytest

from repro.errors import ConfigurationError
from repro.ttp.bus import BusConfig
from repro.ttp.frame import Frame
from repro.ttp.medl import MEDL, MessageDescriptor
from repro.ttp.schedule import BusScheduler


class TestFrame:
    def test_packing_tracks_offsets(self):
        frame = Frame(node="N1", round_index=0, capacity_bytes=4)
        a = frame.pack("m1", 2)
        b = frame.pack("m2", 2)
        assert (a.offset_bytes, a.end_bytes) == (0, 2)
        assert (b.offset_bytes, b.end_bytes) == (2, 4)
        assert frame.free_bytes == 0

    def test_overflow_rejected(self):
        frame = Frame(node="N1", round_index=0, capacity_bytes=3)
        frame.pack("m1", 2)
        with pytest.raises(ConfigurationError):
            frame.pack("m2", 2)

    def test_non_positive_size_rejected(self):
        frame = Frame(node="N1", round_index=0, capacity_bytes=3)
        with pytest.raises(ConfigurationError):
            frame.pack("m1", 0)


class TestMEDL:
    def _descriptor(self, mid="m1", r=0) -> MessageDescriptor:
        return MessageDescriptor(
            bus_message_id=mid,
            sender_node="N1",
            round_index=r,
            slot_start=r * 20.0,
            slot_end=r * 20.0 + 10.0,
            offset_bytes=0,
            size_bytes=2,
        )

    def test_add_and_lookup(self):
        medl = MEDL()
        medl.add(self._descriptor())
        assert medl["m1"].arrival == 10.0
        assert "m1" in medl
        assert len(medl) == 1

    def test_duplicate_rejected(self):
        medl = MEDL()
        medl.add(self._descriptor())
        with pytest.raises(ConfigurationError):
            medl.add(self._descriptor())

    def test_missing_raises(self):
        with pytest.raises(ConfigurationError):
            MEDL()["nope"]

    def test_for_node_sorted(self):
        medl = MEDL()
        medl.add(self._descriptor("m2", r=1))
        medl.add(self._descriptor("m1", r=0))
        assert [d.bus_message_id for d in medl.for_node("N1")] == ["m1", "m2"]

    def test_last_slot_end(self):
        medl = MEDL()
        assert medl.last_slot_end() == 0.0
        medl.add(self._descriptor("m1", r=2))
        assert medl.last_slot_end() == 50.0


class TestBusScheduler:
    def _bus(self) -> BusConfig:
        return BusConfig(
            slot_order=("N1", "N2"),
            slot_lengths={"N1": 10.0, "N2": 10.0},
            ms_per_byte=2.5,  # capacity: 4 bytes per frame
        )

    def test_earliest_slot_at_or_after_ready(self):
        sched = BusScheduler(self._bus())
        d = sched.schedule_message("m1", "N1", 2, ready_time=25.0)
        # N1 slots start at 0, 20, 40...; ready 25 -> round 2 at 40.
        assert d.round_index == 2
        assert d.slot_start == 40.0
        assert d.arrival == 50.0

    def test_frame_packing_shares_slot(self):
        sched = BusScheduler(self._bus())
        a = sched.schedule_message("m1", "N1", 2, ready_time=0.0)
        b = sched.schedule_message("m2", "N1", 2, ready_time=0.0)
        assert a.round_index == b.round_index == 0
        assert b.offset_bytes == 2

    def test_full_frame_spills_to_next_round(self):
        sched = BusScheduler(self._bus())
        sched.schedule_message("m1", "N1", 4, ready_time=0.0)
        d = sched.schedule_message("m2", "N1", 1, ready_time=0.0)
        assert d.round_index == 1

    def test_oversized_message_rejected(self):
        sched = BusScheduler(self._bus())
        with pytest.raises(ConfigurationError):
            sched.schedule_message("m1", "N1", 5, ready_time=0.0)

    def test_senders_use_own_slots(self):
        sched = BusScheduler(self._bus())
        d1 = sched.schedule_message("m1", "N1", 1, ready_time=0.0)
        d2 = sched.schedule_message("m2", "N2", 1, ready_time=0.0)
        assert d1.slot_start == 0.0
        assert d2.slot_start == 10.0

    def test_frames_listing(self):
        sched = BusScheduler(self._bus())
        sched.schedule_message("m1", "N2", 1, ready_time=0.0)
        sched.schedule_message("m2", "N1", 1, ready_time=0.0)
        frames = sched.frames()
        assert [f.node for f in frames] == ["N1", "N2"]
