"""Property tests for TDMA frame packing and the bus scheduler."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ttp.bus import BusConfig
from repro.ttp.schedule import BusScheduler


@given(
    n_messages=st.integers(min_value=1, max_value=40),
    seed=st.integers(min_value=0, max_value=999),
    capacity=st.integers(min_value=2, max_value=8),
)
@settings(max_examples=50)
def test_frames_never_overflow_and_never_overlap(n_messages, seed, capacity):
    rng = random.Random(seed)
    bus = BusConfig(
        slot_order=("N1", "N2"),
        slot_lengths={"N1": float(capacity), "N2": float(capacity)},
        ms_per_byte=1.0,
    )
    scheduler = BusScheduler(bus)
    for index in range(n_messages):
        sender = rng.choice(("N1", "N2"))
        size = rng.randint(1, capacity)
        ready = rng.uniform(0.0, 100.0)
        scheduler.schedule_message(f"m{index}", sender, size, ready)

    for frame in scheduler.frames():
        # Capacity respected.
        assert frame.used_bytes <= frame.capacity_bytes
        # Allocations are contiguous and non-overlapping.
        offset = 0
        for allocation in frame.allocations:
            assert allocation.offset_bytes == offset
            offset = allocation.end_bytes

    # Every descriptor's slot belongs to its sender and starts after ready.
    # (The MEDL does not keep ready times; re-derive by construction order.)
    for descriptor in scheduler.medl:
        assert descriptor.sender_node in ("N1", "N2")
        assert descriptor.slot_end > descriptor.slot_start


@given(
    ready_times=st.lists(
        st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
        min_size=2,
        max_size=20,
    ),
)
@settings(max_examples=50)
def test_scheduling_is_first_fit_deterministic(ready_times):
    def run() -> list[tuple[str, int, int]]:
        bus = BusConfig.minimal(("N1",), 4)
        scheduler = BusScheduler(bus)
        rows = []
        for index, ready in enumerate(ready_times):
            d = scheduler.schedule_message(f"m{index}", "N1", 1, ready)
            rows.append((d.bus_message_id, d.round_index, d.offset_bytes))
        return rows

    assert run() == run()


@given(
    sizes=st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=12),
)
@settings(max_examples=50)
def test_messages_ready_at_zero_pack_greedily(sizes):
    """First-fit: each message lands in the earliest round with room."""
    bus = BusConfig.minimal(("N1",), 4)  # 4-byte frames
    scheduler = BusScheduler(bus)
    free: dict[int, int] = {}
    rounds = []
    for index, size in enumerate(sizes):
        d = scheduler.schedule_message(f"m{index}", "N1", size, 0.0)
        rounds.append(d.round_index)
        # First-fit minimality: every earlier round lacked the space.
        for earlier in range(d.round_index):
            assert free.get(earlier, 4) < size
        free[d.round_index] = free.get(d.round_index, 4) - size
        assert free[d.round_index] >= 0
    # Total rounds used is at least the bin-packing lower bound.
    assert max(rounds) + 1 >= -(-sum(sizes) // 4)
