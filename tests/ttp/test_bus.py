"""Unit and property tests for the TDMA bus configuration."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.ttp.bus import BusConfig


def _bus() -> BusConfig:
    return BusConfig(
        slot_order=("N1", "N2", "N3"),
        slot_lengths={"N1": 10.0, "N2": 20.0, "N3": 5.0},
        ms_per_byte=2.5,
    )


class TestBusConfig:
    def test_round_length(self):
        assert _bus().round_length == 35.0

    def test_slot_starts_within_round(self):
        bus = _bus()
        assert bus.slot_start("N1", 0) == 0.0
        assert bus.slot_start("N2", 0) == 10.0
        assert bus.slot_start("N3", 0) == 30.0

    def test_slot_starts_across_rounds(self):
        bus = _bus()
        assert bus.slot_start("N2", 2) == 2 * 35.0 + 10.0
        assert bus.slot_end("N2", 2) == 2 * 35.0 + 30.0

    def test_capacity_bytes(self):
        bus = _bus()
        assert bus.capacity_bytes("N1") == 4  # 10 ms / 2.5 ms per byte
        assert bus.capacity_bytes("N3") == 2

    def test_slot_index(self):
        assert _bus().slot_index("N3") == 2
        with pytest.raises(ConfigurationError):
            _bus().slot_index("N9")

    def test_first_round_at_or_after(self):
        bus = _bus()
        assert bus.first_round_at_or_after("N2", 0.0) == 0
        assert bus.first_round_at_or_after("N2", 10.0) == 0
        assert bus.first_round_at_or_after("N2", 10.1) == 1
        assert bus.first_round_at_or_after("N1", 71.0) == 3

    def test_duplicate_slot_rejected(self):
        with pytest.raises(ConfigurationError):
            BusConfig(("N1", "N1"), {"N1": 10.0})

    def test_missing_length_rejected(self):
        with pytest.raises(ConfigurationError):
            BusConfig(("N1", "N2"), {"N1": 10.0})

    def test_non_positive_length_rejected(self):
        with pytest.raises(ConfigurationError):
            BusConfig(("N1",), {"N1": 0.0})

    def test_negative_round_index_rejected(self):
        with pytest.raises(ConfigurationError):
            _bus().slot_start("N1", -1)

    def test_minimal_uses_largest_message(self):
        bus = BusConfig.minimal(("A", "B"), largest_message_size=4, ms_per_byte=2.0)
        assert bus.slot_lengths["A"] == 8.0
        assert bus.round_length == 16.0

    def test_with_slot_order(self):
        permuted = _bus().with_slot_order(("N3", "N1", "N2"))
        assert permuted.slot_start("N3", 0) == 0.0
        assert permuted.round_length == 35.0

    def test_with_slot_length(self):
        grown = _bus().with_slot_length("N1", 20.0)
        assert grown.round_length == 45.0

    def test_validate_for(self):
        _bus().validate_for(["N1", "N2", "N3"])
        with pytest.raises(ConfigurationError):
            _bus().validate_for(["N1", "N2"])

    def test_signature_distinguishes_orders(self):
        assert _bus().signature() != _bus().with_slot_order(("N2", "N1", "N3")).signature()


@given(
    lengths=st.lists(
        st.floats(min_value=1.0, max_value=50.0, allow_nan=False),
        min_size=1,
        max_size=6,
    ),
    time=st.floats(min_value=0.0, max_value=10_000.0, allow_nan=False),
)
def test_first_round_never_starts_early(lengths, time):
    """Property: the returned slot always starts at or after the ready time."""
    order = tuple(f"N{i}" for i in range(len(lengths)))
    bus = BusConfig(order, dict(zip(order, lengths)))
    for node in order:
        round_index = bus.first_round_at_or_after(node, time)
        assert bus.slot_start(node, round_index) >= time - 1e-6
        if round_index > 0:
            # Minimality: the previous round's slot would start too early.
            assert bus.slot_start(node, round_index - 1) < time + 1e-6
