"""Unit tests for GreedyMPA, TabuSearchMPA and the overall strategy."""

import pytest

from repro.errors import ConfigurationError
from repro.model.application import Application, Process, ProcessGraph
from repro.model.architecture import homogeneous_architecture
from repro.model.fault import FaultModel
from repro.model.merge import merge_application
from repro.opt.evaluator import Evaluator
from repro.opt.greedy import greedy_mpa
from repro.opt.initial import initial_bus_access, initial_mpa
from repro.opt.strategy import VARIANTS, OptimizationConfig, optimize
from repro.opt.tabu import tabu_search_mpa

from tests.conftest import make_graph


def _setup(n_heavy=3):
    processes = {
        f"P{i}": {"N1": 40.0 + i, "N2": 45.0 + i} for i in range(n_heavy)
    }
    edges = [(f"P{i}", f"P{i+1}", 1) for i in range(n_heavy - 1)]
    graph = make_graph(processes, edges)
    app = Application([graph])
    arch = homogeneous_architecture(2)
    faults = FaultModel(k=1, mu=5.0)
    merged = merge_application(app)
    bus = initial_bus_access(app, arch)
    impl = initial_mpa(merged, arch, faults, bus)
    evaluator = Evaluator(merged, faults)
    return app, arch, faults, merged, impl, evaluator


class TestGreedy:
    def test_never_worse_than_start(self):
        _, _, faults, merged, impl, evaluator = _setup()
        start_cost = evaluator.evaluate(impl)
        outcome = greedy_mpa(
            merged, faults, evaluator, impl, (1, 2),
            max_iterations=10, stop_when_schedulable=False,
        )
        assert not start_cost.is_better_than(outcome.cost)

    def test_history_is_monotone(self):
        _, _, faults, merged, impl, evaluator = _setup()
        outcome = greedy_mpa(
            merged, faults, evaluator, impl, (1, 2),
            max_iterations=10, stop_when_schedulable=False,
        )
        keys = [c.sort_key for c in outcome.history]
        assert keys == sorted(keys, reverse=True) or keys == sorted(keys)
        # Strictly: each step improves.
        for earlier, later in zip(keys, keys[1:]):
            assert later < earlier

    def test_iteration_cap_respected(self):
        _, _, faults, merged, impl, evaluator = _setup(n_heavy=5)
        outcome = greedy_mpa(
            merged, faults, evaluator, impl, (1, 2),
            max_iterations=1, stop_when_schedulable=False,
        )
        assert outcome.iterations <= 1


class TestTabu:
    def test_best_never_worse_than_start(self):
        _, _, faults, merged, impl, evaluator = _setup()
        start_cost = evaluator.evaluate(impl)
        outcome = tabu_search_mpa(
            merged, faults, evaluator, impl, (1, 2),
            max_iterations=8, stop_when_schedulable=False,
        )
        assert not start_cost.is_better_than(outcome.cost)

    def test_can_escape_greedy_plateau(self):
        """Tabu accepts non-improving moves, so it keeps iterating."""
        _, _, faults, merged, impl, evaluator = _setup()
        greedy = greedy_mpa(
            merged, faults, evaluator, impl, (1, 2),
            max_iterations=20, stop_when_schedulable=False,
        )
        outcome = tabu_search_mpa(
            merged, faults, evaluator, greedy.implementation, (1, 2),
            max_iterations=10, stop_when_schedulable=False,
        )
        assert outcome.iterations > 0  # it moved even though greedy was stuck

    def test_time_limit_stops_search(self):
        _, _, faults, merged, impl, evaluator = _setup(n_heavy=6)
        outcome = tabu_search_mpa(
            merged, faults, evaluator, impl, (1, 2),
            max_iterations=10_000, time_limit_s=0.3,
            stop_when_schedulable=False,
        )
        assert outcome.iterations < 10_000


class TestStrategy:
    def test_unknown_variant_rejected(self):
        app, arch, faults, *_ = _setup()
        with pytest.raises(ConfigurationError):
            optimize(app, arch, faults, variant="XYZ")

    def test_all_variants_run(self):
        app, arch, faults, *_ = _setup()
        cfg = OptimizationConfig(
            minimize=True, rounds=1, tabu_max_iterations=3, greedy_max_iterations=3
        )
        for variant in VARIANTS:
            result = optimize(app, arch, faults, variant, cfg)
            assert result.makespan > 0
            assert result.variant == variant.upper()

    def test_nft_ignores_fault_model(self):
        app, arch, faults, *_ = _setup()
        cfg = OptimizationConfig(minimize=True, rounds=1, tabu_max_iterations=2)
        result = optimize(app, arch, faults, "NFT", cfg)
        assert result.faults.fault_free
        # No recovery slack anywhere.
        for placed in result.schedule.placements.values():
            assert placed.wcf == pytest.approx(placed.root_finish)

    def test_mx_uses_only_reexecution(self):
        app, arch, faults, *_ = _setup()
        cfg = OptimizationConfig(minimize=True, rounds=2, tabu_max_iterations=5)
        result = optimize(app, arch, faults, "MX", cfg)
        for _, policy in result.implementation.policies.items():
            assert policy.is_pure_reexecution

    def test_mr_uses_only_replication(self):
        app, arch, faults, *_ = _setup()
        cfg = OptimizationConfig(minimize=True, rounds=2, tabu_max_iterations=5)
        result = optimize(app, arch, faults, "MR", cfg)
        for _, policy in result.implementation.policies.items():
            assert policy.is_pure_replication

    def test_mxr_not_worse_than_nft(self):
        app, arch, faults, *_ = _setup()
        cfg = OptimizationConfig(minimize=True, rounds=2, tabu_max_iterations=5)
        nft = optimize(app, arch, faults, "NFT", cfg)
        mxr = optimize(app, arch, faults, "MXR", cfg)
        assert mxr.makespan >= nft.makespan

    def test_deadline_mode_stops_when_schedulable(self):
        graph = make_graph(
            {"A": {"N1": 10.0, "N2": 10.0}}, [], deadline=10_000.0
        )
        app = Application([graph])
        arch = homogeneous_architecture(2)
        result = optimize(app, arch, FaultModel(k=1, mu=5.0), "MXR")
        assert result.is_schedulable
        # The initial solution is already schedulable: no search stages ran.
        assert "tabu[0]" not in result.stage_costs

    def test_infeasible_deadline_reports_unschedulable(self):
        graph = make_graph({"A": {"N1": 50.0}}, [], deadline=55.0)
        app = Application([graph])
        arch = homogeneous_architecture(1)
        cfg = OptimizationConfig(rounds=1, tabu_max_iterations=3)
        result = optimize(app, arch, FaultModel(k=2, mu=5.0), "MXR", cfg)
        assert not result.is_schedulable
        assert result.cost.degree > 0

    def test_sfx_keeps_nft_mapping(self):
        app, arch, faults, *_ = _setup()
        cfg = OptimizationConfig(minimize=True, rounds=1, tabu_max_iterations=3)
        nft = optimize(app, arch, faults, "NFT", cfg)
        sfx = optimize(app, arch, faults, "SFX", cfg)
        for process in nft.implementation.policies:
            assert (
                sfx.implementation.mapping.primary(process)
                == nft.implementation.mapping.primary(process)
            )
            assert sfx.implementation.policies[process].is_pure_reexecution

    def test_sfx_not_better_than_mxr(self):
        app, arch, faults, *_ = _setup()
        cfg = OptimizationConfig(minimize=True, rounds=2, tabu_max_iterations=8)
        sfx = optimize(app, arch, faults, "SFX", cfg)
        mxr = optimize(app, arch, faults, "MXR", cfg)
        assert mxr.makespan <= sfx.makespan + 1e-9
