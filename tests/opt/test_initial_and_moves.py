"""Unit tests for InitialMPA, replica placement, and move generation."""

from repro.model.application import Application, Process, ProcessGraph
from repro.model.architecture import homogeneous_architecture
from repro.model.fault import NO_FAULTS, FaultModel
from repro.model.merge import merge_application
from repro.model.policy import Policy
from repro.opt.initial import (
    initial_bus_access,
    initial_mpa,
    initial_policy_for,
    place_replicas,
)
from repro.opt.moves import generate_moves

from tests.conftest import make_graph

FAULTS = FaultModel(k=2, mu=5.0)


class TestInitialBusAccess:
    def test_minimal_slots_match_largest_message(self):
        graph = make_graph(
            {"A": {"N1": 1.0}, "B": {"N1": 1.0}}, [("A", "B", 3)]
        )
        app = Application([graph])
        arch = homogeneous_architecture(2)
        bus = initial_bus_access(app, arch, ms_per_byte=2.0)
        assert bus.slot_order == ("N1", "N2")
        assert bus.slot_lengths["N1"] == 6.0


class TestInitialPolicy:
    def test_p_plus_gets_requested_default(self):
        p = Process("P", {"N1": 1.0})
        assert initial_policy_for(p, FAULTS, 1) == Policy.reexecution(2)
        assert initial_policy_for(p, FAULTS, 3) == Policy.replication(2)

    def test_fixed_sets_win(self):
        px = Process("P", {"N1": 1.0}, fixed_policy="reexecution")
        pr = Process("P", {"N1": 1.0}, fixed_policy="replication")
        assert initial_policy_for(px, FAULTS, 3) == Policy.reexecution(2)
        assert initial_policy_for(pr, FAULTS, 1) == Policy.replication(2)

    def test_fault_free_collapses(self):
        p = Process("P", {"N1": 1.0}, fixed_policy="replication")
        assert initial_policy_for(p, NO_FAULTS, 1) == Policy.reexecution(0)


class TestPlaceReplicas:
    def test_distinct_nodes_preferred(self):
        p = Process("P", {"N1": 10.0, "N2": 10.0, "N3": 10.0})
        nodes = place_replicas(p, 3, "N2", load={})
        assert nodes[0] == "N2"
        assert sorted(nodes) == ["N1", "N2", "N3"]

    def test_load_breaks_ties(self):
        p = Process("P", {"N1": 10.0, "N2": 10.0, "N3": 10.0})
        nodes = place_replicas(p, 2, "N1", load={"N2": 100.0, "N3": 0.0})
        assert nodes == ("N1", "N3")

    def test_colocation_when_not_enough_nodes(self):
        p = Process("P", {"N1": 10.0, "N2": 10.0})
        nodes = place_replicas(p, 4, "N1", load={})
        assert len(nodes) == 4
        assert set(nodes) == {"N1", "N2"}


class TestInitialMPA:
    def _merged(self):
        graph = make_graph(
            {
                "A": {"N1": 10.0, "N2": 10.0},
                "B": {"N1": 50.0, "N2": 50.0},
                "C": {"N1": 50.0, "N2": 50.0},
            },
            [("A", "B"), ("A", "C")],
        )
        return merge_application(Application([graph]))

    def test_assigns_reexecution_to_p_plus(self):
        arch = homogeneous_architecture(2)
        app = Application([make_graph({"A": {"N1": 1.0, "N2": 1.0}})])
        merged = merge_application(app)
        impl = initial_mpa(merged, arch, FAULTS, initial_bus_access(app, arch))
        assert impl.policies["A"] == Policy.reexecution(2)

    def test_balances_load(self):
        merged = self._merged()
        arch = homogeneous_architecture(2)
        bus = initial_bus_access(Application([]), arch) if False else None
        from repro.ttp.bus import BusConfig

        bus = BusConfig.minimal(arch.node_names, 4)
        impl = initial_mpa(merged, arch, FAULTS, bus)
        # The two heavy processes must not share a node.
        assert impl.mapping.primary("B") != impl.mapping.primary("C")

    def test_respects_pre_mapped(self):
        graph = make_graph({"A": {"N1": 10.0, "N2": 1.0}})
        graph.processes  # noqa: touch
        g = ProcessGraph("g")
        g.add_process(Process("A", {"N1": 10.0, "N2": 1.0}, fixed_node="N1"))
        merged = merge_application(Application([g]))
        arch = homogeneous_architecture(2)
        from repro.ttp.bus import BusConfig

        impl = initial_mpa(merged, arch, FAULTS, BusConfig.minimal(arch.node_names, 4))
        assert impl.mapping.primary("A") == "N1"


class TestMoves:
    def _impl(self, fixed_node=None, fixed_policy=None):
        g = ProcessGraph("g")
        g.add_process(
            Process(
                "A",
                {"N1": 10.0, "N2": 10.0, "N3": 10.0},
                fixed_node=fixed_node,
                fixed_policy=fixed_policy,
            )
        )
        merged = merge_application(Application([g]))
        arch = homogeneous_architecture(3)
        from repro.ttp.bus import BusConfig

        bus = BusConfig.minimal(arch.node_names, 4)
        return merged, initial_mpa(merged, arch, FAULTS, bus)

    def test_remap_and_policy_moves_generated(self):
        merged, impl = self._impl()
        moves = generate_moves(merged, FAULTS, impl, ["A"], replica_counts=(1, 2, 3))
        kinds = {m.kind for m in moves}
        assert "remap" in kinds
        assert "policy" in kinds
        # Remaps to the two other nodes.
        assert sum(1 for m in moves if m.kind == "remap") == 2
        # Policies r=2 and r=3 (r=1 is current).
        assert sum(1 for m in moves if m.kind == "policy") == 2

    def test_fixed_node_suppresses_remaps(self):
        merged, impl = self._impl(fixed_node="N1")
        moves = generate_moves(merged, FAULTS, impl, ["A"], replica_counts=(1, 2, 3))
        assert all(m.kind != "remap" for m in moves)

    def test_fixed_policy_suppresses_policy_moves(self):
        merged, impl = self._impl(fixed_policy="reexecution")
        moves = generate_moves(merged, FAULTS, impl, ["A"], replica_counts=(1, 2, 3))
        assert all(m.kind != "policy" for m in moves)

    def test_replica_remap_for_replicated_process(self):
        merged, impl = self._impl()
        impl.policies["A"] = Policy.combined(2, 2)
        impl.mapping.assign("A", ("N1", "N2"))
        moves = generate_moves(merged, FAULTS, impl, ["A"], replica_counts=(2,))
        replica_moves = [m for m in moves if m.kind == "replica-remap"]
        assert len(replica_moves) == 1
        assert replica_moves[0].nodes == ("N1", "N3")

    def test_moves_never_reproduce_current_design(self):
        merged, impl = self._impl()
        moves = generate_moves(merged, FAULTS, impl, ["A"], replica_counts=(1, 2, 3))
        current = (impl.mapping["A"], impl.policies["A"])
        for move in moves:
            assert (move.nodes, move.policy) != current

    def test_apply_returns_new_implementation(self):
        merged, impl = self._impl()
        moves = generate_moves(merged, FAULTS, impl, ["A"], replica_counts=(1, 2, 3))
        new = moves[0].apply(impl)
        assert new is not impl
        assert impl.mapping["A"] == ("N1",)  # original untouched

    def test_checkpoint_segment_moves_generated(self):
        merged, impl = self._impl()
        moves = generate_moves(
            merged, FAULTS, impl, ["A"],
            replica_counts=(1,), checkpoint_segments=(2, 4),
        )
        checkpointed = [m for m in moves if m.policy.checkpoints > 0]
        assert {m.policy.checkpoints for m in checkpointed} == {2, 4}
        # Checkpointing keeps the current primary node and one replica.
        for move in checkpointed:
            assert move.nodes == (impl.mapping.primary("A"),)
            assert move.policy.n_replicas == 1

    def test_checkpoint_moves_respect_fixed_policy(self):
        merged, impl = self._impl(fixed_policy="replication")
        moves = generate_moves(
            merged, FAULTS, impl, ["A"],
            replica_counts=(3,), checkpoint_segments=(2,),
        )
        assert all(m.policy.checkpoints == 0 for m in moves)
