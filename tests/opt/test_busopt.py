"""Unit tests for bus access optimization."""

from repro.model.application import Application, Process, ProcessGraph
from repro.model.architecture import homogeneous_architecture
from repro.model.fault import FaultModel
from repro.model.merge import merge_application
from repro.opt.busopt import optimize_bus_access
from repro.opt.evaluator import Evaluator
from repro.opt.implementation import Implementation
from repro.opt.initial import initial_mpa
from repro.ttp.bus import BusConfig

from tests.conftest import make_graph


def _setup(slot_order):
    """A chain N1 -> N2 where the slot order strongly matters."""
    graph = make_graph(
        {"A": {"N1": 20.0}, "B": {"N2": 20.0}},
        [("A", "B", 2)],
    )
    app = Application([graph])
    arch = homogeneous_architecture(2)
    faults = FaultModel(k=1, mu=5.0)
    merged = merge_application(app)
    bus = BusConfig(slot_order, {"N1": 10.0, "N2": 10.0}, ms_per_byte=5.0)
    impl = initial_mpa(merged, arch, faults, bus)
    return merged, faults, impl


class TestBusOpt:
    def test_improves_bad_slot_order(self):
        # N2 before N1: the A->B message always waits almost a full round.
        merged, faults, impl = _setup(("N2", "N1"))
        evaluator = Evaluator(merged, faults)
        before = evaluator.evaluate(impl)
        best, after = optimize_bus_access(evaluator, impl)
        assert after.makespan <= before.makespan
        assert best.bus.slot_order in (("N1", "N2"), ("N2", "N1"))

    def test_keeps_good_configuration(self):
        merged, faults, impl = _setup(("N1", "N2"))
        evaluator = Evaluator(merged, faults)
        before = evaluator.evaluate(impl)
        best, after = optimize_bus_access(evaluator, impl)
        assert after.makespan <= before.makespan

    def test_never_worse(self):
        for order in (("N1", "N2"), ("N2", "N1")):
            merged, faults, impl = _setup(order)
            evaluator = Evaluator(merged, faults)
            before = evaluator.evaluate(impl)
            _, after = evaluator_cost = optimize_bus_access(evaluator, impl)
            assert not before.is_better_than(after)

    def test_scale_factors_considered(self):
        merged, faults, impl = _setup(("N2", "N1"))
        evaluator = Evaluator(merged, faults)
        best, after = optimize_bus_access(
            evaluator, impl, scale_factors=(2.0,)
        )
        before = evaluator.evaluate(impl)
        assert not before.is_better_than(after)

    def test_mapping_and_policies_untouched(self):
        merged, faults, impl = _setup(("N2", "N1"))
        evaluator = Evaluator(merged, faults)
        best, _ = optimize_bus_access(evaluator, impl)
        assert best.mapping["A"] == impl.mapping["A"]
        assert best.policies["A"] == impl.policies["A"]
