"""White-box tests for the tabu search selective history (paper Fig. 9)."""

from repro.opt.cost import Cost
from repro.opt.moves import Move
from repro.opt.tabu import _select_move, _update_history
from repro.model.policy import Policy


def _move(process: str) -> Move:
    return Move(
        process=process,
        nodes=("N1",),
        policy=Policy.reexecution(1),
        kind="remap",
    )


def _cost(makespan: float) -> Cost:
    return Cost(schedulable=True, degree=0.0, makespan=makespan)


class TestSelectMove:
    def test_best_non_tabu_improving_selected(self):
        evaluated = [(_move("A"), _cost(100.0)), (_move("B"), _cost(90.0))]
        tabu = {"A": 0, "B": 0}
        wait = {"A": 0, "B": 0}
        chosen = _select_move(evaluated, tabu, wait, _cost(95.0), graph_size=10)
        assert chosen is not None
        assert chosen[0].process == "B"

    def test_tabu_move_skipped_unless_aspired(self):
        evaluated = [(_move("A"), _cost(90.0)), (_move("B"), _cost(100.0))]
        tabu = {"A": 3, "B": 0}
        wait = {"A": 0, "B": 0}
        # A is tabu and does NOT beat the best-so-far (85): select B even
        # though it is worse.
        chosen = _select_move(evaluated, tabu, wait, _cost(85.0), graph_size=10)
        assert chosen[0].process == "B"

    def test_aspiration_accepts_tabu_move_beating_best(self):
        evaluated = [(_move("A"), _cost(80.0)), (_move("B"), _cost(100.0))]
        tabu = {"A": 3, "B": 0}
        wait = {"A": 0, "B": 0}
        chosen = _select_move(evaluated, tabu, wait, _cost(85.0), graph_size=10)
        assert chosen[0].process == "A"  # tabu but better than best-so-far

    def test_diversification_preferred_over_non_improving(self):
        evaluated = [(_move("A"), _cost(100.0)), (_move("B"), _cost(99.0))]
        tabu = {"A": 0, "B": 0}
        wait = {"A": 50, "B": 0}  # A has waited longer than |graph|=10
        chosen = _select_move(evaluated, tabu, wait, _cost(85.0), graph_size=10)
        assert chosen[0].process == "A"

    def test_everything_tabu_falls_back_to_best_overall(self):
        evaluated = [(_move("A"), _cost(100.0)), (_move("B"), _cost(99.0))]
        tabu = {"A": 3, "B": 3}
        wait = {"A": 0, "B": 0}
        chosen = _select_move(evaluated, tabu, wait, _cost(85.0), graph_size=10)
        assert chosen[0].process == "B"

    def test_empty_neighbourhood(self):
        assert _select_move([], {}, {}, _cost(1.0), 10) is None


class TestUpdateHistory:
    def test_moved_process_stamped(self):
        tabu = {"A": 0, "B": 2}
        wait = {"A": 5, "B": 1}
        _update_history(tabu, wait, "A", tenure=4)
        assert tabu["A"] == 4
        assert wait["A"] == 0

    def test_others_decay_and_age(self):
        tabu = {"A": 0, "B": 2}
        wait = {"A": 5, "B": 1}
        _update_history(tabu, wait, "A", tenure=4)
        assert tabu["B"] == 1  # decremented
        assert wait["B"] == 2  # aged

    def test_zero_tabu_stays_zero(self):
        tabu = {"A": 0, "B": 0}
        wait = {"A": 0, "B": 0}
        _update_history(tabu, wait, "B", tenure=2)
        assert tabu["A"] == 0
