"""Unit tests for cost ordering and the caching evaluator."""

from repro.model.application import Application
from repro.model.fault import FaultModel
from repro.model.merge import merge_application
from repro.opt.cost import WORST_COST, Cost
from repro.opt.evaluator import Evaluator
from repro.opt.implementation import Implementation
from repro.opt.initial import initial_bus_access, initial_mpa
from repro.model.architecture import homogeneous_architecture
from repro.model.policy import Policy

from tests.conftest import make_graph


class TestCostOrdering:
    def test_schedulable_beats_unschedulable(self):
        good = Cost(schedulable=True, degree=0.0, makespan=500.0)
        bad = Cost(schedulable=False, degree=1.0, makespan=100.0)
        assert good.is_better_than(bad)

    def test_lower_degree_wins_among_unschedulable(self):
        a = Cost(schedulable=False, degree=5.0, makespan=100.0)
        b = Cost(schedulable=False, degree=10.0, makespan=90.0)
        assert a.is_better_than(b)

    def test_lower_makespan_wins_among_schedulable(self):
        a = Cost(schedulable=True, degree=0.0, makespan=90.0)
        b = Cost(schedulable=True, degree=0.0, makespan=100.0)
        assert a.is_better_than(b)

    def test_worst_cost_loses_everything(self):
        any_cost = Cost(schedulable=False, degree=1e12, makespan=1e12)
        assert any_cost.is_better_than(WORST_COST)

    def test_str_renders(self):
        assert "schedulable" in str(Cost(True, 0.0, 10.0))
        assert "unschedulable" in str(Cost(False, 3.0, 10.0))


def _setup():
    graph = make_graph(
        {"A": {"N1": 10.0, "N2": 12.0}, "B": {"N1": 20.0, "N2": 25.0}},
        [("A", "B", 2)],
    )
    app = Application([graph])
    arch = homogeneous_architecture(2)
    faults = FaultModel(k=1, mu=5.0)
    merged = merge_application(app)
    bus = initial_bus_access(app, arch)
    impl = initial_mpa(merged, arch, faults, bus)
    return merged, faults, impl


class TestEvaluator:
    def test_cache_hits_on_identical_design(self):
        merged, faults, impl = _setup()
        evaluator = Evaluator(merged, faults)
        first = evaluator.evaluate(impl)
        second = evaluator.evaluate(impl.copy())
        assert first == second
        assert evaluator.evaluations == 1
        assert evaluator.cache_hits == 1

    def test_cache_distinguishes_designs(self):
        merged, faults, impl = _setup()
        evaluator = Evaluator(merged, faults)
        evaluator.evaluate(impl)
        other = impl.with_move("A", ("N2",), Policy.reexecution(1))
        evaluator.evaluate(other)
        assert evaluator.evaluations == 2

    def test_cache_can_be_disabled(self):
        merged, faults, impl = _setup()
        evaluator = Evaluator(merged, faults, cache=False)
        evaluator.evaluate(impl)
        evaluator.evaluate(impl)
        assert evaluator.evaluations == 2
        assert evaluator.cache_hits == 0

    def test_cost_matches_schedule(self):
        merged, faults, impl = _setup()
        evaluator = Evaluator(merged, faults)
        cost = evaluator.evaluate(impl)
        schedule = evaluator.schedule(impl)
        assert cost.makespan == schedule.makespan
        assert cost.schedulable == schedule.is_schedulable
