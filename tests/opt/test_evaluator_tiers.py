"""Tests of the evaluator's tier surface and its counter contracts.

The consolidated surface (see the module docstring of
:mod:`repro.opt.evaluator`) promises:

* ``evaluations`` counts *pricings not served by the cache* and always
  equals ``full_evaluations + delta_evaluations + ranked_evaluations``;
* realizing a record for an already-priced design is materialization, not
  evaluation — it moves ``record_rebuilds`` only (or nothing at all when a
  pending scheduler state is sealed);
* costs are tier-independent: the delta tier and the full tier price every
  candidate identically, and realized records are byte-equal;
* the ranking tier (``rank_neighbourhood``) prices estimate-only
  candidates as ``ranked_evaluations``; its shortlist re-pricings are
  ordinary delta evaluations, and estimates are never cached.
"""

from __future__ import annotations

from repro.gen.suite import generate_case
from repro.model.merge import merge_application
from repro.opt.evaluator import Evaluator
from repro.opt.initial import initial_bus_access, initial_mpa
from repro.opt.moves import generate_moves


def _setup(n=12, nodes=2, k=2, seed=1):
    case = generate_case(n, nodes, k, mu=5.0, seed=seed)
    merged = merge_application(case.application)
    bus = initial_bus_access(case.application, case.architecture)
    impl = initial_mpa(merged, case.architecture, case.faults, bus)
    return merged, case.faults, impl


def _neighbourhood(merged, faults, impl, evaluator):
    record = evaluator.evaluate_record(impl)[1]
    moves = generate_moves(
        merged, faults, impl, record.critical_path(), (1, 2, 3)
    )
    assert moves
    return moves


class TestCounters:
    def test_evaluations_splits_into_full_and_delta(self):
        merged, faults, impl = _setup()
        evaluator = Evaluator(merged, faults)
        moves = _neighbourhood(merged, faults, impl, evaluator)
        assert evaluator.full_evaluations == 1  # the base record
        candidates = evaluator.evaluate_many(impl, moves)
        assert len(candidates) == len(moves)
        assert evaluator.delta_evaluations == len(moves)
        assert evaluator.evaluations == (
            evaluator.full_evaluations + evaluator.delta_evaluations
        )
        assert evaluator.record_rebuilds == 0

    def test_repriced_neighbourhood_is_all_cache_hits(self):
        merged, faults, impl = _setup()
        evaluator = Evaluator(merged, faults)
        moves = _neighbourhood(merged, faults, impl, evaluator)
        first = evaluator.evaluate_many(impl, moves)
        evaluations = evaluator.evaluations
        hits = evaluator.cache_hits
        second = evaluator.evaluate_many(impl, moves)
        assert evaluator.evaluations == evaluations  # zero new pricings
        assert evaluator.cache_hits == hits + len(moves)
        for a, b in zip(first, second):
            assert a.cost == b.cost

    def test_realize_of_fresh_delta_pricing_is_free(self):
        """Sealing the pending state is neither an evaluation nor a rebuild."""
        merged, faults, impl = _setup()
        evaluator = Evaluator(merged, faults)
        moves = _neighbourhood(merged, faults, impl, evaluator)
        candidate = evaluator.evaluate_many(impl, moves)[0]
        evaluations = evaluator.evaluations
        record = evaluator.realize(candidate)
        assert evaluator.evaluations == evaluations
        assert evaluator.record_rebuilds == 0
        # Memoized: realizing again returns the same object.
        assert evaluator.realize(candidate) is record
        # The cache entry was filled in, so a view request for the same
        # design reuses the very record object.
        assert evaluator.schedule(candidate.implementation).record is record

    def test_realize_of_record_less_cache_hit_rebuilds_once(self):
        merged, faults, impl = _setup()
        evaluator = Evaluator(merged, faults)
        moves = _neighbourhood(merged, faults, impl, evaluator)
        evaluator.evaluate_many(impl, moves)  # prices, stores record-less
        hit = evaluator.evaluate_many(impl, moves)[0]  # cache hit, no state
        record = evaluator.realize(hit)
        assert evaluator.record_rebuilds == 1
        assert evaluator.realize(hit) is record
        assert evaluator.schedule(hit.implementation).record is record
        assert evaluator.record_rebuilds == 1


class TestTierParity:
    def test_delta_and_full_tier_agree(self):
        merged, faults, impl = _setup()
        delta_eval = Evaluator(merged, faults, cache=False)
        full_eval = Evaluator(merged, faults, cache=False, delta=False)
        moves = _neighbourhood(
            merged, faults, impl, Evaluator(merged, faults)
        )
        priced = delta_eval.evaluate_many(impl, moves)
        cold = full_eval.evaluate_many(impl, moves)
        assert delta_eval.delta_evaluations == len(moves)
        assert full_eval.delta_evaluations == 0
        assert full_eval.full_evaluations == len(moves)
        for a, b in zip(priced, cold):
            assert a.cost == b.cost
            assert delta_eval.realize(a) == full_eval.realize(b)

    def test_evaluate_delta_matches_cold_candidate_cost(self):
        merged, faults, impl = _setup()
        evaluator = Evaluator(merged, faults)
        moves = _neighbourhood(merged, faults, impl, evaluator)
        move = moves[0]
        candidate = evaluator.evaluate_delta(impl, move)
        cold = Evaluator(merged, faults, cache=False, delta=False)
        assert candidate.cost == cold.evaluate(move.apply(impl))
        assert (
            candidate.implementation.signature()
            == move.apply(impl).signature()
        )

    def test_context_is_cached_per_base(self):
        merged, faults, impl = _setup()
        evaluator = Evaluator(merged, faults)
        first = evaluator.context_for(impl)
        second = evaluator.context_for(impl.copy())
        assert first is second


class TestRankingTierCounters:
    def test_ranked_evaluations_split(self):
        merged, faults, impl = _setup()
        evaluator = Evaluator(merged, faults)
        moves = _neighbourhood(merged, faults, impl, evaluator)
        shortlist = 4
        assert len(moves) > shortlist
        ranked = evaluator.rank_neighbourhood(impl, moves, shortlist=shortlist)
        assert len(ranked) == len(moves)
        exact_priced = [r for r in ranked if r.exact is not None]
        estimated = [r for r in ranked if r.exact is None]
        assert len(exact_priced) == shortlist
        assert len(estimated) == len(moves) - shortlist
        assert evaluator.delta_evaluations == shortlist
        assert evaluator.ranked_evaluations == len(estimated)
        assert evaluator.evaluations == (
            evaluator.full_evaluations
            + evaluator.delta_evaluations
            + evaluator.ranked_evaluations
        )
        info = evaluator.cache_info()
        assert info.exact == (
            evaluator.full_evaluations + evaluator.delta_evaluations
        )
        assert info.ranked == evaluator.ranked_evaluations

    def test_estimates_are_never_cached(self):
        """Re-pricing after a ranking pass must exact-price exactly the
        candidates the shortlist skipped — estimates left no cache entry."""
        merged, faults, impl = _setup()
        evaluator = Evaluator(merged, faults)
        moves = _neighbourhood(merged, faults, impl, evaluator)
        shortlist = 4
        evaluator.rank_neighbourhood(impl, moves, shortlist=shortlist)
        delta_before = evaluator.delta_evaluations
        hits_before = evaluator.cache_hits
        evaluator.evaluate_many(impl, moves)
        assert evaluator.delta_evaluations == (
            delta_before + len(moves) - shortlist
        )
        assert evaluator.cache_hits == hits_before + shortlist

    def test_cached_neighbourhood_ranks_all_exact(self):
        merged, faults, impl = _setup()
        evaluator = Evaluator(merged, faults)
        moves = _neighbourhood(merged, faults, impl, evaluator)
        exact = evaluator.evaluate_many(impl, moves)
        evaluations = evaluator.evaluations
        hits = evaluator.cache_hits
        ranked = evaluator.rank_neighbourhood(impl, moves, shortlist=2)
        assert evaluator.evaluations == evaluations  # nothing re-priced
        assert evaluator.ranked_evaluations == 0
        assert evaluator.cache_hits == hits + len(moves)
        for candidate, r in zip(exact, ranked):
            assert r.exact is not None
            assert r.cost == candidate.cost

    def test_delta_disabled_degenerates_to_evaluate_many(self):
        merged, faults, impl = _setup()
        evaluator = Evaluator(merged, faults, cache=False, delta=False)
        moves = _neighbourhood(
            merged, faults, impl, Evaluator(merged, faults)
        )
        ranked = evaluator.rank_neighbourhood(impl, moves, shortlist=2)
        assert all(r.exact is not None for r in ranked)
        assert evaluator.ranked_evaluations == 0
        assert evaluator.full_evaluations == len(moves)

    def test_ranked_cost_tracks_exact_when_available(self):
        merged, faults, impl = _setup()
        evaluator = Evaluator(merged, faults)
        moves = _neighbourhood(merged, faults, impl, evaluator)
        ranked = evaluator.rank_neighbourhood(impl, moves, shortlist=3)
        for r in ranked:
            if r.exact is not None:
                assert r.cost == r.exact.cost
            else:
                assert r.cost is r.estimate
                assert r.error >= 0.0


class TestCacheOffBehaviour:
    def test_uncached_evaluator_prices_every_request(self):
        merged, faults, impl = _setup()
        evaluator = Evaluator(merged, faults, cache=False)
        moves = _neighbourhood(
            merged, faults, impl, Evaluator(merged, faults)
        )
        evaluator.evaluate_many(impl, moves)
        evaluator.evaluate_many(impl, moves)
        assert evaluator.cache_hits == 0
        assert evaluator.delta_evaluations == 2 * len(moves)
        info = evaluator.cache_info()
        assert info.size == 0 and info.bound == 0
