"""Tests for the single-pass evaluation pipeline (evaluate_full + LRU cache).

The tentpole invariant: one ``list_schedule`` pass per unique design point.
``evaluate_full`` must price and schedule consistently, the LRU must stay
bounded, and a repeated (identical) tabu run must be served entirely from
the cache — zero additional schedulings.
"""

import random

from repro.model.architecture import homogeneous_architecture
from repro.model.fault import FaultModel
from repro.model.merge import merge_application
from repro.model.application import Application
from repro.model.policy import Policy
from repro.opt.evaluator import Evaluator
from repro.opt.initial import initial_bus_access, initial_mpa
from repro.opt.tabu import tabu_search_mpa
from repro.gen.suite import generate_case

from tests.conftest import make_graph


def _random_implementation(rng, merged, base, faults, nodes):
    """A random valid design point derived from ``base``."""
    impl = base.copy()
    for name in merged:
        r = rng.randint(1, faults.k + 1)
        policy = Policy.combined(r, faults.k)
        chosen = tuple(rng.sample(nodes, r))
        impl.policies[name] = policy
        impl.mapping.assign(name, chosen)
    return impl


class TestEvaluateFull:
    def test_cost_matches_evaluate_for_random_implementations(self):
        """Property: evaluate_full's cost equals evaluate's, and both match
        the cost derived from the returned schedule."""
        case = generate_case(12, 3, 2, mu=5.0, seed=3)
        merged = merge_application(case.application)
        bus = initial_bus_access(case.application, case.architecture)
        base = initial_mpa(merged, case.architecture, case.faults, bus)
        nodes = list(case.architecture.node_names)
        rng = random.Random(0xBEEF)

        cached = Evaluator(merged, case.faults)
        uncached = Evaluator(merged, case.faults, cache=False)
        for _ in range(25):
            impl = _random_implementation(rng, merged, base, case.faults, nodes)
            cost, schedule = cached.evaluate_full(impl)
            assert cost == uncached.evaluate(impl)
            assert cost == cached.cost_of(schedule)
            assert cost.makespan == schedule.makespan
            # A second request is a pure cache hit, never a reschedule: the
            # cache retains the compact record, so the re-materialized view
            # wraps the *same* record object (views themselves are rebuilt).
            before = cached.evaluations
            assert cached.evaluate(impl) == cost
            assert cached.schedule(impl).record is schedule.record
            assert cached.evaluations == before

    def test_lru_cache_stays_bounded(self):
        case = generate_case(8, 2, 1, mu=5.0, seed=0)
        merged = merge_application(case.application)
        bus = initial_bus_access(case.application, case.architecture)
        base = initial_mpa(merged, case.architecture, case.faults, bus)
        nodes = list(case.architecture.node_names)
        rng = random.Random(7)

        evaluator = Evaluator(merged, case.faults, cache_size=4)
        for _ in range(20):
            impl = _random_implementation(rng, merged, base, case.faults, nodes)
            evaluator.evaluate_full(impl)
        assert len(evaluator._cache) <= 4

    def test_lru_evicts_least_recently_used(self):
        graph = make_graph(
            {"A": {"N1": 10.0, "N2": 12.0}, "B": {"N1": 20.0, "N2": 25.0}},
            [("A", "B", 2)],
        )
        app = Application([graph])
        arch = homogeneous_architecture(2)
        faults = FaultModel(k=1, mu=5.0)
        merged = merge_application(app)
        bus = initial_bus_access(app, arch)
        impl_a = initial_mpa(merged, arch, faults, bus)
        impl_b = impl_a.with_move("A", ("N2",), Policy.reexecution(1))
        impl_c = impl_a.with_move("B", ("N1",), Policy.reexecution(1))

        evaluator = Evaluator(merged, faults, cache_size=2)
        evaluator.evaluate(impl_a)
        evaluator.evaluate(impl_b)
        evaluator.evaluate(impl_a)  # refresh a: b is now least recent
        evaluator.evaluate(impl_c)  # evicts b
        evaluations = evaluator.evaluations
        evaluator.evaluate(impl_a)
        assert evaluator.evaluations == evaluations  # hit
        evaluator.evaluate(impl_b)
        assert evaluator.evaluations == evaluations + 1  # miss: was evicted

    def test_cache_hit_rate_accounting(self):
        case = generate_case(8, 2, 1, mu=5.0, seed=1)
        merged = merge_application(case.application)
        bus = initial_bus_access(case.application, case.architecture)
        impl = initial_mpa(merged, case.architecture, case.faults, bus)
        evaluator = Evaluator(merged, case.faults)
        assert evaluator.cache_hit_rate == 0.0
        evaluator.evaluate(impl)
        evaluator.evaluate(impl)
        evaluator.evaluate(impl)
        assert evaluator.evaluations == 1
        assert evaluator.cache_hits == 2
        assert evaluator.cache_hit_rate == 2 / 3


class TestTabuSinglePass:
    def test_identical_tabu_run_costs_zero_extra_evaluations(self):
        """Re-running the same tabu search is served entirely by the cache.

        This pins the tentpole rewiring: the chosen move's implementation
        and schedule are reused (no ``move.apply`` + ``evaluator.schedule``
        re-derivation), so every design point the search touches is
        scheduled exactly once across both runs.
        """
        case = generate_case(10, 2, 2, mu=5.0, seed=0)
        merged = merge_application(case.application)
        bus = initial_bus_access(case.application, case.architecture)
        start = initial_mpa(merged, case.architecture, case.faults, bus)
        evaluator = Evaluator(merged, case.faults)

        first = tabu_search_mpa(
            merged, case.faults, evaluator, start, (1, 2, 3),
            max_iterations=5, stop_when_schedulable=False,
        )
        evaluations_first = evaluator.evaluations
        hits_first = evaluator.cache_hits
        assert evaluations_first > 0

        second = tabu_search_mpa(
            merged, case.faults, evaluator, start, (1, 2, 3),
            max_iterations=5, stop_when_schedulable=False,
        )
        assert second.cost == first.cost
        assert second.implementation.signature() == first.implementation.signature()
        # Zero new schedulings: everything the identical run touches hits.
        assert evaluator.evaluations == evaluations_first
        assert evaluator.cache_hits > hits_first
        # Accounting stays consistent: every request is a miss or a hit.
        total = evaluator.evaluations + evaluator.cache_hits
        assert total == evaluations_first + hits_first + (
            evaluator.cache_hits - hits_first
        )
