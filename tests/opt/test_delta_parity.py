"""Golden-parity suite of the delta evaluation kernel.

The kernel's contract (DESIGN.md, "Incremental evaluation kernel") is that
a delta re-schedule of a moved design is *byte-identical* to a cold full
pass over the moved design's FT graph — same instance placement order,
same float arithmetic, same MEDL, same record.  These tests drive random
cases through random move chains and compare against
:func:`repro.schedule.list_scheduler.build_schedule_record` field by field,
plus the two supporting exact-parity contracts the kernel rests on:

* :meth:`EvalContext.moved_priorities` equals a full
  :func:`~repro.schedule.priorities.pcp_priorities` recomputation on the
  overlay graph, bit for bit;
* :meth:`~repro.schedule.state.SchedulerState.cost_view` equals the sealed
  record's ``(degree_of_schedulability, makespan)``, bit for bit.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.gen.suite import generate_case
from repro.model.ftgraph import build_ft_graph
from repro.model.merge import merge_application
from repro.opt.initial import initial_bus_access, initial_mpa
from repro.opt.moves import generate_moves
from repro.schedule.incremental import EvalContext, MoveCone
from repro.schedule.list_scheduler import build_schedule_record
from repro.schedule.priorities import pcp_priorities

_SLOW = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _build(n, nodes, k, seed, replicas=None):
    case = generate_case(n, nodes, k, mu=5.0 if k else 0.0, seed=seed)
    merged = merge_application(case.application)
    bus = initial_bus_access(case.application, case.architecture)
    if replicas is None:
        impl = initial_mpa(merged, case.architecture, case.faults, bus)
    else:
        impl = initial_mpa(
            merged, case.architecture, case.faults, bus, replicas
        )
    return merged, case.faults, bus, impl


def _capture(merged, faults, bus, impl):
    ft = build_ft_graph(merged, impl.policies, impl.mapping, faults)
    return EvalContext.capture(merged, ft, faults, bus)


def _cold_record(merged, faults, bus, impl):
    ft = build_ft_graph(merged, impl.policies, impl.mapping, faults)
    return ft, build_schedule_record(merged, ft, faults, bus)


@given(
    n=st.integers(8, 14),
    nodes=st.integers(2, 3),
    k=st.integers(0, 3),
    seed=st.integers(0, 7),
    picks=st.lists(st.integers(0, 999), min_size=1, max_size=3),
)
@_SLOW
def test_delta_record_byte_identical_along_move_chains(
    n, nodes, k, seed, picks
):
    """Random case, random chain of search moves: delta == cold, bytewise.

    Each step captures the current implementation as the base, applies one
    randomly chosen neighbourhood move through the delta kernel and
    compares the sealed record against a cold full pass of the moved
    design.  ``repr`` equality is the byte-identity check: every field is
    a flat tuple of str/int/float and float repr is the shortest exact
    round-trip, so it distinguishes even ``0.0`` from ``-0.0``.
    """
    merged, faults, bus, impl = _build(n, nodes, k, seed)
    for pick in picks:
        context = _capture(merged, faults, bus, impl)
        moves = generate_moves(
            merged, faults, impl, context.record.critical_path(), (1, 2, 3)
        )
        if not moves:
            return
        move = moves[pick % len(moves)]
        candidate = move.apply(impl)

        # Incremental priorities: bit-equal to a full recomputation on the
        # overlay graph.
        moved_ft, priorities, cone = context.plan_move(
            candidate.policies, candidate.mapping, move.process
        )
        assert priorities == pcp_priorities(moved_ft, bus, faults)
        assert cone.process == move.process
        assert 0 <= cone.earliest_rank <= len(context.record)

        # Delta replay: unsealed cost parity, then sealed byte parity.
        state, stats = context.delta_schedule(
            candidate.policies, candidate.mapping, move.process
        )
        degree, makespan = state.cost_view()
        delta_rec = state.seal()
        assert degree == delta_rec.degree_of_schedulability()
        assert makespan == delta_rec.makespan

        cold_ft, cold_rec = _cold_record(merged, faults, bus, candidate)
        assert delta_rec == cold_rec
        assert repr(delta_rec) == repr(cold_rec)

        # Work accounting: resumed prefix + replayed suffix covers the
        # moved design exactly.
        assert stats.resumed_rank + stats.scheduled == len(cold_ft)
        assert stats.copied >= 0 and stats.recomputed >= 0

        impl = candidate  # chain: the moved design becomes the next base


def test_delta_record_parity_on_replicated_base():
    """Deterministic spot check with replicated initial policies.

    Replicas > 1 exercise the fast/guaranteed frame pairs of the MEDL and
    the group-size transfer logic of the snapshot resume (replica-count
    moves shrink and grow instance groups).
    """
    merged, faults, bus, impl = _build(12, 3, 2, seed=3, replicas=2)
    context = _capture(merged, faults, bus, impl)
    moves = generate_moves(
        merged, faults, impl, context.record.critical_path(), (1, 2, 3)
    )
    assert moves
    for move in moves:
        candidate = move.apply(impl)
        delta_rec, stats = context.delta_record(
            candidate.policies, candidate.mapping, move.process
        )
        _, cold_rec = _cold_record(merged, faults, bus, candidate)
        assert delta_rec == cold_rec
        assert repr(delta_rec) == repr(cold_rec)


def test_move_cone_is_exposed_on_move():
    """``Move.cone`` mirrors ``EvalContext.plan_move``'s cone."""
    merged, faults, bus, impl = _build(10, 2, 2, seed=0)
    context = _capture(merged, faults, bus, impl)
    moves = generate_moves(
        merged, faults, impl, context.record.critical_path(), (1, 2)
    )
    assert moves
    for move in moves[:5]:
        cone = move.cone(context, impl)
        assert isinstance(cone, MoveCone)
        candidate = move.apply(impl)
        _, _, planned = context.plan_move(
            candidate.policies, candidate.mapping, move.process
        )
        assert cone == planned
        # The moved process's instances (old and new groups) are always
        # cone seeds.
        moved_ft = build_ft_graph(
            merged, candidate.policies, candidate.mapping, faults
        )
        assert set(context.ft.group_of[move.process]) <= cone.changed
        assert set(moved_ft.group_of[move.process]) <= cone.changed


def test_capture_record_matches_untraced_cold_pass():
    """Capturing (traced run + snapshots) does not perturb the schedule."""
    merged, faults, bus, impl = _build(14, 3, 3, seed=5)
    context = _capture(merged, faults, bus, impl)
    _, cold_rec = _cold_record(merged, faults, bus, impl)
    assert context.record == cold_rec
    assert repr(context.record) == repr(cold_rec)
