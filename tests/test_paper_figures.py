"""Semantic reproductions of the paper's illustrative figures (Figs. 2-5).

These tests pin the qualitative claims of the motivation sections: when
re-execution beats replication, when the combination wins, and why mapping
must be fault-tolerance aware.  Exact millisecond values follow our fixed
semantics (DESIGN.md §3); the *comparisons* are the paper's.
"""

import pytest

from repro.model.fault import FaultModel
from repro.model.policy import Policy
from repro.ttp.bus import BusConfig

from tests.conftest import make_graph, schedule_single_graph

BUS2 = BusConfig(("N1", "N2"), {"N1": 10.0, "N2": 10.0}, ms_per_byte=5.0)
K1 = FaultModel(k=1, mu=10.0)
K2 = FaultModel(k=2, mu=10.0)


class TestFigure2WorstCases:
    """Fig. 2: the three fault-tolerance techniques for one process."""

    def _p1(self, policy, mapping, faults=K2):
        graph = make_graph({"P1": {"N1": 30.0, "N2": 30.0, "N3": 30.0}})
        bus3 = BusConfig.minimal(("N1", "N2", "N3"), 4)
        return schedule_single_graph(graph, faults, {"P1": policy}, {"P1": mapping}, bus3)

    def test_fig2a_reexecution(self):
        schedule = self._p1(Policy.reexecution(2), "N1")
        assert schedule.completions["P1"] == pytest.approx(110.0)

    def test_fig2b_replication(self):
        schedule = self._p1(Policy.replication(2), ("N1", "N2", "N3"))
        assert schedule.completions["P1"] == pytest.approx(30.0)

    def test_fig2c_reexecuted_replicas(self):
        schedule = self._p1(Policy.combined(2, 2), ("N1", "N2"))
        # Worst case: the plain replica is killed (1 fault), the re-executed
        # replica absorbs the second fault: 30 + (30 + 10) = 70.
        assert schedule.completions["P1"] == pytest.approx(70.0)

    def test_fig2_ordering(self):
        rex = self._p1(Policy.reexecution(2), "N1").completions["P1"]
        rep = self._p1(Policy.replication(2), ("N1", "N2", "N3")).completions["P1"]
        mix = self._p1(Policy.combined(2, 2), ("N1", "N2")).completions["P1"]
        assert rep < mix < rex


class TestFigure3PolicyTradeoff:
    """Fig. 3: neither policy dominates — it depends on the application."""

    def test_a1_reexecution_beats_replication_on_unequal_nodes(self):
        """Fig. 3's "N1 is faster than N2": replication must burn the slow
        node for its second copies while re-execution clusters on the fast
        one and shares a single recovery slack."""
        graph = make_graph(
            {
                "P1": {"N1": 40.0, "N2": 110.0},
                "P2": {"N1": 40.0, "N2": 110.0},
                "P3": {"N1": 50.0, "N2": 140.0},
            },
            [("P1", "P3", 1), ("P2", "P3", 1)],
        )
        rex = schedule_single_graph(
            graph,
            K1,
            {n: Policy.reexecution(1) for n in ("P1", "P2", "P3")},
            {"P1": "N1", "P2": "N1", "P3": "N1"},
            BUS2,
        )
        rep = schedule_single_graph(
            graph,
            K1,
            {n: Policy.replication(1) for n in ("P1", "P2", "P3")},
            {"P1": ("N1", "N2"), "P2": ("N1", "N2"), "P3": ("N1", "N2")},
            BUS2,
        )
        assert rex.makespan < rep.makespan

    def test_a2_replication_beats_reexecution_for_remote_chain(self):
        """A chain crossing nodes: masked messages wait out the slack."""
        graph = make_graph(
            {
                "P1": {"N1": 40.0, "N2": 40.0},
                "P2": {"N2": 40.0, "N1": 40.0},
            },
            [("P1", "P2", 1)],
        )
        rex = schedule_single_graph(
            graph,
            K2,
            {"P1": Policy.reexecution(2), "P2": Policy.reexecution(2)},
            {"P1": "N1", "P2": "N2"},
            BUS2,
        )
        rep = schedule_single_graph(
            graph,
            K2,
            {"P1": Policy.replication(2), "P2": Policy.reexecution(2)},
            {"P1": ("N1", "N2", "N1"), "P2": "N2"},
            BUS2,
        )
        assert rep.makespan < rex.makespan


class TestFigure4Combining:
    """Fig. 4: combining re-execution and replication beats re-execution only."""

    def _graph(self):
        return make_graph(
            {
                "P1": {"N1": 40.0, "N2": 50.0},
                "P2": {"N1": 60.0, "N2": 60.0},
                "P3": {"N1": 80.0, "N2": 80.0},
                "P4": {"N1": 40.0, "N2": 50.0},
            },
            [("P1", "P2", 1), ("P1", "P3", 1), ("P2", "P4", 1)],
        )

    def test_replicating_the_fanout_process_wins(self):
        graph = self._graph()
        mapping_rex = {"P1": "N2", "P2": "N1", "P3": "N2", "P4": "N1"}
        rex = schedule_single_graph(
            graph,
            K1,
            {n: Policy.reexecution(1) for n in ("P1", "P2", "P3", "P4")},
            mapping_rex,
            BUS2,
        )
        mix = schedule_single_graph(
            graph,
            K1,
            {
                "P1": Policy.replication(1),
                "P2": Policy.reexecution(1),
                "P3": Policy.reexecution(1),
                "P4": Policy.reexecution(1),
            },
            {"P1": ("N1", "N2"), "P2": "N1", "P3": "N2", "P4": "N1"},
            BUS2,
        )
        assert mix.makespan < rex.makespan


class TestFigure5MappingInterplay:
    """Fig. 5: the best non-fault-tolerant mapping is bad once faults count."""

    def _graph(self):
        # Balanced workload that splits nicely over two nodes without faults.
        return make_graph(
            {
                "P1": {"N1": 40.0, "N2": 40.0},
                "P2": {"N1": 60.0, "N2": 60.0},
                "P3": {"N1": 60.0, "N2": 60.0},
                "P4": {"N1": 40.0, "N2": 40.0},
            },
            [("P1", "P2", 1), ("P1", "P3", 1), ("P2", "P4", 1), ("P3", "P4", 1)],
        )

    def test_clustering_beats_nft_optimal_split_under_faults(self):
        graph = self._graph()
        policies = {n: Policy.reexecution(1) for n in ("P1", "P2", "P3", "P4")}
        split = schedule_single_graph(
            graph,
            K1,
            policies,
            {"P1": "N1", "P2": "N1", "P3": "N2", "P4": "N1"},
            BUS2,
        )
        clustered = schedule_single_graph(
            graph,
            K1,
            policies,
            {"P1": "N1", "P2": "N1", "P3": "N1", "P4": "N1"},
            BUS2,
        )
        assert clustered.makespan < split.makespan

    def test_split_is_fine_without_faults(self):
        from repro.model.fault import NO_FAULTS

        graph = self._graph()
        policies = {n: Policy.reexecution(0) for n in ("P1", "P2", "P3", "P4")}
        split = schedule_single_graph(
            graph,
            NO_FAULTS,
            policies,
            {"P1": "N1", "P2": "N1", "P3": "N2", "P4": "N1"},
            BUS2,
        )
        clustered = schedule_single_graph(
            graph,
            NO_FAULTS,
            policies,
            {"P1": "N1", "P2": "N1", "P3": "N1", "P4": "N1"},
            BUS2,
        )
        # Without faults, splitting the parallel stage is at least as good.
        assert split.makespan <= clustered.makespan + 1e-9
