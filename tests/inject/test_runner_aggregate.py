"""Shard execution, streaming aggregation, and the wire codecs."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.inject.aggregate import InjectAggregate, ShardResult
from repro.inject.driver import run_inject_sweep
from repro.inject.importance import importance_scenarios
from repro.inject.plan import plan_sweep
from repro.inject.runner import run_shard
from repro.inject.space import ScenarioSpace
from repro.io.inject_codec import (
    decode_shard_job,
    decode_shard_result,
    encode_shard_job,
    encode_shard_result,
)
from repro.io.queue_codec import payload_kind
from repro.sim.validate import validate_schedule
from repro.schedule.table import SystemSchedule
from repro.sim.faults import enumerate_scenarios


def make_plan(target, budget=100_000, shard_size=64, seed=0, tier="auto"):
    context = target.build_context()
    space = ScenarioSpace.of(context.ft, target.faults.k)
    ranked = importance_scenarios(target.record, context.ft, target.faults.k)
    return plan_sweep(
        space, len(ranked), budget, shard_size=shard_size, seed=seed, tier=tier
    )


def test_exhaustive_sweep_agrees_with_validate_schedule(small_target):
    """The sharded exhaustive sweep is the old validator, redistributed."""
    context = small_target.build_context()
    schedule = SystemSchedule.from_record(
        small_target.record, context.merged, context.ft,
        small_target.faults, small_target.implementation.bus,
    )
    reference = validate_schedule(
        schedule,
        scenarios=enumerate_scenarios(context.ft, small_target.faults.k),
    )

    aggregate, stats = run_inject_sweep(
        small_target, make_plan(small_target, tier="exhaustive")
    )
    assert stats.completed == len(aggregate.plan.shards)
    assert aggregate.complete
    assert aggregate.ok == reference.ok
    # Coverage counters account for the entire space, every stratum exact.
    space = ScenarioSpace.of(context.ft, small_target.faults.k)
    for t, stratum in aggregate.strata.items():
        assert stratum.covered == space.stratum_size(t)
    assert aggregate.residual_upper_bound() == (
        0.0 if reference.ok else pytest.approx(
            aggregate.violation_scenarios / space.total, abs=1e-12
        )
    )


def test_shard_results_fold_order_independently(small_target):
    plan = make_plan(small_target, shard_size=16)
    fingerprint = small_target.fingerprint()
    results = [run_shard(small_target, s, fingerprint) for s in plan.shards]

    forward = InjectAggregate(plan=plan)
    for result in results:
        forward.fold(result)
    backward = InjectAggregate(plan=plan)
    for result in reversed(results):
        backward.fold(result)

    assert forward.to_dict() == backward.to_dict()


def test_double_fold_is_rejected(small_target):
    plan = make_plan(small_target, shard_size=16)
    result = run_shard(small_target, plan.shards[0], small_target.fingerprint())
    aggregate = InjectAggregate(plan=plan)
    aggregate.fold(result)
    with pytest.raises(SimulationError):
        aggregate.fold(result)


def test_stratified_shards_are_reproducible(replicated_target):
    plan = make_plan(
        replicated_target, budget=300, shard_size=50, tier="stratified"
    )
    spec = next(s for s in plan.shards if s.tier == "stratified")
    fingerprint = replicated_target.fingerprint()
    first = run_shard(replicated_target, spec, fingerprint).to_dict()
    second = run_shard(replicated_target, spec, fingerprint).to_dict()
    for summary in (first, second):
        summary.pop("elapsed_s")
        summary.pop("phase_s")
    assert first == second
    # Draws-with-replacement: trials may exceed unique scenarios, never
    # the other way around.
    assert first["draws"] == spec.draws >= first["scenarios"] >= 1


def test_shard_job_codec_round_trip(small_target):
    plan = make_plan(small_target, shard_size=16)
    payload = encode_shard_job(small_target.to_dict(), plan.shards[0])
    assert payload_kind(payload) == "inject_shard"
    target, spec, target_fp = decode_shard_job(payload)
    assert spec == plan.shards[0]
    assert target_fp == small_target.fingerprint()
    assert target.fingerprint() == small_target.fingerprint()
    # Byte-stable re-encoding: payload text is canonical.
    assert encode_shard_job(target.to_dict(), spec) == payload


def test_shard_result_codec_round_trip(small_target):
    plan = make_plan(small_target, shard_size=16)
    result = run_shard(small_target, plan.shards[0], small_target.fingerprint())
    text = encode_shard_result(result)
    decoded = decode_shard_result(text)
    assert decoded == result
    assert encode_shard_result(decoded) == text


def test_legacy_case_job_payloads_are_untouched():
    """CaseJob payloads carry no kind marker and keep their bytes."""
    from repro.experiments.parallel import CaseJob
    from repro.io.queue_codec import decode_job, encode_job

    job = CaseJob(
        n_processes=8, n_nodes=2, k=2, mu=5.0, seed=0,
        variants=("NFT",), time_scale=1.0, config=None, label="t",
    )
    payload = encode_job(job)
    assert payload_kind(payload) is None
    assert encode_job(decode_job(payload)) == payload


def test_worker_dispatches_inject_shards(small_target):
    """A Worker drains inject shards from a broker next to nothing else."""
    from repro.inject.partition import shard_fingerprint
    from repro.queue.memory import MemoryBroker
    from repro.queue.worker import Worker

    plan = make_plan(small_target, shard_size=32)
    target_fp = small_target.fingerprint()
    target_dict = small_target.to_dict()
    broker = MemoryBroker()
    fingerprints = [shard_fingerprint(target_fp, s) for s in plan.shards]
    for fingerprint, spec in zip(fingerprints, plan.shards):
        broker.enqueue(fingerprint, encode_shard_job(target_dict, spec), 3)

    worker = Worker(broker, worker_id="w0", poll_interval_s=0.01)
    acked = worker.run(drain=True)
    assert acked == len(plan.shards)
    assert worker.failed == 0

    aggregate = InjectAggregate(plan=plan)
    for fingerprint in fingerprints:
        result = decode_shard_result(broker.result(fingerprint))
        # Workers replay through the batched kernel, not the scalar
        # loop: only the batch path spends classify time per block.
        assert result.classify_s > 0.0
        aggregate.fold(result)
    assert aggregate.complete
    inline, _ = run_inject_sweep(small_target, plan)
    queued_summary = aggregate.to_dict()
    inline_summary = inline.to_dict()
    for summary in (queued_summary, inline_summary):
        summary.pop("elapsed_s")
        summary.pop("scenarios_per_sec")
        summary.pop("phase_s")
    assert queued_summary == inline_summary


def test_batched_shards_match_scalar_reference(replicated_target):
    """Every tier, every shard: batch path == scalar path, byte for byte.

    Small odd block widths force multi-block streaming with ragged final
    blocks; 0 is the scalar reference."""
    plan = make_plan(replicated_target, budget=400, shard_size=64)
    fingerprint = replicated_target.fingerprint()
    assert {s.tier for s in plan.shards} >= {"importance", "stratified"}
    for spec in plan.shards:
        summaries = [
            run_shard(
                replicated_target, spec, fingerprint, batch_size=batch_size
            ).to_dict()
            for batch_size in (0, 7, 1024)
        ]
        for summary in summaries:
            summary.pop("elapsed_s")
            summary.pop("phase_s")
        assert summaries[0] == summaries[1] == summaries[2]


def test_shard_phase_timings_cover_the_work(small_target):
    plan = make_plan(small_target, shard_size=32)
    result = run_shard(small_target, plan.shards[0], small_target.fingerprint())
    phases = result.to_dict()["phase_s"]
    assert set(phases) == {"materialize", "simulate", "classify", "fold"}
    assert all(value >= 0.0 for value in phases.values())
    assert sum(phases.values()) <= result.elapsed_s
    assert phases["simulate"] > 0.0  # the batch replay actually ran


def test_derived_caches_are_lru(small_target, monkeypatch):
    """A hit must move the fingerprint to the back of the eviction order.

    Regression: FIFO eviction dropped the *active* target's space cache
    when more than the limit of fingerprints interleaved on one worker —
    the hot entry had the oldest insertion precisely because it kept
    getting hit instead of re-inserted."""
    import repro.inject.runner as runner

    monkeypatch.setattr(runner, "_SPACE_CACHE", {})
    context = small_target.build_context()
    space = runner._space_of(context, small_target, "hot")
    # Fill the cache to its limit around the hot entry...
    for cold in range(runner._DERIVED_CACHE_LIMIT - 1):
        runner._space_of(context, small_target, f"cold-a-{cold}")
    # ...touch the hot entry (hit), then force one eviction with a new
    # fingerprint: LRU must drop the stalest cold entry, not "hot".
    assert runner._space_of(context, small_target, "hot") is space
    runner._space_of(context, small_target, "cold-b")
    assert "hot" in runner._SPACE_CACHE
    assert runner._space_of(context, small_target, "hot") is space
    assert "cold-a-0" not in runner._SPACE_CACHE  # the true LRU victim


def test_context_cache_is_lru(small_target, monkeypatch):
    import repro.inject.target as target_module

    monkeypatch.setattr(target_module, "_CONTEXT_CACHE", {})
    hot = target_module.cached_context(small_target, "hot")
    for cold in range(target_module._CONTEXT_CACHE_LIMIT - 1):
        target_module.cached_context(small_target, f"cold-a-{cold}")
    assert target_module.cached_context(small_target, "hot") is hot
    target_module.cached_context(small_target, "cold-b")
    assert target_module.cached_context(small_target, "hot") is hot
    assert "cold-a-0" not in target_module._CONTEXT_CACHE


def test_aggregate_dict_shapes(small_target):
    aggregate, _ = run_inject_sweep(small_target, make_plan(small_target))
    summary = aggregate.to_dict()
    assert set(summary) >= {
        "ok", "complete", "scenarios", "draws", "violation_scenarios",
        "strata", "residual_upper_bound", "scenarios_per_sec", "exemplars",
    }
    from repro.experiments.reporting import format_inject

    text = format_inject(summary)
    assert "Fault injection:" in text and "per-stratum coverage" in text
