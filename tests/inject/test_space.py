"""Partitioner contract: the sharded space IS the enumerated space.

Property-tested guarantees every other inject module builds on:

* rank/unrank is a bijection per stratum, in the exact lexicographic
  order of :func:`repro.sim.faults.enumerate_scenarios`;
* shards of a partition are pairwise disjoint and union-complete;
* shard fingerprints are pure functions of (target fingerprint, shard
  coordinates) — stable across processes (no interpreter-hash leakage).
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.inject.partition import ShardSpec, partition_stratum, shard_fingerprint
from repro.inject.space import ScenarioSpace, scenario_key

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")

#: Instance fault capacities (reexecutions + 1 each); small enough to
#: brute-force, varied enough to hit ragged cap vectors.
caps_strategy = st.lists(
    st.integers(min_value=1, max_value=4), min_size=1, max_size=6
)


def brute_force_stratum(caps: list[int], total: int) -> list[tuple[int, ...]]:
    """All count vectors with the given total, lexicographic order."""
    if not caps:
        return [()] if total == 0 else []
    out = []
    for first in range(min(caps[0], total) + 1):
        for rest in brute_force_stratum(caps[1:], total - first):
            out.append((first,) + rest)
    return out


def named(caps: list[int]) -> list[tuple[str, int]]:
    return [(f"i{j}", cap) for j, cap in enumerate(caps)]


@given(caps=caps_strategy, k=st.integers(min_value=0, max_value=5))
@settings(max_examples=120, deadline=None)
def test_rank_unrank_bijection_in_lex_order(caps, k):
    space = ScenarioSpace(capacities=named(caps), k=k)
    total_seen = 0
    for t in range(k + 1):
        expected = brute_force_stratum([min(c, k) for c in caps], t)
        assert space.stratum_size(t) == len(expected)
        for index, counts in enumerate(expected):
            assert space.unrank(t, index) == counts
            assert space.rank(counts) == (t, index)
        total_seen += len(expected)
    assert space.total == total_seen


@given(
    caps=caps_strategy,
    k=st.integers(min_value=0, max_value=4),
    shard_size=st.integers(min_value=1, max_value=7),
)
@settings(max_examples=80, deadline=None)
def test_shards_disjoint_and_union_complete(caps, k, shard_size):
    space = ScenarioSpace(capacities=named(caps), k=k)
    for t in range(k + 1):
        size = space.stratum_size(t)
        shards = partition_stratum(size, shard_size, t, wave=1 + t, seed=0)
        assert sum(s.hi - s.lo for s in shards) == size
        seen: list[tuple[int, ...]] = []
        for shard in shards:
            chunk = list(space.iter_range(t, shard.lo, shard.hi))
            assert len(chunk) == shard.hi - shard.lo
            seen.extend(chunk)
        # Disjoint + complete + ordered == exactly the enumeration.
        assert seen == brute_force_stratum([min(c, k) for c in caps], t)


def test_space_matches_enumerate_scenarios(small_target):
    """End to end vs the reference generator on a real FT graph."""
    from repro.sim.faults import enumerate_scenarios

    context = small_target.build_context()
    k = small_target.faults.k
    space = ScenarioSpace.of(context.ft, k)
    expected = [
        scenario_key(s.failures)
        for s in enumerate_scenarios(context.ft, k)
    ]
    produced = []
    for t in range(k + 1):
        for counts in space.iter_range(t, 0, space.stratum_size(t)):
            produced.append(scenario_key(space.scenario(counts).failures))
    assert produced == expected
    assert len(set(produced)) == len(produced)


def test_shard_fingerprints_stable_across_processes():
    spec = ShardSpec(
        tier="stratified", wave=2, stratum=1, lo=3, hi=4, draws=500, seed=9
    )
    local = shard_fingerprint("cafe" * 16, spec)
    script = (
        "from repro.inject.partition import ShardSpec, shard_fingerprint;"
        "spec = ShardSpec(tier='stratified', wave=2, stratum=1, lo=3,"
        " hi=4, draws=500, seed=9);"
        "print(shard_fingerprint('cafe' * 16, spec))"
    )
    out = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        check=True,
        env={"PYTHONPATH": REPO_SRC, "PYTHONHASHSEED": "77"},
    )
    assert out.stdout.strip() == local


def test_rng_label_is_the_documented_contract():
    spec = ShardSpec(
        tier="stratified", wave=1, stratum=2, lo=5, hi=6, draws=100, seed=4
    )
    assert spec.rng_label() == "inject:4:2:5"
