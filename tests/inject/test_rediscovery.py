"""The importance tier rediscovers the PR 3 starvation counterexample.

The pre-fix worst-case analysis was unsound in two coupled ways, both
reverted here via monkeypatching to rebuild the historical model:

* **structure** (``ftgraph._guaranteed_backed``): only *re-executed*
  replicas carried a guaranteed post-WCF frame, so a group of pure
  replicas delivered through fast frames alone;
* **pricing** (``state.release_row``): each fast frame's invalidation
  was priced per sender from that sender's own finish row, so the
  adversary paid once *per replica* to delay the group — even though one
  upstream fault delays every replica past its fast slot simultaneously
  (replicas consume the same broadcast frame).

On the chain below the weak analysis claims schedulability while a
single fault on ``A:r0`` starves ``C``: both ``B`` replicas fall back to
``A:r1``'s much later frame, miss their fast slots together, and no
guaranteed frame exists.  The sweep's importance tier must surface this
in its first shard wave, before any coverage shard runs.
"""

from __future__ import annotations

import pytest

import repro.model.ftgraph as ftgraph
import repro.schedule.state as state
from repro.inject.driver import run_inject_sweep
from repro.inject.importance import importance_scenarios
from repro.inject.plan import plan_sweep
from repro.inject.runner import run_shard
from repro.inject.space import ScenarioSpace
from repro.inject.target import InjectTarget
from repro.model.application import Application, Process, ProcessGraph
from repro.model.architecture import Architecture, Node
from repro.model.fault import FaultModel
from repro.model.mapping import ReplicaMapping
from repro.model.merge import merge_application
from repro.model.policy import Policy, PolicyAssignment
from repro.opt.implementation import Implementation
from repro.opt.initial import initial_bus_access
from repro.schedule.list_scheduler import list_schedule
from repro.schedule.state import group_release_inputs, group_survivor_indices
from repro.sim.engine import SystemSimulator
from repro.sim.faults import FaultScenario


def _prefix_backed(ft, group, k):
    """Pre-fix structure: guaranteed frames only for re-executed replicas."""
    return {iid for iid in group if ft.instances[iid].reexecutions > 0}


def _prefix_release_row(ft, iid, faults, root_finish, no_recovery_rows,
                        medl_by_id):
    """Pre-fix pricing: per-sender frame invalidation, no shared delays.

    A fast frame costs the cheaper of an outright kill and the smallest
    fault count ``q*`` whose worst finish (own recoveries *or* upstream
    delays, priced against this sender alone) misses the slot start; the
    guaranteed twin, where present, costs the remaining kills.
    """
    k = faults.k
    mu = faults.mu
    instances = ft.instances
    instance = instances[iid]
    rel_row = [instance.release] * (k + 1)
    sources: list[str | None] = [None] * (k + 1)
    for group in ft.inputs_of(iid):
        immune, fast_senders = group_release_inputs(
            group, instance.node, instances, root_finish, no_recovery_rows,
            medl_by_id, mu, iid,
        )
        arrivals = list(immune)
        for (slot_start, slot_end, guaranteed_end, row, step, reexec,
             kill_cost, src_iid) in fast_senders:
            threshold = slot_start + 1e-9
            q_star = k + 1
            for q in range(k + 1):
                finishes = [row[d] + (q - d) * step for d in range(q + 1)
                            if (q - d) <= reexec]
                if finishes and max(finishes) > threshold:
                    q_star = q
                    break
            fast_cost = kill_cost if kill_cost < q_star else q_star
            arrivals.append((slot_end, fast_cost, src_iid))
            if guaranteed_end is not None and fast_cost < kill_cost:
                arrivals.append((guaranteed_end, kill_cost - fast_cost,
                                 src_iid))
        arrivals.sort()
        for c, index in enumerate(group_survivor_indices(arrivals, k)):
            arrival = arrivals[index][0]
            if arrival > rel_row[c]:
                rel_row[c] = arrival
                sources[c] = arrivals[index][2]
    return rel_row, sources


def _chain_target() -> InjectTarget:
    """A -> B -> C with correlated-delay exposure.

    ``A`` and ``B`` are pure replica pairs on distinct nodes (no reuse
    budget, fast slots right after the fault-free finish); ``C`` sits on
    a node with no ``B`` replica, so it lives off ``B``'s frames alone.
    ``A:r1`` is slow: the fallback frame after a fault on ``A:r0``
    arrives far past both ``B`` fast slots.
    """
    g = ProcessGraph("chain", period=400.0, deadline=400.0)
    g.add_process(Process("A", {"N1": 10.0, "N2": 60.0}))
    g.add_process(Process("B", {"N3": 10.0, "N4": 10.0}))
    g.add_process(Process("C", {"N1": 10.0}, fixed_node="N1"))
    g.connect("A", "B", size=2)
    g.connect("B", "C", size=2)
    app = Application([g])
    arch = Architecture([Node("N1"), Node("N2"), Node("N3"), Node("N4")])
    faults = FaultModel(k=1, mu=5.0)
    policies = PolicyAssignment({
        "A": Policy.replication(1),
        "B": Policy.replication(1),
        "C": Policy.reexecution(1),
    })
    mapping = ReplicaMapping({
        "A": ("N1", "N2"),
        "B": ("N3", "N4"),
        "C": ("N1",),
    })
    bus = initial_bus_access(app, arch)
    merged = merge_application(app)
    schedule = list_schedule(merged, faults, policies, mapping, bus)
    return InjectTarget(
        application=app,
        faults=faults,
        implementation=Implementation(
            policies=policies, mapping=mapping, bus=bus
        ),
        record=schedule.record,
        label="prefix-chain",
    )


@pytest.fixture
def weak_target(monkeypatch) -> InjectTarget:
    """The chain scheduled — and later simulated — under the weak model.

    Both patches stay active for the whole test so the FT graph the
    simulator rebuilds matches the record's MEDL (no guaranteed frames).
    """
    monkeypatch.setattr(ftgraph, "_guaranteed_backed", _prefix_backed)
    monkeypatch.setattr(state, "release_row", _prefix_release_row)
    return _chain_target()


def test_importance_tier_rediscovers_starvation_in_wave_zero(weak_target):
    context = weak_target.build_context()
    # The weak analysis *claims* schedulability: every worst-case finish
    # meets the graph deadline.  That claim is what the sweep refutes.
    assert max(weak_target.record.wcf) <= 400.0
    assert all(m.kind != "guaranteed" for m in context.ft.bus_messages.values())

    space = ScenarioSpace.of(context.ft, weak_target.faults.k)
    ranked = importance_scenarios(
        weak_target.record, context.ft, weak_target.faults.k
    )
    plan = plan_sweep(space, len(ranked), budget=10_000)

    # First shard wave == the importance tier, ahead of all coverage.
    wave0 = [s for s in plan.shards if s.wave == 0]
    assert wave0 and all(s.tier == "importance" for s in wave0)
    assert plan.shards[: len(wave0)] == wave0

    fingerprint = weak_target.fingerprint()
    first = run_shard(weak_target, wave0[0], fingerprint)
    assert first.violation_scenarios >= 1
    assert first.class_counts.get("starved", 0) >= 1
    starved = first.exemplars["starved"]
    assert starved.subject == "C:r0"

    # The exemplar names a within-budget scenario and replays: the same
    # failure map starves C on a simulator rebuilt from the bare record.
    assert sum(starved.failures.values()) <= weak_target.faults.k
    simulator = SystemSimulator.from_record(
        weak_target.record, context.merged, context.ft,
        weak_target.faults, weak_target.implementation.bus,
    )
    replay = simulator.run(FaultScenario(failures=starved.failures))
    assert "C:r0" in replay.starved

    # The full sweep agrees and reports the importance findings apart
    # from the probabilistic coverage machinery.
    aggregate, _ = run_inject_sweep(weak_target, plan)
    summary = aggregate.to_dict()
    assert summary["ok"] is False
    assert summary["importance"]["violations"] >= 1
    assert summary["class_counts"]["starved"] >= 1


def test_sound_model_schedules_the_same_chain_cleanly():
    """Unpatched, the same design gets guaranteed frames and survives an
    exhaustive sweep — the weakness is in the reverted model, not the
    chain."""
    target = _chain_target()
    context = target.build_context()
    kinds = [m.kind for m in context.ft.bus_messages.values()]
    assert "guaranteed" in kinds

    space = ScenarioSpace.of(context.ft, target.faults.k)
    plan = plan_sweep(space, 0, budget=10_000, tier="exhaustive")
    aggregate, _ = run_inject_sweep(target, plan)
    summary = aggregate.to_dict()
    assert summary["ok"] is True
    assert summary["residual_upper_bound"] == 0.0
