"""Planner invariants and the exact binomial bound."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.inject.plan import (
    MODE_EXHAUSTIVE,
    MODE_SAMPLED,
    plan_sweep,
)
from repro.inject.space import ScenarioSpace
from repro.inject.stats import binom_cdf, clopper_pearson_upper


def space_of(caps: list[int], k: int) -> ScenarioSpace:
    return ScenarioSpace([(f"i{j}", c) for j, c in enumerate(caps)], k)


@given(
    caps=st.lists(st.integers(min_value=1, max_value=3), min_size=2, max_size=8),
    k=st.integers(min_value=1, max_value=3),
    budget=st.integers(min_value=1, max_value=5000),
    shard_size=st.integers(min_value=1, max_value=400),
    importance=st.integers(min_value=0, max_value=60),
)
@settings(max_examples=100, deadline=None)
def test_plan_respects_budget_and_covers_every_stratum(
    caps, k, budget, shard_size, importance
):
    space = space_of(caps, k)
    plan = plan_sweep(space, importance, budget, shard_size=shard_size, seed=0)
    # The scheduled work never exceeds the budget except for the +1-draw
    # floor of tiny sampled strata (each sampled stratum contributes >= 1).
    assert plan.total_scenarios <= budget + k
    # Exhaustive strata are fully sharded; sampled strata have draws.
    for t in range(k + 1):
        shards = [s for s in plan.shards if s.stratum == t]
        if plan.modes[t] == MODE_EXHAUSTIVE:
            assert sum(s.hi - s.lo for s in shards) == space.stratum_size(t)
        elif plan.modes[t] == MODE_SAMPLED:
            assert sum(s.draws for s in shards) >= 1
    # Importance wave rides first and is capped by the budget.
    wave0 = [s for s in plan.shards if s.wave == 0]
    assert sum(s.hi - s.lo for s in wave0) == min(importance, budget)
    assert plan.shards == sorted(
        plan.shards, key=lambda s: (s.wave, s.stratum or 0, s.lo)
    )


def test_plan_is_deterministic():
    space = space_of([2, 3, 1, 2], 3)
    a = plan_sweep(space, 10, 500, shard_size=64, seed=5)
    b = plan_sweep(space, 10, 500, shard_size=64, seed=5)
    assert a.shards == b.shards
    assert a.modes == b.modes


def test_auto_tier_enumerates_when_space_fits():
    space = space_of([1, 1, 1], 2)
    plan = plan_sweep(space, 0, budget=1000)
    assert all(mode == MODE_EXHAUSTIVE for mode in plan.modes.values())
    assert plan.total_scenarios == space.total


def test_importance_tier_stops_after_wave_zero():
    space = space_of([2, 2], 2)
    plan = plan_sweep(space, 7, budget=100, tier="importance")
    assert plan.shards and all(s.wave == 0 for s in plan.shards)


def test_unknown_tier_rejected():
    with pytest.raises(SimulationError):
        plan_sweep(space_of([1], 1), 0, 10, tier="bogus")


# -- Clopper–Pearson ----------------------------------------------------------

def test_rule_of_three_closed_form():
    # x = 0: p_hi = 1 - alpha^(1/n); classic n=60, alpha=.05 ~ 3/n.
    bound = clopper_pearson_upper(0, 60, alpha=0.05)
    assert math.isclose(bound, 1 - 0.05 ** (1 / 60), rel_tol=1e-12)
    assert bound == pytest.approx(3 / 60, rel=0.2)


def test_bound_is_consistent_with_the_exact_cdf():
    for x, n in [(1, 50), (3, 200), (7, 1000), (25, 100)]:
        bound = clopper_pearson_upper(x, n, alpha=0.05)
        # Defining property: P[Bin(n, p_hi) <= x] == alpha (within bisection).
        assert binom_cdf(n, x, bound) == pytest.approx(0.05, abs=1e-9)
        # One-sided coverage: the bound is above the point estimate.
        assert bound > x / n


def test_bound_monotone_in_evidence():
    # More trials with the same violation count tighten the bound.
    assert clopper_pearson_upper(0, 10) > clopper_pearson_upper(0, 1000)
    # More violations with the same trial count loosen it.
    assert clopper_pearson_upper(5, 100) > clopper_pearson_upper(1, 100)


def test_degenerate_samples():
    assert clopper_pearson_upper(0, 0) == 1.0  # no evidence at all
    assert clopper_pearson_upper(4, 4) == 1.0  # everything violated
    with pytest.raises(SimulationError):
        clopper_pearson_upper(5, 4)
    with pytest.raises(SimulationError):
        clopper_pearson_upper(0, 10, alpha=1.5)


def test_large_n_stays_finite_and_tiny():
    bound = clopper_pearson_upper(0, 1_000_000)
    assert 0 < bound < 5e-6
