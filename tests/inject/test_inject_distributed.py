"""Distributed injection sweeps: SQLite broker, worker loss, resume, CLI.

The headline scenario mirrors ``tests/queue/test_distributed_smoke.py``
for shards instead of optimizer jobs: a worker dies mid-sweep while
holding a lease, and ``--resume`` completes the sweep folding already-
acked shards from their checkpoints — never re-simulating them — into an
aggregate identical to an uninterrupted inline run.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.inject.driver import enqueue_shards, run_inject_sweep
from repro.inject.importance import importance_scenarios
from repro.inject.plan import plan_sweep
from repro.inject.space import ScenarioSpace
from repro.queue.sqlite import SqliteBroker
from repro.queue.worker import DEFAULT_VALIDATE_SAMPLES, Worker


def exhaustive_plan(target, shard_size=16):
    context = target.build_context()
    space = ScenarioSpace.of(context.ft, target.faults.k)
    ranked = importance_scenarios(target.record, context.ft, target.faults.k)
    return plan_sweep(space, len(ranked), budget=10_000, shard_size=shard_size)


def test_killed_worker_then_resume_matches_uninterrupted(
    tmp_path, small_target
):
    path = str(tmp_path / "inject.db")
    plan = exhaustive_plan(small_target)
    assert len(plan.shards) >= 4  # enough left for the victim to orphan one

    broker = SqliteBroker(path)
    sweep = enqueue_shards(small_target, plan, broker)
    assert sweep.stats.enqueued == len(plan.shards)

    # A worker acks exactly two shards, leases a third and dies without
    # acking, nacking or cleaning up — a machine loss.  The fork start
    # method lets the victim live in this test instead of prod code.
    def victim_main() -> None:
        import os

        victim_broker = SqliteBroker(path)
        Worker(
            victim_broker, worker_id="victim", lease_s=8.0,
            poll_interval_s=0.01,
        ).run(max_jobs=2)
        assert victim_broker.lease("victim", 8.0) is not None
        os._exit(1)  # hard crash while holding the lease

    context = multiprocessing.get_context("fork")
    victim = context.Process(target=victim_main, daemon=True)
    victim.start()
    victim.join(timeout=120.0)
    assert victim.exitcode == 1

    assert broker.pending().done == 2
    assert broker.pending().leased == 1  # the orphaned lease
    done_fingerprints = [
        fp for fp in sweep.fingerprints if broker.state(fp) == "done"
    ]
    broker.close()

    # Resume with fresh workers: done shards fold from their checkpoints,
    # the victim's lease lapses (8 s) and its shard is redelivered.
    resumed = SqliteBroker(path)
    try:
        aggregate, stats = run_inject_sweep(
            small_target, plan, broker=resumed, resume=True,
            local_workers=2, lease_s=30.0, timeout_s=240.0,
        )
        assert stats.checkpoint_hits == len(done_fingerprints) == 2
        assert stats.completed == len(plan.shards)
        # Acked shards were never re-simulated: still exactly one delivery.
        for fingerprint in done_fingerprints:
            assert resumed.attempts(fingerprint) == 1
    finally:
        resumed.close()

    # The resumed sweep's workers replayed through the batched kernel;
    # it must fold to the same aggregate as an uninterrupted inline run
    # on the *scalar* reference path (batch_size=0) — the cross-path,
    # cross-process byte-equality contract of the batch tier.
    inline, inline_stats = run_inject_sweep(small_target, plan, batch_size=0)
    assert inline_stats.completed == len(plan.shards)
    resumed_summary = aggregate.to_dict()
    inline_summary = inline.to_dict()
    for summary in (resumed_summary, inline_summary):
        summary.pop("elapsed_s")
        summary.pop("scenarios_per_sec")
        summary.pop("phase_s")
    assert resumed_summary == inline_summary


def test_enqueue_refuses_foreign_broker_without_resume(tmp_path, small_target):
    from repro.errors import ConfigurationError

    path = str(tmp_path / "busy.db")
    broker = SqliteBroker(path)
    try:
        broker.enqueue("unrelated", '{"kind": "other"}', 3)
        with pytest.raises(ConfigurationError, match="resume"):
            enqueue_shards(small_target, exhaustive_plan(small_target), broker)
        # Even with resume, shards of a *different* sweep abort the drive
        # before anything is enqueued next to them.
        with pytest.raises(ConfigurationError, match="orphan|not part"):
            enqueue_shards(
                small_target, exhaustive_plan(small_target), broker,
                resume=True,
            )
        assert broker.pending().total == 1  # nothing was enqueued
    finally:
        broker.close()


def test_cli_inject_smoke_writes_summary(tmp_path, capsys):
    """`ftds inject --initial` end to end: exit code gates on `ok`."""
    import json

    from repro.cli import main

    out = tmp_path / "inject.json"
    code = main([
        "inject", "--initial", "--processes", "8", "--nodes", "2",
        "--k", "2", "--seed", "0", "--budget", "5000",
        "--shard-size", "64", "--json", str(out),
    ])
    captured = capsys.readouterr().out
    summary = json.loads(out.read_text())
    assert code == (0 if summary["ok"] else 1)
    assert summary["complete"] is True
    assert "Fault injection:" in captured


def test_cli_inject_resume_requires_broker(capsys):
    from repro.cli import main

    with pytest.raises(SystemExit) as excinfo:
        main(["inject", "--resume"])
    assert excinfo.value.code == 2
    assert "--resume requires --broker" in capsys.readouterr().err


def test_cli_worker_validate_samples_plumbing(tmp_path, monkeypatch):
    """`--validate-samples` reaches the Worker: 0 disables, N overrides."""
    import repro.queue.worker as worker_module
    from repro.cli import main

    captured: list[int | None] = []

    class Probe(Worker):
        def __init__(self, broker, **kwargs):
            captured.append(kwargs.get("validate_samples"))
            super().__init__(broker, **kwargs)

    monkeypatch.setattr(worker_module, "Worker", Probe)
    path = str(tmp_path / "empty.db")
    for arguments, expected in (
        ([], DEFAULT_VALIDATE_SAMPLES),
        (["--validate-samples", "0"], None),
        (["--validate-samples", "7"], 7),
    ):
        code = main(
            ["worker", "--broker", path, "--drain", "--quiet"] + arguments
        )
        assert code == 0
        assert captured[-1] == expected
    assert len(captured) == 3
