"""Shared builders of the fault-injection suite."""

from __future__ import annotations

import pytest

from repro.gen.suite import generate_case
from repro.inject.target import InjectTarget
from repro.model.merge import merge_application
from repro.opt.initial import initial_bus_access, initial_mpa
from repro.schedule.list_scheduler import list_schedule


def build_target(
    n_processes: int = 10,
    n_nodes: int = 3,
    k: int = 2,
    seed: int = 3,
    replicas: int = 3,
    mu: float = 5.0,
) -> InjectTarget:
    """An initial-MPA schedule wrapped as an injection target.

    Defaults reproduce the ``replicated_10p3n_k2`` golden case — replica
    groups with remote senders, so the importance tier's correlated-delay
    probes have something to aim at.
    """
    case = generate_case(n_processes, n_nodes, k, mu=mu, seed=seed)
    merged = merge_application(case.application)
    bus = initial_bus_access(case.application, case.architecture)
    impl = initial_mpa(merged, case.architecture, case.faults, bus, replicas)
    schedule = list_schedule(
        merged, case.faults, impl.policies, impl.mapping, bus
    )
    return InjectTarget(
        application=case.application,
        faults=case.faults,
        implementation=impl,
        record=schedule.record,
        label=f"test-{n_processes}p{n_nodes}n-k{k}",
    )


@pytest.fixture(scope="session")
def replicated_target() -> InjectTarget:
    return build_target()


@pytest.fixture(scope="session")
def small_target() -> InjectTarget:
    """Tiny space (8 processes, k=2): exhaustive sweeps stay sub-second."""
    return build_target(n_processes=8, n_nodes=2, k=2, seed=0, replicas=1)
