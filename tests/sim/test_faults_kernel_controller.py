"""Unit tests for fault scenarios, node kernels and the TTP bus model."""

import random

import pytest

from repro.errors import SimulationError
from repro.model.application import Application
from repro.model.fault import FaultModel
from repro.model.ftgraph import Instance, build_ft_graph
from repro.model.mapping import ReplicaMapping
from repro.model.merge import merge_application
from repro.model.policy import Policy, PolicyAssignment
from repro.sim.controller import TTPBusModel
from repro.sim.faults import (
    FAULT_FREE,
    FaultScenario,
    adversarial_scenarios,
    enumerate_scenarios,
    sample_scenarios,
)
from repro.sim.kernel import NodeKernel
from repro.ttp.medl import MEDL, MessageDescriptor

from tests.conftest import make_graph


def _ft(k=2):
    graph = make_graph(
        {"A": {"N1": 10.0, "N2": 10.0}, "B": {"N1": 10.0, "N2": 10.0}},
        [("A", "B", 1)],
    )
    merged = merge_application(Application([graph]))
    policies = PolicyAssignment(
        {"A": Policy.combined(2, k), "B": Policy.reexecution(k)}
    )
    mapping = ReplicaMapping({"A": ("N1", "N2"), "B": ("N2",)})
    return build_ft_graph(merged, policies, mapping, FaultModel(k=k, mu=5.0))


class TestFaultScenario:
    def test_zero_counts_dropped(self):
        s = FaultScenario({"X": 0, "Y": 2})
        assert s.failures == {"Y": 2}
        assert s.total_faults == 2

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            FaultScenario({"X": -1})

    def test_describe(self):
        assert FAULT_FREE.describe() == "fault-free"
        assert "Yx2" in FaultScenario({"Y": 2}).describe()


class TestEnumerate:
    def test_counts_for_small_system(self):
        ft = _ft(k=1)
        scenarios = list(enumerate_scenarios(ft, 1))
        # fault-free + one single-fault scenario per instance (3 instances).
        assert len(scenarios) == 4

    def test_respects_instance_capacity(self):
        ft = _ft(k=2)
        for scenario in enumerate_scenarios(ft, 2):
            for iid, count in scenario.failures.items():
                assert count <= ft.instance(iid).reexecutions + 1

    def test_total_bounded_by_k(self):
        ft = _ft(k=2)
        assert all(s.total_faults <= 2 for s in enumerate_scenarios(ft, 2))


class TestSample:
    def test_sampled_scenarios_valid(self):
        ft = _ft(k=2)
        rng = random.Random(1)
        for scenario in sample_scenarios(ft, 2, rng, count=50):
            assert scenario.total_faults <= 2
            for iid, count in scenario.failures.items():
                assert count <= ft.instance(iid).reexecutions + 1

    def test_always_max_faults(self):
        ft = _ft(k=2)
        rng = random.Random(1)
        for scenario in sample_scenarios(ft, 2, rng, count=20, always_max_faults=True):
            assert scenario.total_faults == 2

    def test_deterministic_with_seed(self):
        ft = _ft(k=2)
        a = sample_scenarios(ft, 2, random.Random(7), count=10)
        b = sample_scenarios(ft, 2, random.Random(7), count=10)
        assert a == b


class TestAdversarial:
    def test_includes_fault_free_and_kills(self):
        ft = _ft(k=2)
        scenarios = adversarial_scenarios(ft, 2)
        assert FAULT_FREE in scenarios
        assert all(s.total_faults <= 2 for s in scenarios)
        # Some scenario must exhaust a replica's re-executions.
        assert any("A:r0" in s.failures for s in scenarios)


class TestNodeKernel:
    def _instance(self, e=1):
        return Instance(
            id="P:r0", process="P", replica=0, node="N1",
            wcet=10.0, reexecutions=e,
        )

    def test_fault_free_execution(self):
        kernel = NodeKernel("N1", FaultModel(k=1, mu=5.0))
        record = kernel.execute(self._instance(), 0.0, 0.0, 0)
        assert record.finish == 10.0
        assert record.produced
        assert kernel.local_time == 10.0

    def test_reexecution_timing(self):
        kernel = NodeKernel("N1", FaultModel(k=1, mu=5.0))
        record = kernel.execute(self._instance(), 0.0, 0.0, 1)
        # one failure: 10 + 5 (mu) + 10 = 25
        assert record.finish == 25.0
        assert record.attempts == 2
        assert record.produced

    def test_terminal_failure(self):
        kernel = NodeKernel("N1", FaultModel(k=2, mu=5.0))
        record = kernel.execute(self._instance(e=1), 0.0, 0.0, 2)
        assert not record.produced
        assert record.output_ready is None
        # busy until both failed attempts finished: 2 * (10 + 5)
        assert record.finish == 30.0

    def test_table_start_respected(self):
        kernel = NodeKernel("N1", FaultModel(k=1, mu=5.0))
        record = kernel.execute(self._instance(), 50.0, 0.0, 0)
        assert record.start == 50.0

    def test_chain_serializes(self):
        kernel = NodeKernel("N1", FaultModel(k=1, mu=5.0))
        kernel.execute(self._instance(), 0.0, 0.0, 1)  # ends 25
        second = Instance(
            id="Q:r0", process="Q", replica=0, node="N1", wcet=5.0, reexecutions=1
        )
        record = kernel.execute(second, 10.0, 0.0, 0)
        assert record.start == 25.0  # contingency delay past table start


class TestTTPBusModel:
    def _medl(self):
        medl = MEDL()
        medl.add(
            MessageDescriptor(
                bus_message_id="m1", sender_node="N1", round_index=0,
                slot_start=10.0, slot_end=20.0, offset_bytes=0, size_bytes=1,
            )
        )
        return medl

    def test_valid_when_ready_before_slot(self):
        bus = TTPBusModel(self._medl())
        t = bus.transmit("m1", data_ready=10.0)
        assert t.valid
        assert bus.valid_arrival("m1") == 20.0

    def test_invalid_when_late(self):
        bus = TTPBusModel(self._medl())
        bus.transmit("m1", data_ready=10.5)
        assert bus.valid_arrival("m1") is None

    def test_invalid_when_dead(self):
        bus = TTPBusModel(self._medl())
        bus.transmit("m1", data_ready=None)
        assert bus.valid_arrival("m1") is None

    def test_double_transmit_rejected(self):
        bus = TTPBusModel(self._medl())
        bus.transmit("m1", data_ready=0.0)
        with pytest.raises(SimulationError):
            bus.transmit("m1", data_ready=0.0)

    def test_unknown_reception_rejected(self):
        bus = TTPBusModel(self._medl())
        with pytest.raises(SimulationError):
            bus.reception("m1")
