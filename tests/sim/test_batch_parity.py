"""Parity suite of the batched scenario-replay kernel.

The contract (DESIGN.md, "Batched scenario simulation") is bit-parity,
the same discipline as ``tests/schedule/test_vector_parity.py``: for any
target and any ``(instances, B)`` failure matrix, every ``run_batch``
column re-materialized through :meth:`BatchResult.scalarize` is
``repr``-byte-equal to the scalar :meth:`SystemSimulator.run` on the
same scenario — completions, starved sets, dead processes, execution
records, including failure counts *beyond* the fault model's ``k`` and
beyond a replica's re-execution budget (dead replicas).  On top of the
replay, :class:`BatchChecker` masks must agree with scalar
:func:`check_scenario` per violation kind, and a batched
:func:`run_shard` must produce byte-identical shard summaries (violation
counts, exemplar ``order`` tuples, messages) to the scalar path on
every tier.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import FaultToleranceViolation
from repro.gen.suite import generate_case
from repro.inject.importance import importance_scenarios
from repro.inject.plan import plan_sweep
from repro.inject.runner import run_shard
from repro.inject.space import ScenarioSpace
from repro.inject.target import InjectTarget
from repro.model.merge import merge_application
from repro.opt.initial import initial_bus_access, initial_mpa
from repro.schedule.list_scheduler import list_schedule
from repro.sim.faults import FaultScenario
from repro.sim.validate import check_scenario

_SLOW = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: (processes, nodes, k, seed, replicas) — mixed shapes: single-replica
#: chains, replica groups with remote senders, k=3 deep strata.
_TARGET_SHAPES = (
    (8, 2, 2, 0, 1),
    (10, 3, 2, 3, 3),
    (12, 2, 3, 1, 2),
    (9, 3, 2, 7, 3),
)


@lru_cache(maxsize=None)
def _target(shape_index: int) -> InjectTarget:
    n, nodes, k, seed, replicas = _TARGET_SHAPES[shape_index]
    case = generate_case(n, nodes, k, mu=5.0, seed=seed)
    merged = merge_application(case.application)
    bus = initial_bus_access(case.application, case.architecture)
    impl = initial_mpa(merged, case.architecture, case.faults, bus, replicas)
    schedule = list_schedule(
        merged, case.faults, impl.policies, impl.mapping, bus
    )
    return InjectTarget(
        application=case.application,
        faults=case.faults,
        implementation=impl,
        record=schedule.record,
        label=f"parity-{n}p{nodes}n-k{k}",
    )


@lru_cache(maxsize=None)
def _context(shape_index: int):
    return _target(shape_index).build_context()


def _random_matrix(context, rng: np.random.Generator, width: int,
                   beyond_caps: bool) -> np.ndarray:
    """Random failure matrix in plan order; optionally beyond each
    replica's capacity (dead replicas) and the fault model's k."""
    ids = context.batch.instance_ids
    caps = np.asarray(
        [context.ft.instance(iid).reexecutions + 1 for iid in ids],
        dtype=np.int64,
    )
    high = caps + (2 if beyond_caps else 0)
    matrix = rng.integers(0, high[:, None] + 1, size=(len(ids), width))
    # Sparsify: most instances fault-free, like real scenarios.
    matrix[rng.random(matrix.shape) > 0.3] = 0
    return matrix.astype(np.int64)


def _column_scenario(context, matrix: np.ndarray, j: int) -> FaultScenario:
    return FaultScenario(failures={
        iid: int(count)
        for iid, count in zip(context.batch.instance_ids, matrix[:, j])
        if count
    })


@_SLOW
@given(
    shape_index=st.integers(min_value=0, max_value=len(_TARGET_SHAPES) - 1),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    beyond_caps=st.booleans(),
)
def test_every_column_is_repr_equal_to_the_scalar_run(
    shape_index, seed, beyond_caps
):
    """run_batch columns == SystemSimulator.run, byte for byte.

    ``beyond_caps`` drives counts past the re-execution budget (dead
    replicas, starving consumers) and past the fault model's k — the
    replay itself is defined for any counts, exactly like the scalar
    engine."""
    context = _context(shape_index)
    rng = np.random.default_rng(seed)
    matrix = _random_matrix(context, rng, width=37, beyond_caps=beyond_caps)
    replay = context.batch.run_batch(matrix)
    for j in range(matrix.shape[1]):
        scenario = _column_scenario(context, matrix, j)
        scalar = context.simulator.run(scenario)
        batched = replay.scalarize(j, scenario)
        assert repr(batched) == repr(scalar)
        # scalarize without the scenario reconstructs it from the column.
        assert replay.scalarize(j).scenario == scenario


@_SLOW
@given(
    shape_index=st.integers(min_value=0, max_value=len(_TARGET_SHAPES) - 1),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_checker_masks_agree_with_scalar_classification(shape_index, seed):
    """Per-kind BatchChecker masks == check_scenario kinds, per column."""
    context = _context(shape_index)
    rng = np.random.default_rng(seed)
    matrix = _random_matrix(context, rng, width=29, beyond_caps=False)
    k = _target(shape_index).faults.k
    # Clamp each column into the fault model so check_scenario accepts it.
    for j in range(matrix.shape[1]):
        while matrix[:, j].sum() > k:
            hit = np.flatnonzero(matrix[:, j])
            matrix[hit[rng.integers(len(hit))], j] -= 1
    replay = context.batch.run_batch(matrix)
    report = context.checker.check(replay)
    for j in range(matrix.shape[1]):
        scenario = _column_scenario(context, matrix, j)
        kinds = {v.kind for v in check_scenario(context.simulator, scenario)}
        for kind, mask in report.masks.items():
            assert bool(mask[j]) == (kind in kinds), (kind, j)
        assert bool(report.violating[j]) == bool(kinds)


@pytest.mark.parametrize("shape_index", range(len(_TARGET_SHAPES)))
def test_exceeding_k_raises_the_scalar_message(shape_index):
    context = _context(shape_index)
    target = _target(shape_index)
    ids = context.batch.instance_ids
    matrix = np.zeros((len(ids), 3), dtype=np.int64)
    matrix[: target.faults.k + 1, 1] = 1  # column 1 spends k+1 faults
    replay = context.batch.run_batch(matrix)
    scenario = _column_scenario(context, matrix, 1)
    with pytest.raises(FaultToleranceViolation) as scalar_error:
        check_scenario(context.simulator, scenario)
    with pytest.raises(FaultToleranceViolation) as batch_error:
        context.checker.check(replay)
    assert str(batch_error.value) == str(scalar_error.value)


@pytest.mark.parametrize("shape_index", range(len(_TARGET_SHAPES)))
def test_run_shard_batched_matches_scalar_on_every_tier(shape_index):
    """Whole-shard byte equality through run_shard, all three tiers.

    batch_size=5 forces multiple ragged blocks per shard; the scalar
    reference is batch_size=0.  Exemplar ``order`` tuples, violation
    counts and messages all ride on the compared dicts."""
    target = _target(shape_index)
    context = _context(shape_index)
    space = ScenarioSpace.of(context.ft, target.faults.k)
    ranked = importance_scenarios(target.record, context.ft, target.faults.k)
    fingerprint = target.fingerprint()
    # A small budget forces stratified sampling on the deep strata while
    # the shallow ones stay exhaustive; importance rides in wave 0.
    plan = plan_sweep(space, len(ranked), budget=250, shard_size=40)
    tiers = {spec.tier for spec in plan.shards}
    assert "importance" in tiers
    for spec in plan.shards:
        scalar = run_shard(target, spec, fingerprint, batch_size=0).to_dict()
        batched = run_shard(target, spec, fingerprint, batch_size=5).to_dict()
        for summary in (scalar, batched):
            summary.pop("elapsed_s")
            summary.pop("phase_s")
        assert batched == scalar
