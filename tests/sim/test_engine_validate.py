"""Unit tests for the simulation engine and the schedule validator."""

import pytest

from repro.errors import FaultToleranceViolation, SimulationError
from repro.model.fault import FaultModel
from repro.model.policy import Policy
from repro.sim.engine import simulate
from repro.sim.faults import FAULT_FREE, FaultScenario, enumerate_scenarios
from repro.sim.validate import assert_fault_tolerant, validate_schedule
from repro.ttp.bus import BusConfig

from tests.conftest import make_graph, schedule_single_graph

BUS2 = BusConfig(("N1", "N2"), {"N1": 10.0, "N2": 10.0}, ms_per_byte=5.0)
K1 = FaultModel(k=1, mu=10.0)


def _chain_schedule(policies=None, mapping=None, faults=K1):
    graph = make_graph(
        {"A": {"N1": 20.0, "N2": 20.0}, "B": {"N1": 30.0, "N2": 30.0}},
        [("A", "B", 2)],
    )
    policies = policies or {"A": Policy.reexecution(1), "B": Policy.reexecution(1)}
    mapping = mapping or {"A": "N1", "B": "N2"}
    return schedule_single_graph(graph, faults, policies, mapping, BUS2)


class TestSimulateFaultFree:
    def test_matches_root_schedule(self):
        schedule = _chain_schedule()
        result = simulate(schedule, FAULT_FREE)
        assert result.ok
        for iid, placed in schedule.placements.items():
            record = result.executions[iid]
            assert record.start == pytest.approx(placed.root_start)
            assert record.finish == pytest.approx(placed.root_finish)

    def test_completions_recorded(self):
        schedule = _chain_schedule()
        result = simulate(schedule, FAULT_FREE)
        assert result.completion("A") == pytest.approx(20.0)

    def test_unknown_completion_raises(self):
        schedule = _chain_schedule()
        result = simulate(schedule, FAULT_FREE)
        with pytest.raises(SimulationError):
            result.completion("nope")


class TestSimulateWithFaults:
    def test_reexecution_delays_sender(self):
        schedule = _chain_schedule()
        result = simulate(schedule, FaultScenario({"A:r0": 1}))
        record = result.executions["A:r0"]
        assert record.attempts == 2
        assert record.finish == pytest.approx(20.0 + 10.0 + 20.0)
        assert result.ok

    def test_receiver_unaffected_by_masked_sender_fault(self):
        """Transparency: B's start is identical with and without A's fault."""
        schedule = _chain_schedule()
        clean = simulate(schedule, FAULT_FREE)
        faulty = simulate(schedule, FaultScenario({"A:r0": 1}))
        assert faulty.executions["B:r0"].start == pytest.approx(
            clean.executions["B:r0"].start
        )

    def test_receiver_fault_consumes_slack_not_deadline(self):
        schedule = _chain_schedule()
        result = simulate(schedule, FaultScenario({"B:r0": 1}))
        assert result.executions["B:r0"].finish <= schedule.completions["B"] + 1e-6

    def test_replica_failover(self):
        schedule = _chain_schedule(
            policies={"A": Policy.replication(1), "B": Policy.reexecution(1)},
            mapping={"A": ("N1", "N2"), "B": "N2"},
        )
        # Kill the replica co-located with B: B must use the remote frame.
        result = simulate(schedule, FaultScenario({"A:r1": 1}))
        assert result.ok
        assert result.executions["B:r0"].start > 0.0

    def test_beyond_k_faults_can_starve(self):
        schedule = _chain_schedule(
            policies={"A": Policy.replication(1), "B": Policy.reexecution(1)},
            mapping={"A": ("N1", "N2"), "B": "N2"},
        )
        # Two faults exceed k=1: both replicas die; B starves.
        result = simulate(schedule, FaultScenario({"A:r0": 1, "A:r1": 1}))
        assert not result.ok
        assert "A" in result.dead_processes


class TestValidator:
    def test_passes_for_sound_schedule(self):
        schedule = _chain_schedule()
        report = validate_schedule(schedule)
        assert report.ok
        assert report.scenarios_checked == len(
            list(enumerate_scenarios(schedule.ft, 1))
        )
        assert "PASS" in report.summary()

    def test_assert_fault_tolerant_passes(self):
        schedule = _chain_schedule()
        assert_fault_tolerant(schedule)

    def test_scenario_beyond_k_rejected(self):
        schedule = _chain_schedule()
        with pytest.raises(FaultToleranceViolation):
            validate_schedule(
                schedule, scenarios=[FaultScenario({"A:r0": 1, "B:r0": 1})]
            )

    def test_detects_violated_bound(self):
        """Corrupting an analytical bound must be caught by injection."""
        from dataclasses import replace

        schedule = _chain_schedule()
        iid = "B:r0"
        placed = schedule.placements[iid]
        schedule.placements[iid] = replace(placed, wcf=placed.root_finish)
        schedule.completions["B"] = placed.root_finish
        report = validate_schedule(schedule)
        assert not report.ok
        assert any("B" in v for v in report.violations)

    def test_assert_raises_on_violation(self):
        from dataclasses import replace

        schedule = _chain_schedule()
        placed = schedule.placements["B:r0"]
        schedule.placements["B:r0"] = replace(placed, wcf=placed.root_finish)
        with pytest.raises(FaultToleranceViolation):
            assert_fault_tolerant(schedule)

    def test_deadline_miss_reported(self):
        graph = make_graph(
            {"A": {"N1": 30.0}},
            [],
            deadline=50.0,  # WCF = 70 > 50
        )
        schedule = schedule_single_graph(
            graph, K1, {"A": Policy.reexecution(1)}, {"A": "N1"}, BUS2
        )
        report = validate_schedule(schedule)
        assert not report.ok
        assert any("deadline" in v for v in report.violations)
