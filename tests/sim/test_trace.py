"""Tests for simulation event traces."""

import csv
import io
import json

import pytest

from repro.model.fault import FaultModel
from repro.model.policy import Policy
from repro.sim.engine import simulate
from repro.sim.faults import FAULT_FREE, FaultScenario
from repro.sim.trace import build_trace, format_trace, trace_to_csv, trace_to_json
from repro.ttp.bus import BusConfig

from tests.conftest import make_graph, schedule_single_graph

BUS2 = BusConfig(("N1", "N2"), {"N1": 10.0, "N2": 10.0}, ms_per_byte=5.0)
K1 = FaultModel(k=1, mu=10.0)


def _schedule():
    graph = make_graph(
        {"A": {"N1": 20.0}, "B": {"N2": 30.0}},
        [("A", "B", 2)],
    )
    return schedule_single_graph(
        graph, K1,
        {"A": Policy.reexecution(1), "B": Policy.reexecution(1)},
        {"A": "N1", "B": "N2"},
        BUS2,
    )


class TestBuildTrace:
    def test_fault_free_has_no_fault_events(self):
        schedule = _schedule()
        events = build_trace(schedule, simulate(schedule, FAULT_FREE))
        kinds = {event.kind for event in events}
        assert "fault" not in kinds
        assert "start" in kinds and "finish" in kinds and "frame" in kinds

    def test_events_time_ordered(self):
        schedule = _schedule()
        events = build_trace(schedule, simulate(schedule, FAULT_FREE))
        times = [event.time for event in events]
        assert times == sorted(times)

    def test_fault_and_recovery_events_present(self):
        schedule = _schedule()
        events = build_trace(schedule, simulate(schedule, FaultScenario({"A:r0": 1})))
        faults = [e for e in events if e.kind == "fault"]
        recoveries = [e for e in events if e.kind == "recovery"]
        assert len(faults) == 1
        assert len(recoveries) == 1
        # Fault at first-attempt end (20), recovery mu later (30).
        assert faults[0].time == pytest.approx(20.0)
        assert recoveries[0].time == pytest.approx(30.0)

    def test_frame_validity_annotated(self):
        schedule = _schedule()
        events = build_trace(schedule, simulate(schedule, FAULT_FREE))
        frames = [e for e in events if e.kind == "frame"]
        assert len(frames) == 1
        assert frames[0].detail == "valid"

    def test_dead_replica_marked(self):
        graph = make_graph(
            {"A": {"N1": 20.0, "N2": 20.0}, "B": {"N2": 30.0}},
            [("A", "B", 2)],
        )
        schedule = schedule_single_graph(
            graph, K1,
            {"A": Policy.replication(1), "B": Policy.reexecution(1)},
            {"A": ("N1", "N2"), "B": "N2"},
            BUS2,
        )
        events = build_trace(
            schedule, simulate(schedule, FaultScenario({"A:r0": 1}))
        )
        dead = [e for e in events if e.kind == "dead"]
        assert [e.subject for e in dead] == ["A:r0"]


class TestSerialization:
    def test_json_round_trip(self):
        schedule = _schedule()
        events = build_trace(schedule, simulate(schedule, FAULT_FREE))
        parsed = json.loads(trace_to_json(events))
        assert len(parsed) == len(events)
        assert parsed[0]["kind"] == events[0].kind

    def test_csv_has_header_and_rows(self):
        schedule = _schedule()
        events = build_trace(schedule, simulate(schedule, FAULT_FREE))
        rows = list(csv.reader(io.StringIO(trace_to_csv(events))))
        assert rows[0] == ["time", "kind", "node", "subject", "detail"]
        assert len(rows) == len(events) + 1

    def test_format_readable(self):
        schedule = _schedule()
        events = build_trace(schedule, simulate(schedule, FAULT_FREE))
        text = format_trace(events)
        assert "start" in text and "finish" in text
        assert "ms" in text
