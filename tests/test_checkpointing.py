"""Tests for the checkpointing extension (Policy.checkpointing).

The DATE 2005 paper names checkpointing (§1) among the software
fault-tolerance techniques but evaluates only re-execution and replication;
this extension adds segment-level recovery: with ``s`` checkpoints a
re-execution re-runs ``C/s`` instead of ``C``, at a fault-free cost of
``s * checkpoint_overhead``.
"""

import pytest

from repro.errors import ModelError
from repro.model.application import Application
from repro.model.fault import FaultModel
from repro.model.ftgraph import build_ft_graph
from repro.model.mapping import ReplicaMapping
from repro.model.merge import merge_application
from repro.model.policy import Policy, PolicyAssignment
from repro.schedule.list_scheduler import list_schedule
from repro.sim.faults import FaultScenario
from repro.sim.engine import simulate
from repro.sim.validate import validate_schedule
from repro.ttp.bus import BusConfig

from tests.conftest import make_graph, schedule_single_graph

BUS1 = BusConfig.minimal(("N1",), 4)
BUS2 = BusConfig(("N1", "N2"), {"N1": 10.0, "N2": 10.0}, ms_per_byte=5.0)


class TestPolicy:
    def test_constructor(self):
        p = Policy.checkpointing(2, segments=4)
        assert p.n_replicas == 1
        assert p.reexecutions == (2,)
        assert p.checkpoints == 4
        assert p.tolerates(2)

    def test_single_checkpoint_rejected(self):
        with pytest.raises(ModelError):
            Policy.checkpointing(1, segments=1)

    def test_negative_checkpoints_rejected(self):
        with pytest.raises(ModelError):
            Policy(1, (1,), checkpoints=-2)

    def test_describe_mentions_segments(self):
        assert "s=4" in Policy.checkpointing(1, 4).describe()

    def test_plain_policies_unaffected(self):
        assert Policy.reexecution(2).checkpoints == 0


class TestAnalysis:
    def test_recovery_rerun_is_one_segment(self):
        """C=40, k=2, mu=10, 4 segments: WCF = 40 + 2*(10+10) = 80."""
        faults = FaultModel(k=2, mu=10.0)
        graph = make_graph({"P1": {"N1": 40.0}})
        schedule = schedule_single_graph(
            graph, faults, {"P1": Policy.checkpointing(2, 4)}, {"P1": "N1"}, BUS1
        )
        assert schedule.completions["P1"] == pytest.approx(80.0)

    def test_checkpoint_overhead_inflates_wcet(self):
        """With overhead o=2 and 4 segments, fault-free WCET becomes 48."""
        faults = FaultModel(k=2, mu=10.0, checkpoint_overhead=2.0)
        graph = make_graph({"P1": {"N1": 40.0}})
        schedule = schedule_single_graph(
            graph, faults, {"P1": Policy.checkpointing(2, 4)}, {"P1": "N1"}, BUS1
        )
        placed = schedule.placements["P1:r0"]
        assert placed.root_finish == pytest.approx(48.0)
        # WCF = 48 + 2 * (48/4 + 10) = 92
        assert placed.wcf == pytest.approx(92.0)

    def test_checkpointing_beats_reexecution_for_long_processes(self):
        faults = FaultModel(k=3, mu=5.0, checkpoint_overhead=1.0)
        graph = make_graph({"P1": {"N1": 90.0}})
        rex = schedule_single_graph(
            graph, faults, {"P1": Policy.reexecution(3)}, {"P1": "N1"}, BUS1
        )
        cp = schedule_single_graph(
            graph, faults, {"P1": Policy.checkpointing(3, 4)}, {"P1": "N1"}, BUS1
        )
        assert cp.makespan < rex.makespan

    def test_overhead_can_make_checkpointing_lose(self):
        """Huge checkpoint overhead: plain re-execution is better."""
        faults = FaultModel(k=1, mu=1.0, checkpoint_overhead=50.0)
        graph = make_graph({"P1": {"N1": 20.0}})
        rex = schedule_single_graph(
            graph, faults, {"P1": Policy.reexecution(1)}, {"P1": "N1"}, BUS1
        )
        cp = schedule_single_graph(
            graph, faults, {"P1": Policy.checkpointing(1, 2)}, {"P1": "N1"}, BUS1
        )
        assert rex.makespan < cp.makespan


class TestSimulation:
    def _schedule(self):
        faults = FaultModel(k=2, mu=10.0)
        graph = make_graph(
            {"A": {"N1": 40.0}, "B": {"N2": 30.0}}, [("A", "B", 2)]
        )
        return schedule_single_graph(
            graph,
            faults,
            {"A": Policy.checkpointing(2, 4), "B": Policy.reexecution(2)},
            {"A": "N1", "B": "N2"},
            BUS2,
        )

    def test_kernel_reruns_one_segment(self):
        schedule = self._schedule()
        result = simulate(schedule, FaultScenario({"A:r0": 1}))
        record = result.executions["A:r0"]
        # 40 + (segment 10 + mu 10) = 60
        assert record.finish == pytest.approx(60.0)

    def test_validation_passes(self):
        report = validate_schedule(self._schedule())
        assert report.ok, report.violations[:3]


class TestOptimizerIntegration:
    def test_mxc_variant_runs_and_validates(self):
        from repro.gen.suite import generate_case
        from repro.opt.strategy import OptimizationConfig, optimize

        case = generate_case(10, 2, 2, mu=5.0, seed=1)
        faults = FaultModel(k=2, mu=5.0, checkpoint_overhead=1.0)
        cfg = OptimizationConfig(minimize=True, rounds=2, tabu_max_iterations=6)
        result = optimize(case.application, case.architecture, faults, "MXC", cfg)
        assert result.makespan > 0
        report = validate_schedule(result.schedule, samples=100)
        assert report.ok, report.violations[:3]

    def test_mxc_not_worse_than_mxr(self):
        from repro.gen.suite import generate_case
        from repro.opt.strategy import OptimizationConfig, optimize

        faults = FaultModel(k=3, mu=5.0, checkpoint_overhead=0.5)
        cfg = OptimizationConfig(minimize=True, rounds=2, tabu_max_iterations=8)
        totals = {"MXR": 0.0, "MXC": 0.0}
        for seed in (0, 1):
            case = generate_case(12, 2, 3, mu=5.0, seed=seed)
            for variant in totals:
                result = optimize(
                    case.application, case.architecture, faults, variant, cfg
                )
                totals[variant] += result.makespan
        assert totals["MXC"] <= totals["MXR"] + 1e-6

    def test_checkpoint_policy_round_trips_through_json(self):
        from repro.io.json_codec import (
            implementation_from_dict,
            implementation_to_dict,
        )
        from repro.opt.implementation import Implementation

        impl = Implementation(
            policies=PolicyAssignment({"A": Policy.checkpointing(2, 4)}),
            mapping=ReplicaMapping({"A": ("N1",)}),
            bus=BUS1,
        )
        restored = implementation_from_dict(implementation_to_dict(impl))
        assert restored.policies["A"].checkpoints == 4
