"""Unit tests for the cruise-controller case study (paper §6)."""

import pytest

from repro.apps.cruise_control import (
    CC_DEADLINE_MS,
    CC_FAULTS,
    cruise_control_application,
    cruise_control_architecture,
    cruise_control_case,
)


class TestStructure:
    def test_32_processes(self):
        app = cruise_control_application()
        assert len(app.graphs[0]) == 32

    def test_three_paper_nodes(self):
        arch = cruise_control_architecture()
        assert arch.node_names == ("ETM", "ABS", "TCM")

    def test_paper_fault_model(self):
        assert CC_FAULTS.k == 2
        assert CC_FAULTS.mu == 2.0
        assert CC_DEADLINE_MS == 250.0

    def test_graph_is_valid_dag(self):
        app = cruise_control_application()
        app.validate()

    def test_sensors_and_actuators_pinned(self):
        graph = cruise_control_application().graphs[0]
        for name, process in graph.processes.items():
            if name.startswith("s_") or name.startswith("a_"):
                assert process.fixed_node is not None, name
            else:
                assert process.fixed_node is None, name

    def test_wheel_sensors_on_abs(self):
        graph = cruise_control_application().graphs[0]
        for wheel in ("s_wheel_fl", "s_wheel_fr", "s_wheel_rl", "s_wheel_rr"):
            assert graph.process(wheel).fixed_node == "ABS"

    def test_throttle_actuator_on_etm(self):
        graph = cruise_control_application().graphs[0]
        assert graph.process("a_throttle").fixed_node == "ETM"

    def test_control_chain_exists(self):
        """Sensor data must reach the throttle actuator."""
        import networkx as nx

        graph = cruise_control_application().graphs[0].to_networkx()
        assert nx.has_path(graph, "s_wheel_fl", "a_throttle")
        assert nx.has_path(graph, "s_cc_buttons", "a_throttle")

    def test_case_bundle(self):
        app, arch, faults = cruise_control_case()
        assert len(app.graphs[0]) == 32
        assert faults is CC_FAULTS
        assert app.graphs[0].deadline == 250.0

    def test_custom_deadline(self):
        app, _, _ = cruise_control_case(deadline=300.0)
        assert app.graphs[0].deadline == 300.0

    def test_free_processes_can_run_anywhere(self):
        graph = cruise_control_application().graphs[0]
        for name, process in graph.processes.items():
            if process.fixed_node is None:
                assert set(process.wcet) == {"ETM", "ABS", "TCM"}, name
