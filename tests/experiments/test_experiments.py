"""Tests for the experiment runners (tiny budgets, shape checks only)."""

import pytest

from repro.experiments.figure10 import figure10
from repro.experiments.reporting import (
    format_cruise,
    format_figure10,
    format_table1,
)
from repro.experiments.runner import budget_for, run_variants
from repro.experiments.table1 import Table1Row, table1a, table1b, table1c
from repro.experiments.cruise import CruiseResult
from repro.gen.suite import generate_case
from repro.opt.strategy import OptimizationConfig

TINY = OptimizationConfig(
    minimize=True, rounds=1, greedy_max_iterations=3, tabu_max_iterations=2
)
TINY_DIM = ((10, 2, 2),)


class TestBudget:
    def test_budget_scales_with_size(self):
        assert budget_for(20).time_limit_s < budget_for(100).time_limit_s

    def test_time_scale_multiplies(self):
        assert budget_for(20, 2.0).time_limit_s == 2 * budget_for(20).time_limit_s

    def test_oversized_apps_extrapolate(self):
        assert budget_for(200).time_limit_s > budget_for(100).time_limit_s

    def test_minimize_mode(self):
        assert budget_for(20).minimize is True


class TestRunVariants:
    def test_overheads_positive(self):
        case = generate_case(10, 2, 2, mu=5.0, seed=0)
        runs = run_variants(case, ("NFT", "MXR"), config=TINY)
        assert runs["MXR"].makespan >= runs["NFT"].makespan
        assert runs["MXR"].overhead_vs(runs["NFT"]) >= 0.0
        assert runs["NFT"].evaluations > 0


class TestTable1Row:
    def test_aggregation(self):
        row = Table1Row.from_overheads("x", [10.0, 30.0, 20.0])
        assert row.max_overhead == 30.0
        assert row.min_overhead == 10.0
        assert row.avg_overhead == pytest.approx(20.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Table1Row.from_overheads("x", [])


class TestSweeps:
    def test_table1a_row_shape(self):
        rows = table1a(seeds=(0,), dimensions=TINY_DIM, time_scale=0.05)
        assert len(rows) == 1
        assert rows[0].min_overhead <= rows[0].avg_overhead <= rows[0].max_overhead

    def test_table1b_overhead_grows_with_k(self):
        rows = table1b(
            seeds=(0,), fault_counts=(1, 4), n_processes=10, n_nodes=2,
            time_scale=0.05,
        )
        assert rows[0].avg_overhead < rows[1].avg_overhead

    def test_table1c_overhead_grows_with_mu(self):
        rows = table1c(
            seeds=(0,), fault_durations=(1.0, 20.0), n_processes=10,
            n_nodes=2, k=2, time_scale=0.05,
        )
        assert rows[0].avg_overhead <= rows[1].avg_overhead

    def test_figure10_row_shape(self):
        rows = figure10(seeds=(0,), dimensions=TINY_DIM, time_scale=0.05)
        assert len(rows) == 1
        series = rows[0].series()
        assert set(series) == {"MX", "MR", "SFX"}
        # MR (pure replication) must be the worst strategy.
        assert series["MR"] >= series["MX"]


class TestReporting:
    def test_format_table1(self):
        rows = [Table1Row("20 procs", 3, 90.0, 70.0, 50.0)]
        text = format_table1(rows, "Table 1a")
        assert "Table 1a" in text
        assert "20 procs" in text
        assert "70.00" in text

    def test_format_figure10(self):
        from repro.experiments.figure10 import Figure10Row

        text = format_figure10([Figure10Row(20, 3, 10.0, 80.0, 40.0)])
        assert "MX" in text and "MR" in text and "SFX" in text

    def test_format_cruise(self):
        result = CruiseResult(
            deadline=250.0, makespans={"NFT": 150.0, "MXR": 230.0, "MX": 260.0}
        )
        text = format_cruise(result)
        assert "MISSED" in text
        assert "meets deadline" in text
        assert "overhead" in text
        assert result.meets_deadline("MXR")
        assert not result.meets_deadline("MX")
        assert result.overhead_pct("MXR") == pytest.approx(53.333, abs=0.01)
