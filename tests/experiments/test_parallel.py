"""Tests for the parallel experiment runner (fan-out + serial parity)."""

import os
import pickle
import re

import pytest

from repro.errors import ConfigurationError, ExperimentJobError
from repro.experiments.figure10 import figure10
from repro.experiments.parallel import (
    CaseJob,
    resolve_jobs,
    run_case_job,
    run_case_jobs,
)
from repro.experiments.table1 import table1a, table1b
from repro.opt.strategy import OptimizationConfig
from repro.schedule.record import ScheduleRecord

#: Deterministic budget: no wall-clock limit, so serial and parallel runs
#: perform bit-identical searches regardless of scheduling jitter.
TINY = OptimizationConfig(
    minimize=True, rounds=1, greedy_max_iterations=3, tabu_max_iterations=2
)
TINY_DIMS = ((8, 2, 2), (10, 2, 2))


class TestRunCaseJobs:
    def test_results_align_with_submission_order(self):
        jobs = [
            CaseJob(8, 2, 2, 5.0, seed, ("NFT",), config=TINY)
            for seed in (0, 1, 2)
        ]
        serial = run_case_jobs(jobs, n_jobs=1)
        parallel = run_case_jobs(jobs, n_jobs=3)
        assert [r["NFT"].makespan for r in serial] == [
            r["NFT"].makespan for r in parallel
        ]

    def test_single_job_runs_inline(self):
        job = CaseJob(8, 2, 2, 5.0, 0, ("NFT",), config=TINY)
        (result,) = run_case_jobs([job], n_jobs=8)
        assert result["NFT"].makespan == run_case_job(job)["NFT"].makespan

    def test_invalid_job_count_rejected(self):
        with pytest.raises(ConfigurationError):
            run_case_jobs([], n_jobs=0)

    def test_results_carry_schedule_records_across_workers(self):
        """Workers return the full compact schedule IR, not just scalars."""
        jobs = [
            CaseJob(8, 2, 2, 5.0, seed, ("NFT", "MXR"), config=TINY)
            for seed in (0, 1)
        ]
        for result in run_case_jobs(jobs, n_jobs=2):
            for run in result.values():
                assert isinstance(run.record, ScheduleRecord)
                assert run.record.makespan == pytest.approx(run.makespan)
                # Cheap to re-ship onward (distributed-queue backends).
                assert pickle.loads(pickle.dumps(run.record)) == run.record


class TestResolveJobs:
    def test_passthrough_for_positive_counts(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(7) == 7

    def test_minus_one_means_all_cpus(self):
        assert resolve_jobs(-1) == (os.cpu_count() or 1)

    @pytest.mark.parametrize("bad", [0, -2, -17])
    def test_zero_and_other_negatives_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            resolve_jobs(bad)

    def test_run_case_jobs_accepts_all_cpus_sentinel(self):
        job = CaseJob(8, 2, 2, 5.0, 0, ("NFT",), config=TINY)
        (result,) = run_case_jobs([job], n_jobs=-1)
        assert result["NFT"].makespan == run_case_job(job)["NFT"].makespan

    def test_progress_reports_every_job(self):
        jobs = [
            CaseJob(8, 2, 2, 5.0, seed, ("NFT",), config=TINY)
            for seed in (0, 1)
        ]
        lines: list[str] = []
        run_case_jobs(jobs, n_jobs=2, progress=lines.append)
        assert len(lines) == 2

    @pytest.mark.parametrize("n_jobs", [1, 2])
    def test_progress_includes_per_job_elapsed_time(self, n_jobs):
        """Serial and pool paths both report each job's wall-clock."""
        jobs = [
            CaseJob(8, 2, 2, 5.0, seed, ("NFT",), config=TINY)
            for seed in (0, 1)
        ]
        lines: list[str] = []
        run_case_jobs(jobs, n_jobs=n_jobs, progress=lines.append)
        assert len(lines) == 2
        for line in lines:
            assert re.search(r"\(\d+\.\ds\)$", line), line

    def test_worker_exception_carries_job_description(self):
        """A dying job names its (case, seed), not just a bare traceback."""
        jobs = [
            CaseJob(8, 2, 2, 5.0, 0, ("NFT",), config=TINY, label="good job"),
            CaseJob(0, 2, 2, 5.0, 1, ("NFT",), config=TINY, label="doomed job"),
        ]
        with pytest.raises(ExperimentJobError, match="doomed job") as excinfo:
            run_case_jobs(jobs, n_jobs=2)
        assert excinfo.value.__cause__ is not None  # original error chained

    def test_describe_defaults_and_label(self):
        job = CaseJob(8, 2, 2, 5.0, 4, ("NFT", "MXR"))
        assert "8p" in job.describe()
        assert "seed 4" in job.describe()
        labelled = CaseJob(8, 2, 2, 5.0, 4, ("NFT",), label="row 1")
        assert labelled.describe() == "row 1"


class TestSweepParity:
    """``--jobs N`` must reproduce the serial tables row for row."""

    def test_table1a_parallel_matches_serial(self):
        serial = table1a(seeds=(0,), dimensions=TINY_DIMS, config=TINY, jobs=1)
        parallel = table1a(seeds=(0,), dimensions=TINY_DIMS, config=TINY, jobs=4)
        assert serial == parallel

    def test_table1b_parallel_matches_serial(self):
        kwargs = dict(
            seeds=(0,), fault_counts=(1, 2), n_processes=8, n_nodes=2,
            config=TINY,
        )
        assert table1b(jobs=1, **kwargs) == table1b(jobs=4, **kwargs)

    def test_figure10_parallel_matches_serial(self):
        serial = figure10(seeds=(0,), dimensions=((8, 2, 2),), config=TINY, jobs=1)
        parallel = figure10(
            seeds=(0,), dimensions=((8, 2, 2),), config=TINY, jobs=2
        )
        assert serial == parallel
