"""Tracing only observes: traced runs produce byte-identical results.

The telemetry layer's core contract — enabling ``--trace`` must not
change a single decision.  These tests run the same workload with
tracing off and on and require the produced artifacts (schedule records,
costs, injection aggregates) to be *equal*, not merely close, modulo the
wall-clock fields that can never be deterministic.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.model.application import Application
from repro.model.architecture import homogeneous_architecture
from repro.model.fault import FaultModel
from repro.opt.strategy import OptimizationConfig, optimize

from tests.conftest import make_graph
from tests.inject.conftest import build_target


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable_tracing()
    obs.reset_metrics()
    yield
    obs.disable_tracing()
    obs.reset_metrics()


def _small_problem():
    processes = {
        f"P{i}": {"N1": 40.0 + i, "N2": 45.0 + i} for i in range(4)
    }
    edges = [(f"P{i}", f"P{i+1}", 1) for i in range(3)]
    app = Application([make_graph(processes, edges)])
    return app, homogeneous_architecture(2), FaultModel(k=1, mu=5.0)


def _optimize_once():
    app, arch, faults = _small_problem()
    cfg = OptimizationConfig(
        greedy_max_iterations=8, tabu_max_iterations=8, rounds=1
    )
    return optimize(app, arch, faults, "MXR", cfg)


def _sweep_once():
    from repro.inject.driver import run_inject_sweep
    from repro.inject.importance import importance_scenarios
    from repro.inject.plan import plan_sweep
    from repro.inject.space import ScenarioSpace

    target = build_target(n_processes=8, n_nodes=2, k=2, seed=0, replicas=1)
    context = target.build_context()
    space = ScenarioSpace.of(context.ft, target.faults.k)
    ranked = importance_scenarios(target.record, context.ft, target.faults.k)
    plan = plan_sweep(
        space, len(ranked), budget=100_000, shard_size=64, seed=0,
        tier="auto",
    )
    aggregate, _ = run_inject_sweep(target, plan)
    return aggregate


def _strip_wall_clock(summary: dict) -> dict:
    """Deep copy minus the fields that legitimately vary run to run."""
    data = json.loads(json.dumps(summary))
    data["elapsed_s"] = 0.0
    data["phase_s"] = {name: 0.0 for name in data["phase_s"]}
    data["scenarios_per_sec"] = 0.0
    return data


class TestOptimizeParity:
    def test_traced_equals_untraced(self, tmp_path):
        untraced = _optimize_once()

        obs.enable_tracing(str(tmp_path / "t.jsonl"))
        try:
            traced = _optimize_once()
        finally:
            obs.disable_tracing()

        # The winning schedule is the byte-identical record.
        assert traced.schedule.record == untraced.schedule.record
        assert traced.cost == untraced.cost
        assert traced.variant == untraced.variant
        # Search took the exact same path, not just the same destination.
        assert traced.evaluations == untraced.evaluations
        assert traced.cache_hits == untraced.cache_hits
        assert traced.iterations == untraced.iterations
        assert traced.stage_costs == untraced.stage_costs


class TestInjectParity:
    def test_traced_sweep_equals_untraced(self, tmp_path):
        untraced = _sweep_once()

        obs.enable_tracing(str(tmp_path / "t.jsonl"), label="parity")
        try:
            traced = _sweep_once()
        finally:
            obs.disable_tracing()

        assert _strip_wall_clock(traced.to_dict()) == _strip_wall_clock(
            untraced.to_dict()
        )
        # Spot-check the decision-carrying fields directly too.
        assert traced.violation_scenarios == untraced.violation_scenarios
        assert traced.class_counts == untraced.class_counts
        assert {
            name: ex.order for name, ex in traced.exemplars.items()
        } == {
            name: ex.order for name, ex in untraced.exemplars.items()
        }
