"""Metrics registry: instruments, merge semantics, Prometheus rendering."""

from __future__ import annotations

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    get_registry,
    merge_snapshots,
    render_prometheus,
    reset_metrics,
)


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.inc("a.b")
        registry.inc("a.b", 2.5)
        assert registry.value("a.b") == 3.5

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.set("depth", 7)
        registry.set("depth", 3)
        assert registry.value("depth") == 3.0

    def test_unset_name_reads_zero(self):
        assert MetricsRegistry().value("never.touched") == 0.0

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        for value in (0.0005, 0.003, 0.003, 2.0):
            registry.observe("lat", value)
        hist = registry.histogram("lat")
        assert hist.count == 4
        assert hist.total == pytest.approx(2.0065)
        counts = dict(zip(hist.bounds, hist.bucket_counts))
        assert counts[0.001] == 1
        assert counts[0.005] == 3  # cumulative: includes the <=0.001 one
        assert counts[5.0] == 4
        assert hist.min == 0.0005 and hist.max == 2.0

    def test_timer_accumulates_seconds_and_calls(self):
        registry = MetricsRegistry()
        for _ in range(3):
            with registry.timer("phase"):
                pass
        assert registry.value("phase_calls") == 3.0
        assert registry.value("phase_s") >= 0.0

    def test_instruments_are_cached_by_name(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("y") is registry.gauge("y")
        assert registry.histogram("z") is registry.histogram("z")


class TestMergeAndSnapshots:
    def test_merge_adds_counters_overwrites_gauges(self):
        local = MetricsRegistry()
        local.inc("n", 2)
        local.set("g", 5)
        target = MetricsRegistry()
        target.inc("n", 1)
        target.set("g", 1)
        target.merge(local)
        assert target.value("n") == 3.0
        assert target.value("g") == 5.0

    def test_merge_with_prefix_namespaces_names(self):
        local = MetricsRegistry()
        local.inc("simulate_s", 1.5)
        target = MetricsRegistry()
        target.merge(local, prefix="inject.phase.")
        assert target.value("inject.phase.simulate_s") == 1.5

    def test_snapshot_is_json_safe_and_sorted(self):
        registry = MetricsRegistry()
        registry.inc("b")
        registry.inc("a")
        registry.observe("h", 0.01)
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["a", "b"]
        assert snapshot["histograms"]["h"]["count"] == 1
        assert snapshot["histograms"]["h"]["buckets"][0] == [
            DEFAULT_BUCKETS[0], 0,
        ]

    def test_merge_snapshots_sums_counters_keeps_max_gauge(self):
        one = MetricsRegistry()
        one.inc("acks", 3)
        one.set("depth", 9)
        one.observe("lat", 0.2)
        two = MetricsRegistry()
        two.inc("acks", 4)
        two.set("depth", 2)
        two.observe("lat", 0.9)
        merged = merge_snapshots([one.snapshot(), two.snapshot()])
        assert merged["counters"]["acks"] == 7.0
        assert merged["gauges"]["depth"] == 9.0
        assert merged["histograms"]["lat"]["count"] == 2
        assert merged["histograms"]["lat"]["sum"] == pytest.approx(1.1)

    def test_process_registry_reset(self):
        registry = reset_metrics()
        registry.inc("k")
        assert get_registry() is registry
        fresh = reset_metrics()
        assert fresh.value("k") == 0.0


class TestPrometheus:
    def test_render_covers_all_instrument_kinds(self):
        registry = MetricsRegistry()
        registry.inc("queue.acks", 4)
        registry.set("queue.depth.queued", 2)
        registry.observe("queue.job_s", 0.2)
        page = render_prometheus(registry.snapshot())
        assert "# TYPE queue_acks counter" in page
        assert "queue_acks 4" in page
        assert "# TYPE queue_depth_queued gauge" in page
        assert 'queue_job_s_bucket{le="+Inf"} 1' in page
        assert "queue_job_s_count 1" in page
        assert page.endswith("\n")

    def test_names_are_prometheus_legal(self):
        registry = MetricsRegistry()
        registry.inc("a.b-c.d", 1)
        page = render_prometheus(registry.snapshot())
        assert "a_b_c_d 1" in page
