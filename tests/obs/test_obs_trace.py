"""Trace schema round-trip and span nesting/ordering invariants."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.errors import TraceError
from repro.io.trace_codec import (
    KIND_META,
    KIND_SPAN,
    TRACE_SCHEMA_VERSION,
    decode_trace_event,
    encode_trace_event,
    iter_trace_events,
    trace_files,
    validate_trace_event,
)
from repro.obs.trace import Tracer


@pytest.fixture(autouse=True)
def _clean_obs():
    """Every test starts and ends with tracing off and fresh metrics."""
    obs.disable_tracing()
    obs.reset_metrics()
    yield
    obs.disable_tracing()
    obs.reset_metrics()


class TestCodec:
    def test_span_event_round_trips(self):
        event = {
            "v": TRACE_SCHEMA_VERSION,
            "run": "abc",
            "kind": KIND_SPAN,
            "ts": 12.5,
            "name": "schedule",
            "id": 3,
            "parent": 1,
            "dur": 0.25,
            "status": "ok",
            "attrs": {"tier": "exhaustive"},
        }
        assert decode_trace_event(encode_trace_event(event)) == event

    def test_encoding_is_single_compact_sorted_line(self):
        line = encode_trace_event({
            "v": 1, "run": "r", "kind": "event", "ts": 0.0, "name": "x",
        })
        assert "\n" not in line
        keys = list(json.loads(line))
        assert keys == sorted(keys)

    def test_unknown_version_rejected(self):
        with pytest.raises(TraceError, match="version"):
            validate_trace_event({
                "v": 999, "run": "r", "kind": "event", "ts": 0.0, "name": "x",
            })

    def test_missing_required_field_rejected(self):
        with pytest.raises(TraceError, match="span"):
            validate_trace_event({
                "v": 1, "run": "r", "kind": "span", "ts": 0.0, "name": "x",
            })

    def test_unknown_kind_rejected(self):
        with pytest.raises(TraceError, match="kind"):
            validate_trace_event({
                "v": 1, "run": "r", "kind": "nope", "ts": 0.0,
            })

    def test_iter_trace_events_reports_file_and_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("this is not json\n")
        with pytest.raises(TraceError, match=r"t\.jsonl:1"):
            list(iter_trace_events(str(path)))

    def test_trace_files_discovers_worker_shards(self, tmp_path):
        base = tmp_path / "run.jsonl"
        base.write_text("")
        (tmp_path / "run.jsonl.w1").write_text("")
        (tmp_path / "run.jsonl.w0").write_text("")
        files = trace_files(str(base))
        assert files == [
            str(base), str(base) + ".w0", str(base) + ".w1",
        ]

    def test_trace_files_missing_path_raises(self, tmp_path):
        with pytest.raises(TraceError, match="no trace file"):
            trace_files(str(tmp_path / "absent.jsonl"))


class TestTracer:
    def read(self, path):
        return list(iter_trace_events(str(path)))

    def test_meta_line_written_on_open(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(str(path), worker="w0", label="unit")
        tracer.close()
        events = self.read(path)
        assert events[0]["kind"] == KIND_META
        assert events[0]["worker"] == "w0"
        assert events[0]["label"] == "unit"
        assert events[0]["run"] == tracer.run_id

    def test_children_precede_parents_and_link_back(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(str(path))
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("second"):
                pass
        tracer.close()
        spans = [e for e in self.read(path) if e["kind"] == KIND_SPAN]
        names = [span["name"] for span in spans]
        # Spans are written on exit: children always precede their parent.
        assert names == ["inner", "second", "outer"]
        by_name = {span["name"]: span for span in spans}
        assert by_name["inner"]["parent"] == by_name["outer"]["id"]
        assert by_name["second"]["parent"] == by_name["outer"]["id"]
        assert by_name["outer"]["parent"] is None

    def test_exception_marks_error_status_and_propagates(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(str(path))
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        tracer.close()
        spans = {
            e["name"]: e for e in self.read(path) if e["kind"] == KIND_SPAN
        }
        assert spans["inner"]["status"] == "error"
        assert spans["inner"]["error"] == "ValueError"
        assert spans["outer"]["status"] == "error"
        # The stack unwound correctly: both spans were closed and durations
        # recorded despite the exception.
        assert spans["inner"]["dur"] >= 0.0

    def test_exit_time_attributes_land_in_the_event(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(str(path))
        with tracer.span("shard", tier="exhaustive") as sp:
            sp.set(scenarios=55)
        tracer.close()
        span = [e for e in self.read(path) if e["kind"] == KIND_SPAN][0]
        assert span["attrs"] == {"tier": "exhaustive", "scenarios": 55}

    def test_metrics_snapshot_embedded(self, tmp_path):
        path = tmp_path / "t.jsonl"
        registry = obs.reset_metrics()
        registry.inc("queue.acks", 2)
        tracer = Tracer(str(path))
        tracer.snapshot_metrics(registry)
        tracer.close()
        metrics = [e for e in self.read(path) if e["kind"] == "metrics"]
        assert metrics[0]["snapshot"]["counters"]["queue.acks"] == 2.0

    def test_every_event_validates_against_schema(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(str(path))
        with tracer.span("a", x=1):
            tracer.event("ping", y=2)
        tracer.snapshot_metrics(obs.get_registry())
        tracer.close()
        # iter_trace_events validates every line; no raise == schema-clean.
        events = self.read(path)
        assert {e["kind"] for e in events} == {
            "meta", "span", "event", "metrics",
        }


class TestModuleLevelApi:
    def test_disabled_by_default_and_null_ops(self):
        assert not obs.enabled()
        with obs.span("anything", attr=1) as sp:
            sp.set(more=2)  # all no-ops, nothing raises, nothing written
        obs.event("nothing")
        obs.snapshot_metrics()

    def test_enable_disable_cycle(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = obs.enable_tracing(str(path), worker="driver")
        assert obs.enabled() and obs.tracer() is tracer
        with obs.span("root"):
            pass
        obs.disable_tracing()
        assert not obs.enabled()
        spans = [
            e for e in iter_trace_events(str(path)) if e["kind"] == KIND_SPAN
        ]
        assert [s["name"] for s in spans] == ["root"]

    def test_export_env_and_adopt_roundtrip(self, tmp_path, monkeypatch):
        path = tmp_path / "t.jsonl"
        driver = obs.enable_tracing(str(path), export_env=True)
        run_id = driver.run_id
        import os

        assert os.environ[obs.TRACE_PATH_ENV] == str(path)
        assert os.environ[obs.TRACE_RUN_ENV] == run_id
        # Simulate the spawned worker process: no active tracer.
        obs._TRACER = obs.NULL_TRACER
        monkeypatch.setenv(obs.TRACE_PATH_ENV, str(path))
        monkeypatch.setenv(obs.TRACE_RUN_ENV, run_id)
        worker = obs.adopt_env_tracing("w7")
        assert worker is not None
        assert worker.run_id == run_id
        assert worker.path == obs.worker_trace_path(str(path), "w7")
        obs.disable_tracing()

    def test_adopt_without_env_is_none(self, monkeypatch):
        monkeypatch.delenv(obs.TRACE_PATH_ENV, raising=False)
        assert obs.adopt_env_tracing("w0") is None

    def test_worker_trace_path_sanitizes(self):
        assert obs.worker_trace_path("/tmp/t.jsonl", "host/1:2") == (
            "/tmp/t.jsonl.host-1-2"
        )
