"""Stitching multi-worker shards by run_id and profiling the span tree."""

from __future__ import annotations

import time

import pytest

from repro import obs
from repro.errors import TraceError
from repro.obs.analyze import (
    attribution,
    available_runs,
    effectiveness,
    format_summary,
    format_top,
    load_run,
    queue_overhead,
    summarize,
    time_by_name,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable_tracing()
    obs.reset_metrics()
    yield
    obs.disable_tracing()
    obs.reset_metrics()


def _sleep():
    time.sleep(0.002)


@pytest.fixture
def sweep_trace(tmp_path):
    """A driver file plus two worker shards sharing one run_id.

    Mirrors what ``ftds inject --broker --jobs 2 --trace`` writes: the
    driver's ``cli.inject`` root wrapping named phases, and per-worker
    ``job`` roots whose children are the traced payload work.
    """
    base = tmp_path / "sweep.jsonl"
    driver = Tracer(str(base), worker="driver", label="inject")
    run_id = driver.run_id
    with driver.span("cli.inject"):
        with driver.span("plan"):
            _sleep()
        with driver.span("sweep", broker="sqlite"):
            for worker_id in ("w0", "w1"):
                registry = MetricsRegistry()
                shard = Tracer(
                    obs.worker_trace_path(str(base), worker_id),
                    run_id=run_id,
                    worker=worker_id,
                )
                with shard.span("job", fingerprint="abc") as sp:
                    with shard.span("shard", tier="exhaustive"):
                        _sleep()
                    sp.set(outcome="ack")
                registry.inc("queue.leases")
                registry.inc("queue.acks")
                registry.inc("inject.tier.exhaustive.scenarios", 40)
                registry.inc("inject.tier.exhaustive.elapsed_s", 0.5)
                shard.snapshot_metrics(registry)
                shard.close()
    registry = MetricsRegistry()
    registry.inc("evaluator.cache_hits", 30)
    registry.inc("evaluator.exact_evaluations", 10)
    registry.inc("evaluator.ranked_evaluations", 60)
    registry.set("queue.depth.dead", 0)
    driver.snapshot_metrics(registry)
    driver.close()
    return base, run_id


class TestStitching:
    def test_one_path_expands_to_all_shards_of_the_run(self, sweep_trace):
        base, run_id = sweep_trace
        run = load_run([str(base)])
        assert run.run_id == run_id
        assert len(run.files) == 3
        assert sorted(run.workers) == ["driver", "w0", "w1"]
        # One driver root; the worker job roots are separate trees.
        assert [root.name for root in run.roots] == ["cli.inject", "job", "job"]
        assert {root.worker for root in run.roots} == {"driver", "w0", "w1"}

    def test_span_ids_are_qualified_per_file(self, sweep_trace):
        # Driver and workers all start ids at 1; stitching must not
        # cross-link a worker's span under the driver's same-numbered one.
        base, _ = sweep_trace
        run = load_run([str(base)])
        for root in run.roots:
            for node in root.children:
                assert node.worker == root.worker

    def test_nesting_preserved_within_each_worker(self, sweep_trace):
        base, _ = sweep_trace
        run = load_run([str(base)])
        cli = run.roots[0]
        assert [child.name for child in cli.children] == ["plan", "sweep"]
        for job in run.roots[1:]:
            assert [child.name for child in job.children] == ["shard"]
            assert job.attrs["outcome"] == "ack"

    def test_metrics_merged_across_workers(self, sweep_trace):
        base, _ = sweep_trace
        run = load_run([str(base)])
        counters = run.metrics["counters"]
        # Counters sum across the two workers and the driver.
        assert counters["queue.acks"] == 2.0
        assert counters["inject.tier.exhaustive.scenarios"] == 80.0
        assert counters["evaluator.cache_hits"] == 30.0

    def test_multiple_runs_require_explicit_run_id(self, tmp_path):
        path = tmp_path / "t.jsonl"
        for _ in range(2):
            tracer = Tracer(str(path))
            with tracer.span("root"):
                pass
            tracer.close()
        with pytest.raises(TraceError, match="2 runs"):
            load_run([str(path)])
        runs = available_runs([str(path)])
        assert len(runs) == 2
        chosen = sorted(runs)[0]
        assert load_run([str(path)], run_id=chosen).run_id == chosen

    def test_unknown_run_id_rejected_with_candidates(self, sweep_trace):
        base, run_id = sweep_trace
        with pytest.raises(TraceError, match=run_id):
            load_run([str(base)], run_id="nope")

    def test_empty_file_set_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(TraceError, match="no trace events"):
            load_run([str(path)])


class TestProfiling:
    def test_time_by_name_aggregates_and_sorts_by_self_time(self, sweep_trace):
        base, _ = sweep_trace
        run = load_run([str(base)])
        rows = {row["name"]: row for row in time_by_name(run)}
        assert rows["job"]["count"] == 2
        assert rows["shard"]["count"] == 2
        # A job's self time excludes its shard child.
        assert rows["job"]["self_s"] < rows["job"]["total_s"]
        ordering = [row["self_s"] for row in time_by_name(run)]
        assert ordering == sorted(ordering, reverse=True)

    def test_attribution_anchors_on_cli_root(self, sweep_trace):
        base, _ = sweep_trace
        run = load_run([str(base)])
        att = attribution(run)
        # Only the driver's cli.* root counts as wall clock; the worker
        # job roots overlap it and would double-count.
        assert att["roots"] == 1
        assert att["wall_s"] == pytest.approx(run.roots[0].dur)
        assert 0.0 < att["attributed_pct"] <= 100.0

    def test_attribution_falls_back_to_all_roots(self, tmp_path):
        path = tmp_path / "lib.jsonl"
        tracer = Tracer(str(path))
        with tracer.span("optimize"):
            with tracer.span("greedy"):
                _sleep()
        tracer.close()
        att = attribution(load_run([str(path)]))
        assert att["roots"] == 1
        assert att["attributed_pct"] > 0.0

    def test_queue_overhead_is_job_self_time(self, sweep_trace):
        base, _ = sweep_trace
        run = load_run([str(base)])
        queue = queue_overhead(run)
        assert queue["jobs"] == 2
        assert 0.0 <= queue["overhead_s"] < queue["total_s"]
        assert queue["overhead_per_job_s"] == pytest.approx(
            queue["overhead_s"] / 2
        )

    def test_effectiveness_reads_merged_registry(self, sweep_trace):
        base, _ = sweep_trace
        run = load_run([str(base)])
        eff = effectiveness(run)
        assert eff["evaluator"]["requests"] == 100.0
        assert eff["evaluator"]["cache_hit_rate"] == pytest.approx(0.3)
        assert eff["broker"]["leases"] == 2.0
        assert eff["broker"]["acks"] == 2.0
        assert eff["broker"]["dead_letters"] == 0.0
        exhaustive = eff["inject_tiers"]["exhaustive"]
        assert exhaustive["scenarios"] == 80.0
        assert exhaustive["scenarios_per_sec"] == pytest.approx(80.0)


class TestRendering:
    def test_summarize_is_json_safe_and_complete(self, sweep_trace):
        base, run_id = sweep_trace
        import json

        summary = summarize(load_run([str(base)]))
        json.dumps(summary)  # must not raise
        assert summary["run"] == run_id
        assert summary["workers"] == ["driver", "w0", "w1"]
        assert summary["spans"] == 7

    def test_format_summary_mentions_the_headline_numbers(self, sweep_trace):
        base, run_id = sweep_trace
        text = format_summary(load_run([str(base)]))
        assert run_id in text
        assert "3 shard file(s), 3 worker(s)" in text
        assert "attributed to named spans" in text
        assert "cli.inject" in text
        assert "cache hits" in text
        assert "inject[exhaustive]" in text
        assert "2 leases" in text

    def test_format_top_ranks_by_self_time(self, sweep_trace):
        base, _ = sweep_trace
        text = format_top(load_run([str(base)]), limit=3)
        assert "top 3 span name(s)" in text
        assert text.count("\n") == 3
