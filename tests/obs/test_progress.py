"""The shared progress reporter keeps the historical line format."""

from __future__ import annotations

import re

import pytest

from repro import obs
from repro.obs.progress import ProgressReporter, format_elapsed


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable_tracing()
    obs.reset_metrics()
    yield
    obs.disable_tracing()
    obs.reset_metrics()


class TestFormatElapsed:
    def test_under_a_minute_is_tenths(self):
        assert format_elapsed(3.24) == "3.2s"
        assert format_elapsed(0.0) == "0.0s"
        assert format_elapsed(59.94) == "59.9s"

    def test_over_a_minute_is_minutes_and_padded_seconds(self):
        assert format_elapsed(63.4) == "1m03.4s"
        assert format_elapsed(754.26) == "12m34.3s"


class TestProgressReporter:
    def test_line_shape_matches_the_drivers(self):
        lines = []
        reporter = ProgressReporter(lines.append, total=3)
        reporter.step("case p10 n3", elapsed_s=3.24)
        reporter.step("case p10 n4")
        reporter.step("shard 0:40", elapsed_s=1.0, note="40 scenarios")
        assert lines == [
            "[1/3] case p10 n3 (3.2s)",
            "[2/3] case p10 n4",
            "[3/3] shard 0:40 (40 scenarios, 1.0s)",
        ]
        # The shape the driver tests grep for.
        assert re.search(r"\(\d+\.\ds\)", lines[0])
        assert all(re.match(r"\[\d+/3\] ", line) for line in lines)

    def test_steps_counted_into_the_registry(self):
        reporter = ProgressReporter(None, total=2, metric="queue.results")
        reporter.step("a")
        reporter.step("b")
        assert obs.get_registry().value("queue.results") == 2.0

    def test_none_sink_still_counts(self):
        reporter = ProgressReporter(None, total=1)
        reporter.step("quiet")
        assert reporter.done == 1

    def test_steps_mirrored_into_active_trace(self, tmp_path):
        from repro.io.trace_codec import iter_trace_events

        path = tmp_path / "t.jsonl"
        obs.enable_tracing(str(path))
        reporter = ProgressReporter(None, total=1)
        reporter.step("traced", elapsed_s=0.5)
        reporter.announce("resume notice")
        obs.disable_tracing()
        events = [
            e for e in iter_trace_events(str(path)) if e["kind"] == "event"
        ]
        names = [e["name"] for e in events]
        assert names == ["progress", "progress.note"]
        assert events[0]["attrs"]["step"] == 1
        assert events[0]["attrs"]["elapsed_s"] == 0.5
        assert events[1]["attrs"]["description"] == "resume notice"

    def test_announce_is_unnumbered(self):
        lines = []
        reporter = ProgressReporter(lines.append, total=5)
        reporter.announce("resuming: 3 already done")
        assert lines == ["resuming: 3 already done"]
        assert reporter.done == 0
