"""Shared fixtures and builders for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.model.application import Application, Process, ProcessGraph
from repro.model.architecture import Architecture, Node
from repro.model.fault import FaultModel
from repro.model.mapping import ReplicaMapping
from repro.model.merge import merge_application
from repro.model.policy import Policy, PolicyAssignment
from repro.schedule.list_scheduler import list_schedule
from repro.ttp.bus import BusConfig


def make_graph(
    processes: dict[str, dict[str, float]],
    edges: list[tuple[str, str, int]] | list[tuple[str, str]] = (),
    name: str = "g",
    deadline: float | None = None,
    period: float | None = None,
) -> ProcessGraph:
    """Build a graph from dict/edge-list shorthand."""
    graph = ProcessGraph(name, period=period, deadline=deadline)
    for pname, wcet in processes.items():
        graph.add_process(Process(pname, wcet))
    for edge in edges:
        src, dst, *rest = edge
        graph.connect(src, dst, size=rest[0] if rest else 1)
    return graph


def schedule_single_graph(
    graph: ProcessGraph,
    faults: FaultModel,
    policies: dict[str, Policy],
    mapping: dict[str, tuple[str, ...] | str],
    bus: BusConfig,
):
    """Merge + list-schedule one graph with explicit design decisions."""
    merged = merge_application(Application([graph]))
    assignment = PolicyAssignment(policies)
    replica_mapping = ReplicaMapping()
    for process, nodes in mapping.items():
        replica_mapping.assign(process, nodes)
    return list_schedule(merged, faults, assignment, replica_mapping, bus)


@pytest.fixture
def two_node_arch() -> Architecture:
    return Architecture([Node("N1"), Node("N2")])


@pytest.fixture
def three_node_arch() -> Architecture:
    return Architecture([Node("N1"), Node("N2"), Node("N3")])


@pytest.fixture
def bus2() -> BusConfig:
    """Two slots of 10 ms as in the paper's Figure 3 examples."""
    return BusConfig(
        slot_order=("N1", "N2"),
        slot_lengths={"N1": 10.0, "N2": 10.0},
        ms_per_byte=5.0,
    )


@pytest.fixture
def bus3() -> BusConfig:
    return BusConfig(
        slot_order=("N1", "N2", "N3"),
        slot_lengths={"N1": 10.0, "N2": 10.0, "N3": 10.0},
        ms_per_byte=5.0,
    )


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)
