"""Round-trip tests for the JSON codec."""

import json

import pytest

from repro.errors import ModelError
from repro.apps.cruise_control import cruise_control_case
from repro.gen.suite import generate_case
from repro.io.json_codec import (
    application_from_dict,
    application_to_dict,
    architecture_from_dict,
    architecture_to_dict,
    fault_model_from_dict,
    fault_model_to_dict,
    implementation_from_dict,
    implementation_to_dict,
    load_case,
    save_case,
    schedule_to_dict,
)
from repro.model.merge import merge_application
from repro.opt.initial import initial_bus_access, initial_mpa
from repro.schedule.list_scheduler import list_schedule


def _case():
    return generate_case(8, 2, 2, mu=5.0, seed=3)


class TestApplicationRoundTrip:
    def test_random_case(self):
        case = _case()
        data = application_to_dict(case.application)
        clone = application_from_dict(json.loads(json.dumps(data)))
        original = case.application.graphs[0]
        restored = clone.graphs[0]
        assert {n: p.wcet for n, p in original.processes.items()} == {
            n: p.wcet for n, p in restored.processes.items()
        }
        assert sorted(original.messages) == sorted(restored.messages)
        assert restored.deadline == original.deadline

    def test_cruise_controller_preserves_constraints(self):
        app, _, _ = cruise_control_case()
        restored = application_from_dict(application_to_dict(app))
        graph = restored.graphs[0]
        assert len(graph) == 32
        assert graph.process("s_wheel_fl").fixed_node == "ABS"
        assert graph.deadline == 250.0

    def test_unsupported_version_rejected(self):
        case = _case()
        data = application_to_dict(case.application)
        data["version"] = 99
        with pytest.raises(ModelError):
            application_from_dict(data)


class TestArchitectureAndFaults:
    def test_architecture_round_trip(self):
        case = _case()
        restored = architecture_from_dict(architecture_to_dict(case.architecture))
        assert restored.node_names == case.architecture.node_names

    def test_architecture_with_bus(self):
        from repro.model.architecture import Architecture, Node
        from repro.ttp.bus import BusConfig

        arch = Architecture(
            [Node("A"), Node("B")],
            bus=BusConfig.minimal(("A", "B"), 4, ms_per_byte=2.0),
        )
        restored = architecture_from_dict(architecture_to_dict(arch))
        assert restored.bus is not None
        assert restored.bus.signature() == arch.bus.signature()

    def test_fault_model_round_trip(self):
        case = _case()
        restored = fault_model_from_dict(fault_model_to_dict(case.faults))
        assert restored == case.faults


class TestImplementationRoundTrip:
    def test_policies_mapping_bus_preserved(self):
        case = _case()
        merged = merge_application(case.application)
        bus = initial_bus_access(case.application, case.architecture)
        impl = initial_mpa(merged, case.architecture, case.faults, bus)
        restored = implementation_from_dict(
            json.loads(json.dumps(implementation_to_dict(impl)))
        )
        assert restored.signature() == impl.signature()

    def test_restored_solution_schedules_identically(self):
        case = _case()
        merged = merge_application(case.application)
        bus = initial_bus_access(case.application, case.architecture)
        impl = initial_mpa(merged, case.architecture, case.faults, bus)
        restored = implementation_from_dict(implementation_to_dict(impl))
        a = list_schedule(merged, case.faults, impl.policies, impl.mapping, impl.bus)
        b = list_schedule(
            merged, case.faults, restored.policies, restored.mapping, restored.bus
        )
        assert a.makespan == b.makespan


class TestScheduleExport:
    def test_contains_tables_medl_and_metrics(self):
        case = _case()
        merged = merge_application(case.application)
        bus = initial_bus_access(case.application, case.architecture)
        impl = initial_mpa(merged, case.architecture, case.faults, bus)
        schedule = list_schedule(
            merged, case.faults, impl.policies, impl.mapping, bus
        )
        data = schedule_to_dict(schedule)
        assert data["schedule_length"] == schedule.makespan
        assert set(data["nodes"]) == set(schedule.node_chains)
        assert len(data["medl"]) == len(schedule.medl)
        total_rows = sum(len(rows) for rows in data["nodes"].values())
        assert total_rows == len(schedule.placements)
        json.dumps(data)  # must be JSON-serializable


class TestSaveLoadCase:
    def test_full_round_trip(self, tmp_path):
        case = _case()
        merged = merge_application(case.application)
        bus = initial_bus_access(case.application, case.architecture)
        impl = initial_mpa(merged, case.architecture, case.faults, bus)
        path = tmp_path / "case.json"
        save_case(path, case.application, case.architecture, case.faults, impl)
        app, arch, faults, restored = load_case(path)
        assert faults == case.faults
        assert arch.node_names == case.architecture.node_names
        assert restored is not None
        assert restored.signature() == impl.signature()

    def test_problem_only(self, tmp_path):
        case = _case()
        path = tmp_path / "problem.json"
        save_case(path, case.application, case.architecture, case.faults)
        _, _, _, restored = load_case(path)
        assert restored is None
