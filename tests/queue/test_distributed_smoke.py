"""CI smoke: a mini Table 1a sweep through the SQLite broker.

Two scenarios the process-pool path cannot express:

* N independent OS processes consuming one durable queue file produce
  tables identical to the serial path;
* killing a worker mid-sweep and re-invoking with ``--resume`` completes
  the sweep without re-executing acked jobs (checkpoint hits asserted).
"""

import multiprocessing

import pytest

from repro.experiments.parallel import run_case_jobs, sweep_jobs
from repro.experiments.table1 import table1a
from repro.opt.strategy import OptimizationConfig
from repro.queue.driver import enqueue_sweep, run_sweep
from repro.queue.sqlite import SqliteBroker
from repro.queue.worker import Worker

#: No wall-clock limit: queue and serial searches are bit-identical.
TINY = OptimizationConfig(
    minimize=True, rounds=1, greedy_max_iterations=3, tabu_max_iterations=2
)
TINY_DIMS = ((8, 2, 2), (10, 2, 2))

def test_table1a_through_sqlite_broker_matches_serial(tmp_path):
    serial = table1a(seeds=(0,), dimensions=TINY_DIMS, config=TINY, jobs=1)
    broker = SqliteBroker(tmp_path / "queue.db")
    try:
        queued = table1a(
            seeds=(0,), dimensions=TINY_DIMS, config=TINY, jobs=2,
            broker=broker,
        )
    finally:
        broker.close()
    assert queued == serial


def test_killed_worker_then_resume_completes_without_rerunning(tmp_path):
    path = str(tmp_path / "queue.db")
    jobs = sweep_jobs(TINY_DIMS, (0, 1), ("NFT",), 5.0, 1.0, TINY, tag="smoke")
    assert len(jobs) == 4

    broker = SqliteBroker(path)
    plan = enqueue_sweep(jobs, broker)

    # A worker acks exactly two jobs, leases a third and dies mid-job
    # without acking, nacking or cleaning up — a machine loss.  The fork
    # start method lets the victim live in this test instead of prod code.
    def victim_main() -> None:
        import os

        victim_broker = SqliteBroker(path)
        Worker(
            victim_broker, worker_id="victim", lease_s=8.0,
            poll_interval_s=0.01,
        ).run(max_jobs=2)
        assert victim_broker.lease("victim", 8.0) is not None
        os._exit(1)  # hard crash while holding the lease

    context = multiprocessing.get_context("fork")
    victim = context.Process(target=victim_main, daemon=True)
    victim.start()
    victim.join(timeout=120.0)
    assert victim.exitcode == 1

    acked_before = broker.pending().done
    assert acked_before == 2
    assert broker.pending().leased == 1  # the orphaned lease
    done_fingerprints = [
        fp for fp in plan.fingerprints if broker.state(fp) == "done"
    ]
    broker.close()

    # Resume with fresh workers: completed slots are checkpoint hits, any
    # lease the victim still held lapses (8 s) and is redelivered.
    resumed = SqliteBroker(path)
    try:
        results, stats = run_sweep(
            jobs, resumed, resume=True, local_workers=2, lease_s=30.0,
            timeout_s=240.0,
        )
        assert stats.checkpoint_hits == acked_before
        assert stats.completed == len(jobs)
        # Acked jobs were never re-executed: still exactly one delivery.
        for fingerprint in done_fingerprints:
            assert resumed.attempts(fingerprint) == 1
    finally:
        resumed.close()

    serial = run_case_jobs(jobs, n_jobs=1)
    assert [r["NFT"].makespan for r in results] == [
        r["NFT"].makespan for r in serial
    ]
    assert [r["NFT"].record for r in results] == [
        r["NFT"].record for r in serial
    ]


def test_cli_worker_drains_a_prepared_broker(tmp_path, capsys):
    """`ftds worker --broker PATH --drain` consumes a sweep end to end."""
    from repro.cli import main

    path = str(tmp_path / "queue.db")
    jobs = sweep_jobs(((8, 2, 2),), (0,), ("NFT",), 5.0, 1.0, TINY, tag="cli")
    broker = SqliteBroker(path)
    plan = enqueue_sweep(jobs, broker)

    code = main(["worker", "--broker", path, "--drain", "--quiet"])
    assert code == 0
    assert "acked 1 job(s)" in capsys.readouterr().out
    assert broker.state(plan.fingerprints[0]) == "done"
    broker.close()


def test_cli_resume_requires_broker(capsys):
    from repro.cli import main

    with pytest.raises(SystemExit) as excinfo:
        main(["table1a", "--resume"])
    assert excinfo.value.code == 2
    assert "--resume requires --broker" in capsys.readouterr().err
