"""JSON wire-format tests: byte-identical round-trips, validated decodes."""

import json

import pytest

from repro.errors import QueueError
from repro.experiments.parallel import CaseJob, run_case_job
from repro.experiments.runner import VariantRun
from repro.gen.suite import generate_case
from repro.io.queue_codec import (
    canonical_json,
    case_job_from_dict,
    case_job_to_dict,
    decode_job,
    decode_result,
    encode_job,
    encode_result,
    job_fingerprint,
    variant_run_from_dict,
    variant_run_to_dict,
)
from repro.model.ftgraph import build_ft_graph
from repro.opt.strategy import OptimizationConfig, optimize
from repro.schedule.record import ScheduleRecord
from repro.sim.validate import validate_record

TINY = OptimizationConfig(
    minimize=True, rounds=1, greedy_max_iterations=3, tabu_max_iterations=2
)


@pytest.fixture(scope="module")
def optimized():
    """One real optimization winner with full model context."""
    case = generate_case(8, 2, 2, mu=5.0, seed=0)
    result = optimize(case.application, case.architecture, case.faults, "MXR", TINY)
    return result


class TestCaseJobRoundTrip:
    def test_plain_job_round_trips_byte_identically(self):
        job = CaseJob(20, 3, 4, 5.0, 7, ("NFT", "MXR"), label="row 3")
        text = encode_job(job)
        decoded = decode_job(text)
        assert decoded == job
        assert encode_job(decoded) == text

    def test_job_with_config_round_trips_byte_identically(self):
        config = OptimizationConfig(
            greedy_max_iterations=9,
            tabu_max_iterations=4,
            tabu_tenure=None,
            rounds=2,
            time_limit_s=1.5,
            minimize=True,
            bus_scale_factors=(0.5, 2.0),
            cache_size=128,
        )
        job = CaseJob(8, 2, 2, 1.0, 0, ("MXR",), time_scale=2.0, config=config)
        text = encode_job(job)
        decoded = decode_job(text)
        assert decoded == job
        assert decoded.config == config
        assert encode_job(decoded) == text

    def test_fingerprint_depends_on_slot_and_payload(self):
        job = CaseJob(8, 2, 2, 5.0, 0, ("NFT",))
        payload = encode_job(job)
        assert job_fingerprint(0, payload) != job_fingerprint(1, payload)
        other = encode_job(CaseJob(8, 2, 2, 5.0, 1, ("NFT",)))
        assert job_fingerprint(0, payload) != job_fingerprint(0, other)
        # Stable across invocations: resume recomputes identical identities.
        assert job_fingerprint(0, payload) == job_fingerprint(0, payload)

    def test_undecodable_payload_raises_queue_error(self):
        with pytest.raises(QueueError):
            decode_job("not json at all {{{")

    def test_unknown_version_rejected(self):
        data = case_job_to_dict(CaseJob(8, 2, 2, 5.0, 0, ("NFT",)))
        data["version"] = 99
        with pytest.raises(QueueError):
            case_job_from_dict(data)


class TestRecordRoundTrip:
    def test_record_round_trips_byte_identically(self, optimized):
        record = optimized.record
        text = canonical_json(record.to_json_dict())
        decoded = ScheduleRecord.from_json_dict(json.loads(text))
        assert decoded == record
        assert hash(decoded) == hash(record)
        assert canonical_json(decoded.to_json_dict()) == text

    def test_decoded_record_passes_fault_injection(self, optimized):
        record = ScheduleRecord.from_json_dict(
            json.loads(canonical_json(optimized.record.to_json_dict()))
        )
        implementation = optimized.implementation
        ft = build_ft_graph(
            optimized.merged,
            implementation.policies,
            implementation.mapping,
            optimized.faults,
        )
        report = validate_record(
            record,
            optimized.merged,
            ft,
            optimized.faults,
            implementation.bus,
            samples=20,
        )
        assert report.ok, report.violations

    def test_decoded_record_renders_same_metrics(self, optimized):
        record = optimized.record
        decoded = ScheduleRecord.from_json_dict(record.to_json_dict())
        assert decoded.makespan == record.makespan
        assert decoded.is_schedulable == record.is_schedulable
        assert decoded.critical_path() == record.critical_path()


class TestResultRoundTrip:
    def test_variant_runs_round_trip_byte_identically(self):
        job = CaseJob(8, 2, 2, 5.0, 0, ("NFT", "MXR"), config=TINY)
        runs = run_case_job(job)
        text = encode_result(runs, 1.25)
        decoded_runs, elapsed = decode_result(text)
        assert elapsed == 1.25
        assert set(decoded_runs) == set(runs)
        for variant, run in runs.items():
            decoded = decoded_runs[variant]
            assert decoded == run  # dataclass equality covers the record
            assert decoded.record == run.record
        assert encode_result(decoded_runs, elapsed) == text

    def test_recordless_run_round_trips(self):
        run = VariantRun(
            variant="NFT", makespan=10.5, schedulable=True, seconds=0.1,
            evaluations=3, record=None,
        )
        decoded = variant_run_from_dict(variant_run_to_dict(run))
        assert decoded == run

    def test_undecodable_result_raises_queue_error(self):
        with pytest.raises(QueueError):
            decode_result("][")
