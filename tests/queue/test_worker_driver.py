"""Worker-loop and sweep-driver tests over the in-memory broker."""

import pytest

from repro.errors import ConfigurationError, QueueError
from repro.experiments.parallel import CaseJob, run_case_jobs
from repro.io.queue_codec import decode_result
from repro.opt.strategy import OptimizationConfig
from repro.queue.broker import DEAD, DONE
from repro.queue.driver import enqueue_sweep, run_sweep
from repro.queue.memory import MemoryBroker
from repro.queue.worker import Worker

TINY = OptimizationConfig(
    minimize=True, rounds=1, greedy_max_iterations=3, tabu_max_iterations=2
)


def tiny_jobs(seeds=(0, 1, 2), variants=("NFT",)):
    return [CaseJob(8, 2, 2, 5.0, s, variants, config=TINY) for s in seeds]


class TestWorker:
    def test_worker_processes_and_validates_sweep(self):
        broker = MemoryBroker()
        jobs = tiny_jobs(seeds=(0, 1))
        plan = enqueue_sweep(jobs, broker)
        worker = Worker(broker, lease_s=60.0, poll_interval_s=0.01)
        acked = worker.run(drain=True)
        assert acked == 2
        assert worker.failed == 0
        for fingerprint in plan.fingerprints:
            assert broker.state(fingerprint) == DONE
            runs, elapsed = decode_result(broker.result(fingerprint))
            assert elapsed > 0.0
            assert runs["NFT"].record is not None

    def test_worker_nacks_undecodable_payload_to_dead_letter(self):
        broker = MemoryBroker()
        broker.enqueue("poison", "this is not json", max_attempts=2)
        worker = Worker(broker, lease_s=60.0, poll_interval_s=0.01)
        acked = worker.run(drain=True)
        assert acked == 0
        assert worker.failed == 2  # both deliveries nacked
        (letter,) = broker.dead_letters()
        assert "QueueError" in letter.error

    def test_worker_nacks_jobs_whose_case_cannot_generate(self):
        broker = MemoryBroker()
        bad = CaseJob(0, 2, 2, 5.0, 0, ("NFT",), config=TINY, label="bad job")
        enqueue_sweep([bad], broker, max_attempts=1)
        Worker(broker, lease_s=60.0, poll_interval_s=0.01).run(drain=True)
        (letter,) = broker.dead_letters()
        assert "bad job" in letter.error  # describe() travels with the error
        assert "ModelError" in letter.error

    def test_max_jobs_stops_mid_sweep(self):
        broker = MemoryBroker()
        enqueue_sweep(tiny_jobs(), broker)
        acked = Worker(broker, lease_s=60.0).run(max_jobs=2)
        assert acked == 2
        counts = broker.pending()
        assert (counts.done, counts.queued) == (2, 1)


class TestCrashRecovery:
    def test_lease_expiry_redelivers_to_surviving_worker(self):
        """A worker that leases and dies leads to redelivery, not loss."""
        clock_broker = MemoryBroker()
        jobs = tiny_jobs(seeds=(0,))
        plan = enqueue_sweep(jobs, clock_broker, max_attempts=3)

        # Simulated crash: the lease is taken but never acked or nacked.
        crashed = clock_broker.lease("crashed-worker", 0.0)
        assert crashed is not None

        survivor = Worker(clock_broker, lease_s=60.0, poll_interval_s=0.01)
        acked = survivor.run(drain=True)
        assert acked == 1
        assert clock_broker.state(plan.fingerprints[0]) == DONE
        assert clock_broker.attempts(plan.fingerprints[0]) == 2

    def test_repeated_crashes_exhaust_budget_to_dead_letter(self):
        broker = MemoryBroker()
        jobs = tiny_jobs(seeds=(0,))
        plan = enqueue_sweep(jobs, broker, max_attempts=2)
        for _ in range(2):  # every delivery goes to a crashing worker
            assert broker.lease("crasher", 0.0) is not None
        assert broker.lease("w", 60.0) is None
        assert broker.state(plan.fingerprints[0]) == DEAD
        (letter,) = broker.dead_letters()
        assert "lease expired" in letter.error

    def test_driver_reports_dead_letters_instead_of_hanging(self):
        """A poison job exhausts its retries; the driver raises, not hangs."""
        bad = CaseJob(0, 2, 2, 5.0, 0, ("NFT",), config=TINY, label="poison row")
        with pytest.raises(QueueError) as excinfo:
            run_sweep(
                [bad], MemoryBroker(), local_workers=1, max_attempts=2,
                timeout_s=60.0,
            )
        message = str(excinfo.value)
        assert "dead-lettered" in message
        assert "poison row" in message
        assert "ModelError" in message


class TestDriver:
    def test_sweep_through_queue_matches_serial(self):
        jobs = tiny_jobs(variants=("NFT", "MXR"))
        serial = run_case_jobs(jobs, n_jobs=1)
        results, stats = run_sweep(
            jobs, MemoryBroker(), local_workers=2, timeout_s=120.0
        )
        assert stats.completed == len(jobs)
        assert stats.checkpoint_hits == 0
        for expected, actual in zip(serial, results):
            for variant in expected:
                assert actual[variant].makespan == expected[variant].makespan
                assert actual[variant].record == expected[variant].record

    def test_progress_streams_in_submission_order_with_elapsed(self):
        jobs = tiny_jobs()
        lines: list[str] = []
        run_sweep(
            jobs, MemoryBroker(), local_workers=2, progress=lines.append,
            timeout_s=120.0,
        )
        assert len(lines) == len(jobs)
        for index, (line, job) in enumerate(zip(lines, jobs)):
            assert line.startswith(f"[{index + 1}/{len(jobs)}]")
            assert job.describe() in line
            assert line.rstrip().endswith("s)")  # worker wall-clock

    def test_fresh_sweep_on_dirty_broker_is_refused(self):
        broker = MemoryBroker()
        broker.enqueue("old", "payload")
        with pytest.raises(ConfigurationError):
            run_sweep(tiny_jobs(), broker, local_workers=1)

    def test_resume_skips_acked_jobs(self):
        """Partial sweep + resume: checkpoint hits, no re-execution."""
        broker = MemoryBroker()
        jobs = tiny_jobs()
        plan = enqueue_sweep(jobs, broker)
        Worker(broker, lease_s=60.0).run(max_jobs=2)  # interrupted worker

        results, stats = run_sweep(
            jobs, broker, resume=True, local_workers=1, timeout_s=120.0
        )
        assert stats.checkpoint_hits == 2
        assert stats.enqueued == 0  # identities matched the first submission
        assert stats.completed == 3
        # Acked jobs were never redelivered: still exactly one attempt.
        for fingerprint in plan.fingerprints[:2]:
            assert broker.attempts(fingerprint) == 1
        serial = run_case_jobs(jobs, n_jobs=1)
        assert [r["NFT"].makespan for r in results] == [
            r["NFT"].makespan for r in serial
        ]

    def test_resume_with_changed_parameters_is_refused(self):
        """Changed sweep parameters produce new fingerprints; resuming
        must refuse rather than silently run both sweeps' jobs.  (Merely
        *extending* a sweep with more seeds keeps the old identities and
        stays allowed.)"""
        broker = MemoryBroker()
        enqueue_sweep(tiny_jobs(seeds=(0, 1)), broker)
        with pytest.raises(ConfigurationError, match="not part of this sweep"):
            enqueue_sweep(tiny_jobs(seeds=(5, 6)), broker, resume=True)
        # Superset resume: old fingerprints are a prefix, nothing orphaned.
        plan = enqueue_sweep(tiny_jobs(seeds=(0, 1, 2)), broker, resume=True)
        assert plan.stats.enqueued >= 1

    def test_resume_retries_dead_jobs_with_fresh_budget(self):
        broker = MemoryBroker()
        jobs = tiny_jobs(seeds=(0,))
        plan = enqueue_sweep(jobs, broker, max_attempts=1)
        broker.lease("crasher", 0.0)  # lease lapses -> dead on next sweep
        assert broker.lease("w", 60.0) is None
        assert broker.state(plan.fingerprints[0]) == DEAD

        results, stats = run_sweep(
            jobs, broker, resume=True, local_workers=1, timeout_s=120.0
        )
        assert stats.reset_dead == 1
        assert stats.completed == 1
        assert results[0]["NFT"].record is not None

    def test_empty_sweep_completes_immediately(self):
        results, stats = run_sweep([], MemoryBroker(), local_workers=0)
        assert results == []
        assert stats.total == 0
