"""Broker contract tests, run against both backends.

The in-memory broker takes an injectable clock, so lease-expiry behaviour
is tested without sleeping; the SQLite broker uses wall-clock leases and
short sleeps.  Every semantic assertion runs against both.
"""

import time

import pytest

from repro.errors import QueueError
from repro.queue.broker import DEAD, DONE, LEASED, QUEUED
from repro.queue.memory import MemoryBroker
from repro.queue.sqlite import SqliteBroker


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def expiring_broker(request, tmp_path):
    """(broker, expire) pairs: expire() lapses every outstanding lease."""
    if request.param == "memory":
        clock = FakeClock()
        backend = MemoryBroker(clock=clock)
        yield backend, lambda: clock.advance(3600.0)
    else:
        backend = SqliteBroker(tmp_path / "queue.db")
        yield backend, lambda: time.sleep(0.08)
    backend.close()


def lease_seconds(expiring_broker) -> float:
    """A lease the paired expire() callable is guaranteed to outwait."""
    broker, _ = expiring_broker
    return 0.05 if isinstance(broker, SqliteBroker) else 60.0


both_backends = pytest.mark.parametrize(
    "expiring_broker", ["memory", "sqlite"], indirect=True
)


@both_backends
class TestLifecycle:
    def test_enqueue_lease_ack_roundtrip(self, expiring_broker):
        broker, _ = expiring_broker
        assert broker.enqueue("fp1", '{"job": 1}') is True
        assert broker.state("fp1") == QUEUED

        leased = broker.lease("w1", 60.0)
        assert leased.fingerprint == "fp1"
        assert leased.payload == '{"job": 1}'
        assert leased.attempt == 1
        assert leased.worker_id == "w1"
        assert broker.state("fp1") == LEASED

        broker.ack("fp1", '{"result": 42}')
        assert broker.state("fp1") == DONE
        assert broker.result("fp1") == '{"result": 42}'
        counts = broker.pending()
        assert (counts.queued, counts.leased, counts.done, counts.dead) == (
            0, 0, 1, 0,
        )
        assert counts.unfinished == 0

    def test_enqueue_is_idempotent_per_fingerprint(self, expiring_broker):
        broker, _ = expiring_broker
        assert broker.enqueue("fp1", "payload") is True
        assert broker.enqueue("fp1", "payload") is False
        assert broker.pending().total == 1

    def test_fifo_delivery_order(self, expiring_broker):
        broker, _ = expiring_broker
        for index in range(3):
            broker.enqueue(f"fp{index}", f"payload {index}")
        order = [broker.lease("w", 60.0).fingerprint for _ in range(3)]
        assert order == ["fp0", "fp1", "fp2"]

    def test_lease_on_empty_queue_returns_none(self, expiring_broker):
        broker, _ = expiring_broker
        assert broker.lease("w", 60.0) is None

    def test_states_maps_every_job(self, expiring_broker):
        broker, _ = expiring_broker
        broker.enqueue("fp1", "a")
        broker.enqueue("fp2", "b")
        broker.lease("w", 60.0)
        assert broker.states() == {"fp1": LEASED, "fp2": QUEUED}
        assert broker.state("missing") is None

    def test_ack_unknown_fingerprint_raises(self, expiring_broker):
        broker, _ = expiring_broker
        with pytest.raises(QueueError):
            broker.ack("ghost", "result")
        with pytest.raises(QueueError):
            broker.nack("ghost", "error")


@both_backends
class TestRetriesAndDeadLetters:
    def test_nack_requeues_until_attempts_exhausted(self, expiring_broker):
        broker, _ = expiring_broker
        broker.enqueue("fp1", "payload", max_attempts=3)
        for attempt in (1, 2):
            leased = broker.lease("w", 60.0)
            assert leased.attempt == attempt
            broker.nack("fp1", f"boom {attempt}")
            assert broker.state("fp1") == QUEUED
        leased = broker.lease("w", 60.0)
        assert leased.attempt == 3
        broker.nack("fp1", "boom 3")
        assert broker.state("fp1") == DEAD

        (letter,) = broker.dead_letters()
        assert letter.fingerprint == "fp1"
        assert letter.payload == "payload"
        assert letter.attempts == 3
        assert letter.error == "boom 3"
        # Dead jobs are parked: nothing left to deliver, nothing in flight.
        assert broker.lease("w", 60.0) is None
        assert broker.pending().unfinished == 0

    def test_reset_dead_grants_fresh_budget(self, expiring_broker):
        broker, _ = expiring_broker
        broker.enqueue("fp1", "payload", max_attempts=1)
        broker.lease("w", 60.0)
        broker.nack("fp1", "boom")
        assert broker.state("fp1") == DEAD

        assert broker.reset_dead() == 1
        assert broker.state("fp1") == QUEUED
        leased = broker.lease("w", 60.0)
        assert leased.attempt == 1  # budget restarted
        broker.ack("fp1", "ok")
        assert broker.state("fp1") == DONE


@both_backends
class TestLeaseExpiry:
    def test_expired_lease_is_redelivered(self, expiring_broker):
        broker, expire = expiring_broker
        broker.enqueue("fp1", "payload", max_attempts=3)
        first = broker.lease("w1", lease_seconds(expiring_broker))
        assert first.attempt == 1

        expire()
        second = broker.lease("w2", 60.0)
        assert second is not None
        assert second.fingerprint == "fp1"
        assert second.attempt == 2
        assert second.worker_id == "w2"

    def test_expiry_of_final_attempt_dead_letters(self, expiring_broker):
        broker, expire = expiring_broker
        broker.enqueue("fp1", "payload", max_attempts=1)
        broker.lease("w1", lease_seconds(expiring_broker))
        expire()
        assert broker.lease("w2", 60.0) is None
        assert broker.state("fp1") == DEAD
        (letter,) = broker.dead_letters()
        assert "lease expired" in letter.error
        assert "w1" in letter.error

    def test_ack_after_expiry_still_completes(self, expiring_broker):
        """Results are deterministic, so a late ack is accepted (last wins)."""
        broker, expire = expiring_broker
        broker.enqueue("fp1", "payload", max_attempts=5)
        broker.lease("w1", lease_seconds(expiring_broker))
        expire()
        broker.lease("w2", 60.0)  # redelivered to a second worker
        broker.ack("fp1", "late result from w1")
        assert broker.state("fp1") == DONE
        # The twin delivery failing afterwards must not undo the completion.
        broker.nack("fp1", "w2 crashed late")
        assert broker.state("fp1") == DONE
        assert broker.result("fp1") == "late result from w1"

    def test_live_lease_is_not_redelivered(self, expiring_broker):
        broker, _ = expiring_broker
        broker.enqueue("fp1", "payload")
        assert broker.lease("w1", 60.0) is not None
        assert broker.lease("w2", 60.0) is None


@pytest.mark.parametrize("expiring_broker", ["sqlite"], indirect=True)
class TestSqliteDurability:
    def test_state_survives_reopen(self, expiring_broker, tmp_path):
        broker, _ = expiring_broker
        broker.enqueue("fp1", "payload one")
        broker.enqueue("fp2", "payload two")
        broker.lease("w", 60.0)
        broker.ack("fp1", "result one")

        reopened = SqliteBroker(broker.path)
        try:
            assert reopened.states() == {"fp1": DONE, "fp2": QUEUED}
            assert reopened.result("fp1") == "result one"
            assert reopened.lease("w2", 60.0).fingerprint == "fp2"
        finally:
            reopened.close()

    def test_concurrent_connections_never_double_deliver(self, expiring_broker):
        broker, _ = expiring_broker
        for index in range(8):
            broker.enqueue(f"fp{index}", f"payload {index}")
        other = SqliteBroker(broker.path)
        try:
            seen = []
            for turn in range(8):
                backend = broker if turn % 2 == 0 else other
                seen.append(backend.lease(f"w{turn % 2}", 60.0).fingerprint)
            assert sorted(seen) == sorted(f"fp{i}" for i in range(8))
            assert len(set(seen)) == 8
        finally:
            other.close()
