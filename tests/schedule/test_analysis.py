"""Unit and property tests for the worst-case fault analysis (paper Figs. 2/3/7)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SchedulingError
from repro.model.fault import FaultModel
from repro.model.ftgraph import Instance
from repro.schedule.analysis import (
    WorstCaseAnalyzer,
    group_guaranteed_arrival,
    guaranteed_completion,
)


def _instance(iid, node, wcet, reexec, release=0.0) -> Instance:
    return Instance(
        id=iid,
        process=iid.split(":")[0],
        replica=0,
        node=node,
        wcet=wcet,
        reexecutions=reexec,
        release=release,
    )


class TestGroupGuaranteedArrival:
    def test_single_source(self):
        assert group_guaranteed_arrival([(10.0, 3)], budget=2) == 10.0

    def test_kill_prefix(self):
        arrivals = [(10.0, 1), (20.0, 1), (30.0, 1)]
        assert group_guaranteed_arrival(arrivals, budget=0) == 10.0
        assert group_guaranteed_arrival(arrivals, budget=1) == 20.0
        assert group_guaranteed_arrival(arrivals, budget=2) == 30.0

    def test_last_always_survives(self):
        arrivals = [(10.0, 1), (20.0, 1)]
        assert group_guaranteed_arrival(arrivals, budget=99) == 20.0

    def test_expensive_first_blocks_prefix(self):
        # Killing the late-arriving source without the early one gains nothing,
        # so an unaffordable first source pins the arrival.
        arrivals = [(10.0, 3), (20.0, 1)]
        assert group_guaranteed_arrival(arrivals, budget=2) == 10.0

    def test_empty_group_rejected(self):
        with pytest.raises(SchedulingError):
            group_guaranteed_arrival([], budget=1)


class TestChainDP:
    def test_fig2a_single_process(self):
        """C=30, k=2, mu=10: worst finish 30 + 2*(30+10) = 110 (paper Fig. 2a)."""
        analyzer = WorstCaseAnalyzer(FaultModel(k=2, mu=10.0))
        result = analyzer.place(_instance("P1:r0", "N1", 30.0, 2), [0.0, 0.0, 0.0])
        assert result.finish_row == (30.0, 70.0, 110.0)
        assert result.wcf == 110.0

    def test_slack_sharing_two_processes(self):
        """P1 (C=40) then P2 (C=60) on one node, k=1, mu=10.

        The shared worst case is a fault in P2 after a fault-free P1:
        100 + 70 = 170; a fault in P1 gives only 90 + 60 = 150.
        """
        analyzer = WorstCaseAnalyzer(FaultModel(k=1, mu=10.0))
        r1 = analyzer.place(_instance("P1:r0", "N1", 40.0, 1), [0.0, 0.0])
        assert r1.finish_row == (40.0, 90.0)
        r2 = analyzer.place(_instance("P2:r0", "N1", 60.0, 1), [0.0, 0.0])
        assert r2.finish_row == (100.0, 170.0)

    def test_slack_sharing_order_matters(self):
        """Long process first: fault in P1 delays P2 more than P2's own fault."""
        analyzer = WorstCaseAnalyzer(FaultModel(k=1, mu=10.0))
        analyzer.place(_instance("P1:r0", "N1", 60.0, 1), [0.0, 0.0])
        r2 = analyzer.place(_instance("P2:r0", "N1", 40.0, 1), [0.0, 0.0])
        # Fault in P1: P1 ends 130, P2 ends 170.  Fault in P2: 100 + 50 = 150.
        assert r2.finish_row == (100.0, 170.0)

    def test_shared_slack_less_than_sum_of_slacks(self):
        """Sharing: the node-level slack is max-based, not sum-based."""
        analyzer = WorstCaseAnalyzer(FaultModel(k=1, mu=10.0))
        analyzer.place(_instance("P1:r0", "N1", 40.0, 1), [0.0, 0.0])
        r2 = analyzer.place(_instance("P2:r0", "N1", 60.0, 1), [0.0, 0.0])
        sum_of_slacks = 100.0 + (40.0 + 10.0) + (60.0 + 10.0)
        assert r2.wcf < sum_of_slacks

    def test_release_gap_absorbs_reexecution(self):
        """A fault before an input-wait gap is absorbed by the gap."""
        analyzer = WorstCaseAnalyzer(FaultModel(k=1, mu=10.0))
        r1 = analyzer.place(_instance("P1:r0", "N1", 20.0, 1), [0.0, 0.0])
        assert r1.wcf == 50.0
        # P2 released at 100 >> P1's worst case: P1's fault cannot delay it.
        r2 = analyzer.place(_instance("P2:r0", "N1", 30.0, 1), [100.0, 100.0])
        assert r2.finish_row == (130.0, 170.0)

    def test_budgets_are_monotone(self):
        analyzer = WorstCaseAnalyzer(FaultModel(k=3, mu=5.0))
        result = analyzer.place(
            _instance("P1:r0", "N1", 25.0, 3), [0.0, 0.0, 0.0, 0.0]
        )
        row = result.finish_row
        assert all(row[i] <= row[i + 1] for i in range(len(row) - 1))

    def test_zero_reexec_instance_still_shifted_by_chain(self):
        """A replica with e=0 inherits chain delays but adds no slack."""
        analyzer = WorstCaseAnalyzer(FaultModel(k=2, mu=10.0))
        analyzer.place(_instance("P1:r0", "N1", 30.0, 2), [0.0, 0.0, 0.0])
        r2 = analyzer.place(_instance("P2:r0", "N1", 10.0, 0), [0.0, 0.0, 0.0])
        assert r2.finish_row == (40.0, 80.0, 120.0)

    def test_tail_covers_terminal_kill(self):
        """The chain tail includes the killed-replica occupancy (+mu)."""
        analyzer = WorstCaseAnalyzer(FaultModel(k=1, mu=10.0))
        result = analyzer.place(_instance("P1:r0", "N1", 30.0, 0), [0.0, 0.0])
        # Killed: one failed attempt occupies C + mu = 40.
        assert result.tail_row == (30.0, 40.0)

    def test_fig7_contingency_without_slack(self):
        """Replica descendants: the contingency schedule carries no extra slack.

        P2 is replicated on N1/N2 (k=1); P3 runs on N1 right after the local
        replica.  Worst case is the larger of: (a) P3's own re-execution from
        the root start, (b) starting from the remote replica's message with
        no further slack (the fault was consumed killing the local replica).
        """
        analyzer = WorstCaseAnalyzer(FaultModel(k=1, mu=10.0))
        local = analyzer.place(_instance("P2:r0", "N1", 40.0, 0), [0.0, 0.0])
        assert local.root_finish == 40.0
        # rel row of P3: budget 0 -> local finish 40; budget 1 -> remote
        # message arrival 90 (the local replica was killed).
        p3 = analyzer.place(_instance("P3:r0", "N1", 50.0, 1), [40.0, 90.0])
        own_reexec = 40.0 + 50.0 + (50.0 + 10.0)  # (a) = 150
        contingency = 90.0 + 50.0  # (b) = 140, no slack left
        assert p3.wcf == max(own_reexec, contingency) == 150.0

    def test_fig7_contingency_dominates_when_remote_late(self):
        analyzer = WorstCaseAnalyzer(FaultModel(k=1, mu=10.0))
        analyzer.place(_instance("P2:r0", "N1", 40.0, 0), [0.0, 0.0])
        p3 = analyzer.place(_instance("P3:r0", "N1", 50.0, 1), [40.0, 160.0])
        assert p3.wcf == 160.0 + 50.0  # contingency start + C, no slack

    def test_rel_row_length_checked(self):
        analyzer = WorstCaseAnalyzer(FaultModel(k=2, mu=1.0))
        with pytest.raises(SchedulingError):
            analyzer.place(_instance("P1:r0", "N1", 5.0, 2), [0.0])

    def test_nodes_are_independent(self):
        analyzer = WorstCaseAnalyzer(FaultModel(k=1, mu=10.0))
        analyzer.place(_instance("P1:r0", "N1", 40.0, 1), [0.0, 0.0])
        other = analyzer.place(_instance("P2:r0", "N2", 20.0, 1), [0.0, 0.0])
        assert other.finish_row == (20.0, 50.0)


class TestGuaranteedCompletion:
    def test_fig2a_reexecution(self):
        assert guaranteed_completion([(110.0, 3)], budget=2) == 110.0

    def test_fig2b_pure_replication(self):
        # Three replicas finishing at 30 each on distinct idle nodes: the
        # adversary kills two, the third still ends at 30.
        assert guaranteed_completion([(30.0, 1), (30.0, 1), (30.0, 1)], 2) == 30.0

    def test_staggered_replicas(self):
        # Replicas end at 30/50/70; two kills force waiting for the last.
        pairs = [(30.0, 1), (50.0, 1), (70.0, 1)]
        assert guaranteed_completion(pairs, budget=2) == 70.0
        assert guaranteed_completion(pairs, budget=1) == 50.0


@given(
    wcets=st.lists(
        st.floats(min_value=1.0, max_value=100.0, allow_nan=False),
        min_size=1,
        max_size=6,
    ),
    reexecs=st.data(),
    k=st.integers(min_value=0, max_value=4),
    mu=st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
)
def test_chain_dp_bounds(wcets, reexecs, k, mu):
    """Properties of the chain DP on random chains.

    * rows are monotone in the fault budget;
    * the root finish equals the plain sum of WCETs (compact root schedule);
    * the WCF never exceeds the naive per-process slack sum plus the extra
      detection gap terminal kills may add (at most one µ per fault);
    * tails dominate finishes.
    """
    if k == 0:
        mu = 0.0
    analyzer = WorstCaseAnalyzer(FaultModel(k=k, mu=mu))
    zeros = [0.0] * (k + 1)
    running_root = 0.0
    naive = 0.0
    for index, wcet in enumerate(wcets):
        e = reexecs.draw(st.integers(min_value=0, max_value=k), label=f"e{index}")
        result = analyzer.place(
            _instance(f"P{index}:r0", "N1", wcet, e), list(zeros)
        )
        running_root += wcet
        naive += wcet + min(e, k) * (wcet + mu)
        row = result.finish_row
        assert row[0] == pytest.approx(running_root)
        assert all(row[i] <= row[i + 1] + 1e-9 for i in range(k))
        assert row[k] <= naive + k * mu + 1e-6
        assert all(
            result.tail_row[q] >= row[q] - 1e-9 for q in range(k + 1)
        )
