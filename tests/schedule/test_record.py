"""Properties of the compact ScheduleRecord IR.

The record is the canonical synthesized-configuration artifact, so it must
(1) pickle losslessly (workers ship it across process boundaries), (2) be
hashable with structural equality (it keys caches), and (3) contain no
reference cycles (retained records must add nothing to cyclic-GC work —
the argument behind the enlarged evaluator cache, see DESIGN.md).
"""

import gc
import pickle

import pytest

from repro.gen.suite import generate_case
from repro.model.merge import merge_application
from repro.opt.evaluator import Evaluator
from repro.opt.initial import initial_bus_access, initial_mpa
from repro.schedule.list_scheduler import build_schedule_record, list_schedule
from repro.schedule.record import BINDING_KINDS, ScheduleRecord

from tests.schedule.parity_cases import CASES, build_schedule


def _record_for(n, nodes, k, seed, replicas=1):
    case = generate_case(n, nodes, k, mu=5.0, seed=seed)
    merged = merge_application(case.application)
    bus = initial_bus_access(case.application, case.architecture)
    impl = initial_mpa(merged, case.architecture, case.faults, bus, replicas)
    schedule = list_schedule(merged, case.faults, impl.policies, impl.mapping, bus)
    return schedule.record


class TestPickleRoundTrip:
    @pytest.mark.parametrize("tag,n,nodes,k,seed,replicas", CASES)
    def test_round_trip_is_lossless(self, tag, n, nodes, k, seed, replicas):
        record = build_schedule(n, nodes, k, seed, replicas).record
        clone = pickle.loads(pickle.dumps(record))
        assert clone == record
        assert hash(clone) == hash(record)
        assert clone.critical_path() == record.critical_path()
        assert clone.makespan == record.makespan

    def test_pickle_is_compact(self):
        """The IR's payload must stay in flat-tuple territory: a record
        pickles to a small fraction of a megabyte even for a large case."""
        record = _record_for(20, 2, 3, seed=0)
        assert len(pickle.dumps(record)) < 64 * 1024


class TestEqualityAndHash:
    def test_identical_builds_are_equal(self):
        a = _record_for(10, 2, 2, seed=4)
        b = _record_for(10, 2, 2, seed=4)
        assert a is not b
        assert a == b
        assert hash(a) == hash(b)

    def test_different_seeds_differ(self):
        a = _record_for(10, 2, 2, seed=4)
        b = _record_for(10, 2, 2, seed=5)
        assert a != b

    def test_usable_as_dict_key(self):
        a = _record_for(8, 2, 1, seed=0)
        b = _record_for(8, 2, 1, seed=0)
        seen = {a: "first"}
        assert seen[b] == "first"


class TestCycleFreedom:
    @pytest.mark.parametrize("tag,n,nodes,k,seed,replicas", CASES)
    def test_no_reference_cycles(self, tag, n, nodes, k, seed, replicas):
        """DFS over ``gc.get_referents`` must never revisit an object on the
        current path: the record's object graph is a strict tree/DAG."""
        record = build_schedule(n, nodes, k, seed, replicas).record

        on_path: set[int] = set()
        finished: set[int] = set()
        stack: list[tuple[object, bool]] = [(record, False)]
        while stack:
            obj, done = stack.pop()
            if done:
                on_path.discard(id(obj))
                finished.add(id(obj))
                continue
            if id(obj) in finished:
                continue
            assert id(obj) not in on_path, (
                f"reference cycle through {type(obj).__name__}"
            )
            if isinstance(obj, (str, bytes, int, float, bool, type(None), type)):
                continue
            on_path.add(id(obj))
            stack.append((obj, True))
            for child in gc.get_referents(obj):
                stack.append((child, False))

    def test_gc_untracks_record_payload(self):
        """CPython untracks tuples of atomic values as it traverses them —
        so a retained record contributes (almost) nothing to GC re-scans.
        Two collections make the cascade deterministic: the first untracks
        the leaf rows, the second the outer arrays that hold them."""
        record = _record_for(12, 3, 2, seed=1)
        gc.collect()
        gc.collect()
        assert not gc.is_tracked(record.root_start)
        assert not gc.is_tracked(record.finish_rows)
        assert not gc.is_tracked(record.bindings)
        assert not gc.is_tracked(record.medl)


class TestRecordSemantics:
    def test_binding_triples_are_index_valid(self):
        record = _record_for(12, 3, 2, seed=2, replicas=3)
        n = len(record)
        for index, (kind, source, budget) in enumerate(record.bindings):
            assert 0 <= kind < len(BINDING_KINDS)
            assert 0 <= budget <= record.k
            if BINDING_KINDS[kind] == "release":
                assert source == -1
            else:
                # Constraining predecessors are always placed earlier.
                assert 0 <= source < index <= n

    def test_critical_path_matches_view_walk(self):
        for tag, *params in CASES:
            schedule = build_schedule(*params)
            assert schedule.record.critical_path() == schedule.critical_path()

    def test_builder_output_matches_evaluator_cache_entry(self):
        case = generate_case(8, 2, 1, mu=5.0, seed=0)
        merged = merge_application(case.application)
        bus = initial_bus_access(case.application, case.architecture)
        impl = initial_mpa(merged, case.architecture, case.faults, bus)
        evaluator = Evaluator(merged, case.faults)
        cost, record = evaluator.evaluate_record(impl)
        assert isinstance(record, ScheduleRecord)
        assert cost.makespan == record.makespan
        # The cached record is exactly what a direct build produces.
        from repro.model.ftgraph import build_ft_graph

        ft = build_ft_graph(merged, impl.policies, impl.mapping, case.faults)
        direct = build_schedule_record(merged, ft, case.faults, impl.bus)
        assert direct == record
