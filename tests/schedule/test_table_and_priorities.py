"""Unit tests for schedule tables, critical path and PCP priorities."""

import pytest

from repro.model.application import Application, Process, ProcessGraph
from repro.model.fault import FaultModel
from repro.model.ftgraph import build_ft_graph
from repro.model.mapping import ReplicaMapping
from repro.model.merge import merge_application
from repro.model.policy import Policy, PolicyAssignment
from repro.schedule.priorities import instance_weight, pcp_priorities
from repro.ttp.bus import BusConfig

from tests.conftest import make_graph, schedule_single_graph

BUS2 = BusConfig(("N1", "N2"), {"N1": 10.0, "N2": 10.0}, ms_per_byte=5.0)
K1 = FaultModel(k=1, mu=10.0)


def _chain_schedule():
    graph = make_graph(
        {
            "A": {"N1": 20.0, "N2": 20.0},
            "B": {"N1": 30.0, "N2": 30.0},
            "C": {"N1": 40.0, "N2": 40.0},
            "D": {"N1": 10.0, "N2": 10.0},  # independent side process
        },
        [("A", "B", 2), ("B", "C", 2)],
        deadline=1000.0,
    )
    policies = {n: Policy.reexecution(1) for n in "ABCD"}
    # D sits behind B on N1 and finishes well before C's worst case on N2,
    # so the worst-case chain of constraints is A -> B -> m -> C.
    mapping = {"A": "N1", "B": "N1", "C": "N2", "D": "N1"}
    return schedule_single_graph(graph, K1, policies, mapping, BUS2)


class TestCriticalPath:
    def test_follows_the_chain(self):
        schedule = _chain_schedule()
        cp = schedule.critical_path()
        assert cp[-1] == "C"
        assert "B" in cp and "A" in cp
        # Source-to-sink order.
        assert cp.index("A") < cp.index("B") < cp.index("C")

    def test_side_process_not_on_cp(self):
        schedule = _chain_schedule()
        assert "D" not in schedule.critical_path()


class TestTardinessAndSchedulability:
    def _deadline_schedule(self, deadline):
        graph = make_graph(
            {"A": {"N1": 30.0}},
            [],
            deadline=deadline,
        )
        return schedule_single_graph(
            graph, K1, {"A": Policy.reexecution(1)}, {"A": "N1"}, BUS2
        )

    def test_schedulable_when_wcf_below_deadline(self):
        schedule = self._deadline_schedule(100.0)
        assert schedule.is_schedulable
        assert schedule.degree_of_schedulability() == 0.0

    def test_unschedulable_when_wcf_above_deadline(self):
        # WCF = 30 + (30 + 10) = 70 > 60.
        schedule = self._deadline_schedule(60.0)
        assert not schedule.is_schedulable
        assert schedule.degree_of_schedulability() == pytest.approx(10.0)
        assert schedule.tardiness() == {"A": pytest.approx(10.0)}

    def test_no_deadline_means_schedulable(self):
        graph = make_graph({"A": {"N1": 30.0}})
        schedule = schedule_single_graph(
            graph, K1, {"A": Policy.reexecution(1)}, {"A": "N1"}, BUS2
        )
        assert schedule.is_schedulable


class TestRendering:
    def test_format_tables_mentions_every_node_and_length(self):
        schedule = _chain_schedule()
        text = schedule.format_tables()
        assert "node N1:" in text
        assert "node N2:" in text
        assert "schedule length" in text
        assert "MEDL" in text


class TestPriorities:
    def test_instance_weight_includes_recovery(self):
        assert instance_weight(30.0, 2, 10.0) == 30.0 + 2 * 40.0

    def test_priority_decreases_along_chain(self):
        graph = make_graph(
            {"A": {"N1": 10.0}, "B": {"N1": 10.0}, "C": {"N1": 10.0}},
            [("A", "B"), ("B", "C")],
        )
        merged = merge_application(Application([graph]))
        policies = PolicyAssignment.uniform(iter("ABC"), Policy.reexecution(1))
        mapping = ReplicaMapping({n: ("N1",) for n in "ABC"})
        ft = build_ft_graph(merged, policies, mapping, K1)
        prio = pcp_priorities(ft, BUS2, K1)
        assert prio["A:r0"] > prio["B:r0"] > prio["C:r0"]

    def test_cross_node_edges_add_a_round(self):
        graph = make_graph(
            {"A": {"N1": 10.0}, "B": {"N1": 10.0, "N2": 10.0}},
            [("A", "B")],
        )
        merged = merge_application(Application([graph]))
        policies = PolicyAssignment.uniform(iter("AB"), Policy.reexecution(1))
        local = ReplicaMapping({"A": ("N1",), "B": ("N1",)})
        remote = ReplicaMapping({"A": ("N1",), "B": ("N2",)})
        ft_local = build_ft_graph(merged, policies, local, K1)
        ft_remote = build_ft_graph(merged, policies, remote, K1)
        p_local = pcp_priorities(ft_local, BUS2, K1)
        p_remote = pcp_priorities(ft_remote, BUS2, K1)
        assert p_remote["A:r0"] == p_local["A:r0"] + BUS2.round_length
