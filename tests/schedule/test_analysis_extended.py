"""Extended analysis properties: checkpointing, frames ordering, budgets."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model.fault import FaultModel
from repro.model.ftgraph import Instance
from repro.model.policy import Policy
from repro.schedule.analysis import WorstCaseAnalyzer
from repro.ttp.bus import BusConfig

from tests.conftest import make_graph, schedule_single_graph

BUS2 = BusConfig(("N1", "N2"), {"N1": 10.0, "N2": 10.0}, ms_per_byte=5.0)


def _instance(iid, wcet, reexec, checkpoints=0):
    return Instance(
        id=iid, process=iid.split(":")[0], replica=0, node="N1",
        wcet=wcet, reexecutions=reexec, checkpoints=checkpoints,
    )


@given(
    wcet=st.floats(min_value=5.0, max_value=100.0, allow_nan=False),
    k=st.integers(min_value=1, max_value=5),
    mu=st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
    segments=st.integers(min_value=2, max_value=8),
)
def test_checkpointing_never_increases_wcf_without_overhead(wcet, k, mu, segments):
    """With zero checkpoint overhead, segment recovery only shrinks slack."""
    plain = WorstCaseAnalyzer(FaultModel(k=k, mu=mu)).place(
        _instance("P:r0", wcet, k), [0.0] * (k + 1)
    )
    checkpointed = WorstCaseAnalyzer(FaultModel(k=k, mu=mu)).place(
        _instance("P:r0", wcet, k, checkpoints=segments), [0.0] * (k + 1)
    )
    assert checkpointed.wcf <= plain.wcf + 1e-9
    # Root (fault-free) time is identical without overhead.
    assert checkpointed.root_finish == pytest.approx(plain.root_finish)


@given(
    wcet=st.floats(min_value=5.0, max_value=100.0, allow_nan=False),
    k=st.integers(min_value=1, max_value=5),
    mu=st.floats(min_value=0.1, max_value=20.0, allow_nan=False),
)
def test_more_segments_monotonically_shrink_wcf(wcet, k, mu):
    previous = None
    for segments in (0, 2, 4, 8):
        result = WorstCaseAnalyzer(FaultModel(k=k, mu=mu)).place(
            _instance("P:r0", wcet, k, checkpoints=segments), [0.0] * (k + 1)
        )
        if previous is not None:
            assert result.wcf <= previous + 1e-9
        previous = result.wcf


class TestFrameOrdering:
    def test_guaranteed_frame_after_fast_frame(self):
        """For a re-executed replica, the guaranteed frame never precedes
        the fast frame."""
        faults = FaultModel(k=2, mu=10.0)
        graph = make_graph(
            {"A": {"N1": 20.0, "N2": 20.0}, "B": {"N2": 30.0}},
            [("A", "B", 2)],
        )
        schedule = schedule_single_graph(
            graph, faults,
            {"A": Policy.combined(2, 2), "B": Policy.reexecution(2)},
            {"A": ("N1", "N2"), "B": "N2"},
            BUS2,
        )
        fast = schedule.medl["m_A_B[A:r0]"]
        guaranteed = schedule.medl["m_A_B[A:r0]#g"]
        assert guaranteed.slot_start >= fast.slot_start
        # The guaranteed frame lies at/after the sender's WCF.
        assert guaranteed.slot_start >= schedule.placements["A:r0"].wcf - 1e-9

    def test_masked_frame_slot_after_full_recovery(self):
        faults = FaultModel(k=3, mu=5.0)
        graph = make_graph(
            {"A": {"N1": 40.0}, "B": {"N2": 10.0}}, [("A", "B", 1)]
        )
        schedule = schedule_single_graph(
            graph, faults,
            {"A": Policy.reexecution(3), "B": Policy.reexecution(3)},
            {"A": "N1", "B": "N2"},
            BUS2,
        )
        descriptor = schedule.medl["m_A_B[A:r0]"]
        # WCF of A = 40 + 3*(40+5) = 175.
        assert descriptor.slot_start >= 175.0 - 1e-9


class TestColocatedReplicaChains:
    def test_colocated_replicas_serialize(self):
        """Replicas forced onto one node run back to back (k > nodes)."""
        faults = FaultModel(k=3, mu=5.0)
        graph = make_graph({"A": {"N1": 10.0, "N2": 10.0}})
        schedule = schedule_single_graph(
            graph, faults,
            {"A": Policy.replication(3)},
            {"A": ("N1", "N2", "N1", "N2")},
            BUS2,
        )
        n1_instances = [
            schedule.placements[iid] for iid in schedule.node_chains["N1"]
        ]
        assert len(n1_instances) == 2
        first, second = n1_instances
        assert second.root_start >= first.root_finish - 1e-9

    def test_completion_accounts_colocation(self):
        """Guaranteed completion of a co-located replica group is later than
        for fully parallel replicas."""
        faults = FaultModel(k=2, mu=5.0)
        graph3 = make_graph({"A": {"N1": 10.0, "N2": 10.0, "N3": 10.0}})
        bus3 = BusConfig.minimal(("N1", "N2", "N3"), 4)
        parallel = schedule_single_graph(
            graph3, faults,
            {"A": Policy.replication(2)},
            {"A": ("N1", "N2", "N3")},
            bus3,
        )
        graph2 = make_graph({"A": {"N1": 10.0, "N2": 10.0}})
        colocated = schedule_single_graph(
            graph2, faults,
            {"A": Policy.replication(2)},
            {"A": ("N1", "N2", "N1")},
            BUS2,
        )
        assert parallel.completions["A"] < colocated.completions["A"]
