"""Parity and error-bound suite of the vectorized pricing kernel.

Two contracts, of different strength (DESIGN.md, "Vectorized pricing
tier"):

* the array kernels (:func:`release_row_vec`, :func:`place_vec` via
  :func:`chain_dp_batch`) and the batched move planner
  (:meth:`EvalContext.plan_moves`) are **bit-parity twins** of the scalar
  path — ``repr`` equality against the scalar results / the sealed cold
  record, same as the delta kernel's golden suite;
* the :class:`NeighbourhoodPricer` estimates carry a **calibrated error
  bound**: the exact cost must lie within ``error`` / ``degree_error`` of
  the estimate, and on the seeded cases below the true winner's optimistic
  rank stays well inside the default shortlist, so
  :meth:`Evaluator.rank_neighbourhood` exact-prices it.

Anything the search *realizes* goes through the delta kernel, so the
byte-identity test at the bottom holds regardless of estimate quality.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.gen.suite import generate_case
from repro.model.ftgraph import build_ft_graph
from repro.model.merge import merge_application
from repro.opt.evaluator import Evaluator
from repro.opt.initial import initial_bus_access, initial_mpa
from repro.opt.moves import generate_moves
from repro.schedule.incremental import EvalContext
from repro.schedule.list_scheduler import build_schedule_record
from repro.schedule.state import release_row
from repro.schedule.vector import place_vec, release_row_vec

_SLOW = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _build(n, nodes, k, seed, replicas=None):
    case = generate_case(n, nodes, k, mu=5.0 if k else 0.0, seed=seed)
    merged = merge_application(case.application)
    bus = initial_bus_access(case.application, case.architecture)
    if replicas is None:
        impl = initial_mpa(merged, case.architecture, case.faults, bus)
    else:
        impl = initial_mpa(
            merged, case.architecture, case.faults, bus, replicas
        )
    return merged, case.faults, bus, impl


def _capture(merged, faults, bus, impl):
    ft = build_ft_graph(merged, impl.policies, impl.mapping, faults)
    return EvalContext.capture(merged, ft, faults, bus)


# -- bit-parity of the array kernels ---------------------------------------


@given(
    n=st.integers(8, 14),
    nodes=st.integers(2, 3),
    k=st.integers(0, 3),
    seed=st.integers(0, 7),
    replicas=st.sampled_from([None, 2, 3]),
)
@_SLOW
def test_release_row_vec_bit_parity(n, nodes, k, seed, replicas):
    """release_row_vec == scalar release_row, bit for bit, every instance.

    ``repr`` equality distinguishes even ``0.0`` from ``-0.0``; the
    replicated bases exercise the fast/guaranteed frame branches of the
    cost table.
    """
    if replicas is not None and replicas > k + 1:
        replicas = k + 1
    merged, faults, bus, impl = _build(n, nodes, k, seed, replicas)
    context = _capture(merged, faults, bus, impl)
    record = context.record
    root_finish = dict(zip(record.instance_ids, record.root_finish))
    for iid in record.instance_ids:
        scalar = release_row(
            context.ft, iid, faults, root_finish,
            context.no_recovery_rows, context.medl_by_id,
        )
        vec = release_row_vec(
            context.ft, iid, faults, root_finish,
            context.no_recovery_rows, context.medl_by_id,
        )
        assert repr(vec) == repr(scalar)


@given(
    n=st.integers(8, 14),
    nodes=st.integers(2, 3),
    k=st.integers(0, 3),
    seed=st.integers(0, 7),
    replicas=st.sampled_from([None, 2]),
)
@_SLOW
def test_place_vec_bit_parity_against_cold_record(
    n, nodes, k, seed, replicas
):
    """Replaying every node chain through place_vec reproduces the sealed
    record's finish/tail/no-recovery rows bit for bit (the scalar rows were
    written by :meth:`WorstCaseAnalyzer.place` during the cold pass)."""
    if replicas is not None and replicas > k + 1:
        replicas = k + 1
    merged, faults, bus, impl = _build(n, nodes, k, seed, replicas)
    context = _capture(merged, faults, bus, impl)
    record = context.record
    root_finish = dict(zip(record.instance_ids, record.root_finish))
    for chain in record.node_chains:
        prev_tail = None
        for inst_index in chain:
            iid = record.instance_ids[inst_index]
            rel_row, _sources = release_row(
                context.ft, iid, faults, root_finish,
                context.no_recovery_rows, context.medl_by_id,
            )
            placed = place_vec(
                context.ft.instances[iid], rel_row, prev_tail, faults
            )
            assert repr(placed.finish_row) == repr(
                tuple(record.finish_rows[inst_index])
            )
            assert repr(placed.tail_row) == repr(
                tuple(context.trace.tail_rows[iid])
            )
            assert repr(placed.no_recovery_row) == repr(
                tuple(context.no_recovery_rows[iid])
            )
            prev_tail = placed.tail_row


@given(
    n=st.integers(8, 14),
    nodes=st.integers(2, 3),
    k=st.integers(0, 3),
    seed=st.integers(0, 7),
)
@_SLOW
def test_plan_moves_bit_equal_to_plan_move(n, nodes, k, seed):
    """The batched planner returns the scalar planner's results exactly:
    same overlay graphs, bit-equal priority dicts, same cones."""
    merged, faults, bus, impl = _build(n, nodes, k, seed)
    context = _capture(merged, faults, bus, impl)
    moves = generate_moves(
        merged, faults, impl, context.record.critical_path(), (1, 2, 3)
    )
    if not moves:
        return
    candidates = []
    for move in moves:
        moved = move.apply(impl)
        candidates.append((moved.policies, moved.mapping, move.process))
    batched = context.plan_moves(candidates)
    for candidate, (ft_b, prio_b, cone_b) in zip(candidates, batched):
        ft_s, prio_s, cone_s = context.plan_move(*candidate)
        assert repr(sorted(prio_b.items())) == repr(sorted(prio_s.items()))
        assert cone_b.process == cone_s.process
        assert cone_b.earliest_rank == cone_s.earliest_rank
        assert cone_b.changed == cone_s.changed
        assert set(ft_b.instances) == set(ft_s.instances)


# -- bounded-error estimates ------------------------------------------------

#: (n_processes, n_nodes, k, seed) — cases where the true winner's
#: optimistic rank was measured well inside the default shortlist of 8
#: (rank <= 5), leaving margin against estimator recalibration.
_SEEDED_CASES = [
    (12, 2, 2, 0),
    (16, 3, 1, 1),
    (16, 3, 1, 2),
    (12, 2, 2, 3),
    (12, 2, 2, 4),
    (12, 2, 2, 5),
    (16, 3, 1, 6),
    (12, 2, 2, 7),
]


def _neighbourhood(n, nodes, k, seed):
    case = generate_case(n, nodes, k, mu=5.0, seed=seed)
    merged = merge_application(case.application)
    bus = initial_bus_access(case.application, case.architecture)
    impl = initial_mpa(merged, case.architecture, case.faults, bus)
    evaluator = Evaluator(merged, case.faults, cache=False)
    _cost, record = evaluator.evaluate_record(impl)
    moves = generate_moves(
        merged, case.faults, impl, record.critical_path(), (2, 3)
    )
    return merged, case, bus, impl, evaluator, moves


@pytest.mark.parametrize("n,nodes,k,seed", _SEEDED_CASES)
def test_error_bound_contains_exact_cost(n, nodes, k, seed):
    """Every estimate's error interval contains the exact cost."""
    merged, case, bus, impl, evaluator, moves = _neighbourhood(
        n, nodes, k, seed
    )
    assert moves
    exact = evaluator.evaluate_many(impl, moves)
    context = evaluator.context_for(impl)
    prices = context.pricer().price(
        [(m.process, m.nodes, m.policy) for m in moves]
    )
    for candidate, price in zip(exact, prices):
        assert (
            abs(candidate.cost.makespan - price.makespan)
            <= price.error + 1e-9
        )
        assert (
            abs(candidate.cost.degree - price.degree)
            <= price.degree_error + 1e-9
        )
        if price.exact:
            assert candidate.cost.makespan == price.makespan
            assert candidate.cost.degree == price.degree


@pytest.mark.parametrize("n,nodes,k,seed", _SEEDED_CASES)
def test_winner_is_exact_priced_in_shortlist(n, nodes, k, seed):
    """The exact-best move never leaves the ranking tier on an estimate:
    rank_neighbourhood exact-prices it inside the default shortlist."""
    merged, case, bus, impl, evaluator, moves = _neighbourhood(
        n, nodes, k, seed
    )
    assert moves
    exact = evaluator.evaluate_many(impl, moves)
    fresh = Evaluator(merged, case.faults, cache=False)
    ranked = fresh.rank_neighbourhood(impl, moves, shortlist=8)
    assert len(ranked) == len(moves)
    best_index = min(
        range(len(exact)), key=lambda i: (exact[i].cost.sort_key, i)
    )
    winner = ranked[best_index]
    assert winner.exact is not None
    assert repr(winner.cost) == repr(exact[best_index].cost)
    # Selecting the best exact-priced ranked candidate therefore finds
    # the true optimum of the whole neighbourhood.
    best_ranked = min(
        (r for r in ranked if r.exact is not None),
        key=lambda r: r.cost.sort_key,
    )
    assert repr(best_ranked.cost) == repr(exact[best_index].cost)


@pytest.mark.parametrize("n,nodes,k,seed", _SEEDED_CASES[:4])
def test_ranked_winner_realizes_byte_identical_record(n, nodes, k, seed):
    """Realizing the ranking tier's winner equals a cold full pass of the
    winning design, bit for bit — estimates never touch sealed records."""
    merged, case, bus, impl, evaluator, moves = _neighbourhood(
        n, nodes, k, seed
    )
    assert moves
    ranked = evaluator.rank_neighbourhood(impl, moves, shortlist=8)
    best = min(
        (r for r in ranked if r.exact is not None),
        key=lambda r: r.cost.sort_key,
    )
    realized = evaluator.realize(best.exact)
    moved = best.move.apply(impl)
    ft = build_ft_graph(merged, moved.policies, moved.mapping, case.faults)
    cold = build_schedule_record(merged, ft, case.faults, bus)
    assert repr(realized) == repr(cold)
