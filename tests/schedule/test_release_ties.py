"""Regression: input-arrival ties must name the *surviving* replica.

``_release_row`` used to look the dominant input up by float equality on the
arrival time; when two replicas arrive at the identical time that lookup
names the first tied sender — which can be exactly the replica the adversary
already killed — corrupting the binding links the critical-path extraction
follows.  Survivors are now tracked by index (see
:func:`repro.schedule.analysis.group_survivor_indices`).
"""

import pytest

from repro.model.fault import FaultModel
from repro.model.policy import Policy
from repro.schedule.analysis import (
    group_guaranteed_arrival,
    group_survivor_index,
    group_survivor_indices,
)
from repro.ttp.bus import BusConfig

from tests.conftest import make_graph, schedule_single_graph

BUS2 = BusConfig(("N1", "N2"), {"N1": 10.0, "N2": 10.0}, ms_per_byte=5.0)


def _tie_schedule():
    """Two replicas of A deliver to B:r0 at the identical time (t=30).

    * ``A:r0`` on N1 (wcet 20) sends a fast frame in N1's round-1 slot
      [20, 30) -> arrival 30 at N2;
    * ``A:r1`` on N2 (wcet 30) finishes locally at 30.

    With budget 1 the adversary kills the earlier-sorted entry (``A:r0``);
    the surviving input of ``B:r0`` is therefore ``A:r1``.  µ = 0 makes the
    co-located chain tail equal the arrival, so the input (not the node
    chain) binds B:r0's placement at the dominant budget.
    """
    graph = make_graph(
        {"A": {"N1": 20.0, "N2": 30.0}, "B": {"N1": 10.0, "N2": 10.0}},
        [("A", "B", 1)],
    )
    return schedule_single_graph(
        graph,
        FaultModel(k=1, mu=0.0),
        {"A": Policy.replication(1), "B": Policy.replication(1)},
        {"A": ("N1", "N2"), "B": ("N2", "N1")},
        BUS2,
    )


class TestReleaseTieRegression:
    def test_arrivals_actually_tie(self):
        schedule = _tie_schedule()
        # Local finish of A:r1 and bus arrival of A:r0's frame coincide.
        assert schedule.placements["A:r1"].root_finish == pytest.approx(30.0)
        frame = schedule.medl["m_A_B[A:r0]"]
        assert frame.slot_end == pytest.approx(30.0)

    def test_binding_names_surviving_replica(self):
        schedule = _tie_schedule()
        binding = schedule.placements["B:r0"].binding
        assert binding.kind == "input"
        # The buggy float-equality lookup named the killed replica A:r0.
        assert binding.source == "A:r1"

    def test_critical_path_still_traverses_a(self):
        schedule = _tie_schedule()
        path = schedule.critical_path()
        assert path[-1] in {"A", "B"}
        assert "A" in path


class TestSurvivorIndices:
    def test_tie_survivor_is_second_entry(self):
        arrivals = [(30.0, 1), (30.0, 1), (40.0, 1)]
        assert group_survivor_index(arrivals, 0) == 0
        assert group_survivor_index(arrivals, 1) == 1
        assert group_survivor_index(arrivals, 2) == 2

    def test_indices_match_single_budget_helper(self):
        arrivals = [(1.0, 2), (2.0, 1), (2.0, 3), (5.0, 1)]
        for k in range(6):
            assert group_survivor_indices(arrivals, k) == [
                group_survivor_index(arrivals, c) for c in range(k + 1)
            ]

    def test_guaranteed_arrival_unchanged_by_refactor(self):
        arrivals = [(10.0, 1), (20.0, 2), (30.0, 1)]
        assert group_guaranteed_arrival(arrivals, 0) == 10.0
        assert group_guaranteed_arrival(arrivals, 1) == 20.0
        assert group_guaranteed_arrival(arrivals, 2) == 20.0
        assert group_guaranteed_arrival(arrivals, 3) == 30.0
        # The last replica always survives, however large the budget.
        assert group_guaranteed_arrival(arrivals, 99) == 30.0
